"""Exception types shared across the :mod:`repro` library.

Keeping a small, explicit hierarchy lets callers distinguish *user* mistakes
(bad configuration values) from *model* violations (a derived quantity left
the physically meaningful range) without string-matching messages.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A user-supplied configuration value is invalid or inconsistent."""


class ModelError(ReproError):
    """A derived model quantity is outside its physically meaningful range."""


class FloorplanError(ReproError):
    """The physical design flow could not produce a legal floorplan."""


class MappingError(ReproError):
    """The mapper could not find a legal mapping for a layer."""


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` with ``message`` unless ``condition``.

    A tiny guard helper used by constructors throughout the library so that
    invalid configurations fail fast with a clear message instead of
    propagating NaNs through the analytical models.
    """
    if not condition:
        raise ConfigurationError(message)
