"""Exception types shared across the :mod:`repro` library.

Keeping a small, explicit hierarchy lets callers distinguish *user* mistakes
(bad configuration values) from *model* violations (a derived quantity left
the physically meaningful range) without string-matching messages.

The hierarchy is also the single source of the library's **structured
error envelope**: every surface that reports failures to a machine — the
CLI's ``--json`` mode, the HTTP server's 4xx responses — lowers the
exception through :func:`error_envelope` into one canonical shape::

    {"error": {"type": "configuration_error",
               "message": "tier_pairs must be >= 1",
               "path": "arch.tier_pairs"}}

``type`` is the snake_case exception class (:func:`error_type`),
``message`` the human-readable text, and ``path`` the dotted spec path the
error is about (``None`` when unknown).  The envelope is part of the
frozen ``/v1`` wire schema (DESIGN.md Sec. 12): new fields may be added,
existing ones never change meaning.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any


class ReproError(Exception):
    """Base class for all errors raised by the repro library.

    Attributes:
        path: Optional dotted field path (``"tech.delta"``) locating the
            error inside a spec document; surfaces in the error envelope.
    """

    def __init__(self, *args: object, path: str | None = None) -> None:
        super().__init__(*args)
        self.path = path


class ConfigurationError(ReproError):
    """A user-supplied configuration value is invalid or inconsistent."""


class TransientError(ReproError):
    """A failure that is expected to succeed on retry.

    Raised (or used as a classification) for worker-side failures caused
    by the *environment* rather than the task itself: a timed-out
    evaluation, a lost worker, an injected chaos fault.  The supervised
    dispatcher in :mod:`repro.runtime.pmap` retries transient failures
    with seeded exponential backoff before giving up.
    """


class PermanentError(ReproError):
    """A failure that retrying cannot fix (bad input, logic error).

    Task exceptions that are not :class:`TransientError` are classified
    permanent: the task fails immediately without burning retry budget.
    """


class PoisonTaskError(ReproError):
    """A task that repeatedly killed the worker pool and was quarantined.

    When a single task crashes the pool ``max_pool_deaths`` times it is
    recorded as failed instead of being retried forever (or triggering a
    full serial rerun that would crash the parent process too).
    """


class ModelError(ReproError):
    """A derived model quantity is outside its physically meaningful range."""


class FloorplanError(ReproError):
    """The physical design flow could not produce a legal floorplan."""


class MappingError(ReproError):
    """The mapper could not find a legal mapping for a layer."""


def require(condition: bool, message: str, path: str | None = None) -> None:
    """Raise :class:`ConfigurationError` with ``message`` unless ``condition``.

    A tiny guard helper used by constructors throughout the library so that
    invalid configurations fail fast with a clear message instead of
    propagating NaNs through the analytical models.  ``path`` optionally
    names the offending spec field for the structured envelope.
    """
    if not condition:
        raise ConfigurationError(message, path=path)


_CAMEL_BOUNDARY = re.compile(r"(?<=[a-z0-9])(?=[A-Z])")


def error_type(error: BaseException) -> str:
    """The envelope ``type`` tag for ``error``: its snake_case class name.

    ``ConfigurationError`` -> ``configuration_error``; the ``Error``
    suffix is kept so tags read as error identifiers.  JSON decoding
    failures are special-cased to ``invalid_json`` because both the CLI
    and the server wrap them in :class:`ConfigurationError` whose message
    starts with ``"invalid ..."`` — callers that still hold the raw
    ``json.JSONDecodeError`` get the same tag.
    """
    import json

    if isinstance(error, json.JSONDecodeError):
        return "invalid_json"
    return _CAMEL_BOUNDARY.sub("_", type(error).__name__).lower()


def envelope(type_: str, message: str,
             path: str | None = None) -> dict[str, Any]:
    """The structured error envelope, built from raw parts.

    Surfaces that fail without an exception in hand (an unknown HTTP
    route, a rejected request) use this directly so every failure body
    has the identical shape.
    """
    return {"error": {"type": type_, "message": message, "path": path}}


def error_envelope(error: BaseException,
                   path: str | None = None) -> dict[str, Any]:
    """Lower any exception to the library's structured error envelope.

    The one JSON shape every machine-facing failure uses — the CLI's
    ``--json`` mode and the server's HTTP 4xx bodies both emit exactly
    this.  ``path`` overrides the exception's own ``path`` attribute when
    the caller knows more context than the raise site did.
    """
    if path is None:
        path = getattr(error, "path", None)
    return envelope(error_type(error), str(error), path)


@dataclass(frozen=True)
class EvaluationFailure:
    """Structured record of one failed evaluation in a partial-results run.

    This is the *data* form of an exception: what the streaming sweep
    stores in chunk checkpoints, what ``--max-failures`` surfaces, and
    what resume uses to retry only the points that actually failed.  It
    round-trips through the generic dataclass codec
    (:mod:`repro.runtime.serialize`), so checkpoints written by a
    crashing run deserialize cleanly on resume.

    Attributes:
        error_type: Snake_case exception tag (:func:`error_type`).
        message: Human-readable failure text (includes the remote
            traceback summary when the failure crossed a process).
        path: Dotted spec path the error is about, when known.
        retries: Attributed transient retries this task consumed.
        pool_deaths: Worker-pool deaths attributed to this task.
        spec: The failed point's design spec, when the failure occurred
            inside a sweep (``None`` for bare engine calls).
        index: Position of the failed point within its sweep chunk.
    """

    error_type: str
    message: str
    path: str | None = None
    retries: int = 0
    pool_deaths: int = 0
    spec: Any = None
    index: int | None = None

    @classmethod
    def from_exception(cls, error: BaseException, *, retries: int = 0,
                       pool_deaths: int = 0, spec: Any = None,
                       index: int | None = None) -> "EvaluationFailure":
        """Lower a caught exception into its structured record."""
        return cls(
            error_type=error_type(error),
            message=str(error),
            path=getattr(error, "path", None),
            retries=retries,
            pool_deaths=pool_deaths,
            spec=spec,
            index=index,
        )

    def envelope(self) -> dict[str, Any]:
        """The failure in canonical error-envelope shape."""
        return envelope(self.error_type, self.message, self.path)
