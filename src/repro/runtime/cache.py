"""Content-addressed result cache: in-memory LRU plus optional disk store.

The memory tier is a bounded LRU (``OrderedDict``); the optional disk tier
writes one JSON file per key under ``directory`` using the generic codec of
:mod:`repro.runtime.serialize`, so a warm cache directory survives process
restarts and is shared between workers.  Disk writes are atomic
(temp file + ``os.replace``), and unreadable or tampered files degrade to
a miss instead of an error — a corrupt entry is additionally
**quarantined** (renamed to ``<key>.corrupt``) so the next write starts
clean and the bad bytes stay on disk for inspection.  The write path is
a registered :mod:`repro.faults` corruption site (``cache.corrupt``),
which is how chaos tests exercise the quarantine deterministically.
"""

from __future__ import annotations

import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.errors import require
from repro.faults import corrupt_text as _corrupt_text
from repro.obs.metrics import registry as _metrics_registry
from repro.obs.trace import is_enabled as _obs_enabled, span as _span
from repro.runtime.serialize import dumps, loads

#: Sentinel distinguishing "missing" from a cached ``None``.
MISSING = object()


def atomic_write_text(path: Path, text: str) -> bool:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    A reader never observes a partial file: the content lands under a
    temporary name in the same directory and is renamed into place in one
    step.  Returns ``False`` (without raising) when the filesystem
    refuses — read-only or full disks degrade to "not persisted", the
    same policy the disk cache and the sweep checkpoint store share.
    """
    try:
        handle = tempfile.NamedTemporaryFile(
            "w", encoding="utf-8", dir=path.parent,
            prefix=f".{path.stem[:16]}.", suffix=".tmp", delete=False)
        with handle:
            handle.write(text)
        os.replace(handle.name, path)
    except OSError:
        return False
    return True


@dataclass
class CacheStats:
    """Running hit/miss counters for one cache instance.

    Attributes:
        hits: Lookups served from memory or disk.
        memory_hits: Subset of ``hits`` served from the memory tier.
        disk_hits: Subset of ``hits`` served from the disk tier.
        misses: Lookups that found nothing.
        stores: Values written into the cache.
        corrupt: Disk entries that failed to decode and were quarantined.
    """

    hits: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0


class ResultCache:
    """LRU memory cache with an optional on-disk JSON store."""

    def __init__(self, max_memory_entries: int = 4096,
                 directory: str | os.PathLike | None = None) -> None:
        require(max_memory_entries >= 1, "cache needs at least one entry")
        self.max_memory_entries = max_memory_entries
        self.directory = Path(directory) if directory is not None else None
        self.stats = CacheStats()
        self._memory: OrderedDict[str, Any] = OrderedDict()
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)

    def get(self, key: str) -> Any:
        """Cached value for ``key``, or :data:`MISSING`."""
        if key in self._memory:
            self._memory.move_to_end(key)
            self.stats.hits += 1
            self.stats.memory_hits += 1
            return self._memory[key]
        value = self._disk_get(key)
        if value is not MISSING:
            self._memory_put(key, value)
            self.stats.hits += 1
            self.stats.disk_hits += 1
            return value
        self.stats.misses += 1
        return MISSING

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` in the memory tier and, when configured, on disk."""
        self._memory_put(key, value)
        self._disk_put(key, value)
        self.stats.stores += 1

    def clear(self) -> None:
        """Drop the memory tier (disk files are left in place)."""
        self._memory.clear()

    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, key: str) -> bool:
        if key in self._memory:
            return True
        return self.directory is not None and self._disk_path(key).is_file()

    def _memory_put(self, key: str, value: Any) -> None:
        self._memory[key] = value
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)

    def _disk_path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.json"

    def _disk_get(self, key: str) -> Any:
        if self.directory is None:
            return MISSING
        path = self._disk_path(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return MISSING
        if _obs_enabled():
            _metrics_registry().counter("repro_cache_disk_reads_total").inc()
        with _span("cache.deserialize", bytes=len(text)):
            try:
                return loads(text)
            except (ValueError, TypeError, KeyError, AttributeError,
                    ImportError):
                self._quarantine(path)
                return MISSING

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside so it can never be served stale.

        The rename is best-effort (a read-only directory just leaves the
        undecodable file in place, still a permanent miss); the
        ``.corrupt`` suffix keeps the evidence while guaranteeing the
        key re-evaluates and the next write starts from a clean slate.
        """
        self.stats.corrupt += 1
        if _obs_enabled():
            _metrics_registry().counter("repro_cache_corrupt_total").inc()
        try:
            path.replace(path.with_suffix(".corrupt"))
        except OSError:
            pass

    def _disk_put(self, key: str, value: Any) -> None:
        if self.directory is None:
            return
        with _span("cache.serialize") as sp:
            try:
                text = dumps(value)
            except TypeError:
                return  # value has no JSON lowering; memory tier only
            if sp:
                sp.set(bytes=len(text))
        if _obs_enabled():
            _metrics_registry().counter("repro_cache_disk_writes_total").inc()
        # Fault-injection site: a chaos plan may mangle the bytes here,
        # exercising the read path's quarantine deterministically.
        text = _corrupt_text("cache.corrupt", key, text)
        # Failed writes (read-only or full disk) keep going on memory only.
        atomic_write_text(self._disk_path(key), text)
