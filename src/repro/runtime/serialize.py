"""Generic JSON codec for the repository's frozen result dataclasses.

Every result object in this codebase is a tree of frozen dataclasses whose
fields are primitives, enums, tuples, dicts, or further dataclasses — and
every field participates in ``__init__``.  That regularity lets one codec
serve the whole repo: :func:`to_jsonable` lowers any such tree to plain
JSON types (tagging dataclasses, enums, and tuples so the shape survives),
and :func:`from_jsonable` reconstructs the original objects, re-running
each dataclass's ``__post_init__`` validation on the way back up.

The codec powers the disk result cache (:mod:`repro.runtime.cache`) and
the stable content hashes (:mod:`repro.runtime.keys`); the ``to_dict`` /
``from_dict`` helpers on :class:`repro.core.dse.DesignCandidate` and
friends delegate here.

Reconstruction only resolves classes from ``repro.*`` modules — a cache
file cannot name arbitrary importable types.
"""

from __future__ import annotations

import dataclasses
import enum
import importlib
import json
from typing import Any

#: Tag keys used in the lowered representation.
DATACLASS_TAG = "__dataclass__"
ENUM_TAG = "__enum__"
TUPLE_TAG = "__tuple__"
SET_TAG = "__set__"
FROZENSET_TAG = "__frozenset__"
DICT_TAG = "__dict__"

_TAGS = (DATACLASS_TAG, ENUM_TAG, TUPLE_TAG, SET_TAG, FROZENSET_TAG,
         DICT_TAG)

#: Module prefix reconstruction is restricted to.
TRUSTED_PREFIX = "repro"


def to_jsonable(obj: Any) -> Any:
    """Lower ``obj`` to a tree of plain JSON types.

    Raises:
        TypeError: for values outside the supported vocabulary
            (primitives, lists, tuples, str-keyed dicts, enums, and
            dataclass instances).
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, enum.Enum):
        return {ENUM_TAG: _type_path(type(obj)), "name": obj.name}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            field.name: to_jsonable(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
        return {DATACLASS_TAG: _type_path(type(obj)), "fields": fields}
    if isinstance(obj, tuple):
        return {TUPLE_TAG: [to_jsonable(item) for item in obj]}
    if isinstance(obj, (set, frozenset)):
        # Sort by canonical text so the lowering (and any hash of it) is
        # independent of insertion order.
        lowered = sorted((to_jsonable(item) for item in obj),
                         key=lambda item: json.dumps(item, sort_keys=True))
        tag = FROZENSET_TAG if isinstance(obj, frozenset) else SET_TAG
        return {tag: lowered}
    if isinstance(obj, list):
        return [to_jsonable(item) for item in obj]
    if isinstance(obj, dict):
        lowered = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                raise TypeError(
                    f"cannot serialize dict key {key!r}: only str keys supported")
            lowered[key] = to_jsonable(value)
        if any(tag in lowered for tag in _TAGS):
            # Escape dicts whose own keys collide with the codec's tags.
            return {DICT_TAG: [[k, v] for k, v in lowered.items()]}
        return lowered
    raise TypeError(f"cannot serialize {type(obj).__name__} value {obj!r}")


def from_jsonable(data: Any) -> Any:
    """Reconstruct the object tree lowered by :func:`to_jsonable`."""
    if isinstance(data, list):
        return [from_jsonable(item) for item in data]
    if not isinstance(data, dict):
        return data
    if DATACLASS_TAG in data:
        cls = _resolve(data[DATACLASS_TAG])
        if not dataclasses.is_dataclass(cls):
            raise TypeError(f"{data[DATACLASS_TAG]} is not a dataclass")
        kwargs = {name: from_jsonable(value)
                  for name, value in data["fields"].items()}
        return cls(**kwargs)
    if ENUM_TAG in data:
        cls = _resolve(data[ENUM_TAG])
        if not (isinstance(cls, type) and issubclass(cls, enum.Enum)):
            raise TypeError(f"{data[ENUM_TAG]} is not an enum")
        return cls[data["name"]]
    if TUPLE_TAG in data:
        return tuple(from_jsonable(item) for item in data[TUPLE_TAG])
    if SET_TAG in data:
        return {from_jsonable(item) for item in data[SET_TAG]}
    if FROZENSET_TAG in data:
        return frozenset(from_jsonable(item) for item in data[FROZENSET_TAG])
    if DICT_TAG in data:
        return {key: from_jsonable(value) for key, value in data[DICT_TAG]}
    return {key: from_jsonable(value) for key, value in data.items()}


def dumps(obj: Any) -> str:
    """Canonical JSON text for ``obj`` (sorted keys, minimal separators).

    The output is deterministic across processes and Python versions,
    which is what makes it usable both as cache-file content and as
    hash input for :func:`repro.runtime.keys.stable_key`.
    """
    return json.dumps(to_jsonable(obj), sort_keys=True,
                      separators=(",", ":"))


def loads(text: str) -> Any:
    """Inverse of :func:`dumps`."""
    return from_jsonable(json.loads(text))


def _type_path(cls: type) -> str:
    return f"{cls.__module__}:{cls.__qualname__}"


def _resolve(path: str) -> type:
    module_name, _, qualname = path.partition(":")
    if module_name != TRUSTED_PREFIX and not module_name.startswith(
            TRUSTED_PREFIX + "."):
        raise TypeError(f"refusing to resolve type outside "
                        f"{TRUSTED_PREFIX!r}: {path!r}")
    module = importlib.import_module(module_name)
    target: Any = module
    for part in qualname.split("."):
        target = getattr(target, part)
    return target
