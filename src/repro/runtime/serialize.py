"""Generic JSON codec for the repository's frozen result dataclasses.

Every result object in this codebase is a tree of frozen dataclasses whose
fields are primitives, enums, tuples, dicts, or further dataclasses — and
every field participates in ``__init__``.  That regularity lets one codec
serve the whole repo: :func:`to_jsonable` lowers any such tree to plain
JSON types (tagging dataclasses, enums, and tuples so the shape survives),
and :func:`from_jsonable` reconstructs the original objects, re-running
each dataclass's ``__post_init__`` validation on the way back up.

The codec powers the disk result cache (:mod:`repro.runtime.cache`) and
the stable content hashes (:mod:`repro.runtime.keys`); the ``to_dict`` /
``from_dict`` helpers on :class:`repro.core.dse.DesignCandidate` and
friends delegate here.

Reconstruction only resolves classes from ``repro.*`` modules — a cache
file cannot name arbitrary importable types.

Hashing the same PDK and network for every point of a sweep used to
dominate the engine's bookkeeping, so :func:`dumps` memoizes the
*canonical JSON text* of frozen dataclass instances in an identity-keyed
fingerprint cache: the first ``stable_key`` over a PDK serializes its
whole tree, subsequent keys splice the cached string and pay only the
final hash.  Entries hold strong references, so an id cannot be recycled
while its entry lives; frozen dataclasses cannot be reassigned, which
keeps cached text valid (the repo-wide convention that value objects are
never mutated in place extends to any mutable leaves they contain).
:func:`to_jsonable` itself always returns a fresh tree — callers of
``to_dict()`` may freely mutate the result.
"""

from __future__ import annotations

import dataclasses
import enum
import importlib
import json
from typing import Any

#: Tag keys used in the lowered representation.
DATACLASS_TAG = "__dataclass__"
ENUM_TAG = "__enum__"
TUPLE_TAG = "__tuple__"
SET_TAG = "__set__"
FROZENSET_TAG = "__frozenset__"
DICT_TAG = "__dict__"

_TAGS = (DATACLASS_TAG, ENUM_TAG, TUPLE_TAG, SET_TAG, FROZENSET_TAG,
         DICT_TAG)

#: Module prefix reconstruction is restricted to.
TRUSTED_PREFIX = "repro"

#: Fingerprint-cache entry bound (FIFO eviction; entries pin their object).
FINGERPRINT_CACHE_MAX_ENTRIES = 1024

#: id(obj) -> (obj, canonical JSON text).  The strong reference in the
#: value pins the id for the entry's lifetime, making the id key
#: collision-free.
_fingerprint_cache: dict[int, tuple[Any, str]] = {}
_fingerprint_cache_enabled = True


def set_fingerprint_cache(enabled: bool) -> bool:
    """Enable/disable lowering memoization; returns the previous state."""
    global _fingerprint_cache_enabled
    previous = _fingerprint_cache_enabled
    _fingerprint_cache_enabled = bool(enabled)
    if not enabled:
        _fingerprint_cache.clear()
    return previous


def fingerprint_cache_enabled() -> bool:
    """Whether :func:`dumps` memoizes frozen-dataclass lowerings."""
    return _fingerprint_cache_enabled


def clear_fingerprint_cache() -> None:
    """Drop every cached lowering (releases the pinned objects)."""
    _fingerprint_cache.clear()


def to_jsonable(obj: Any) -> Any:
    """Lower ``obj`` to a tree of plain JSON types.

    Always builds a fresh tree (callers may mutate the result).

    Raises:
        TypeError: for values outside the supported vocabulary
            (primitives, lists, tuples, str-keyed dicts, enums, and
            dataclass instances).
    """
    return _lower(obj)


def _lower(obj: Any) -> Any:
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, enum.Enum):
        return {ENUM_TAG: _type_path(type(obj)), "name": obj.name}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            field.name: _lower(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
        return {DATACLASS_TAG: _type_path(type(obj)), "fields": fields}
    if isinstance(obj, tuple):
        return {TUPLE_TAG: [_lower(item) for item in obj]}
    if isinstance(obj, (set, frozenset)):
        # Sort by canonical text so the lowering (and any hash of it) is
        # independent of insertion order.
        lowered = sorted((_lower(item) for item in obj),
                         key=lambda item: json.dumps(item, sort_keys=True))
        tag = FROZENSET_TAG if isinstance(obj, frozenset) else SET_TAG
        return {tag: lowered}
    if isinstance(obj, list):
        return [_lower(item) for item in obj]
    if isinstance(obj, dict):
        lowered = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                raise TypeError(
                    f"cannot serialize dict key {key!r}: only str keys supported")
            lowered[key] = _lower(value)
        if any(tag in lowered for tag in _TAGS):
            # Escape dicts whose own keys collide with the codec's tags.
            return {DICT_TAG: [[k, v] for k, v in lowered.items()]}
        return lowered
    raise TypeError(f"cannot serialize {type(obj).__name__} value {obj!r}")


def _canonical(obj: Any, cache: bool) -> str:
    """Canonical JSON text of ``obj``.

    Byte-identical to ``json.dumps(_lower(obj), sort_keys=True,
    separators=(",", ":"))``, but built by string composition so frozen
    dataclass subtrees can be served verbatim from the fingerprint cache
    (a sweep hashes the same PDK/network/design objects hundreds of
    times; re-walking their trees dominated the engine's bookkeeping).
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return json.dumps(obj)
    if isinstance(obj, enum.Enum):
        # Key order mirrors sort_keys: "__enum__" < "name".
        return (f'{{"{ENUM_TAG}":{json.dumps(_type_path(type(obj)))},'
                f'"name":{json.dumps(obj.name)}}}')
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cacheable = cache and type(obj).__dataclass_params__.frozen
        if cacheable:
            entry = _fingerprint_cache.get(id(obj))
            if entry is not None and entry[0] is obj:
                return entry[1]
        names = sorted(field.name for field in dataclasses.fields(obj))
        body = ",".join(
            f"{json.dumps(name)}:{_canonical(getattr(obj, name), cache)}"
            for name in names)
        # Key order mirrors sort_keys: "__dataclass__" < "fields".
        text = (f'{{"{DATACLASS_TAG}":{json.dumps(_type_path(type(obj)))},'
                f'"fields":{{{body}}}}}')
        if cacheable:
            if len(_fingerprint_cache) >= FINGERPRINT_CACHE_MAX_ENTRIES:
                _fingerprint_cache.pop(next(iter(_fingerprint_cache)))
            _fingerprint_cache[id(obj)] = (obj, text)
        return text
    if isinstance(obj, tuple):
        body = ",".join(_canonical(item, cache) for item in obj)
        return f'{{"{TUPLE_TAG}":[{body}]}}'
    if isinstance(obj, list):
        return "[" + ",".join(_canonical(item, cache) for item in obj) + "]"
    if isinstance(obj, dict):
        for key in obj:
            if not isinstance(key, str):
                raise TypeError(
                    f"cannot serialize dict key {key!r}: only str keys supported")
        if any(tag in obj for tag in _TAGS):
            # Tag-escaped dicts keep insertion order inside a list; defer
            # to the tree lowering for this rare shape.
            return json.dumps(_lower(obj), sort_keys=True,
                              separators=(",", ":"))
        return "{" + ",".join(
            f"{json.dumps(key)}:{_canonical(obj[key], cache)}"
            for key in sorted(obj)) + "}"
    if isinstance(obj, (set, frozenset)):
        # Sets need the tree-level sort; defer to the tree lowering.
        return json.dumps(_lower(obj), sort_keys=True,
                          separators=(",", ":"))
    raise TypeError(f"cannot serialize {type(obj).__name__} value {obj!r}")


def from_jsonable(data: Any) -> Any:
    """Reconstruct the object tree lowered by :func:`to_jsonable`."""
    if isinstance(data, list):
        return [from_jsonable(item) for item in data]
    if not isinstance(data, dict):
        return data
    if DATACLASS_TAG in data:
        cls = _resolve(data[DATACLASS_TAG])
        if not dataclasses.is_dataclass(cls):
            raise TypeError(f"{data[DATACLASS_TAG]} is not a dataclass")
        kwargs = {name: from_jsonable(value)
                  for name, value in data["fields"].items()}
        return cls(**kwargs)
    if ENUM_TAG in data:
        cls = _resolve(data[ENUM_TAG])
        if not (isinstance(cls, type) and issubclass(cls, enum.Enum)):
            raise TypeError(f"{data[ENUM_TAG]} is not an enum")
        return cls[data["name"]]
    if TUPLE_TAG in data:
        return tuple(from_jsonable(item) for item in data[TUPLE_TAG])
    if SET_TAG in data:
        return {from_jsonable(item) for item in data[SET_TAG]}
    if FROZENSET_TAG in data:
        return frozenset(from_jsonable(item) for item in data[FROZENSET_TAG])
    if DICT_TAG in data:
        return {key: from_jsonable(value) for key, value in data[DICT_TAG]}
    return {key: from_jsonable(value) for key, value in data.items()}


def dumps(obj: Any) -> str:
    """Canonical JSON text for ``obj`` (sorted keys, minimal separators).

    The output is deterministic across processes and Python versions,
    which is what makes it usable both as cache-file content and as
    hash input for :func:`repro.runtime.keys.stable_key`.  Frozen
    dataclass subtrees serialize through the fingerprint cache, so
    repeated keys over the same PDK/network objects skip the recursive
    walk entirely.
    """
    return _canonical(obj, cache=_fingerprint_cache_enabled)


def loads(text: str) -> Any:
    """Inverse of :func:`dumps`."""
    return from_jsonable(json.loads(text))


def _type_path(cls: type) -> str:
    return f"{cls.__module__}:{cls.__qualname__}"


def _resolve(path: str) -> type:
    module_name, _, qualname = path.partition(":")
    if module_name != TRUSTED_PREFIX and not module_name.startswith(
            TRUSTED_PREFIX + "."):
        raise TypeError(f"refusing to resolve type outside "
                        f"{TRUSTED_PREFIX!r}: {path!r}")
    module = importlib.import_module(module_name)
    target: Any = module
    for part in qualname.split("."):
        target = getattr(target, part)
    return target
