"""The evaluation engine: memoized, parallel, instrumented sweep execution.

Every design-space sweep in this repository is a map of a *pure* function
over a grid of ``(PDK, network, knobs)`` points.  The engine exploits that
purity three ways:

* **memoization** — results are cached under a content hash of the full
  call (function name + every argument field), in memory and optionally
  on disk, so re-runs and overlapping sweeps skip evaluation entirely;
* **parallelism** — cache-missing points evaluate on a deterministic
  process pool (:func:`repro.runtime.pmap.pmap_calls`) with ordered
  results, so ``jobs=N`` is observably identical to serial;
* **instrumentation** — per-stage wall time and hit/miss counters
  accumulate into a :class:`RunReport`, printable via
  :func:`repro.experiments.reporting.format_run_report`.

Sweep entry points accept an explicit engine or fall back to the
process-wide default (:func:`default_engine`), which the CLI configures
from ``--jobs`` / ``--cache-dir`` / ``--no-cache``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.errors import EvaluationFailure, require
from repro.obs.metrics import registry as _metrics_registry
from repro.obs.trace import (
    Span,
    SpanSummary,
    current_tracer,
    is_enabled as _obs_enabled,
    span as _span,
    summarize_spans,
)
from repro.runtime.cache import MISSING, ResultCache
from repro.runtime.keys import call_key
from repro.runtime.memo import CounterStats, MemoStats, counter_stats, memo_stats
from repro.runtime.pmap import (
    DEFAULT_RETRY_POLICY,
    RetryPolicy,
    TaskOutcome,
    pmap_outcomes,
)

CallSpec = "tuple[tuple, dict]"


@dataclass(frozen=True)
class StageStats:
    """Counters for one named stage of a run.

    Attributes:
        name: Stage label (defaults to the mapped function's name).
        calls: Results requested through the engine.
        evaluated: Calls actually executed (cache misses + uncacheable).
        cache_hits: Results served from the cache.
        cache_misses: Cacheable calls that had to be evaluated.
        dedup_hits: Calls answered by an identical call in the same batch
            (the sweep planner's common-subexpression sharing).
        uncacheable: Calls whose arguments have no stable key (evaluated
            every time, never stored).
        wall_time: Wall-clock seconds spent in this stage.
        retries: Transient retries the supervised dispatcher consumed
            (deterministic under a seeded fault plan).
        pool_deaths: Worker-pool deaths attributed during this stage.
        failures: Calls recorded as :class:`~repro.errors.EvaluationFailure`
            (partial-results mode only; the raise path counts nothing).
    """

    name: str
    calls: int = 0
    evaluated: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    dedup_hits: int = 0
    uncacheable: int = 0
    wall_time: float = 0.0
    retries: int = 0
    pool_deaths: int = 0
    failures: int = 0


@dataclass(frozen=True)
class RunReport:
    """Aggregated engine statistics for a run.

    Attributes:
        stages: Per-stage counters, in first-use order.
        jobs: Worker count the engine ran with.
        memos: Fine-grained memo-table counters (layer/mapper/plan
            fingerprint tables), process-wide snapshots.
        counters: Named counter groups (e.g. branch-and-bound search
            totals), process-wide snapshots.
        spans: Root spans of the active trace at snapshot time (empty
            unless tracing was on; see :mod:`repro.obs`).
    """

    stages: tuple[StageStats, ...]
    jobs: int = 1
    memos: tuple[MemoStats, ...] = ()
    counters: tuple[CounterStats, ...] = ()
    spans: tuple[Span, ...] = ()

    @property
    def calls(self) -> int:
        """Total results requested."""
        return sum(stage.calls for stage in self.stages)

    @property
    def evaluated(self) -> int:
        """Total calls actually executed."""
        return sum(stage.evaluated for stage in self.stages)

    @property
    def cache_hits(self) -> int:
        """Total cache hits."""
        return sum(stage.cache_hits for stage in self.stages)

    @property
    def cache_misses(self) -> int:
        """Total cache misses."""
        return sum(stage.cache_misses for stage in self.stages)

    @property
    def dedup_hits(self) -> int:
        """Total within-batch duplicate calls shared."""
        return sum(stage.dedup_hits for stage in self.stages)

    @property
    def wall_time(self) -> float:
        """Total stage wall-clock seconds."""
        return sum(stage.wall_time for stage in self.stages)

    @property
    def retries(self) -> int:
        """Total transient retries across stages."""
        return sum(stage.retries for stage in self.stages)

    @property
    def pool_deaths(self) -> int:
        """Total worker-pool deaths across stages."""
        return sum(stage.pool_deaths for stage in self.stages)

    @property
    def failures(self) -> int:
        """Total calls recorded as failed across stages."""
        return sum(stage.failures for stage in self.stages)

    def stage(self, name: str) -> StageStats:
        """Look up one stage's counters by name."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(f"no stage named {name!r} in run report")

    def top_spans(self, limit: int = 10) -> tuple[SpanSummary, ...]:
        """Per-name span aggregates, by total time descending.

        Empty unless the run was traced; the CLI prints this table under
        ``--profile``.
        """
        return summarize_spans(self.spans, limit=limit)


class _MutableStage:
    """Accumulator behind one :class:`StageStats` snapshot."""

    __slots__ = ("name", "calls", "evaluated", "cache_hits",
                 "cache_misses", "dedup_hits", "uncacheable", "wall_time",
                 "retries", "pool_deaths", "failures")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.evaluated = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.dedup_hits = 0
        self.uncacheable = 0
        self.wall_time = 0.0
        self.retries = 0
        self.pool_deaths = 0
        self.failures = 0

    def snapshot(self) -> StageStats:
        return StageStats(
            name=self.name, calls=self.calls, evaluated=self.evaluated,
            cache_hits=self.cache_hits, cache_misses=self.cache_misses,
            dedup_hits=self.dedup_hits, uncacheable=self.uncacheable,
            wall_time=self.wall_time, retries=self.retries,
            pool_deaths=self.pool_deaths, failures=self.failures)


class EvaluationEngine:
    """Memoized, parallel map over pure evaluation functions."""

    def __init__(self, jobs: int = 1,
                 cache: ResultCache | None = None,
                 cache_dir: str | None = None,
                 use_cache: bool = True,
                 max_memory_entries: int = 4096,
                 retry_policy: RetryPolicy | None = None) -> None:
        require(jobs >= 0, "jobs must be >= 0 (0 = one per CPU)")
        self.jobs = jobs
        self.retry_policy = (retry_policy if retry_policy is not None
                             else DEFAULT_RETRY_POLICY)
        if not use_cache:
            self.cache: ResultCache | None = None
        elif cache is not None:
            self.cache = cache
        else:
            self.cache = ResultCache(max_memory_entries=max_memory_entries,
                                     directory=cache_dir)
        self._stages: dict[str, _MutableStage] = {}

    def map(self, fn: Callable[..., Any], calls: Iterable[Any],
            stage: str | None = None, jobs: int | None = None,
            dedup: bool = True, on_error: str = "raise") -> list:
        """Evaluate ``fn`` over ``calls``, returning results in order.

        Each element of ``calls`` is a ``dict`` (keyword arguments), a
        ``tuple`` (positional arguments), or any other value (a single
        positional argument).  Cached results are returned without
        evaluation; with ``dedup`` (the default), content-identical calls
        within the batch evaluate once and share the result; the rest run
        through the process pool or serially, then enter the cache.

        ``jobs`` overrides the engine's worker count for this map only —
        sweeps thread their ``jobs`` argument through here rather than
        mutating the (shared) engine.

        ``on_error`` selects the failure contract: ``"raise"`` (the
        default) re-raises the first failed call's exception in input
        order; ``"record"`` enables **partial-results mode** — each
        failed call yields an :class:`~repro.errors.EvaluationFailure`
        in its result slot (never cached, shared by dedup followers)
        while every other call still returns its value.
        """
        return self._map(fn, calls, stage=stage, jobs=jobs, dedup=dedup,
                         on_error=on_error)

    def map_batched(self, fn: Callable[..., Any], calls: Iterable[Any],
                    batch_fn: Callable[[list], list],
                    stage: str | None = None, dedup: bool = True,
                    key_fn: Callable[..., str] | None = None,
                    on_error: str = "raise") -> list:
        """Like :meth:`map`, but cache-missing calls evaluate through one
        ``batch_fn(pending_calls)`` invocation instead of per-call
        dispatch.

        ``batch_fn`` receives the normalized ``(args, kwargs)`` tuples of
        the calls that missed the cache (in order) and must return one
        result per call — e.g. the vectorized spec kernel
        (:class:`repro.batch.kernel.BatchKernel.evaluate_calls`).  It
        runs in-process: the batch itself is the parallelism, so there
        is no ``jobs`` fan-out.

        Cache keys, dedup behavior, stage counters and result ordering
        are identical to :meth:`map` with the same ``fn`` — a batched
        run warms exactly the cache entries a scalar run would, and
        vice versa.  ``key_fn(fn, args, kwargs)`` optionally replaces
        :func:`~repro.runtime.keys.call_key` with a faster
        *key-identical* implementation; it must raise ``TypeError``
        exactly when ``call_key`` would.

        With ``on_error="record"`` a batch-kernel exception falls back
        to supervised scalar dispatch, which isolates the failing
        point(s) instead of losing the whole chunk.
        """
        return self._map(fn, calls, stage=stage, jobs=None, dedup=dedup,
                         executor=batch_fn, key_fn=key_fn,
                         on_error=on_error)

    def _map(self, fn: Callable[..., Any], calls: Iterable[Any],
             stage: str | None, jobs: int | None, dedup: bool,
             executor: "Callable[[list], list] | None" = None,
             key_fn: "Callable[..., str] | None" = None,
             on_error: str = "raise") -> list:
        require(on_error in ("raise", "record"),
                f"on_error must be 'raise' or 'record', got {on_error!r}")
        specs = [self._normalize(item) for item in calls]
        tally = self._stage(stage if stage is not None else fn.__qualname__)
        start = time.perf_counter()
        tally.calls += len(specs)
        before = (tally.cache_hits, tally.dedup_hits, tally.evaluated,
                  tally.retries, tally.failures)
        # Opened/closed manually (not ``with``) to keep the long body at
        # its original indentation; the except below closes it on error
        # so the tracer's open-span stack cannot wedge.
        map_span = _span("engine.map", stage=tally.name, calls=len(specs))
        map_span.__enter__()
        try:
            results = self._map_body(fn, specs, tally, jobs, dedup,
                                     executor=executor, key_fn=key_fn,
                                     on_error=on_error)
        except BaseException:
            map_span.__exit__(None, None, None)
            raise

        elapsed = time.perf_counter() - start
        tally.wall_time += elapsed
        if map_span:
            map_span.set(cache_hits=tally.cache_hits - before[0],
                         dedup_hits=tally.dedup_hits - before[1],
                         evaluated=tally.evaluated - before[2])
        map_span.__exit__(None, None, None)
        if _obs_enabled():
            self._record_metrics(tally.name, len(specs), before,
                                 tally, elapsed)
        return results

    def _map_body(self, fn: Callable[..., Any],
                  specs: "list[tuple[tuple, dict]]", tally: "_MutableStage",
                  jobs: int | None, dedup: bool,
                  executor: "Callable[[list], list] | None" = None,
                  key_fn: "Callable[..., str] | None" = None,
                  on_error: str = "raise") -> list:
        """The cache/dedup/evaluate core of :meth:`map`/:meth:`map_batched`."""
        make_key = key_fn if key_fn is not None else call_key
        keys: list[str | None] = []
        for args, kwargs in specs:
            if self.cache is None and not dedup:
                keys.append(None)
                continue
            try:
                keys.append(make_key(fn, args, kwargs))
            except TypeError:
                keys.append(None)

        results: list[Any] = [MISSING] * len(specs)
        pending: list[int] = []
        first_seen: dict[str, int] = {}
        followers: dict[int, list[int]] = {}
        for index, key in enumerate(keys):
            if key is not None:
                if self.cache is not None:
                    cached = self.cache.get(key)
                    if cached is not MISSING:
                        results[index] = cached
                        tally.cache_hits += 1
                        continue
                if dedup:
                    owner = first_seen.get(key)
                    if owner is not None:
                        followers.setdefault(owner, []).append(index)
                        tally.dedup_hits += 1
                        continue
                    first_seen[key] = index
                if self.cache is not None:
                    tally.cache_misses += 1
            else:
                tally.uncacheable += 1
            pending.append(index)

        if pending:
            pending_specs = [specs[i] for i in pending]
            evaluated: "list | None" = None
            if executor is not None:
                try:
                    evaluated = executor(pending_specs)
                except Exception:
                    if on_error != "record":
                        raise
                    # The vectorized kernel died on the whole chunk;
                    # supervised scalar dispatch isolates the bad point.
                    evaluated = None
                if evaluated is not None:
                    require(len(evaluated) == len(pending),
                            "batch executor must return one result per call")
            if evaluated is not None:
                outcomes = [TaskOutcome(value=value) for value in evaluated]
            else:
                report = pmap_outcomes(
                    fn, pending_specs,
                    jobs=self.jobs if jobs is None else jobs,
                    invariants=self._invariants(pending_specs),
                    policy=self.retry_policy)
                tally.retries += report.retries
                tally.pool_deaths += report.pool_deaths
                outcomes = report.outcomes
            if on_error == "raise":
                for outcome in outcomes:
                    if outcome.error is not None:
                        raise outcome.error
            tally.evaluated += len(pending)
            for index, outcome in zip(pending, outcomes):
                if outcome.ok:
                    value = outcome.value
                    if keys[index] is not None and self.cache is not None:
                        self.cache.put(keys[index], value)
                else:
                    # Failures are never cached: a retried run must
                    # re-evaluate, not replay the failure.
                    value = EvaluationFailure.from_exception(
                        outcome.error, retries=outcome.retries,
                        pool_deaths=outcome.pool_deaths)
                    tally.failures += 1
                results[index] = value
                for follower in followers.get(index, ()):
                    results[follower] = value

        return results

    @staticmethod
    def _record_metrics(stage: str, calls: int, before: tuple,
                        tally: "_MutableStage", elapsed: float) -> None:
        registry = _metrics_registry()
        registry.counter("repro_engine_calls_total", stage=stage).inc(calls)
        registry.counter("repro_engine_cache_hits_total", stage=stage) \
            .inc(tally.cache_hits - before[0])
        registry.counter("repro_engine_dedup_hits_total", stage=stage) \
            .inc(tally.dedup_hits - before[1])
        registry.counter("repro_engine_evaluated_total", stage=stage) \
            .inc(tally.evaluated - before[2])
        registry.counter("repro_retries_total", stage=stage) \
            .inc(tally.retries - before[3])
        registry.counter("repro_task_failures_total", stage=stage) \
            .inc(tally.failures - before[4])
        registry.histogram("repro_engine_stage_seconds", stage=stage) \
            .observe(elapsed)

    def call(self, fn: Callable[..., Any], *args: Any,
             stage: str | None = None, **kwargs: Any) -> Any:
        """Evaluate a single call through the cache (never the pool)."""
        return self.map(fn, [(tuple(args), dict(kwargs))],
                        stage=stage, jobs=1)[0]

    def report(self) -> RunReport:
        """Snapshot of the per-stage counters accumulated so far.

        Includes process-wide memo-table and search-counter snapshots, so
        one report covers both tiers of memoization (call-level cache +
        layer/mapper fingerprint tables).  When a trace is active, the
        report also carries its root spans (for :meth:`RunReport.top_spans`)
        and the memo snapshots are published to the metrics registry.
        """
        tracer = current_tracer()
        if _obs_enabled():
            from repro.runtime.memo import publish_metrics
            publish_metrics()
        return RunReport(
            stages=tuple(stage.snapshot() for stage in self._stages.values()),
            jobs=self.jobs,
            memos=memo_stats(),
            counters=counter_stats(),
            spans=tuple(tracer.roots) if tracer is not None else ())

    @staticmethod
    def _invariants(specs: Sequence[tuple[tuple, dict]]) -> dict | None:
        """Keyword arguments bound to the *same object* in every spec.

        These ship to pool workers once (via the initializer) instead of
        being pickled per call — e.g. the network shared by every point
        of a sweep.  Identity (not equality) keeps detection O(calls).
        """
        if len(specs) < 2:
            return None
        head_kwargs = specs[0][1]
        shared = {
            name: value for name, value in head_kwargs.items()
            if all(name in kwargs and kwargs[name] is value
                   for _, kwargs in specs[1:])
        }
        return shared or None

    def reset_stats(self) -> None:
        """Zero the stage counters (the cache is untouched)."""
        self._stages.clear()

    def _stage(self, name: str) -> _MutableStage:
        if name not in self._stages:
            self._stages[name] = _MutableStage(name)
        return self._stages[name]

    @staticmethod
    def _normalize(item: Any) -> tuple[tuple, dict]:
        if isinstance(item, dict):
            return (), dict(item)
        if isinstance(item, tuple) and len(item) == 2 \
                and isinstance(item[0], tuple) and isinstance(item[1], dict):
            return item
        if isinstance(item, tuple):
            return item, {}
        return (item,), {}


_default_engine: EvaluationEngine | None = None


def default_engine() -> EvaluationEngine:
    """The process-wide engine sweeps use when none is passed explicitly.

    Created lazily as a serial, memory-cached engine; reconfigured by
    :func:`configure` (which the CLI calls from its flags).
    """
    global _default_engine
    if _default_engine is None:
        _default_engine = EvaluationEngine()
    return _default_engine


def configure(jobs: int = 1, cache_dir: str | None = None,
              use_cache: bool = True,
              max_memory_entries: int = 4096) -> EvaluationEngine:
    """Replace the default engine; returns the new one.

    Also retires the persistent worker pool: a reconfigured run should
    not inherit workers forked under the previous configuration.
    """
    from repro.runtime.pmap import shutdown_pool

    global _default_engine
    shutdown_pool()
    _default_engine = EvaluationEngine(
        jobs=jobs, cache_dir=cache_dir, use_cache=use_cache,
        max_memory_entries=max_memory_entries)
    return _default_engine


def reset_default_engine() -> None:
    """Drop the default engine (a fresh one is created on next use)."""
    from repro.runtime.pmap import shutdown_pool

    global _default_engine
    shutdown_pool()
    _default_engine = None
