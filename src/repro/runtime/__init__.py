"""Parallel, memoized evaluation runtime for sweeps and experiments.

Public surface:

* :class:`~repro.runtime.engine.EvaluationEngine` — memoized parallel map
  with per-stage instrumentation; :func:`~repro.runtime.engine.default_engine`
  / :func:`~repro.runtime.engine.configure` manage the process-wide default.
* :func:`~repro.runtime.pmap.pmap` — deterministic process-pool map with
  ordered results and a serial fallback.
* :class:`~repro.runtime.cache.ResultCache` — content-addressed LRU +
  optional on-disk JSON store.
* :func:`~repro.runtime.keys.stable_key` — cross-process content hash of
  PDKs, networks, and knobs.
* :func:`~repro.runtime.serialize.to_jsonable` /
  :func:`~repro.runtime.serialize.from_jsonable` — the generic dataclass
  codec behind the disk store and ``to_dict`` / ``from_dict`` helpers.
"""

from repro.runtime.cache import MISSING, CacheStats, ResultCache
from repro.runtime.engine import (
    EvaluationEngine,
    RunReport,
    StageStats,
    configure,
    default_engine,
    reset_default_engine,
)
from repro.runtime.keys import call_key, stable_key
from repro.runtime.pmap import default_jobs, pmap, pmap_calls
from repro.runtime.serialize import dumps, from_jsonable, loads, to_jsonable

__all__ = [
    "MISSING",
    "CacheStats",
    "ResultCache",
    "EvaluationEngine",
    "RunReport",
    "StageStats",
    "configure",
    "default_engine",
    "reset_default_engine",
    "call_key",
    "stable_key",
    "default_jobs",
    "pmap",
    "pmap_calls",
    "dumps",
    "from_jsonable",
    "loads",
    "to_jsonable",
]
