"""Parallel, memoized evaluation runtime for sweeps and experiments.

Public surface:

* :class:`~repro.runtime.engine.EvaluationEngine` — memoized parallel map
  with per-stage instrumentation; :func:`~repro.runtime.engine.default_engine`
  / :func:`~repro.runtime.engine.configure` manage the process-wide default.
* :func:`~repro.runtime.pmap.pmap` — deterministic process-pool map with
  ordered results and a serial fallback; the supervised dispatcher
  behind it (:func:`~repro.runtime.pmap.pmap_outcomes`) adds per-task
  timeouts, seeded-backoff retries under a :class:`~repro.runtime.pmap.
  RetryPolicy`, pool respawn on worker death, and poison-task
  quarantine.
* :class:`~repro.runtime.cache.ResultCache` — content-addressed LRU +
  optional on-disk JSON store.
* :func:`~repro.runtime.keys.stable_key` — cross-process content hash of
  PDKs, networks, and knobs.
* :func:`~repro.runtime.serialize.to_jsonable` /
  :func:`~repro.runtime.serialize.from_jsonable` — the generic dataclass
  codec behind the disk store and ``to_dict`` / ``from_dict`` helpers.
* :func:`~repro.runtime.memo.memo_table` — named, bounded fingerprint
  memo tables for the hot per-layer paths (simulator, mapper), with a
  global enable switch (:func:`~repro.runtime.memo.set_memoization`) and
  per-table hit/miss stats surfaced in ``RunReport``.
"""

from repro.runtime.cache import MISSING, CacheStats, ResultCache
from repro.runtime.engine import (
    EvaluationEngine,
    RunReport,
    StageStats,
    configure,
    default_engine,
    reset_default_engine,
)
from repro.runtime.keys import call_key, stable_key
from repro.runtime.memo import (
    CounterStats,
    IdentityKey,
    MemoStats,
    MemoTable,
    add_counts,
    counter_stats,
    memo_stats,
    memo_table,
    memoization_disabled,
    memoization_enabled,
    reset_memoization,
    set_memoization,
)
from repro.runtime.pmap import (
    DEFAULT_RETRY_POLICY,
    DispatchReport,
    RetryPolicy,
    TaskOutcome,
    default_jobs,
    pmap,
    pmap_calls,
    pmap_outcomes,
    shutdown_pool,
)
from repro.runtime.serialize import (
    clear_fingerprint_cache,
    dumps,
    fingerprint_cache_enabled,
    from_jsonable,
    loads,
    set_fingerprint_cache,
    to_jsonable,
)

__all__ = [
    "MISSING",
    "CacheStats",
    "ResultCache",
    "EvaluationEngine",
    "RunReport",
    "StageStats",
    "configure",
    "default_engine",
    "reset_default_engine",
    "call_key",
    "stable_key",
    "CounterStats",
    "IdentityKey",
    "MemoStats",
    "MemoTable",
    "add_counts",
    "counter_stats",
    "memo_stats",
    "memo_table",
    "memoization_disabled",
    "memoization_enabled",
    "reset_memoization",
    "set_memoization",
    "DEFAULT_RETRY_POLICY",
    "DispatchReport",
    "RetryPolicy",
    "TaskOutcome",
    "default_jobs",
    "pmap",
    "pmap_calls",
    "pmap_outcomes",
    "shutdown_pool",
    "clear_fingerprint_cache",
    "dumps",
    "fingerprint_cache_enabled",
    "from_jsonable",
    "loads",
    "set_fingerprint_cache",
    "to_jsonable",
]
