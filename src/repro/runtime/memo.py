"""Process-wide, named memoization tables for hot evaluation paths.

The call-level result cache (:mod:`repro.runtime.cache`) keys whole
``simulate(design, network, pdk)`` calls on a content hash; that is the
right granularity across processes and runs, but far too coarse (and the
hashing far too slow) for the *inner* loops of a sweep — re-costing the
same ResNet residual-block shape on the same design fingerprint, or
re-searching the same layer slice on the same Table II architecture.

This module provides the fine-grained tier: bounded, named
:class:`MemoTable` instances keyed on cheap hashable fingerprints
(tuples of ints/floats/frozen dataclasses), with per-table hit/miss
counters that surface in :class:`repro.runtime.engine.RunReport`.

Correctness contract: a table key must cover *every* input the memoized
computation reads, so a hit is bit-identical to recomputation — the
golden-value suite holds memoized runs to the same 1e-9 tolerance as the
seed implementation.  DESIGN.md documents each fingerprint.

All tables honour one global switch (:func:`set_memoization`), so the
pre-memoization behaviour remains available for benchmarking
(``benchmarks/perf_report.py``) and for differential tests.

:class:`IdentityKey` supports keys that include unhashable-but-immutable
objects (a PDK holds a dict): it hashes on object *identity* while
holding a strong reference, so the id cannot be recycled while any table
entry still embeds the wrapper.

Named counters (:func:`add_counts` / :func:`counter_stats`) record
non-cache search statistics — e.g. how many tilings the branch-and-bound
mapper pruned versus evaluated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterator

from repro.errors import require
from repro.runtime.cache import MISSING

#: Default per-table entry bound (FIFO eviction beyond it).
DEFAULT_MAX_ENTRIES = 8192

_enabled: bool = True


class IdentityKey:
    """Hashable identity token for an (immutable) unhashable object.

    Equality and hash follow the wrapped object's *identity*.  The wrapper
    keeps a strong reference, so as long as the key is reachable (e.g. as
    part of a memo-table entry) the wrapped object cannot be collected and
    its ``id`` cannot be reused by a different object.
    """

    __slots__ = ("obj",)

    def __init__(self, obj: Any) -> None:
        self.obj = obj

    def __hash__(self) -> int:
        return hash(id(self.obj))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IdentityKey) and self.obj is other.obj

    def __repr__(self) -> str:
        return f"IdentityKey({type(self.obj).__name__}@{id(self.obj):#x})"


@dataclass(frozen=True)
class MemoStats:
    """Snapshot of one table's counters.

    Attributes:
        name: Table name.
        hits: Lookups served from the table.
        misses: Lookups that fell through to computation.
        entries: Entries currently stored.
    """

    name: str
    hits: int = 0
    misses: int = 0
    entries: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits / lookups (0.0 when never consulted)."""
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass(frozen=True)
class CounterStats:
    """Snapshot of one named counter group (e.g. mapper search totals).

    Attributes:
        name: Counter-group name.
        values: ``(counter, value)`` pairs in first-use order.
    """

    name: str
    values: tuple[tuple[str, int], ...] = ()


class MemoTable:
    """A bounded dict with hit/miss counters and FIFO eviction.

    Disabled tables (see :func:`set_memoization`) miss every lookup and
    store nothing, so toggling memoization cannot change results — only
    how often they are recomputed.
    """

    def __init__(self, name: str,
                 max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        require(max_entries >= 1, "max_entries must be >= 1")
        self.name = name
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._entries: dict[Hashable, Any] = {}

    def get(self, key: Hashable) -> Any:
        """Stored value for ``key``, or the ``MISSING`` sentinel."""
        if not _enabled:
            return MISSING
        value = self._entries.get(key, MISSING)
        if value is MISSING:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Store ``value``, evicting oldest entries beyond the bound."""
        if not _enabled:
            return
        entries = self._entries
        if key not in entries and len(entries) >= self.max_entries:
            entries.pop(next(iter(entries)))
        entries[key] = value

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop entries and zero the counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> MemoStats:
        """Snapshot of this table's counters."""
        return MemoStats(name=self.name, hits=self.hits, misses=self.misses,
                         entries=len(self._entries))


_tables: dict[str, MemoTable] = {}
_counters: dict[str, dict[str, int]] = {}


def memo_table(name: str,
               max_entries: int = DEFAULT_MAX_ENTRIES) -> MemoTable:
    """The process-wide table registered under ``name`` (created once)."""
    table = _tables.get(name)
    if table is None:
        table = _tables[name] = MemoTable(name, max_entries=max_entries)
    return table


def memoization_enabled() -> bool:
    """Whether memo tables currently serve and store entries."""
    return _enabled


def set_memoization(enabled: bool) -> bool:
    """Globally enable/disable every table; returns the previous state."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


class memoization_disabled:
    """Context manager: run a block with every memo table bypassed."""

    def __enter__(self) -> None:
        self._previous = set_memoization(False)

    def __exit__(self, *exc_info: object) -> None:
        set_memoization(self._previous)


def add_counts(name: str, **amounts: int) -> None:
    """Accumulate named integers into the counter group ``name``."""
    group = _counters.setdefault(name, {})
    for counter, amount in amounts.items():
        group[counter] = group.get(counter, 0) + int(amount)


def memo_stats() -> tuple[MemoStats, ...]:
    """Snapshots of every registered table, sorted by name."""
    return tuple(_tables[name].stats() for name in sorted(_tables))


def counter_stats() -> tuple[CounterStats, ...]:
    """Snapshots of every counter group, sorted by name."""
    return tuple(
        CounterStats(name=name, values=tuple(_counters[name].items()))
        for name in sorted(_counters))


def publish_metrics(target: "Any | None" = None) -> None:
    """Publish memo-table and search-counter snapshots as gauges/counters.

    Called at report time (not in the lookup hot path — table lookups
    stay instrumentation-free): every table becomes three gauges
    (``repro_memo_hits``/``_misses``/``_entries`` labelled by table) and
    every counter group becomes ``repro_search_total`` counters labelled
    by group and counter name.  ``target`` defaults to the context-local
    registry.
    """
    from repro.obs.metrics import registry as metrics_registry

    registry = target if target is not None else metrics_registry()
    for stats in memo_stats():
        registry.gauge("repro_memo_hits", table=stats.name).set(stats.hits)
        registry.gauge("repro_memo_misses", table=stats.name) \
            .set(stats.misses)
        registry.gauge("repro_memo_entries", table=stats.name) \
            .set(stats.entries)
    for group in counter_stats():
        for counter, value in group.values:
            instrument = registry.gauge(
                "repro_search_total", group=group.name, counter=counter)
            instrument.set(value)


def _iter_tables() -> Iterator[MemoTable]:
    return iter(_tables.values())


def reset_memoization() -> None:
    """Clear every table's entries/counters and every counter group."""
    for table in _iter_tables():
        table.clear()
    _counters.clear()
