"""Stable content-addressed cache keys.

A key is the SHA-256 of the canonical JSON lowering of its parts
(:func:`repro.runtime.serialize.dumps`), so it is

* *stable across processes* — no dependence on ``id()``, ``hash()``
  randomization, or dict iteration order;
* *content-addressed* — two PDKs (or networks, or knob sets) that compare
  equal field-by-field produce the same key, however they were built;
* *sensitive to every field* — changing any constant inside a nested
  dataclass (an ILV pitch, a cell height, a layer shape) changes the key.
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.runtime.serialize import dumps


def stable_key(*parts: Any) -> str:
    """Hex digest keying the content of ``parts``.

    Raises:
        TypeError: when a part cannot be lowered to JSON (see
            :func:`repro.runtime.serialize.to_jsonable`); callers that
            want a soft failure catch this and skip caching.
    """
    payload = dumps(list(parts))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def call_key(fn: Any, args: tuple, kwargs: dict) -> str:
    """Key for one function call: qualified name + argument content."""
    return stable_key(f"{fn.__module__}.{fn.__qualname__}",
                      list(args), dict(kwargs))
