"""Fault-tolerant deterministic parallel map on a persistent worker pool.

:func:`pmap` evaluates ``fn`` over an item list on a process pool and
returns results *in input order* — ``pmap(fn, items, jobs=N)`` is
observably identical to ``[fn(item) for item in items]`` for any pure,
picklable ``fn``.  ``jobs=1`` (the default), short inputs, and any pool
*infrastructure* failure (sandboxed environments without semaphores,
unpicklable functions) run the plain serial map instead; exceptions
raised by ``fn`` itself always propagate unchanged.

Unlike a naive ``ProcessPoolExecutor.map``, dispatch is **supervised
per task** so one bad task cannot take down a million-point sweep:

* **bounded retries** — a task that raises
  :class:`~repro.errors.TransientError` is retried up to
  ``RetryPolicy.max_retries`` times with deterministic, seeded
  exponential backoff; any other exception is *permanent* and fails the
  task immediately (no retry budget burned on real bugs).
* **per-task timeouts** — with ``RetryPolicy.task_timeout`` set, a task
  that exceeds its deadline has its worker pool torn down and is retried
  as a transient failure; hung evaluations cannot stall a sweep forever.
* **pool respawn** — a worker death (``BrokenProcessPool``) kills only
  the pool, not the batch: a fresh pool is spawned and *only the tasks
  that were in flight* are redispatched.  When a fault-injection ledger
  is active (:mod:`repro.faults`), the death is attributed precisely to
  the task whose injected crash fired; otherwise the survivors are
  redispatched one at a time so the next death is unambiguous.
* **poison quarantine** — a task that kills the pool
  ``RetryPolicy.max_pool_deaths`` times is recorded as failed with
  :class:`~repro.errors.PoisonTaskError` instead of being retried
  forever or triggering a full serial rerun (which would crash the
  parent too).

:func:`pmap_outcomes` exposes the supervised result as per-task
:class:`TaskOutcome` records (value *or* error, plus retry/death
counts) so the engine can run in partial-results mode;
:func:`pmap_calls` keeps the classic raise-on-first-error contract.

Two throughput refinements survive from the unsupervised version:
persistent workers (the executor is reused while ``(jobs, invariants,
fault plan)`` are unchanged) and invariant shipping (keyword arguments
bound to the same object in every call transfer once, through the pool
initializer).  When observability is on in the parent
(:mod:`repro.obs`), each task ships its span tree and metric snapshot
back alongside its result, exactly as before.
"""

from __future__ import annotations

import atexit
import heapq
import multiprocessing
import os
import pickle
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from hashlib import sha256
from typing import Any, Callable, Iterable, Sequence

from repro import faults
from repro.errors import PoisonTaskError, TransientError, require
from repro.obs.metrics import MetricsRegistry, registry as _metrics_registry
from repro.obs.metrics import use_registry as _use_registry
from repro.obs.trace import (
    current_tracer as _current_tracer,
    is_enabled as _obs_enabled,
    span as _span,
    trace as _trace,
)

#: Exceptions that mean "no pool can be had here" (sandboxes without
#: semaphores, missing multiprocessing support) — the one case that
#: still falls back to a serial run.  Task bugs (``AttributeError``,
#: ``PicklingError``, ...) are deliberately *not* in this tuple any
#: more: they propagate with their original traceback instead of being
#: silently reclassified as pool failures and rerun serially.
_POOL_FAILURES = (OSError, ImportError)

#: Invariant kwargs installed in each worker by the pool initializer.
_worker_invariants: dict[str, Any] = {}

_pool: ProcessPoolExecutor | None = None
#: ``(jobs, ((name, id(value)), ...), plan)`` the live pool was built
#: for.  The invariant objects are pinned by ``_pool_invariants``, so
#: the ids are stable for the pool's lifetime; the fault plan is part of
#: the token so installing a plan retires stale workers.
_pool_token: tuple | None = None
_pool_invariants: dict[str, Any] | None = None


@dataclass(frozen=True)
class RetryPolicy:
    """How the supervised dispatcher treats failures.

    Attributes:
        max_retries: Transient-failure retries per task before the task
            is recorded as failed.
        backoff_base: First-retry backoff in seconds; doubles per retry.
        backoff_max: Backoff ceiling in seconds.
        backoff_seed: Seed for the deterministic backoff jitter — two
            runs with the same seed sleep the same schedule.
        task_timeout: Per-task wall-clock deadline in seconds; ``None``
            disables deadlines.  Expiry tears the pool down and retries
            the task as a transient failure.
        max_pool_deaths: Pool deaths attributed to one task before it is
            quarantined with :class:`~repro.errors.PoisonTaskError`.
    """

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_max: float = 2.0
    backoff_seed: int = 0
    task_timeout: float | None = None
    max_pool_deaths: int = 3

    def backoff(self, index: int, attempt: int) -> float:
        """Deterministic backoff before retry ``attempt`` of task ``index``.

        Exponential in ``attempt`` with a seeded jitter factor in
        ``[0.5, 1.0)`` so retries de-synchronize reproducibly.
        """
        if self.backoff_base <= 0.0:
            return 0.0
        raw = min(self.backoff_max,
                  self.backoff_base * (2.0 ** max(0, attempt - 1)))
        digest = sha256(
            f"{self.backoff_seed}|{index}|{attempt}".encode()).digest()
        jitter = 0.5 + (digest[0] / 512.0)
        return raw * jitter


#: Policy used when callers do not pass one explicitly.
DEFAULT_RETRY_POLICY = RetryPolicy()


@dataclass
class TaskOutcome:
    """The supervised result of one task: a value *or* an error.

    Attributes:
        value: The task's return value (``None`` when it failed).
        error: The final exception when the task failed, else ``None``.
        retries: Transient retries this task consumed (deterministic
            under a seeded fault plan).
        pool_deaths: Worker-pool deaths attributed to this task.
    """

    value: Any = None
    error: BaseException | None = None
    retries: int = 0
    pool_deaths: int = 0

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class DispatchReport:
    """One supervised batch: per-task outcomes plus batch-level counts.

    ``pool_deaths`` counts pool-death events attributed across the
    batch (equal to the number of injected crashes under a seeded fault
    plan — which is what makes chaos-test counters reproducible);
    ``timeouts`` counts deadline expiries.
    """

    outcomes: list[TaskOutcome] = field(default_factory=list)
    pool_deaths: int = 0
    timeouts: int = 0

    @property
    def retries(self) -> int:
        return sum(outcome.retries for outcome in self.outcomes)

    @property
    def failures(self) -> int:
        return sum(1 for outcome in self.outcomes if not outcome.ok)


class _Task:
    """Supervisor-side state for one in-flight call."""

    __slots__ = ("index", "payload", "retries", "pool_deaths",
                 "crash_claims", "transient_claims", "deadline")

    def __init__(self, index: int, payload: tuple) -> None:
        self.index = index
        self.payload = payload
        self.retries = 0
        self.pool_deaths = 0
        self.crash_claims = 0
        self.transient_claims = 0
        self.deadline: float | None = None


def default_jobs() -> int:
    """A sensible worker count for this machine (``os.cpu_count``)."""
    return max(1, os.cpu_count() or 1)


def _set_worker_invariants(invariants: dict[str, Any]) -> None:
    """Install the batch-invariant keyword arguments in this worker."""
    global _worker_invariants
    _worker_invariants = invariants


def _init_worker(invariants: dict[str, Any],
                 plan_json: str | None) -> None:
    """Pool initializer: invariants plus the active fault plan (if any).

    Shipping the plan through the initializer is what lets a
    programmatically installed :class:`~repro.faults.FaultPlan` reach
    forkserver workers, which do not inherit parent-process state.
    """
    _set_worker_invariants(invariants)
    faults.mark_worker()
    if plan_json is not None:
        faults.install_plan(faults.FaultPlan.from_json(plan_json))


def _apply(payload: tuple) -> tuple[Any, tuple | None]:
    """Worker body: merge invariants back into the call, then run it.

    Returns ``(result, shipped)`` where ``shipped`` is ``None`` unless
    the parent requested observability, in which case it is a picklable
    ``(spans, metric_samples, worker_label)`` triple: the task runs
    under a fresh local tracer and an isolated metrics registry, and the
    parent merges both into its own trace/registry on receipt.

    When a fault plan is active the parent ships a per-task token and
    every task-level injection site runs *before* the call — exactly
    where a real crash mid-pickle or mid-startup would land.
    """
    fn, args, kwargs, observe, token = payload
    if token is not None:
        faults.perturb_task(token)
    if _worker_invariants:
        merged = dict(_worker_invariants)
        merged.update(kwargs)
        kwargs = merged
    if not observe:
        return fn(*args, **kwargs), None
    task_registry = MetricsRegistry()
    with _trace() as tracer, _use_registry(task_registry):
        with tracer.span("pmap.task",
                         fn=getattr(fn, "__qualname__", str(fn))):
            result = fn(*args, **kwargs)
    shipped = (tracer.roots, task_registry.snapshot(),
               f"worker-{os.getpid()}")
    return result, shipped


def _invariants_token(jobs: int, invariants: dict[str, Any] | None,
                      plan_json: str | None) -> tuple:
    names = () if not invariants else tuple(sorted(
        (name, id(value)) for name, value in invariants.items()))
    return (jobs, names, plan_json)


def _pool_context():
    """A fork-safe multiprocessing context for worker start-up.

    Plain ``fork`` is unsafe here: once a first pool exists, this process
    carries executor management threads, and forking the *next* pool's
    workers from a multithreaded parent can deadlock the children on
    locks captured mid-operation.  ``forkserver`` forks workers from a
    clean single-threaded helper process instead (``spawn`` where it is
    unavailable).
    """
    try:
        return multiprocessing.get_context("forkserver")
    except ValueError:
        return multiprocessing.get_context("spawn")


def _acquire_pool(jobs: int, invariants: dict[str, Any] | None,
                  plan_json: str | None = None) -> ProcessPoolExecutor:
    """The persistent executor for ``(jobs, invariants, plan)``,
    creating or replacing it as needed."""
    global _pool, _pool_token, _pool_invariants
    token = _invariants_token(jobs, invariants, plan_json)
    if _pool is not None and token == _pool_token:
        return _pool
    shutdown_pool()
    pool = ProcessPoolExecutor(
        max_workers=jobs,
        mp_context=_pool_context(),
        initializer=_init_worker,
        initargs=(dict(invariants) if invariants else {}, plan_json))
    _pool = pool
    _pool_token = token
    _pool_invariants = dict(invariants) if invariants else None
    return pool


def _noop() -> None:
    return None


def _warm_pool(pool: ProcessPoolExecutor, jobs: int) -> None:
    """Block until the pool is actually executing work.

    Task deadlines must measure *run* time, not cold-start: a fresh
    forkserver pool takes a sizeable fraction of a second to spawn its
    workers, and charging that to whichever tasks were submitted first
    produces spurious timeouts — and, because each timeout tears the
    pool down, a livelock in which every retry meets another cold pool.
    Warming is once per pool object and never touches the fault ledger.
    """
    if getattr(pool, "_repro_warmed", False):
        return
    wait([pool.submit(_noop) for _ in range(jobs)], timeout=60.0)
    pool._repro_warmed = True


def _terminate_pool_processes(pool: ProcessPoolExecutor) -> None:
    """Best-effort SIGTERM to a pool's workers (hung-task teardown)."""
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:
            pass


def shutdown_pool(wait: bool = True) -> None:
    """Retire the persistent worker pool (a new one spawns on demand).

    ``wait=True`` joins the executor's worker processes and management
    threads before returning.  That matters on fork-based platforms: the
    *next* pool's workers fork from this process, and forking while a
    dying executor's threads still hold internal locks can deadlock the
    children.  The ``atexit`` hook passes ``wait=False`` — nothing forks
    after interpreter shutdown begins.

    A ``KeyboardInterrupt`` arriving mid-shutdown (Ctrl-C twice in a
    row) no longer leaks forkserver zombies: the workers are terminated
    outright, the executor is released without waiting, and the
    interrupt is re-raised for the caller's clean-exit path.
    """
    global _pool, _pool_token, _pool_invariants
    pool, _pool = _pool, None
    _pool_token = None
    _pool_invariants = None
    if pool is None:
        return
    try:
        pool.shutdown(wait=wait, cancel_futures=True)
    except KeyboardInterrupt:
        _terminate_pool_processes(pool)
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        raise
    except Exception:
        pass


atexit.register(shutdown_pool, wait=False)


def _merge_shipped(shipped: tuple | None, tracer, merge_into) -> None:
    if shipped is None:
        return
    worker_spans, samples, worker = shipped
    if tracer is not None:
        tracer.attach(worker_spans, worker=worker)
    if merge_into is not None:
        merge_into.merge(samples)


def _run_serial(payloads: Sequence[tuple],
                invariants: dict[str, Any] | None,
                policy: RetryPolicy) -> DispatchReport:
    # Serial tasks run in the caller's process, so their spans flow
    # straight into the active tracer — no shipping, observe is ignored.
    # Transient failures still honor the retry policy (with real
    # sleeps); crash/hang fault sites never fire outside workers.
    report = DispatchReport()
    for index, (fn, args, kwargs, _observe, token) in enumerate(payloads):
        if invariants:
            merged = dict(invariants)
            merged.update(kwargs)
            kwargs = merged
        outcome = TaskOutcome()
        while True:
            try:
                if token is not None:
                    faults.perturb_task(token)
                outcome.value = fn(*args, **kwargs)
                outcome.error = None
            except TransientError as error:
                if outcome.retries >= policy.max_retries:
                    outcome.error = error
                    break
                outcome.retries += 1
                delay = policy.backoff(index, outcome.retries)
                if delay > 0.0:
                    time.sleep(delay)
                continue
            except Exception as error:
                outcome.error = error
            break
        report.outcomes.append(outcome)
    return report


def pmap(fn: Callable[..., Any], items: Iterable[Any],
         jobs: int = 1) -> list:
    """Map ``fn`` over ``items`` with ``jobs`` workers, preserving order.

    ``jobs=1`` runs serially with zero pool overhead; ``jobs<=0`` selects
    :func:`default_jobs`.  Results are returned in input order regardless
    of worker scheduling, so parallel and serial runs are interchangeable.
    """
    return pmap_calls(fn, [((item,), {}) for item in items], jobs=jobs)


def pmap_calls(fn: Callable[..., Any],
               calls: Sequence[tuple[tuple, dict]],
               jobs: int = 1,
               invariants: dict[str, Any] | None = None,
               policy: RetryPolicy | None = None) -> list:
    """Like :func:`pmap` for heterogeneous ``(args, kwargs)`` call specs.

    ``invariants`` maps keyword names to objects shared by *every* call;
    they are shipped to the workers once and merged back into each call
    worker-side.  Per-call keyword arguments take precedence on merge,
    so passing an argument both ways stays correct (just unoptimized).

    The first failed task's exception (in input order) is re-raised with
    its original traceback; callers that want partial results use
    :func:`pmap_outcomes` instead.
    """
    report = pmap_outcomes(fn, calls, jobs=jobs, invariants=invariants,
                           policy=policy)
    for outcome in report.outcomes:
        if outcome.error is not None:
            raise outcome.error
    return [outcome.value for outcome in report.outcomes]


def pmap_outcomes(fn: Callable[..., Any],
                  calls: Sequence[tuple[tuple, dict]],
                  jobs: int = 1,
                  invariants: dict[str, Any] | None = None,
                  policy: RetryPolicy | None = None) -> DispatchReport:
    """Supervised map that never raises for task failures.

    Every call produces a :class:`TaskOutcome` in input order — a value
    for tasks that (eventually) succeeded, the final classified
    exception for tasks that did not.  Batch-level pool-death and
    timeout counts ride on the returned :class:`DispatchReport`.
    """
    if jobs <= 0:
        jobs = default_jobs()
    require(jobs >= 1, "jobs must be >= 1")
    if policy is None:
        policy = DEFAULT_RETRY_POLICY
    plan = faults.active_plan()
    tokens: list[str | None] = [None] * len(calls)
    if plan is not None:
        from repro.runtime.keys import call_key
        tokens = []
        for args, kwargs in calls:
            try:
                tokens.append(call_key(fn, args, kwargs))
            except (TypeError, AttributeError):
                tokens.append(None)
    if invariants:
        calls = [
            (args,
             {name: value for name, value in kwargs.items()
              if name not in invariants or kwargs[name] is not invariants[name]})
            for args, kwargs in calls
        ]
    tracer = _current_tracer()
    observe = _obs_enabled() and tracer is not None
    payloads = [(fn, args, kwargs, observe, tokens[i])
                for i, (args, kwargs) in enumerate(calls)]
    if jobs == 1 or len(payloads) <= 1:
        return _run_serial(payloads, invariants, policy)
    try:
        pickle.dumps(fn)
    except Exception:
        # Unpicklable callables (lambdas, closures) can never cross the
        # process boundary — run serially rather than failing every task.
        return _run_serial(payloads, invariants, policy)
    with _span("pmap.batch", calls=len(payloads), jobs=jobs):
        return _supervise(fn, payloads, jobs, invariants, policy, plan,
                          tracer, observe)


def _supervise(fn: Callable[..., Any], payloads: Sequence[tuple],
               jobs: int, invariants: dict[str, Any] | None,
               policy: RetryPolicy, plan, tracer,
               observe: bool) -> DispatchReport:
    """The supervised dispatch loop (see module docstring)."""
    report = DispatchReport()
    report.outcomes = [TaskOutcome() for _ in payloads]
    merge_into = _metrics_registry() if observe else None
    plan_json = plan.to_json() if plan is not None else None

    tasks = [_Task(index, payload)
             for index, payload in enumerate(payloads)]
    pending: deque[_Task] = deque(tasks)
    waiting: list[tuple[float, int, _Task]] = []  # (ready_at, seq, task)
    solo: deque[_Task] = deque()
    inflight: dict[Any, _Task] = {}
    seq = 0
    # With deadlines enabled, in-flight == workers so "submitted" means
    # "started" and the deadline measures actual run time; without them
    # a 2x overfill keeps workers from starving between wait() wakeups.
    max_inflight = jobs if policy.task_timeout else jobs * 2

    def fail(task: _Task, error: BaseException) -> None:
        outcome = report.outcomes[task.index]
        outcome.error = error
        outcome.value = None
        outcome.retries = task.retries
        outcome.pool_deaths = task.pool_deaths

    def succeed(task: _Task, value: Any) -> None:
        outcome = report.outcomes[task.index]
        outcome.value = value
        outcome.error = None
        outcome.retries = task.retries
        outcome.pool_deaths = task.pool_deaths

    def requeue_transient(task: _Task, error: BaseException) -> None:
        nonlocal seq
        if plan is not None and task.payload[4] is not None:
            # Keep the ledger mirror current so a later pool death does
            # not re-charge this (already delivered) injected transient.
            task.transient_claims = plan.claim_count(
                "task.transient", task.payload[4])
        if task.retries >= policy.max_retries:
            fail(task, error)
            return
        task.retries += 1
        delay = policy.backoff(task.index, task.retries)
        seq += 1
        heapq.heappush(waiting,
                       (time.monotonic() + delay, seq, task))

    def submit(task: _Task, queue: deque) -> bool:
        pool = _acquire_pool(jobs, invariants, plan_json)
        try:
            if policy.task_timeout is not None:
                _warm_pool(pool, jobs)
            future = pool.submit(_apply, task.payload)
        except BrokenProcessPool:
            # The pool died between completions; requeue uncharged and
            # let the in-flight futures (if any) surface the death.
            queue.appendleft(task)
            if not inflight:
                shutdown_pool(wait=False)
            return False
        if policy.task_timeout is not None:
            task.deadline = time.monotonic() + policy.task_timeout
        inflight[future] = task
        return True

    def drain_serially() -> None:
        # No pool available at all (sandbox) — finish everything in
        # this process with the serial retry loop.
        leftovers = sorted(
            list(pending) + [task for _, _, task in waiting] + list(solo)
            + list(inflight.values()), key=lambda task: task.index)
        pending.clear()
        waiting.clear()
        solo.clear()
        inflight.clear()
        serial = _run_serial([task.payload for task in leftovers],
                             invariants, policy)
        for task, outcome in zip(leftovers, serial.outcomes):
            outcome.retries += task.retries
            outcome.pool_deaths += task.pool_deaths
            report.outcomes[task.index] = outcome

    def charge_lost_transients(task: _Task) -> None:
        # A pool-mate's crash can destroy a future whose TransientError
        # was already raised (and ledger-charged) but not yet delivered.
        # Without this, that attempt would vanish: the victim requeues
        # uncharged and its spent injection budget stays quiet, so the
        # retry count would depend on delivery timing.  Charging the
        # ledger delta keeps retries a pure function of the seed.
        token = task.payload[4]
        if token is None:
            return
        claims = plan.claim_count("task.transient", token)
        while task.transient_claims < claims:
            task.transient_claims += 1
            if task.retries >= policy.max_retries:
                fail(task, TransientError(
                    f"task {task.index} ({_fn_label(fn)}) exhausted its "
                    f"retry budget (last attempt lost with its pool)"))
                return
            task.retries += 1

    def handle_pool_death(victims: list[_Task]) -> None:
        """Attribute a pool death, quarantine poison, requeue the rest."""
        shutdown_pool(wait=False)
        blamed: list[_Task] = []
        if plan is not None:
            for task in victims:
                token = task.payload[4]
                if token is None:
                    continue
                claims = plan.claim_count("task.crash", token)
                if claims > task.crash_claims:
                    task.crash_claims = claims
                    blamed.append(task)
        if blamed:
            # Ledger-precise blame: only the tasks whose injected crash
            # actually fired count a death; innocent victims requeue
            # freely and keep their counters clean — this is what makes
            # chaos-test death counts a pure function of the seed.
            report.pool_deaths += len(blamed)
            for task in victims:
                if task not in blamed:
                    charge_lost_transients(task)
                    if report.outcomes[task.index].error is None:
                        pending.appendleft(task)
            for task in blamed:
                task.pool_deaths += 1
                if task.pool_deaths >= policy.max_pool_deaths:
                    fail(task, _poison_error(fn, task, policy))
                else:
                    pending.appendleft(task)
            return
        # No ledger: the culprit is unknown, so every victim is charged
        # one death and the survivors rerun one at a time — the next
        # death then identifies the poison task unambiguously.
        report.pool_deaths += 1
        for task in victims:
            task.pool_deaths += 1
            if task.pool_deaths >= policy.max_pool_deaths:
                fail(task, _poison_error(fn, task, policy))
            else:
                solo.append(task)

    try:
        while pending or waiting or solo or inflight:
            now = time.monotonic()
            while waiting and waiting[0][0] <= now:
                _, _, task = heapq.heappop(waiting)
                pending.append(task)
            try:
                if solo:
                    # Solo tasks run strictly alone: let in-flight work
                    # drain, then dispatch one at a time so the next
                    # pool death is unambiguously theirs; normal work
                    # resumes only once the solo queue is empty.
                    if not inflight:
                        submit(solo.popleft(), solo)
                else:
                    while pending and len(inflight) < max_inflight:
                        if not submit(pending.popleft(), pending):
                            break
            except _POOL_FAILURES:
                shutdown_pool(wait=False)
                drain_serially()
                continue
            if not inflight:
                if waiting:
                    time.sleep(max(0.0, waiting[0][0] - time.monotonic()))
                continue
            timeout = None
            if waiting:
                timeout = max(0.0, waiting[0][0] - now)
            deadlines = [task.deadline for task in inflight.values()
                         if task.deadline is not None]
            if deadlines:
                expiry = max(0.001, min(deadlines) - now)
                timeout = expiry if timeout is None else min(timeout, expiry)
            done, _ = wait(list(inflight), timeout=timeout,
                           return_when=FIRST_COMPLETED)
            broken = False
            victims: list[_Task] = []
            for future in done:
                task = inflight.pop(future)
                try:
                    value, shipped = future.result()
                except BrokenProcessPool:
                    broken = True
                    victims.append(task)
                except TransientError as error:
                    requeue_transient(task, error)
                except Exception as error:
                    fail(task, error)
                else:
                    succeed(task, value)
                    _merge_shipped(shipped, tracer, merge_into)
            if broken:
                # Everything still in flight died with the pool; a few
                # futures may have real results racing in — keep those.
                for future, task in list(inflight.items()):
                    if future.done():
                        try:
                            value, shipped = future.result()
                        except BrokenProcessPool:
                            victims.append(task)
                        except TransientError as error:
                            requeue_transient(task, error)
                        except Exception as error:
                            fail(task, error)
                        else:
                            succeed(task, value)
                            _merge_shipped(shipped, tracer, merge_into)
                    else:
                        victims.append(task)
                inflight.clear()
                handle_pool_death(victims)
                # A *poison task* racks up deaths alone; when two
                # distinct tasks are each charged twice, the pool
                # environment itself is broken (workers cannot start)
                # — fall back to a serial run like the classic path.
                charged = sum(1 for task in tasks if task.pool_deaths >= 2)
                if charged >= 2:
                    drain_serially()
                continue
            if policy.task_timeout is None:
                continue
            now = time.monotonic()
            expired = [task for task in inflight.values()
                       if task.deadline is not None and task.deadline <= now]
            if not expired:
                continue
            # A hung worker holds its queue slot until killed — tear
            # the whole pool down and retry the expired task(s) as
            # transient failures; non-expired in-flight tasks requeue
            # without being charged.
            report.timeouts += len(expired)
            pool = _pool
            if pool is not None:
                _terminate_pool_processes(pool)
            shutdown_pool(wait=False)
            for task in inflight.values():
                if task in expired:
                    requeue_transient(task, TransientError(
                        f"task timed out after {policy.task_timeout:.1f}s "
                        f"({_fn_label(fn)})"))
                else:
                    pending.appendleft(task)
            inflight.clear()
    except KeyboardInterrupt:
        # Ctrl-C mid-batch: kill the workers outright so no forkserver
        # zombies outlive the interrupt, then let the caller exit clean.
        pool = _pool
        if pool is not None:
            _terminate_pool_processes(pool)
        shutdown_pool(wait=False)
        raise
    return report


def _fn_label(fn: Callable[..., Any]) -> str:
    return getattr(fn, "__qualname__", str(fn))


def _poison_error(fn: Callable[..., Any], task: _Task,
                  policy: RetryPolicy) -> PoisonTaskError:
    return PoisonTaskError(
        f"task {task.index} ({_fn_label(fn)}) killed the worker pool "
        f"{task.pool_deaths} time(s) and was quarantined "
        f"(max_pool_deaths={policy.max_pool_deaths})")
