"""Deterministic parallel map on a persistent worker pool.

:func:`pmap` evaluates ``fn`` over an item list on a process pool and
returns results *in input order* — ``pmap(fn, items, jobs=N)`` is
observably identical to ``[fn(item) for item in items]`` for any pure,
picklable ``fn``.  ``jobs=1`` (the default), short inputs, and any pool
*infrastructure* failure (sandboxed environments without semaphores,
unpicklable functions, broken workers) run the plain serial map instead;
exceptions raised by ``fn`` itself always propagate unchanged.

Two throughput refinements over a naive ``ProcessPoolExecutor.map``:

* **persistent workers** — the executor is kept alive between calls and
  reused while ``(jobs, invariants)`` are unchanged, so a sweep that
  issues many small batches pays worker start-up once;
* **invariant shipping** — keyword arguments bound to the *same object*
  in every call of a batch (typically the PDK and the network) transfer
  to the workers once, through the pool initializer, instead of being
  pickled into every task; tasks themselves are submitted in chunks so
  per-task IPC overhead amortizes.

Changing the invariants (or ``jobs``) retires the old pool and starts a
fresh one — the worker-side globals can never go stale.
:func:`shutdown_pool` retires it explicitly (the engine's ``configure``
does this, and an ``atexit`` hook covers interpreter shutdown).

When observability is on in the parent (:mod:`repro.obs`), each task
ships its locally recorded span tree and metric snapshot back alongside
its result; the parent attaches them to the active tracer labelled by
worker identity, so a parallel sweep still yields one merged trace.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from pickle import PicklingError
from typing import Any, Callable, Iterable, Sequence

from repro.errors import require
from repro.obs.metrics import MetricsRegistry, registry as _metrics_registry
from repro.obs.metrics import use_registry as _use_registry
from repro.obs.trace import (
    current_tracer as _current_tracer,
    is_enabled as _obs_enabled,
    span as _span,
    trace as _trace,
)

#: Exceptions that mean "the pool is unusable", not "the task failed".
_POOL_FAILURES = (BrokenProcessPool, PicklingError, AttributeError,
                  ImportError, OSError, PermissionError)

#: Target task chunks per worker; larger batches amortize IPC further.
_CHUNKS_PER_WORKER = 4

#: Invariant kwargs installed in each worker by the pool initializer.
_worker_invariants: dict[str, Any] = {}

_pool: ProcessPoolExecutor | None = None
#: ``(jobs, ((name, id(value)), ...))`` the live pool was built for.  The
#: invariant objects are pinned by ``_pool_invariants``, so the ids are
#: stable for the pool's lifetime.
_pool_token: tuple | None = None
_pool_invariants: dict[str, Any] | None = None


def default_jobs() -> int:
    """A sensible worker count for this machine (``os.cpu_count``)."""
    return max(1, os.cpu_count() or 1)


def _set_worker_invariants(invariants: dict[str, Any]) -> None:
    """Pool initializer: install the batch-invariant keyword arguments."""
    global _worker_invariants
    _worker_invariants = invariants


def _apply(payload: tuple) -> tuple[Any, tuple | None]:
    """Worker body: merge invariants back into the call, then run it.

    Returns ``(result, shipped)`` where ``shipped`` is ``None`` unless
    the parent requested observability, in which case it is a picklable
    ``(spans, metric_samples, worker_label)`` triple: the task runs
    under a fresh local tracer and an isolated metrics registry, and the
    parent merges both into its own trace/registry on receipt.
    """
    fn, args, kwargs, observe = payload
    if _worker_invariants:
        merged = dict(_worker_invariants)
        merged.update(kwargs)
        kwargs = merged
    if not observe:
        return fn(*args, **kwargs), None
    task_registry = MetricsRegistry()
    with _trace() as tracer, _use_registry(task_registry):
        with tracer.span("pmap.task",
                         fn=getattr(fn, "__qualname__", str(fn))):
            result = fn(*args, **kwargs)
    shipped = (tracer.roots, task_registry.snapshot(),
               f"worker-{os.getpid()}")
    return result, shipped


def _invariants_token(jobs: int,
                      invariants: dict[str, Any] | None) -> tuple:
    if not invariants:
        return (jobs, ())
    return (jobs, tuple(sorted(
        (name, id(value)) for name, value in invariants.items())))


def _pool_context():
    """A fork-safe multiprocessing context for worker start-up.

    Plain ``fork`` is unsafe here: once a first pool exists, this process
    carries executor management threads, and forking the *next* pool's
    workers from a multithreaded parent can deadlock the children on
    locks captured mid-operation.  ``forkserver`` forks workers from a
    clean single-threaded helper process instead (``spawn`` where it is
    unavailable).
    """
    try:
        return multiprocessing.get_context("forkserver")
    except ValueError:
        return multiprocessing.get_context("spawn")


def _acquire_pool(jobs: int,
                  invariants: dict[str, Any] | None) -> ProcessPoolExecutor:
    """The persistent executor for ``(jobs, invariants)``, creating or
    replacing it as needed."""
    global _pool, _pool_token, _pool_invariants
    token = _invariants_token(jobs, invariants)
    if _pool is not None and token == _pool_token:
        return _pool
    shutdown_pool()
    pool = ProcessPoolExecutor(
        max_workers=jobs,
        mp_context=_pool_context(),
        initializer=_set_worker_invariants,
        initargs=(dict(invariants) if invariants else {},))
    _pool = pool
    _pool_token = token
    _pool_invariants = dict(invariants) if invariants else None
    return pool


def shutdown_pool(wait: bool = True) -> None:
    """Retire the persistent worker pool (a new one spawns on demand).

    ``wait=True`` joins the executor's worker processes and management
    threads before returning.  That matters on fork-based platforms: the
    *next* pool's workers fork from this process, and forking while a
    dying executor's threads still hold internal locks can deadlock the
    children.  The ``atexit`` hook passes ``wait=False`` — nothing forks
    after interpreter shutdown begins.
    """
    global _pool, _pool_token, _pool_invariants
    pool, _pool = _pool, None
    _pool_token = None
    _pool_invariants = None
    if pool is not None:
        try:
            pool.shutdown(wait=wait, cancel_futures=True)
        except Exception:
            pass


atexit.register(shutdown_pool, wait=False)


def _run_serial(payloads: Sequence[tuple],
                invariants: dict[str, Any] | None) -> list:
    # Serial tasks run in the caller's process, so their spans flow
    # straight into the active tracer — no shipping, observe is ignored.
    results = []
    for fn, args, kwargs, _observe in payloads:
        if invariants:
            merged = dict(invariants)
            merged.update(kwargs)
            kwargs = merged
        results.append(fn(*args, **kwargs))
    return results


def pmap(fn: Callable[..., Any], items: Iterable[Any],
         jobs: int = 1) -> list:
    """Map ``fn`` over ``items`` with ``jobs`` workers, preserving order.

    ``jobs=1`` runs serially with zero pool overhead; ``jobs<=0`` selects
    :func:`default_jobs`.  Results are returned in input order regardless
    of worker scheduling, so parallel and serial runs are interchangeable.
    """
    return pmap_calls(fn, [((item,), {}) for item in items], jobs=jobs)


def pmap_calls(fn: Callable[..., Any],
               calls: Sequence[tuple[tuple, dict]],
               jobs: int = 1,
               invariants: dict[str, Any] | None = None) -> list:
    """Like :func:`pmap` for heterogeneous ``(args, kwargs)`` call specs.

    ``invariants`` maps keyword names to objects shared by *every* call;
    they are shipped to the workers once and merged back into each call
    worker-side.  Per-call keyword arguments take precedence on merge,
    so passing an argument both ways stays correct (just unoptimized).
    """
    if jobs <= 0:
        jobs = default_jobs()
    require(jobs >= 1, "jobs must be >= 1")
    if invariants:
        calls = [
            (args,
             {name: value for name, value in kwargs.items()
              if name not in invariants or kwargs[name] is not invariants[name]})
            for args, kwargs in calls
        ]
    tracer = _current_tracer()
    observe = _obs_enabled() and tracer is not None
    payloads = [(fn, args, kwargs, observe) for args, kwargs in calls]
    if jobs == 1 or len(payloads) <= 1:
        return _run_serial(payloads, invariants)
    chunksize = max(1, -(-len(payloads) // (jobs * _CHUNKS_PER_WORKER)))
    with _span("pmap.batch", calls=len(payloads), jobs=jobs,
               chunksize=chunksize):
        try:
            pool = _acquire_pool(jobs, invariants)
            outputs = list(pool.map(_apply, payloads, chunksize=chunksize))
        except _POOL_FAILURES:
            shutdown_pool()
            return _run_serial(payloads, invariants)
        results = []
        merge_into = _metrics_registry() if observe else None
        for result, shipped in outputs:
            results.append(result)
            if shipped is None:
                continue
            worker_spans, samples, worker = shipped
            if tracer is not None:
                tracer.attach(worker_spans, worker=worker)
            if merge_into is not None:
                merge_into.merge(samples)
        return results
