"""Deterministic parallel map with a graceful serial fallback.

:func:`pmap` evaluates ``fn`` over an item list on a process pool and
returns results *in input order* — ``pmap(fn, items, jobs=N)`` is
observably identical to ``[fn(item) for item in items]`` for any pure,
picklable ``fn``.  ``jobs=1`` (the default), short inputs, and any pool
*infrastructure* failure (sandboxed environments without semaphores,
unpicklable functions, broken workers) run the plain serial map instead;
exceptions raised by ``fn`` itself always propagate unchanged.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from pickle import PicklingError
from typing import Any, Callable, Iterable, Sequence

from repro.errors import require

#: Exceptions that mean "the pool is unusable", not "the task failed".
_POOL_FAILURES = (BrokenProcessPool, PicklingError, AttributeError,
                  ImportError, OSError, PermissionError)


def default_jobs() -> int:
    """A sensible worker count for this machine (``os.cpu_count``)."""
    return max(1, os.cpu_count() or 1)


def pmap(fn: Callable[..., Any], items: Iterable[Any],
         jobs: int = 1) -> list:
    """Map ``fn`` over ``items`` with ``jobs`` workers, preserving order.

    ``jobs=1`` runs serially with zero pool overhead; ``jobs<=0`` selects
    :func:`default_jobs`.  Results are returned in input order regardless
    of worker scheduling, so parallel and serial runs are interchangeable.
    """
    work = list(items)
    if jobs <= 0:
        jobs = default_jobs()
    require(jobs >= 1, "jobs must be >= 1")
    if jobs == 1 or len(work) <= 1:
        return [fn(item) for item in work]
    try:
        with ProcessPoolExecutor(max_workers=min(jobs, len(work))) as pool:
            return list(pool.map(fn, work))
    except _POOL_FAILURES:
        return [fn(item) for item in work]


def _apply(payload: tuple) -> Any:
    """Worker body for :func:`pmap_calls`: unpack and call."""
    fn, args, kwargs = payload
    return fn(*args, **kwargs)


def pmap_calls(fn: Callable[..., Any],
               calls: Sequence[tuple[tuple, dict]],
               jobs: int = 1) -> list:
    """Like :func:`pmap` for heterogeneous ``(args, kwargs)`` call specs."""
    payloads = [(fn, args, kwargs) for args, kwargs in calls]
    return pmap(_apply, payloads, jobs=jobs)
