"""The six accelerator architectures of the paper's Table II.

Each row pins a spatial unrolling (K, C, OX, OY — output channels, input
channels, output width, output height), per-PE / per-PE-group register sizes,
local and global SRAM buffers, and the on-chip RRAM capacity.  All six are
normalized to the same total PE count (1024) and the same 256 MB RRAM, per
the Fig. 7 caption.  Arch 1-5 are variants of popular accelerators [14-18];
Arch 6 is the Sec. II case-study design.

These specs feed two independent evaluators for Fig. 7: the analytical
framework (:mod:`repro.core`) and the ZigZag-style mapper
(:mod:`repro.mapper`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import require
from repro.arch.memory import (
    MemoryHierarchySpec,
    MemoryKind,
    MemoryLevelSpec,
    Operand,
)
from repro.units import BYTE, KILOBYTE, MEGABYTE


@dataclass(frozen=True)
class SpatialUnrolling:
    """Spatial (parallel) loop dimensions of a PE array.

    A dimension of 1 means the loop is not spatially unrolled.

    Attributes:
        k: Output channels unrolled across PEs.
        c: Input channels unrolled across PEs.
        ox: Output width unrolled across PEs.
        oy: Output height unrolled across PEs.
    """

    k: int = 1
    c: int = 1
    ox: int = 1
    oy: int = 1

    def __post_init__(self) -> None:
        for dim in (self.k, self.c, self.ox, self.oy):
            require(dim >= 1, "spatial dimensions must be >= 1")

    @property
    def pe_count(self) -> int:
        """Total PEs implied by the unrolling."""
        return self.k * self.c * self.ox * self.oy


@dataclass(frozen=True)
class ArchitectureSpec:
    """One Table II row.

    Attributes:
        index: Architecture number (1-6).
        name: Short descriptive name.
        spatial: Spatial unrolling of the PE array.
        hierarchy: Register / local / global SRAM hierarchy.
        rram_capacity_bits: On-chip RRAM capacity.
    """

    index: int
    name: str
    spatial: SpatialUnrolling
    hierarchy: MemoryHierarchySpec
    rram_capacity_bits: int = 256 * MEGABYTE

    def __post_init__(self) -> None:
        require(1 <= self.index <= 6, "Table II has architectures 1-6")
        require(self.spatial.pe_count == 1024,
                "Table II architectures are normalized to 1024 PEs")


def _hierarchy(
    reg_w_bits: float,
    reg_o_bits: float,
    reg_i_bits: float,
    pe_count: int,
    local_levels: tuple[tuple[str, Operand, int], ...],
    global_bits: int,
    rram_bits: int,
) -> MemoryHierarchySpec:
    levels: list[MemoryLevelSpec] = []
    if reg_w_bits:
        levels.append(MemoryLevelSpec(
            name="reg_W", kind=MemoryKind.REGISTER, operands=(Operand.WEIGHT,),
            capacity_bits=int(reg_w_bits), width_bits=max(8, int(reg_w_bits)),
            instances=pe_count))
    if reg_i_bits:
        levels.append(MemoryLevelSpec(
            name="reg_I", kind=MemoryKind.REGISTER, operands=(Operand.INPUT,),
            capacity_bits=int(reg_i_bits), width_bits=max(8, int(reg_i_bits)),
            instances=pe_count))
    if reg_o_bits:
        levels.append(MemoryLevelSpec(
            name="reg_O", kind=MemoryKind.REGISTER, operands=(Operand.OUTPUT,),
            capacity_bits=int(reg_o_bits), width_bits=max(8, int(reg_o_bits)),
            instances=pe_count))
    for name, operand, bits in local_levels:
        levels.append(MemoryLevelSpec(
            name=name, kind=MemoryKind.SRAM, operands=(operand,),
            capacity_bits=bits, width_bits=256))
    levels.append(MemoryLevelSpec(
        name="global_sram", kind=MemoryKind.SRAM,
        operands=(Operand.INPUT, Operand.OUTPUT),
        capacity_bits=global_bits, width_bits=256))
    levels.append(MemoryLevelSpec(
        name="rram", kind=MemoryKind.RRAM, operands=(Operand.WEIGHT,),
        capacity_bits=rram_bits, width_bits=256))
    return MemoryHierarchySpec(levels=tuple(levels))


def table_ii_architectures() -> tuple[ArchitectureSpec, ...]:
    """Build all six Table II architecture specs."""
    rram = 256 * MEGABYTE
    arch1 = ArchitectureSpec(
        index=1, name="arch1_kc_oxy",
        spatial=SpatialUnrolling(k=16, c=16, ox=2, oy=2),
        hierarchy=_hierarchy(
            reg_w_bits=1 * BYTE, reg_o_bits=2 * BYTE, reg_i_bits=0, pe_count=1024,
            local_levels=(
                ("local_W", Operand.WEIGHT, 64 * KILOBYTE),
                ("local_I", Operand.INPUT, 64 * KILOBYTE),
                ("local_O", Operand.OUTPUT, 256 * KILOBYTE),
            ),
            global_bits=2 * MEGABYTE, rram_bits=rram),
        rram_capacity_bits=rram)
    arch2 = ArchitectureSpec(
        index=2, name="arch2_small_kc",
        spatial=SpatialUnrolling(k=8, c=8, ox=4, oy=4),
        hierarchy=_hierarchy(
            reg_w_bits=1 * BYTE, reg_o_bits=2 * BYTE, reg_i_bits=0, pe_count=1024,
            local_levels=(("local_W", Operand.WEIGHT, 32 * KILOBYTE),),
            global_bits=2 * MEGABYTE, rram_bits=rram),
        rram_capacity_bits=rram)
    arch3 = ArchitectureSpec(
        index=3, name="arch3_big_regs",
        spatial=SpatialUnrolling(k=32, c=32),
        hierarchy=_hierarchy(
            reg_w_bits=128 * BYTE, reg_o_bits=1 * KILOBYTE, reg_i_bits=0,
            pe_count=1024,
            local_levels=(),
            global_bits=2 * MEGABYTE, rram_bits=rram),
        rram_capacity_bits=rram)
    arch4 = ArchitectureSpec(
        index=4, name="arch4_k_heavy",
        spatial=SpatialUnrolling(k=32, c=2, ox=4, oy=4),
        hierarchy=_hierarchy(
            reg_w_bits=1 * BYTE, reg_o_bits=2 * BYTE, reg_i_bits=0, pe_count=1024,
            local_levels=(
                ("local_W", Operand.WEIGHT, 64 * KILOBYTE),
                ("local_I", Operand.INPUT, 32 * KILOBYTE),
            ),
            global_bits=2 * MEGABYTE, rram_bits=rram),
        rram_capacity_bits=rram)
    arch5 = ArchitectureSpec(
        index=5, name="arch5_spatial_oxy",
        spatial=SpatialUnrolling(k=32, ox=8, oy=4),
        hierarchy=_hierarchy(
            reg_w_bits=1 * BYTE, reg_o_bits=4 * BYTE, reg_i_bits=0, pe_count=1024,
            local_levels=(
                ("local_W", Operand.WEIGHT, 1 * KILOBYTE),
                ("local_I", Operand.INPUT, 1 * KILOBYTE),
            ),
            global_bits=2 * MEGABYTE, rram_bits=rram),
        rram_capacity_bits=rram)
    arch6 = ArchitectureSpec(
        index=6, name="arch6_case_study",
        spatial=SpatialUnrolling(k=32, c=32),
        hierarchy=_hierarchy(
            reg_w_bits=int(2.2 * BYTE), reg_o_bits=1 * BYTE,
            reg_i_bits=0, pe_count=1024,
            local_levels=(
                ("local_I", Operand.INPUT, 32 * KILOBYTE),
                ("local_O", Operand.OUTPUT, 32 * KILOBYTE),
            ),
            global_bits=int(0.5 * MEGABYTE), rram_bits=rram),
        rram_capacity_bits=rram)
    return (arch1, arch2, arch3, arch4, arch5, arch6)
