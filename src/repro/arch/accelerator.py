"""Whole-chip accelerator designs: the 2D baseline and the M3D design.

This module owns the paper's central geometric argument (Figs. 1, 2, 6):

* In the **2D baseline**, the RRAM access transistors occupy the Si tier
  under the cell arrays, so the single computing sub-system (CS) must sit
  *next to* the arrays.
* In the **M3D design**, the access transistors move to the BEOL CNFET tier;
  the Si area under the arrays — minus blockages for the memory peripherals,
  which stay in silicon — becomes available, and at iso-footprint it hosts

      N = 1 + floor((A_cells - A_perif) / A_CS)

  parallel CSs (the paper's Eq. 2, refined by the peripheral blockage the
  paper describes in Sec. II).  With the case-study numbers this yields
  N = 8, reproducing Fig. 2c-d.

The RRAM capacity is re-partitioned into N banks so each CS gets a private
weight channel (8x total bandwidth at 64 MB).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.errors import require
from repro.tech import constants
from repro.tech.pdk import PDK
from repro.tech.rram import RRAMArray, RRAMBankPlan
from repro.arch.pe import PEConfig
from repro.arch.systolic import SystolicArrayConfig, default_systolic_array
from repro.units import MEGABYTE, MHZ

#: Gate-equivalents of the memory peripherals (sense amplifiers, write
#: drivers, bank controllers, channel interfaces).  Dominated by the
#: controllers and channel logic, so first-order independent of capacity.
PERIPHERAL_GATES = 1.69e6

#: Silicon set aside for the system bus, host interface, I/O ring, clock and
#: power distribution (and floorplan whitespace) in both designs, m^2.
SYSTEM_BUS_IO_AREA = 93.0e-6

#: Default per-bank RRAM read-channel width, bits per cycle (B_2D).
DEFAULT_BANK_WIDTH_BITS = 256

#: Default shared output-writeback bus width, bits per cycle.
DEFAULT_WRITEBACK_BUS_BITS = 128

#: Lanes of the post-processing vector unit in each CS (pooling, activation).
DEFAULT_POOL_LANES = 16

#: Physical-design target frequency for both designs (Sec. II relaxes the
#: 40 nm-optimized architecture to 20 MHz at the 130 nm node).
DEFAULT_FREQUENCY_HZ = 20 * MHZ


@dataclass(frozen=True)
class ComputingSubsystem:
    """One computing sub-system: systolic array + SRAM buffers + control.

    Attributes:
        array: The weight-stationary systolic array.
        input_buffer_bits: Input-activation SRAM buffer capacity, bits.
        output_buffer_bits: Output-activation SRAM buffer capacity, bits.
        control_gates: Control/sequencing logic in gate-equivalents.
    """

    array: SystolicArrayConfig
    input_buffer_bits: int
    output_buffer_bits: int
    control_gates: int

    def __post_init__(self) -> None:
        require(self.input_buffer_bits >= 0, "input buffer must be non-negative")
        require(self.output_buffer_bits >= 0, "output buffer must be non-negative")
        require(self.control_gates >= 0, "control gates must be non-negative")

    @property
    def buffer_bits(self) -> int:
        """Total SRAM buffer capacity, bits."""
        return self.input_buffer_bits + self.output_buffer_bits

    @property
    def logic_gates(self) -> float:
        """Gate-equivalents of array + control logic."""
        return self.array.pe_count * self.array.pe.gate_count + self.control_gates

    def silicon_area(self, pdk: PDK) -> float:
        """CS footprint in the Si tier, m^2 (the paper's A_C)."""
        logic = pdk.silicon_library.area_for_gates(self.logic_gates)
        buffers = pdk.sram_macro_area(self.buffer_bits)
        return logic + buffers

    def leakage(self, pdk: PDK) -> float:
        """Static power of one CS in watts."""
        logic = pdk.silicon_library.leakage_for_gates(self.logic_gates)
        buffers = self.buffer_bits * constants.SRAM_LEAKAGE_PER_BIT
        return logic + buffers


def case_study_cs() -> ComputingSubsystem:
    """The Sec. II case-study CS: 16x16 array, 1.4 MB of I/O buffers."""
    return ComputingSubsystem(
        array=default_systolic_array(),
        input_buffer_bits=int(0.7 * MEGABYTE),
        output_buffer_bits=int(0.7 * MEGABYTE),
        control_gates=140_000,
    )


def precision_scaled_cs(precision_bits: int) -> ComputingSubsystem:
    """The case-study CS with its registers rebuilt around a precision.

    Same 16x16 array geometry, I/O buffers and control logic as
    :func:`case_study_cs`, but the PE weight/input registers carry
    ``precision_bits`` and the accumulator widens to ``max(16, 3 * bits)``
    (the ext-precision study's configuration).
    """
    require(precision_bits >= 1, "precision must be at least one bit")
    pe = PEConfig(precision_bits=precision_bits,
                  weight_reg_bits=precision_bits,
                  input_reg_bits=precision_bits,
                  output_reg_bits=max(16, 3 * precision_bits))
    return ComputingSubsystem(
        array=SystolicArrayConfig(rows=16, cols=16, pe=pe),
        input_buffer_bits=int(0.7 * MEGABYTE),
        output_buffer_bits=int(0.7 * MEGABYTE),
        control_gates=140_000,
    )


def peripheral_area(pdk: PDK) -> float:
    """Footprint of the memory peripherals in the Si tier, m^2."""
    return pdk.silicon_library.area_for_gates(PERIPHERAL_GATES)


@dataclass(frozen=True)
class AreaBreakdown:
    """Si-tier area accounting for one design (the paper's Fig. 6 symbols).

    Attributes:
        cells: RRAM cell-array footprint A_M^cells, m^2.
        peripherals: Memory peripheral footprint A_M^perif, m^2.
        compute: Total CS footprint N * A_C, m^2.
        cs_unit: Single-CS footprint A_C, m^2.
        bus_io: System bus / IO / whitespace, m^2.
        footprint: Chip footprint, m^2.
        cells_overlap_compute: True for M3D, where the cell arrays sit above
            the Si tier instead of consuming it.
    """

    cells: float
    peripherals: float
    compute: float
    cs_unit: float
    bus_io: float
    footprint: float
    cells_overlap_compute: bool

    @property
    def gamma_cells(self) -> float:
        """The paper's gamma_cells = A_M^cells / A_C."""
        return self.cells / self.cs_unit

    @property
    def gamma_perif(self) -> float:
        """The paper's gamma_perif = A_M^perif / A_C."""
        return self.peripherals / self.cs_unit

    @property
    def si_tier_used(self) -> float:
        """Area consumed in the Si tier, m^2."""
        used = self.peripherals + self.compute + self.bus_io
        if not self.cells_overlap_compute:
            used += self.cells
        return used


def reoptimized_2d_cs_count(
    grown_footprint: float,
    original_footprint: float,
    cs_area: float,
) -> int:
    """Eq. 9: CSs a commensurately enlarged 2D baseline can host.

    When a Case 1/2 knob grows the M3D footprint past the 2D baseline's,
    fairness demands the baseline get the same extra silicon; it fills it
    with additional CSs sharing its single weight channel.
    """
    require(cs_area > 0, "CS area must be positive")
    extra = grown_footprint - original_footprint
    if extra <= 0:
        return 1
    return 1 + math.floor(extra / cs_area)


def derive_parallel_cs_count(
    cells_area: float,
    peripherals_area: float,
    cs_area: float,
    extra_si_area: float = 0.0,
) -> int:
    """Parallel CS count of an iso-footprint M3D design (Eq. 2, refined).

    Moving the access FETs to the CNFET tier frees the Si under the cell
    arrays; the memory peripherals remain as blockages.  ``extra_si_area``
    adds Si gained when the footprint itself grows (Cases 1-2).
    """
    require(cells_area >= 0, "cells area must be non-negative")
    require(peripherals_area >= 0, "peripherals area must be non-negative")
    require(cs_area > 0, "CS area must be positive")
    freed = cells_area - peripherals_area + extra_si_area
    return 1 + max(0, math.floor(freed / cs_area))


@dataclass(frozen=True)
class AcceleratorDesign:
    """A complete accelerator chip design point.

    Attributes:
        name: Design name.
        cs: The computing sub-system replicated ``n_cs`` times.
        n_cs: Parallel CS count (1 for the 2D baseline).
        bank_plan: RRAM capacity partitioning into weight channels.
        writeback_bus_bits: Shared output-writeback bus width, bits/cycle.
        pool_lanes: Post-processing vector lanes per CS.
        frequency_hz: Operating frequency.
        area: Si-tier area breakdown.
        is_m3d: True when access FETs are in the BEOL CNFET tier.
        precision_bits: Operand precision.
    """

    name: str
    cs: ComputingSubsystem
    n_cs: int
    bank_plan: RRAMBankPlan
    writeback_bus_bits: int
    pool_lanes: int
    frequency_hz: float
    area: AreaBreakdown
    is_m3d: bool
    precision_bits: int = 8

    def __post_init__(self) -> None:
        require(self.n_cs >= 1, "need at least one CS")
        require(self.writeback_bus_bits >= self.precision_bits,
                "writeback bus must carry at least one value per cycle")
        require(self.pool_lanes >= 1, "pool lanes must be >= 1")
        require(self.frequency_hz > 0, "frequency must be positive")

    @property
    def rram_capacity_bits(self) -> int:
        """On-chip RRAM capacity, bits."""
        return self.bank_plan.array.capacity_bits

    @property
    def peak_macs_per_cycle(self) -> int:
        """Chip-level P_peak across all CSs."""
        return self.n_cs * self.cs.array.peak_macs_per_cycle

    @property
    def bank_width_bits(self) -> int:
        """Per-bank weight-channel width, bits/cycle."""
        return self.bank_plan.bank_width_bits

    @property
    def total_weight_bandwidth(self) -> int:
        """Aggregate weight-read bandwidth, bits/cycle (B_2D or B_3D)."""
        return self.bank_plan.total_bandwidth_bits_per_cycle

    @property
    def cycle_time(self) -> float:
        """Clock period in seconds."""
        return 1.0 / self.frequency_hz

    def with_n_cs(self, n_cs: int) -> "AcceleratorDesign":
        """Return a copy with a different CS count (banks follow CS count for
        M3D designs; the 2D baseline keeps its single channel)."""
        require(n_cs >= 1, "need at least one CS")
        banks = n_cs if self.is_m3d else self.bank_plan.banks
        compute = n_cs * self.area.cs_unit
        return replace(
            self,
            n_cs=n_cs,
            bank_plan=self.bank_plan.rebanked(banks),
            area=replace(self.area, compute=compute),
        )


def _build_area(
    pdk: PDK,
    cs: ComputingSubsystem,
    capacity_bits: int,
    n_cs: int,
    is_m3d: bool,
    access_width_factor: float,
    footprint: float | None,
) -> AreaBreakdown:
    cs_area = cs.silicon_area(pdk)
    if is_m3d:
        cell = pdk.m3d_rram_cell(access_width_factor)
        cells_area = RRAMArray(cell=cell, capacity_bits=capacity_bits,
                               ilv=pdk.ilv).area
    else:
        cells_area = RRAMArray(cell=pdk.rram_cell, capacity_bits=capacity_bits,
                               ilv=None).area
    perif = peripheral_area(pdk)
    if footprint is None:
        if is_m3d:
            si_needs = n_cs * cs_area + perif + SYSTEM_BUS_IO_AREA
            footprint = max(si_needs, cells_area)
        else:
            footprint = cells_area + perif + n_cs * cs_area + SYSTEM_BUS_IO_AREA
    return AreaBreakdown(
        cells=cells_area,
        peripherals=perif,
        compute=n_cs * cs_area,
        cs_unit=cs_area,
        bus_io=SYSTEM_BUS_IO_AREA,
        footprint=footprint,
        cells_overlap_compute=is_m3d,
    )


def baseline_2d_design(
    pdk: PDK,
    capacity_bits: int = 64 * MEGABYTE,
    cs: ComputingSubsystem | None = None,
    n_cs: int = 1,
    frequency_hz: float = DEFAULT_FREQUENCY_HZ,
    footprint: float | None = None,
) -> AcceleratorDesign:
    """The Sec. II baseline: Si CMOS + on-chip RRAM, one CS, one channel.

    ``n_cs`` and ``footprint`` support the Case 1/2 re-optimized (enlarged)
    2D baselines; the default reproduces Fig. 2a-b.
    """
    cs = cs if cs is not None else case_study_cs()
    # The 2D bit-cell's access FET sits directly below the RRAM; it needs
    # only local contacts, not inter-layer vias, so its footprint is
    # independent of the ILV pitch (Case 2 sweeps leave the baseline alone).
    array = RRAMArray(cell=pdk.rram_cell, capacity_bits=capacity_bits, ilv=None)
    plan = RRAMBankPlan(array=array, banks=1, bank_width_bits=DEFAULT_BANK_WIDTH_BITS)
    area = _build_area(pdk, cs, capacity_bits, n_cs, is_m3d=False,
                       access_width_factor=1.0, footprint=footprint)
    return AcceleratorDesign(
        name=f"2d_baseline_{n_cs}cs",
        cs=cs,
        n_cs=n_cs,
        bank_plan=plan,
        writeback_bus_bits=DEFAULT_WRITEBACK_BUS_BITS,
        pool_lanes=DEFAULT_POOL_LANES,
        frequency_hz=frequency_hz,
        area=area,
        is_m3d=False,
    )


def m3d_design(
    pdk: PDK,
    capacity_bits: int = 64 * MEGABYTE,
    cs: ComputingSubsystem | None = None,
    access_width_factor: float = 1.0,
    frequency_hz: float = DEFAULT_FREQUENCY_HZ,
    n_cs: int | None = None,
    footprint: float | None = None,
) -> AcceleratorDesign:
    """The iso-footprint, iso-capacity M3D design (Fig. 2c-d).

    The CS count defaults to Eq. 2 refined by the peripheral blockage, plus
    any Si gained when a relaxed access FET (``access_width_factor`` > 1,
    Case 1) or a coarse ILV pitch (via the PDK, Case 2) grows the footprint
    beyond the 2D baseline's.
    """
    cs = cs if cs is not None else case_study_cs()
    cs_area = cs.silicon_area(pdk)
    baseline = baseline_2d_design(pdk, capacity_bits, cs, frequency_hz=frequency_hz)
    m3d_cell = pdk.m3d_rram_cell(access_width_factor)
    m3d_cells_area = RRAMArray(cell=m3d_cell, capacity_bits=capacity_bits,
                               ilv=pdk.ilv).area
    grown_footprint = max(baseline.area.footprint, m3d_cells_area)
    extra_si = grown_footprint - baseline.area.footprint
    if n_cs is None:
        # The freed area is computed from the *2D* cell geometry: that is
        # the silicon the access FETs vacate (a relaxed M3D cell is larger,
        # but only in the BEOL tiers).
        n_cs = derive_parallel_cs_count(
            cells_area=baseline.area.cells,
            peripherals_area=baseline.area.peripherals,
            cs_area=cs_area,
            extra_si_area=extra_si,
        )
    array = RRAMArray(cell=m3d_cell, capacity_bits=capacity_bits, ilv=pdk.ilv)
    plan = RRAMBankPlan(array=array, banks=n_cs,
                        bank_width_bits=DEFAULT_BANK_WIDTH_BITS)
    area = _build_area(pdk, cs, capacity_bits, n_cs, is_m3d=True,
                       access_width_factor=access_width_factor,
                       footprint=footprint if footprint is not None else grown_footprint)
    return AcceleratorDesign(
        name=f"m3d_{n_cs}cs",
        cs=cs,
        n_cs=n_cs,
        bank_plan=plan,
        writeback_bus_bits=DEFAULT_WRITEBACK_BUS_BITS,
        pool_lanes=DEFAULT_POOL_LANES,
        frequency_hz=frequency_hz,
        area=area,
        is_m3d=True,
    )
