"""Accelerator architecture substrate.

Defines the processing element, the weight-stationary systolic array, the
SRAM/RRAM memory hierarchy, and whole-chip accelerator designs — including
the Sec. II case-study accelerator (a refined Chimera-class design [9, 10])
and the six Table II architectures used in Fig. 7.
"""

from repro.arch.pe import PEConfig, default_pe
from repro.arch.systolic import SystolicArrayConfig, default_systolic_array
from repro.arch.memory import MemoryLevelSpec, MemoryHierarchySpec, sram_buffer_area
from repro.arch.accelerator import (
    AcceleratorDesign,
    AreaBreakdown,
    ComputingSubsystem,
    baseline_2d_design,
    case_study_cs,
    derive_parallel_cs_count,
    m3d_design,
)
from repro.arch.table2 import ArchitectureSpec, table_ii_architectures

__all__ = [
    "PEConfig",
    "default_pe",
    "SystolicArrayConfig",
    "default_systolic_array",
    "MemoryLevelSpec",
    "MemoryHierarchySpec",
    "sram_buffer_area",
    "ComputingSubsystem",
    "AreaBreakdown",
    "AcceleratorDesign",
    "case_study_cs",
    "baseline_2d_design",
    "m3d_design",
    "derive_parallel_cs_count",
    "ArchitectureSpec",
    "table_ii_architectures",
]
