"""Memory hierarchy specifications.

Two consumers:

* the area model (:mod:`repro.arch.accelerator`) needs buffer capacities to
  size the computing sub-system, and
* the ZigZag-style mapper (:mod:`repro.mapper`) needs per-level capacities,
  access energies, and bandwidths to cost temporal mappings for the Table II
  architectures.

Levels follow the Table II columns: per-PE registers, local (per-PE-group)
SRAM, global SRAM, and on-chip RRAM.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import require
from repro.tech import constants
from repro.tech.pdk import PDK


class Operand(enum.Enum):
    """DNN operand kinds a buffer level may hold."""

    WEIGHT = "W"
    INPUT = "I"
    OUTPUT = "O"


class MemoryKind(enum.Enum):
    """Physical memory type of a level."""

    REGISTER = "register"
    SRAM = "sram"
    RRAM = "rram"


@dataclass(frozen=True)
class MemoryLevelSpec:
    """One level of the on-chip memory hierarchy.

    Attributes:
        name: Level name, e.g. ``"local_W"``.
        kind: Physical memory type.
        operands: Operand kinds stored at this level.
        capacity_bits: Capacity in bits (total across the CS).
        width_bits: Access width, bits per cycle.
        instances: Number of physical instances (e.g. one per PE).
    """

    name: str
    kind: MemoryKind
    operands: tuple[Operand, ...]
    capacity_bits: int
    width_bits: int = 128
    instances: int = 1

    def __post_init__(self) -> None:
        require(len(self.operands) > 0, "a level must hold at least one operand")
        require(self.capacity_bits >= 1, "capacity must be >= 1 bit")
        require(self.width_bits >= 1, "width must be >= 1 bit")
        require(self.instances >= 1, "instances must be >= 1")

    @property
    def total_capacity_bits(self) -> int:
        """Capacity across all instances, bits."""
        return self.capacity_bits * self.instances

    @property
    def energy_per_bit(self) -> float:
        """Access energy, J/bit, by memory kind."""
        if self.kind == MemoryKind.REGISTER:
            return constants.REGISTER_ENERGY_PER_BIT
        if self.kind == MemoryKind.SRAM:
            return constants.SRAM_ENERGY_PER_BIT
        return constants.RRAM_READ_ENERGY_PER_BIT

    def area(self, pdk: PDK) -> float:
        """Silicon footprint of this level in m^2 (registers and SRAM only;
        RRAM lives in the BEOL tier and is accounted separately)."""
        if self.kind == MemoryKind.REGISTER:
            return self.total_capacity_bits * constants.REGISTER_AREA_PER_BIT
        if self.kind == MemoryKind.SRAM:
            return pdk.sram_macro_area(self.total_capacity_bits)
        return 0.0


@dataclass(frozen=True)
class MemoryHierarchySpec:
    """An ordered on-chip memory hierarchy, innermost (registers) first.

    Attributes:
        levels: Levels inner to outer; the outermost weight level is
            normally the on-chip RRAM.
    """

    levels: tuple[MemoryLevelSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        require(len(self.levels) > 0, "hierarchy needs at least one level")
        names = [level.name for level in self.levels]
        require(len(names) == len(set(names)), "level names must be unique")

    def levels_for(self, operand: Operand) -> tuple[MemoryLevelSpec, ...]:
        """Levels holding ``operand``, inner to outer."""
        return tuple(level for level in self.levels if operand in level.operands)

    def level(self, name: str) -> MemoryLevelSpec:
        """Look up a level by name."""
        for candidate in self.levels:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no memory level named {name!r}")

    def on_chip_sram_bits(self) -> int:
        """Total SRAM bits (buffer area driver)."""
        return sum(level.total_capacity_bits for level in self.levels
                   if level.kind == MemoryKind.SRAM)

    def register_bits(self) -> int:
        """Total register-file bits."""
        return sum(level.total_capacity_bits for level in self.levels
                   if level.kind == MemoryKind.REGISTER)

    def silicon_area(self, pdk: PDK) -> float:
        """Total silicon footprint of register + SRAM levels, m^2."""
        return sum(level.area(pdk) for level in self.levels)


def sram_buffer_area(pdk: PDK, capacity_bits: int) -> float:
    """Convenience: footprint of one SRAM buffer macro, m^2."""
    require(capacity_bits >= 0, "capacity must be non-negative")
    return pdk.sram_macro_area(capacity_bits)
