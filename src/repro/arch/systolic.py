"""Weight-stationary systolic array configuration and tiling rules.

The case-study computing sub-system is a 16x16 systolic array of PEs using a
weight-stationary dataflow ([10]): a 16 (input-channel rows) x 16 (output-
channel columns) slab of weights is loaded, inputs stream through for the
whole output feature map, partial sums accumulate down the columns, then the
next (r, s) kernel position / channel tile is loaded.

The tiling arithmetic here is what the performance model consumes:

* ``k_tiles`` — output-channel tiles; also the layer's partitioning limit
  across parallel CSs (the paper's N#).
* ``slab_count`` — total weight slabs streamed, including the first-layer
  optimization of packing C x R weight rows onto the array rows when the
  input-channel count is shallow (C < rows), which is what keeps the
  7x7 / 3-channel stem layer from wasting 13/16 of the array.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import require
from repro.arch.pe import PEConfig, default_pe
from repro.workloads.layers import Layer, LayerKind


@dataclass(frozen=True)
class SystolicArrayConfig:
    """A rows x cols weight-stationary systolic array.

    Attributes:
        rows: Input-channel dimension of the array.
        cols: Output-channel dimension of the array.
        pe: Processing element configuration.
        enable_row_packing: Apply the first-layer C x R row-packing mapping
            for shallow-channel convolutions (disable for ablation).
    """

    rows: int = 16
    cols: int = 16
    pe: PEConfig = default_pe()
    enable_row_packing: bool = True

    def __post_init__(self) -> None:
        require(self.rows >= 1, "rows must be >= 1")
        require(self.cols >= 1, "cols must be >= 1")

    @property
    def pe_count(self) -> int:
        """Total PEs in the array."""
        return self.rows * self.cols

    @property
    def peak_macs_per_cycle(self) -> int:
        """P_peak of one array: MACs per cycle at full utilization."""
        return self.pe_count

    @property
    def fill_drain_cycles(self) -> int:
        """Pipeline fill + drain overhead per weight slab."""
        return self.rows + self.cols

    def k_tiles(self, layer: Layer) -> int:
        """Output-channel tiles — the layer's partition limit N#.

        Grouped convolutions tile per group: a tile cannot mix output
        channels whose input channels differ.
        """
        groups = layer.channel_groups
        per_group = max(1, math.ceil(layer.out_channels / groups / self.cols))
        return groups * per_group

    def _group_in_channels(self, layer: Layer) -> int:
        return layer.in_channels // layer.channel_groups

    def uses_row_packing(self, layer: Layer) -> bool:
        """True when the shallow-channel C x R row-packing mapping applies
        (the stem layer, and every depthwise group)."""
        if not self.enable_row_packing:
            return False
        if layer.kind != LayerKind.CONV:
            return False
        return self._group_in_channels(layer) < self.rows and layer.kernel > 1

    def row_tiles(self, layer: Layer) -> int:
        """Input-side tiles per output-channel tile (within one group)."""
        group_c = self._group_in_channels(layer)
        if self.uses_row_packing(layer):
            return max(1, math.ceil(group_c * layer.kernel / self.rows))
        return max(1, math.ceil(group_c / self.rows))

    def kernel_passes(self, layer: Layer) -> int:
        """Weight-slab passes per (K-tile, row-tile) pair.

        Normally R * S kernel positions; with row packing the R dimension is
        spatial on the array, leaving S passes.
        """
        if layer.kind != LayerKind.CONV:
            return 1
        if self.uses_row_packing(layer):
            return layer.kernel
        return layer.kernel * layer.kernel

    def slab_count(self, layer: Layer) -> int:
        """Total weight slabs streamed for the layer on one array."""
        return self.k_tiles(layer) * self.row_tiles(layer) * self.kernel_passes(layer)

    def stream_cycles_per_slab(self, layer: Layer) -> int:
        """Input-streaming cycles per slab (one per output pixel) + fill."""
        if layer.kind == LayerKind.FC:
            positions = 1
        else:
            positions = layer.out_size * layer.out_size
        return positions + self.fill_drain_cycles

    def weight_bits_per_slab(self) -> int:
        """Weight bits loaded per slab."""
        return self.pe_count * self.pe.precision_bits


def default_systolic_array() -> SystolicArrayConfig:
    """The case-study 16x16 weight-stationary array."""
    return SystolicArrayConfig()
