"""Processing element (PE) model.

Each PE of the weight-stationary systolic array holds a stationary weight,
multiplies it with the input streaming through, and accumulates into the
partial sum moving down its column.  The gate count sets the PE's silicon
area; the per-MAC energy comes from the technology constants.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import require
from repro.tech import constants
from repro.tech.pdk import PDK


@dataclass(frozen=True)
class PEConfig:
    """One processing element.

    Attributes:
        precision_bits: Operand precision (weights and activations).
        weight_reg_bits: Stationary weight storage per PE, bits.
        input_reg_bits: Input pipeline register, bits.
        output_reg_bits: Partial-sum register, bits.
        gate_count: Logic gate-equivalents (MAC + control), excluding the
            registers counted above.
    """

    precision_bits: int = 8
    weight_reg_bits: int = 8
    input_reg_bits: int = 8
    output_reg_bits: int = 24
    gate_count: int = constants.PE_GATE_COUNT

    def __post_init__(self) -> None:
        require(self.precision_bits >= 1, "precision must be >= 1 bit")
        require(self.weight_reg_bits >= self.precision_bits,
                "weight register must hold one weight")
        require(self.input_reg_bits >= 0, "input register bits must be non-negative")
        require(self.output_reg_bits >= self.precision_bits,
                "output register must hold at least one operand")
        require(self.gate_count >= 1, "gate count must be >= 1")

    @property
    def register_bits(self) -> int:
        """Total register storage per PE, bits."""
        return self.weight_reg_bits + self.input_reg_bits + self.output_reg_bits

    def area(self, pdk: PDK) -> float:
        """PE silicon footprint in m^2 (logic gates, registers folded in)."""
        return pdk.silicon_library.area_for_gates(self.gate_count)

    @property
    def mac_energy(self) -> float:
        """Energy per multiply-accumulate, joules."""
        return constants.MAC8_ENERGY_130NM * (self.precision_bits / 8.0) ** 2

    def leakage(self, pdk: PDK) -> float:
        """Static power of one PE in watts."""
        return pdk.silicon_library.leakage_for_gates(self.gate_count)


def default_pe() -> PEConfig:
    """The case-study PE: 8-bit weight-stationary MAC."""
    return PEConfig()
