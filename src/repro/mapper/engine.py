"""Mapping search engine: best tiling per layer, chip-level accounting.

For each conv/FC layer the engine:

1. partitions the layer's output channels across the chip's parallel CSs
   (min(N, ceil(K / K_spatial)) used, as in the performance simulator);
2. enumerates loop-order templates and power-of-two tile sizes for the
   slice owned by the busiest CS, keeping only tilings whose operand tiles
   fit the local buffers;
3. picks the candidate with the lowest slice EDP;
4. adds the chip-level serial output writeback and leakage.

Pooling layers bypass the mapper (no MAC loop nest) and use the same
vector-unit model as the performance simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import MappingError, require
from repro.obs.trace import span as _span
from repro.tech import constants
from repro.tech.pdk import PDK, foundry_m3d_pdk
from repro.arch.accelerator import (
    DEFAULT_BANK_WIDTH_BITS,
    DEFAULT_FREQUENCY_HZ,
    DEFAULT_WRITEBACK_BUS_BITS,
)
from repro.arch.memory import MemoryKind
from repro.arch.table2 import ArchitectureSpec
from repro.mapper.cost import CostModel, LoopOrder, MappingCost, Tiling
from repro.mapper.loopnest import LoopNest, loop_nest_of
from repro.runtime.cache import MISSING
from repro.runtime.memo import add_counts, memo_table
from repro.workloads.layers import Layer, LayerKind, shape_key
from repro.workloads.models import Network

#: Slice-search memo: (arch fingerprint, nest, prune flag) -> MappingCost.
_SLICE_MEMO = memo_table("mapper.slice")

#: Layer-level memo: (chip fingerprint, layer shape) -> mapping numbers.
_LAYER_MEMO = memo_table("mapper.layer")


def arch_static_power(arch: ArchitectureSpec, pdk: PDK, n_cs: int = 1) -> float:
    """Static power of ``n_cs`` CSs of this architecture, watts."""
    require(n_cs >= 1, "need at least one CS")
    pe_gates = arch.spatial.pe_count * constants.PE_GATE_COUNT
    logic = pdk.silicon_library.leakage_for_gates(pe_gates)
    sram_bits = arch.hierarchy.on_chip_sram_bits()
    sram = sram_bits * constants.SRAM_LEAKAGE_PER_BIT
    regs = arch.hierarchy.register_bits() * constants.SRAM_LEAKAGE_PER_BIT
    return n_cs * (logic + sram + regs)


@dataclass(frozen=True)
class LayerMapping:
    """Best mapping found for one layer at chip level.

    Attributes:
        layer: The mapped layer.
        used_cs: CSs used for this layer.
        slice_cost: Cost of the busiest CS's slice (None for pooling).
        cycles: Total chip-level latency in cycles.
        dynamic_energy: Chip-level dynamic energy in joules.
        leakage_energy: Static energy over the layer runtime in joules.
    """

    layer: Layer
    used_cs: int
    slice_cost: MappingCost | None
    cycles: float
    dynamic_energy: float
    leakage_energy: float

    @property
    def energy(self) -> float:
        """Total layer energy in joules."""
        return self.dynamic_energy + self.leakage_energy


@dataclass(frozen=True)
class MappingReport:
    """Chip-level mapping result for a full network.

    Attributes:
        arch: The architecture mapped onto.
        network: The workload.
        n_cs: Parallel CS count of the chip.
        cycle_time: Clock period, seconds.
        layers: Per-layer mappings.
    """

    arch: ArchitectureSpec
    network: Network
    n_cs: int
    cycle_time: float
    layers: tuple[LayerMapping, ...] = field(default_factory=tuple)

    @property
    def cycles(self) -> float:
        """Total cycles for one inference."""
        return sum(item.cycles for item in self.layers)

    @property
    def runtime(self) -> float:
        """Total runtime in seconds."""
        return self.cycles * self.cycle_time

    @property
    def energy(self) -> float:
        """Total energy in joules."""
        return sum(item.energy for item in self.layers)

    @property
    def edp(self) -> float:
        """Energy-delay product, joule-seconds."""
        return self.energy * self.runtime

    def describe(self) -> str:
        """Human-readable per-layer mapping summary (chosen tilings)."""
        lines = [f"mapping of {self.network.name} on {self.arch.name} "
                 f"(N = {self.n_cs})"]
        for item in self.layers:
            if item.slice_cost is None:
                lines.append(f"  {item.layer.name:12s} pooling on "
                             f"{item.used_cs} vector unit(s)")
                continue
            tiling = item.slice_cost.tiling
            lines.append(
                f"  {item.layer.name:12s} {tiling.order.value:12s} "
                f"Tk={tiling.tk:<4d} Tc={tiling.tc:<4d} Toy={tiling.toy:<3d} "
                f"util={item.slice_cost.utilization:4.0%} "
                f"cycles={item.cycles:,.0f}")
        return "\n".join(lines)


def _pow2_tiles(base: int, bound: int) -> list[int]:
    """Candidate tile sizes: base * 2^i capped at the loop bound."""
    tiles: list[int] = []
    tile = max(1, base)
    while tile < bound:
        tiles.append(tile)
        tile *= 2
    tiles.append(bound)
    return tiles


class MapperEngine:
    """Searches mappings of DNN layers onto one Table II architecture."""

    def __init__(
        self,
        arch: ArchitectureSpec,
        pdk: PDK | None = None,
        n_cs: int = 1,
        bank_width_bits: int = DEFAULT_BANK_WIDTH_BITS,
        writeback_bus_bits: int = DEFAULT_WRITEBACK_BUS_BITS,
        frequency_hz: float = DEFAULT_FREQUENCY_HZ,
        precision_bits: int = 8,
        shared_weight_channel: bool = False,
    ) -> None:
        require(n_cs >= 1, "need at least one CS")
        self.arch = arch
        self.pdk = pdk if pdk is not None else foundry_m3d_pdk()
        self.n_cs = n_cs
        self.writeback_bus_bits = writeback_bus_bits
        self.frequency_hz = frequency_hz
        self.precision_bits = precision_bits
        # M3D chips give each CS a private weight channel; a 2D chip (or an
        # enlarged 2D baseline) shares one channel among its CSs.
        if shared_weight_channel:
            self.rram_channel_bits = bank_width_bits / n_cs
        else:
            self.rram_channel_bits = float(bank_width_bits)
        self.cost_model = CostModel(arch, precision_bits)
        self._static_power = arch_static_power(arch, self.pdk, n_cs)
        # Everything best_slice_cost reads beyond the nest itself ...
        self._slice_fingerprint = (arch, precision_bits,
                                   self.rram_channel_bits)
        # ... and everything map_layer adds on top of the slice search
        # (chip-level writeback, leakage, CS partitioning).  Equal
        # fingerprints make per-layer mappings interchangeable; see
        # DESIGN.md ("Layer memoization").
        self._layer_fingerprint = self._slice_fingerprint + (
            n_cs, writeback_bus_bits, frequency_hz, self._static_power)

    @property
    def cycle_time(self) -> float:
        """Clock period in seconds."""
        return 1.0 / self.frequency_hz

    # --- candidate generation -------------------------------------------------

    def candidate_tilings(self, nest: LoopNest) -> Iterator[Tiling]:
        """Enumerate loop orders x power-of-two tile sizes for one slice."""
        spatial = self.arch.spatial
        for order in LoopOrder:
            for tk in _pow2_tiles(spatial.k, nest.k):
                for tc in _pow2_tiles(spatial.c, nest.c):
                    for toy in _pow2_tiles(spatial.oy, nest.oy):
                        yield Tiling(order=order, tk=tk, tc=tc, toy=toy)

    def best_slice_cost(self, nest: LoopNest,
                        prune: bool = True) -> MappingCost:
        """Lowest-EDP legal tiling for one CS's layer slice.

        With ``prune`` (the default) the search runs branch-and-bound:
        each candidate is first priced by the admissible lower bound of
        :meth:`repro.mapper.cost.CostModel.search_bounds`, and fully
        evaluated only when the bound does not exceed the incumbent's
        true EDP.  Because the bound never overestimates and candidates
        are visited in the same order, the pruned search returns the
        *identical* tiling and cost as ``prune=False`` (the exhaustive
        reference scan) — proven in DESIGN.md and exercised by
        ``tests/test_mapper_pruning.py``.  Results memoize on
        ``(architecture fingerprint, nest, prune)``.
        """
        key = (self._slice_fingerprint, nest, prune)
        memoized = _SLICE_MEMO.get(key)
        if memoized is not MISSING:
            with _span("mapper.best_slice_cost") as sp:
                if sp:
                    sp.set(arch=self.arch.name, memo="hit")
            return memoized
        with _span("mapper.best_slice_cost") as sp:
            if sp:
                sp.set(arch=self.arch.name, memo="miss", prune=prune)
            best = (self._search_pruned(nest) if prune
                    else self._search_exhaustive(nest))
        if best is None:
            raise MappingError(
                f"no legal tiling for nest {nest} on {self.arch.name}")
        _SLICE_MEMO.put(key, best)
        return best

    def _search_exhaustive(self, nest: LoopNest) -> MappingCost | None:
        """Reference scan: evaluate every fitting candidate in order."""
        best: MappingCost | None = None
        evaluated = 0
        candidates = 0
        for tiling in self.candidate_tilings(nest):
            candidates += 1
            if not self.cost_model.tile_fits(nest, tiling):
                continue
            cost = self.cost_model.evaluate(
                nest, tiling, rram_channel_bits=self.rram_channel_bits)
            evaluated += 1
            if best is None or cost.edp < best.edp:
                best = cost
        add_counts("mapper.search", candidates=candidates,
                   evaluated=evaluated)
        return best

    def _search_pruned(self, nest: LoopNest) -> MappingCost | None:
        """Branch-and-bound scan: same argmin, far fewer full evaluations.

        Pass 1 prices every candidate with the admissible lower bound of
        :meth:`repro.mapper.cost.CostModel.search_bounds` and fully
        evaluates only the minimum-bound candidate, whose true EDP seeds
        the incumbent *bound* (it never becomes the incumbent mapping, so
        first-candidate tie-breaking is untouched).  Pass 2 walks the
        candidates in the exhaustive scan's order and skips any whose
        bound exceeds the seed bound or the incumbent's true EDP.

        Why no skip can change the result: a skipped candidate ``c`` has
        ``lb(c) > min(seed, best.edp)`` with ``seed`` the true EDP of some
        candidate and ``best.edp`` only ever shrinking toward the final
        minimum; admissibility (``lb(c) <= edp(c)``) then forces
        ``edp(c)`` strictly above an EDP some other candidate achieves,
        so under the strict ``<`` incumbent update (ties keep the
        earliest candidate) ``c`` can never be the exhaustive argmin.
        A ``None`` bound is exactly ``tile_fits`` failing, which the
        exhaustive scan skips too.
        """
        bounds = self.cost_model.search_bounds(nest, self.rram_channel_bits)
        spatial = self.arch.spatial
        tiles_k = _pow2_tiles(spatial.k, nest.k)
        tiles_c = _pow2_tiles(spatial.c, nest.c)
        tiles_oy = _pow2_tiles(spatial.oy, nest.oy)
        evaluate = self.cost_model.evaluate
        lower_bound = bounds.lower_bound
        priced: list[tuple[float | None, LoopOrder, int, int, int]] = []
        seed_index = -1
        seed_bound = math.inf
        for order in LoopOrder:
            for tk in tiles_k:
                for tc in tiles_c:
                    for toy in tiles_oy:
                        bound = lower_bound(order, tk, tc, toy)
                        if bound is not None and bound < seed_bound:
                            seed_bound = bound
                            seed_index = len(priced)
                        priced.append((bound, order, tk, tc, toy))
        if seed_index < 0:
            add_counts("mapper.search", candidates=len(priced))
            return None
        _, order, tk, tc, toy = priced[seed_index]
        seed_cost = evaluate(
            nest, Tiling(order=order, tk=tk, tc=tc, toy=toy),
            rram_channel_bits=self.rram_channel_bits)
        seed_bound = seed_cost.edp
        best: MappingCost | None = None
        best_edp = math.inf
        pruned = 0
        evaluated = 1
        for index, (bound, order, tk, tc, toy) in enumerate(priced):
            if bound is None:
                continue
            if bound > seed_bound or bound > best_edp:
                pruned += 1
                continue
            if index == seed_index:
                cost = seed_cost
            else:
                cost = evaluate(
                    nest, Tiling(order=order, tk=tk, tc=tc, toy=toy),
                    rram_channel_bits=self.rram_channel_bits)
                evaluated += 1
            if best is None or cost.edp < best_edp:
                best = cost
                best_edp = cost.edp
        add_counts("mapper.search", candidates=len(priced), pruned=pruned,
                   evaluated=evaluated)
        return best

    # --- per-layer mapping -------------------------------------------------------

    def _used_cs(self, layer: Layer) -> int:
        """CSs usable for a layer: K partitions in units of the K-unroll."""
        k_tiles = max(1, math.ceil(layer.out_channels / self.arch.spatial.k))
        return min(self.n_cs, k_tiles)

    def _writeback_cycles(self, layer: Layer) -> float:
        """Chip-level serial output writeback over the shared bus."""
        return (layer.output_elements * self.precision_bits
                / self.writeback_bus_bits)

    def map_pool(self, layer: Layer, lanes: int = 16) -> LayerMapping:
        """Pooling on the per-CS vector units (no MAC mapping involved)."""
        tiles = max(1, math.ceil(layer.out_channels / lanes))
        used = min(self.n_cs, tiles)
        cycles = max(layer.macs / lanes / used, self._writeback_cycles(layer))
        dynamic = (layer.input_elements + layer.output_elements) \
            * self.precision_bits * constants.SRAM_ENERGY_PER_BIT
        leakage = self._static_power * cycles * self.cycle_time
        return LayerMapping(
            layer=layer, used_cs=used, slice_cost=None, cycles=cycles,
            dynamic_energy=dynamic, leakage_energy=leakage)

    def map_layer(self, layer: Layer) -> LayerMapping:
        """Map one layer at chip level.

        Results memoize on ``(chip fingerprint, layer shape)``, so a
        network's repeated layer shapes — and identical shapes across
        networks on the same chip configuration — search once.
        """
        key = (self._layer_fingerprint, shape_key(layer))
        memoized = _LAYER_MEMO.get(key)
        if memoized is not MISSING:
            with _span("mapper.map_layer") as sp:
                if sp:
                    sp.set(layer=layer.name, memo="hit")
            used, slice_cost, cycles, dynamic, leakage = memoized
            return LayerMapping(
                layer=layer, used_cs=used, slice_cost=slice_cost,
                cycles=cycles, dynamic_energy=dynamic,
                leakage_energy=leakage)
        with _span("mapper.map_layer") as sp:
            if sp:
                sp.set(layer=layer.name, memo="miss")
            mapping = self._map_layer_uncached(layer)
        _LAYER_MEMO.put(key, (mapping.used_cs, mapping.slice_cost,
                              mapping.cycles, mapping.dynamic_energy,
                              mapping.leakage_energy))
        return mapping

    def _map_layer_uncached(self, layer: Layer) -> LayerMapping:
        if layer.kind == LayerKind.POOL:
            return self.map_pool(layer)
        nest = loop_nest_of(layer)
        used = self._used_cs(layer)
        k_slice = math.ceil(nest.k / used)
        slice_nest = LoopNest(k=k_slice, c=nest.c, ox=nest.ox, oy=nest.oy,
                              r=nest.r, s=nest.s, stride=nest.stride)
        slice_cost = self.best_slice_cost(slice_nest)
        # Output drain overlaps compute through the double-buffered local
        # output level, so the shared bus contributes as a roofline term.
        cycles = max(slice_cost.cycles, self._writeback_cycles(layer))
        # Energy scales with total work; the busiest slice's per-MAC energy
        # is representative of every slice.
        energy_scale = nest.macs / slice_nest.macs
        dynamic = slice_cost.dynamic_energy * energy_scale
        leakage = self._static_power * cycles * self.cycle_time
        return LayerMapping(
            layer=layer, used_cs=used, slice_cost=slice_cost, cycles=cycles,
            dynamic_energy=dynamic, leakage_energy=leakage)

    def map_network(self, network: Network) -> MappingReport:
        """Map every layer of ``network`` and aggregate chip-level totals."""
        require(network.weight_bits(self.precision_bits)
                <= self.arch.rram_capacity_bits,
                f"{network.name} weights do not fit this architecture's RRAM")
        with _span("mapper.map_network", network=network.name,
                   arch=self.arch.name, n_cs=self.n_cs):
            layers = tuple(self.map_layer(layer) for layer in network.layers)
        return MappingReport(
            arch=self.arch,
            network=network,
            n_cs=self.n_cs,
            cycle_time=self.cycle_time,
            layers=layers,
        )
