"""Cost model for one layer mapping on one Table II architecture.

A candidate mapping is a :class:`Tiling`: an outer-loop order template plus
local-level tile sizes (Tk output channels, Tc input channels, Toy output
rows).  The model computes, in closed form:

* per-boundary traffic (RRAM -> local W, global -> local I, local O <->
  global) from the classic operand-relevance analysis;
* spatial-level traffic (register and local accesses per MAC, reduced by
  the architecture's spatial broadcast/reduction factors);
* energy, by pricing each boundary with the level's per-bit access energy;
* latency, as the roofline max of utilization-derated compute time and
  each boundary's bandwidth-limited time.

Two loop-order templates span the interesting mapping space:

* ``WEIGHT_OUTER`` — weights stream through local_W exactly once; inputs
  are re-fetched per K-tile and outputs spill to global per C-tile unless
  the local output buffer holds a full K-tile of partial sums.
* ``OUTPUT_OUTER`` — outputs leave once; weights are re-fetched per
  output-row tile.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.errors import require
from repro.tech import constants
from repro.arch.memory import MemoryKind, Operand
from repro.arch.table2 import ArchitectureSpec
from repro.mapper.loopnest import LoopNest, OperandKind

#: Partial sums are kept at accumulator precision.
ACCUMULATOR_BITS = 24


class LoopOrder(enum.Enum):
    """Outer-loop order template."""

    WEIGHT_OUTER = "weight_outer"
    OUTPUT_OUTER = "output_outer"


@dataclass(frozen=True)
class Tiling:
    """One candidate mapping.

    Attributes:
        order: Outer-loop order template.
        tk: Output-channel tile at the local level.
        tc: Input-channel tile at the local level.
        toy: Output-row tile at the local level.
    """

    order: LoopOrder
    tk: int
    tc: int
    toy: int

    def __post_init__(self) -> None:
        require(self.tk >= 1 and self.tc >= 1 and self.toy >= 1,
                "tile sizes must be >= 1")


@dataclass(frozen=True)
class MappingCost:
    """Evaluated cost of one tiling for one layer slice.

    Attributes:
        tiling: The evaluated tiling.
        cycles: Latency in cycles for the slice (excluding the chip-level
            shared writeback, added by the engine).
        dynamic_energy: Dynamic energy in joules for the slice.
        rram_bits: Weight bits read from RRAM.
        global_bits: Bits moved across the global-SRAM boundary.
        utilization: Spatial array utilization in (0, 1].
    """

    tiling: Tiling
    cycles: float
    dynamic_energy: float
    rram_bits: float
    global_bits: float
    utilization: float

    @property
    def edp(self) -> float:
        """Energy-delay product in joule-cycles (engine converts to J*s)."""
        return self.dynamic_energy * self.cycles


class CostModel:
    """Prices tilings of one layer slice on one architecture."""

    def __init__(self, arch: ArchitectureSpec, precision_bits: int = 8) -> None:
        require(precision_bits >= 1, "precision must be >= 1")
        self.arch = arch
        self.precision_bits = precision_bits
        self._local = {
            Operand.WEIGHT: self._find_local("local_W"),
            Operand.INPUT: self._find_local("local_I"),
            Operand.OUTPUT: self._find_local("local_O"),
        }
        self._global = arch.hierarchy.level("global_sram")
        self._rram = arch.hierarchy.level("rram")

    def _find_local(self, name: str):
        try:
            return self.arch.hierarchy.level(name)
        except KeyError:
            return None

    # --- geometry -----------------------------------------------------------

    def utilization(self, nest: LoopNest) -> float:
        """Spatial utilization: fraction of PEs doing useful work."""
        spatial = self.arch.spatial
        util = 1.0
        for dim_name, unroll in (("k", spatial.k), ("c", spatial.c),
                                 ("ox", spatial.ox), ("oy", spatial.oy)):
            size = nest.dim(dim_name)
            util *= size / (math.ceil(size / unroll) * unroll)
        return util

    def weight_tile_resident(self, nest: LoopNest, tiling: Tiling) -> bool:
        """True when the weight tile is buffered in local_W.

        When the tile does not fit (or there is no local_W), weights stream
        from RRAM on every use instead of being staged.
        """
        w_local = self._local[Operand.WEIGHT]
        if w_local is None:
            return False
        tile = {"k": tiling.tk, "c": tiling.tc, "oy": tiling.toy}
        w_bits = nest.tile_operand_size(OperandKind.WEIGHT, tile) * self.precision_bits
        return w_bits <= w_local.total_capacity_bits

    def input_tile_resident(self, nest: LoopNest, tiling: Tiling) -> bool:
        """True when the input tile is buffered in local_I."""
        i_local = self._local[Operand.INPUT]
        if i_local is None:
            return False
        tile = {"k": tiling.tk, "c": tiling.tc, "oy": tiling.toy}
        i_bits = nest.tile_operand_size(OperandKind.INPUT, tile) * self.precision_bits
        return i_bits <= i_local.total_capacity_bits

    def tile_fits(self, nest: LoopNest, tiling: Tiling) -> bool:
        """True when the tiling is not wastefully oversized.

        A tile larger than its local buffer is allowed only at the minimum
        tile size (where the operand degrades to streaming); bigger tiles
        that still do not fit are pruned as dominated.
        """
        spatial = self.arch.spatial
        minimal = (tiling.tk <= spatial.k and tiling.tc <= spatial.c
                   and tiling.toy <= spatial.oy)
        if minimal:
            return True
        w_local = self._local[Operand.WEIGHT]
        if w_local is not None and not self.weight_tile_resident(nest, tiling):
            return False
        i_local = self._local[Operand.INPUT]
        if i_local is not None and not self.input_tile_resident(nest, tiling):
            return False
        return True

    def _output_tile_persists(self, nest: LoopNest, tiling: Tiling) -> bool:
        """True when a K-tile of partial sums fits the local output buffer."""
        o_local = self._local[Operand.OUTPUT]
        if o_local is None:
            return False
        tile_bits = tiling.tk * nest.ox * nest.oy * ACCUMULATOR_BITS
        return tile_bits <= o_local.total_capacity_bits

    # --- traffic ----------------------------------------------------------------

    def boundary_traffic(self, nest: LoopNest, tiling: Tiling) -> dict[str, float]:
        """Element traffic across the RRAM and global-SRAM boundaries."""
        nk = math.ceil(nest.k / tiling.tk)
        nc = math.ceil(nest.c / tiling.tc)
        no = math.ceil(nest.oy / tiling.toy)
        size_w = nest.operand_size(OperandKind.WEIGHT)
        size_i = nest.operand_size(OperandKind.INPUT)
        size_o = nest.operand_size(OperandKind.OUTPUT)
        tile_i = nest.tile_operand_size(
            OperandKind.INPUT, {"c": tiling.tc, "oy": tiling.toy})
        if tiling.order == LoopOrder.WEIGHT_OUTER:
            weight_reads = size_w
            input_reads = nk * nc * no * tile_i
            if self._output_tile_persists(nest, tiling):
                output_writes = size_o
                output_reads = 0.0
            else:
                # Partial sums spill to global once per C-tile revisit.
                output_writes = size_o * nc
                output_reads = size_o * max(0, nc - 1)
        else:
            weight_reads = size_w * no
            input_reads = nk * nc * no * tile_i
            output_writes = size_o
            output_reads = 0.0
        return {
            "rram_weight_reads": weight_reads,
            "global_input_reads": input_reads,
            "global_output_writes": output_writes,
            "global_output_reads": output_reads,
        }

    def spatial_traffic(self, nest: LoopNest, tiling: Tiling) -> dict[str, float]:
        """Local/register traffic after spatial reuse and register retention.

        Weights are *stationary*: every PE retains its weight(s) in the
        per-PE register file, so weight traffic from the level above is one
        register fill per weight per output-tile revisit — not one per MAC.
        Inputs are broadcast across the K-spatial PEs; partial sums reduce
        across the C-spatial PEs.
        """
        spatial = self.arch.spatial
        macs = nest.macs
        no = math.ceil(nest.oy / tiling.toy)
        size_w = nest.operand_size(OperandKind.WEIGHT)
        return {
            # Inputs are broadcast across the K-spatial PEs.
            "local_input_reads": macs / spatial.k,
            # Register fills: each weight enters the array once per
            # output-row-tile pass (stationary within a pass).
            "local_weight_reads": float(size_w * no),
            # Partial sums are spatially reduced across the C-spatial PEs.
            "local_output_accesses": 2.0 * macs / spatial.c,
            # Register traffic: operand reads plus accumulator update.
            "register_accesses": 3.0 * macs,
        }

    # --- energy & latency ----------------------------------------------------------

    def _local_energy_per_bit(self, operand: Operand) -> float:
        """Energy of a local access; absent levels fall through to global."""
        level = self._local[operand]
        if level is None:
            return self._global.energy_per_bit
        return level.energy_per_bit

    def search_bounds(self, nest: LoopNest, rram_channel_bits: float,
                      global_width_bits: float | None = None,
                      ) -> "TilingSearchBounds":
        """Admissible lower-bound evaluator for branch-and-bound search."""
        return TilingSearchBounds(self, nest, rram_channel_bits,
                                  global_width_bits)

    def evaluate(self, nest: LoopNest, tiling: Tiling,
                 rram_channel_bits: float,
                 global_width_bits: float | None = None) -> MappingCost:
        """Price one tiling: energy, latency, and boundary traffic."""
        precision = self.precision_bits
        boundary = self.boundary_traffic(nest, tiling)
        spatial = self.spatial_traffic(nest, tiling)
        util = self.utilization(nest)

        # Residency: a non-fitting tile degrades the operand to streaming —
        # every spatial-level use then hits the operand's home level.
        w_resident = self.weight_tile_resident(nest, tiling)
        i_resident = self.input_tile_resident(nest, tiling)

        if w_resident:
            rram_bits = boundary["rram_weight_reads"] * precision
            w_local_energy = (spatial["local_weight_reads"] * precision
                              * self._local_energy_per_bit(Operand.WEIGHT))
        else:
            rram_bits = spatial["local_weight_reads"] * precision
            w_local_energy = 0.0

        if i_resident:
            global_in_bits = boundary["global_input_reads"] * precision
            i_local_energy = (spatial["local_input_reads"] * precision
                              * self._local[Operand.INPUT].energy_per_bit)
        else:
            global_in_bits = spatial["local_input_reads"] * precision
            i_local_energy = 0.0

        global_out_bits = (boundary["global_output_writes"]
                           + boundary["global_output_reads"]) * ACCUMULATOR_BITS
        global_bits = global_in_bits + global_out_bits

        energy = (
            rram_bits * self._rram.energy_per_bit
            + global_in_bits * self._global.energy_per_bit
            + global_out_bits * self._global.energy_per_bit
            + i_local_energy
            + w_local_energy
            + spatial["local_output_accesses"] * ACCUMULATOR_BITS
            * self._local_energy_per_bit(Operand.OUTPUT)
            + spatial["register_accesses"] * precision
            * constants.REGISTER_ENERGY_PER_BIT
            + nest.macs * constants.MAC8_ENERGY_130NM
        )

        peak = self.arch.spatial.pe_count
        compute_cycles = nest.macs / (peak * util)
        width = (global_width_bits if global_width_bits is not None
                 else self._global.width_bits)
        global_cycles = global_bits / width
        rram_cycles = rram_bits / rram_channel_bits
        cycles = max(compute_cycles, global_cycles, rram_cycles)
        return MappingCost(
            tiling=tiling,
            cycles=cycles,
            dynamic_energy=energy,
            rram_bits=rram_bits,
            global_bits=global_bits,
            utilization=util,
        )


#: Relative safety factor keeping the fast bound admissible under
#: floating-point reassociation noise (~1e-16 per op; 1e-12 is a three
#: orders-of-magnitude cushion, still far below the 1e-9 tolerance any
#: two genuinely different mappings are separated by in practice).
BOUND_MARGIN = 1.0 - 1e-12


class TilingSearchBounds:
    """Admissible EDP lower bounds for one slice's tiling search.

    The bound prices exactly the *mandatory* terms of
    :meth:`CostModel.evaluate` — utilization-derated compute time, the
    roofline of mandatory RRAM / global-SRAM operand traffic, and the
    tiling-independent compute/register/accumulator energy — using flat
    scalar arithmetic on quantities precomputed per nest.  Because every
    mandatory term is reproduced (not relaxed) the bound is tight up to
    floating-point reassociation, and :data:`BOUND_MARGIN` keeps it on
    the admissible side of that noise: for every legal tiling,
    ``lower_bound(...) <= evaluate(...).edp``.

    Admissibility is what lets the mapper's branch-and-bound skip a
    candidate whenever its bound exceeds the incumbent's true EDP without
    ever changing the argmin (see DESIGN.md, "Branch-and-bound tiling
    search"); ``tests/test_mapper_pruning.py`` checks both the inequality
    and pruned-vs-exhaustive equivalence across all Table II
    architectures and every mappable ResNet-18/AlexNet/VGG-16 layer.

    A return of ``None`` means the candidate fails
    :meth:`CostModel.tile_fits` (mirrored exactly), so the search skips
    it just as the exhaustive scan does.
    """

    __slots__ = (
        "_sp_k", "_sp_c", "_sp_oy", "_precision", "_k", "_c", "_oy",
        "_rs", "_in_x", "_stride", "_s", "_size_w", "_size_o",
        "_w_cap", "_i_cap", "_o_cap", "_o_row_bits",
        "_rram_e", "_global_e", "_w_local_e", "_i_local_e",
        "_base_energy", "_compute_cycles", "_width", "_rram_channel",
        "_macs_over_spk",
    )

    def __init__(self, model: CostModel, nest: LoopNest,
                 rram_channel_bits: float,
                 global_width_bits: float | None = None) -> None:
        spatial = model.arch.spatial
        precision = model.precision_bits
        self._sp_k = spatial.k
        self._sp_c = spatial.c
        self._sp_oy = spatial.oy
        self._precision = precision
        self._k = nest.k
        self._c = nest.c
        self._oy = nest.oy
        self._rs = nest.r * nest.s
        self._in_x = (nest.ox - 1) * nest.stride + nest.r
        self._stride = nest.stride
        self._s = nest.s
        self._size_w = nest.operand_size(OperandKind.WEIGHT)
        self._size_o = nest.operand_size(OperandKind.OUTPUT)
        w_local = model._local[Operand.WEIGHT]
        i_local = model._local[Operand.INPUT]
        o_local = model._local[Operand.OUTPUT]
        self._w_cap = None if w_local is None else w_local.total_capacity_bits
        self._i_cap = None if i_local is None else i_local.total_capacity_bits
        self._o_cap = None if o_local is None else o_local.total_capacity_bits
        # Output-persistence check: tk * (ox * oy * ACC) vs local_O capacity.
        self._o_row_bits = nest.ox * nest.oy * ACCUMULATOR_BITS
        self._rram_e = model._rram.energy_per_bit
        self._global_e = model._global.energy_per_bit
        self._w_local_e = model._local_energy_per_bit(Operand.WEIGHT)
        self._i_local_e = (0.0 if i_local is None else i_local.energy_per_bit)
        macs = nest.macs
        util = model.utilization(nest)
        # Tiling-independent energy: spatially-reduced accumulator traffic,
        # register traffic, and the MACs themselves.
        self._base_energy = (
            2.0 * macs / spatial.c * ACCUMULATOR_BITS
            * model._local_energy_per_bit(Operand.OUTPUT)
            + 3.0 * macs * precision * constants.REGISTER_ENERGY_PER_BIT
            + macs * constants.MAC8_ENERGY_130NM)
        self._compute_cycles = macs / (spatial.pe_count * util)
        self._width = (global_width_bits if global_width_bits is not None
                       else model._global.width_bits)
        self._rram_channel = rram_channel_bits
        self._macs_over_spk = macs / spatial.k

    def lower_bound(self, order: LoopOrder, tk: int, tc: int,
                    toy: int) -> float | None:
        """Admissible EDP bound for ``Tiling(order, tk, tc, toy)``.

        ``None`` when the tiling fails :meth:`CostModel.tile_fits`.
        """
        precision = self._precision
        w_resident = (self._w_cap is not None
                      and tk * tc * self._rs * precision <= self._w_cap)
        tile_i = tc * self._in_x * ((toy - 1) * self._stride + self._s)
        i_resident = (self._i_cap is not None
                      and tile_i * precision <= self._i_cap)
        minimal = (tk <= self._sp_k and tc <= self._sp_c
                   and toy <= self._sp_oy)
        if not minimal:
            if self._w_cap is not None and not w_resident:
                return None
            if self._i_cap is not None and not i_resident:
                return None

        nk = math.ceil(self._k / tk)
        nc = math.ceil(self._c / tc)
        no = math.ceil(self._oy / toy)
        size_w = self._size_w
        size_o = self._size_o

        if w_resident:
            weight_reads = (size_w if order == LoopOrder.WEIGHT_OUTER
                            else size_w * no)
            rram_bits = weight_reads * precision
            w_local_energy = size_w * no * precision * self._w_local_e
        else:
            rram_bits = size_w * no * precision
            w_local_energy = 0.0

        if i_resident:
            global_in_bits = nk * nc * no * tile_i * precision
            i_local_energy = self._macs_over_spk * precision * self._i_local_e
        else:
            global_in_bits = self._macs_over_spk * precision
            i_local_energy = 0.0

        if order == LoopOrder.WEIGHT_OUTER and not (
                self._o_cap is not None
                and tk * self._o_row_bits <= self._o_cap):
            output_elems = size_o * nc + size_o * max(0, nc - 1)
        else:
            output_elems = size_o
        global_out_bits = output_elems * ACCUMULATOR_BITS
        global_bits = global_in_bits + global_out_bits

        energy = (rram_bits * self._rram_e
                  + global_bits * self._global_e
                  + i_local_energy + w_local_energy + self._base_energy)
        cycles = max(self._compute_cycles,
                     global_bits / self._width,
                     rram_bits / self._rram_channel)
        return energy * cycles * BOUND_MARGIN
