"""Loop-nest representation of a DNN layer.

A convolution is the 6-deep loop nest over (K, C, OX, OY, R, S); FC layers
are the degenerate case OX = OY = R = S = 1.  The mapper reasons about
which dimensions are *relevant* to each operand:

* weights  W[K, C, R, S]       — irrelevant: OX, OY
* inputs   I[C, IX, IY]        — irrelevant: K
* outputs  O[K, OX, OY]        — irrelevant: C, R, S

An operand is re-fetched when a relevant loop advances and *reused* across
irrelevant loops; those relevance sets drive the traffic counts in
:mod:`repro.mapper.cost`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import require
from repro.workloads.layers import Layer, LayerKind


class OperandKind(enum.Enum):
    """The three DNN operands."""

    WEIGHT = "W"
    INPUT = "I"
    OUTPUT = "O"


#: Loop dimensions relevant to each operand.
RELEVANT_DIMS: dict[OperandKind, tuple[str, ...]] = {
    OperandKind.WEIGHT: ("k", "c", "r", "s"),
    OperandKind.INPUT: ("c", "ox", "oy", "r", "s"),
    OperandKind.OUTPUT: ("k", "ox", "oy"),
}


@dataclass(frozen=True)
class LoopNest:
    """Loop bounds of one layer.

    Attributes:
        k: Output channels.
        c: Input channels.
        ox: Output width.
        oy: Output height.
        r: Kernel width.
        s: Kernel height.
        stride: Convolution stride (input-footprint scaling).
    """

    k: int
    c: int
    ox: int
    oy: int
    r: int
    s: int
    stride: int = 1

    def __post_init__(self) -> None:
        for name in ("k", "c", "ox", "oy", "r", "s", "stride"):
            require(getattr(self, name) >= 1, f"{name} must be >= 1")

    @property
    def macs(self) -> int:
        """Total multiply-accumulates."""
        return self.k * self.c * self.ox * self.oy * self.r * self.s

    def dim(self, name: str) -> int:
        """Loop bound by lower-case dimension name."""
        return int(getattr(self, name))

    def operand_size(self, operand: OperandKind) -> int:
        """Element count of one operand's full footprint."""
        if operand == OperandKind.WEIGHT:
            return self.k * self.c * self.r * self.s
        if operand == OperandKind.OUTPUT:
            return self.k * self.ox * self.oy
        in_x = (self.ox - 1) * self.stride + self.r
        in_y = (self.oy - 1) * self.stride + self.s
        return self.c * in_x * in_y

    def tile_operand_size(self, operand: OperandKind,
                          tile: dict[str, int]) -> int:
        """Element count of an operand's footprint for a loop tile.

        ``tile`` maps dimension names to tile sizes (defaults to the full
        bound for missing dimensions).
        """
        bound = {name: tile.get(name, self.dim(name))
                 for name in ("k", "c", "ox", "oy", "r", "s")}
        if operand == OperandKind.WEIGHT:
            return bound["k"] * bound["c"] * bound["r"] * bound["s"]
        if operand == OperandKind.OUTPUT:
            return bound["k"] * bound["ox"] * bound["oy"]
        in_x = (bound["ox"] - 1) * self.stride + bound["r"]
        in_y = (bound["oy"] - 1) * self.stride + bound["s"]
        return bound["c"] * in_x * in_y


def loop_nest_of(layer: Layer) -> LoopNest:
    """Build the loop nest of a conv or FC layer."""
    require(layer.kind != LayerKind.POOL,
            "pooling layers have no MAC loop nest to map")
    require(layer.channel_groups == 1,
            "the mapper models dense convolutions only; grouped/depthwise "
            "layers are supported by the performance simulator")
    if layer.kind == LayerKind.FC:
        return LoopNest(k=layer.out_channels, c=layer.in_channels,
                        ox=1, oy=1, r=1, s=1)
    return LoopNest(
        k=layer.out_channels,
        c=layer.in_channels,
        ox=layer.out_size,
        oy=layer.out_size,
        r=layer.kernel,
        s=layer.kernel,
        stride=layer.stride,
    )
