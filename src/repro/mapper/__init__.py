"""ZigZag-style architecture/mapping design-space exploration.

The paper cross-checks its analytical framework against ZigZag [13], a
loop-nest-based DNN accelerator cost model, on the six Table II
architectures (Fig. 7).  This package is our independent implementation of
that class of tool: for each layer it searches temporal tilings of the
(K, C, OX, OY, R, S) loop nest over the architecture's register / local /
global / RRAM hierarchy, costing each candidate with per-level access
energies and a utilization-aware latency model.
"""

from repro.mapper.loopnest import LoopNest, OperandKind, loop_nest_of
from repro.mapper.cost import CostModel, MappingCost, Tiling
from repro.mapper.engine import (
    LayerMapping,
    MapperEngine,
    MappingReport,
)

__all__ = [
    "LoopNest",
    "OperandKind",
    "loop_nest_of",
    "Tiling",
    "MappingCost",
    "CostModel",
    "MapperEngine",
    "LayerMapping",
    "MappingReport",
]
