"""Extension study: token batching on a transformer encoder.

A weight-stationary systolic array is brutal to batch-1 transformer
inference: every 16x16 weight slab is loaded for a *single* useful
streaming cycle, so the array spends ~97% of its time in pipeline
fill/drain.  Batching tokens amortizes the slab setup, raising absolute
utilization by more than an order of magnitude.

The M3D result the study establishes: the iso-footprint benefit is
*robust across the whole regime* — the speedup stays ~N from batch 1
(setup-bound) to batch 256 (compute-bound) because both designs pay the
same per-slab overheads and the partitioning along output channels is
oblivious to the batch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tech.pdk import PDK
from repro.experiments.registry import (
    ExperimentContext,
    experiment,
    warn_deprecated_shim,
)
from repro.experiments.reporting import format_table, percent, times
from repro.perf.compare import compare_designs
from repro.perf.simulator import simulate
from repro.runtime.engine import EvaluationEngine
from repro.spec.design import ArchSpec, DesignSpec
from repro.spec.resolve import build_workload, resolve
from repro.units import MEGABYTE
from repro.workloads.models import Network


@dataclass(frozen=True)
class BatchingRow:
    """Result at one token-batch size.

    Attributes:
        batch: Tokens processed per weight-slab pass.
        cycles_per_token_2d: 2D latency per token, cycles.
        cycles_per_token_m3d: M3D latency per token, cycles.
        utilization_2d: Fraction of 2D peak MACs actually used.
        speedup / energy_benefit / edp_benefit: M3D vs 2D benefits.
    """

    batch: int
    cycles_per_token_2d: float
    cycles_per_token_m3d: float
    utilization_2d: float
    speedup: float
    energy_benefit: float
    edp_benefit: float


def batching_row(
    pdk: PDK,
    batch: int,
    capacity_bits: int,
    network: Network,
) -> BatchingRow:
    """Evaluate the case-study pair at one token batch size."""
    spec = DesignSpec(arch=ArchSpec(capacity_bits=capacity_bits))
    point = resolve(spec, pdk)
    peak = point.baseline.cs.array.peak_macs_per_cycle
    base_report = simulate(point.baseline, network, point.pdk, batch=batch)
    m3d_report = simulate(point.m3d, network, point.pdk, batch=batch)
    benefit = compare_designs(base_report, m3d_report)
    utilization = network.total_macs * batch / (base_report.cycles * peak)
    return BatchingRow(
        batch=batch,
        cycles_per_token_2d=base_report.cycles / batch,
        cycles_per_token_m3d=m3d_report.cycles / batch,
        utilization_2d=utilization,
        speedup=benefit.speedup,
        energy_benefit=benefit.energy_benefit,
        edp_benefit=benefit.edp_benefit,
    )


def run_batching(
    pdk: PDK | None = None,
    batches: tuple[int, ...] = (1, 4, 16, 64, 256),
    network: Network | None = None,
    capacity_bits: int = 64 * MEGABYTE,
    engine: EvaluationEngine | None = None,
    jobs: int | None = None,
) -> tuple[BatchingRow, ...]:
    """Deprecated shim: builds a context for :func:`batching_experiment`."""
    warn_deprecated_shim("run_batching", "ext-batching")
    return batching_experiment(
        ExperimentContext.create(pdk=pdk, engine=engine, jobs=jobs),
        batches=batches, network=network, capacity_bits=capacity_bits)


@experiment("ext-batching", "Extension: transformer token batching",
            formatter=lambda rows: format_batching(rows))
def batching_experiment(
    ctx: ExperimentContext,
    batches: tuple[int, ...] = (1, 4, 16, 64, 256),
    network: Network | None = None,
    capacity_bits: int | None = None,
) -> tuple[BatchingRow, ...]:
    """Sweep the token batch for an encoder workload on the case-study pair.

    The workload defaults to the tiny transformer encoder (batching is a
    transformer story); a context ``--spec`` with an explicit workload
    overrides it, as do the keyword arguments.
    """
    spec = ctx.design_spec()
    if capacity_bits is None:
        capacity_bits = spec.arch.capacity_bits
    if network is None:
        workload = spec.workload if ctx.spec is not None \
            else spec.updated({"workload.network": "tiny_encoder"}).workload
        network = build_workload(workload)
    calls = [(ctx.pdk, batch, capacity_bits, network) for batch in batches]
    return tuple(ctx.engine.map(batching_row, calls,
                                stage="ext_batching.run_batching",
                                jobs=ctx.jobs))


def format_batching(rows: tuple[BatchingRow, ...]) -> str:
    """Render the batching study."""
    table_rows = [
        [row.batch,
         f"{row.cycles_per_token_2d:,.0f}",
         f"{row.cycles_per_token_m3d:,.0f}",
         percent(row.utilization_2d),
         times(row.speedup), times(row.edp_benefit)]
        for row in rows
    ]
    return format_table(
        "Extension — token batching on a transformer encoder (64 MB, "
        "tiny encoder): utilization climbs, the M3D benefit holds at ~N",
        ["batch", "2D cyc/token", "M3D cyc/token", "2D util", "speedup",
         "EDP benefit"],
        table_rows,
    )
