"""Table I: per-layer ResNet-18 benefits.

Reproduces the paper's layer-by-layer rows (speedup, energy, EDP benefit)
including the merged ``CONV1+POOL`` row and the conv-layer total, which the
paper reports as 5.64x / 0.99x / 5.66x.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tech.pdk import PDK
from repro.experiments.registry import (
    ExperimentContext,
    experiment,
    warn_deprecated_shim,
)
from repro.experiments.reporting import format_table, times
from repro.perf.compare import compare_designs
from repro.perf.simulator import simulate
from repro.runtime.engine import EvaluationEngine
from repro.spec.resolve import resolve
from repro.units import MEGABYTE
from repro.workloads.layers import LayerKind

#: Paper Table I values (speedup, energy, EDP) for cross-reference.
PAPER_TABLE1: dict[str, tuple[float, float, float]] = {
    "CONV1+POOL": (3.14, 1.00, 2.93),
    "L1.0 CONV1": (3.72, 1.00, 3.73),
    "L1.0 CONV2": (3.72, 0.99, 3.73),
    "L1.1 CONV1": (3.72, 0.99, 3.73),
    "L1.1 CONV2": (3.72, 0.99, 3.73),
    "L2.0 DS": (2.57, 1.00, 2.57),
    "L2.0 CONV1": (6.00, 0.99, 7.37),
    "L2.0 CONV2": (7.36, 0.99, 7.37),
    "L2.1 CONV1": (7.36, 0.99, 7.37),
    "L2.1 CONV2": (7.36, 0.99, 7.37),
    "L3.0 DS": (2.52, 1.00, 2.51),
    "L3.0 CONV1": (6.84, 0.99, 6.85),
    "L3.0 CONV2": (7.67, 0.99, 7.68),
    "L3.1 CONV1": (7.67, 0.99, 7.68),
    "L3.1 CONV2": (7.67, 0.99, 7.68),
    "L4.0 DS": (3.50, 1.00, 3.50),
    "L4.0 CONV1": (7.37, 0.99, 7.40),
    "L4.0 CONV2": (7.83, 0.99, 7.85),
    "L4.1 CONV1": (7.83, 0.99, 7.85),
    "L4.1 CONV2": (7.83, 0.99, 7.85),
    "Total": (5.64, 0.99, 5.66),
}


@dataclass(frozen=True)
class Table1Row:
    """One Table I row.

    Attributes:
        name: Layer name (paper naming).
        speedup: T_2D / T_3D.
        energy_benefit: E_2D / E_3D.
        edp_benefit: Product.
        paper_speedup: The paper's reported speedup, for comparison.
    """

    name: str
    speedup: float
    energy_benefit: float
    edp_benefit: float
    paper_speedup: float | None


def run_table1(
    pdk: PDK | None = None,
    capacity_bits: int = 64 * MEGABYTE,
    engine: EvaluationEngine | None = None,
    jobs: int | None = None,
) -> tuple[Table1Row, ...]:
    """Deprecated shim: builds a context for :func:`table1_experiment`."""
    warn_deprecated_shim("run_table1", "table1")
    return table1_experiment(
        ExperimentContext.create(pdk=pdk, engine=engine, jobs=jobs),
        capacity_bits=capacity_bits)


@experiment("table1", "Table I: per-layer ResNet-18 benefits",
            formatter=lambda rows: format_table1(rows))
def table1_experiment(
    ctx: ExperimentContext,
    capacity_bits: int | None = None,
) -> tuple[Table1Row, ...]:
    """Produce every Table I row, including the merged stem and the total.

    ``capacity_bits`` (if given) overrides the context spec's capacity.
    """
    changes = {} if capacity_bits is None \
        else {"arch.capacity_bits": capacity_bits}
    point = resolve(ctx.design_spec(changes), ctx.pdk)
    network = point.network
    base_report, m3d_report = ctx.engine.map(
        simulate,
        [(point.baseline, network, point.pdk),
         (point.m3d, network, point.pdk)],
        stage="table1.simulate", jobs=ctx.jobs)
    benefit = compare_designs(base_report, m3d_report)

    rows: list[Table1Row] = []

    def add(name: str, t2: float, t3: float, e2: float, e3: float) -> None:
        speedup = t2 / t3
        energy = e2 / e3
        paper = PAPER_TABLE1.get(name)
        rows.append(Table1Row(
            name=name, speedup=speedup, energy_benefit=energy,
            edp_benefit=speedup * energy,
            paper_speedup=paper[0] if paper else None))

    # Merged CONV1+POOL row, then each conv layer, as the paper lists them.
    stem_2d = [base_report.layer_result(n) for n in ("CONV1", "POOL")]
    stem_3d = [m3d_report.layer_result(n) for n in ("CONV1", "POOL")]
    add("CONV1+POOL",
        sum(r.cycles for r in stem_2d), sum(r.cycles for r in stem_3d),
        sum(r.energy for r in stem_2d), sum(r.energy for r in stem_3d))
    for layer_benefit in benefit.layers:
        layer = layer_benefit.baseline.layer
        if layer.name in ("CONV1", "POOL") or layer.kind == LayerKind.FC:
            continue
        add(layer.name,
            layer_benefit.baseline.cycles, layer_benefit.m3d.cycles,
            layer_benefit.baseline.energy, layer_benefit.m3d.energy)

    # Total over the Table I rows (conv + stem, excluding the FC head).
    conv_pool = [b for b in benefit.layers
                 if b.baseline.layer.kind != LayerKind.FC]
    add("Total",
        sum(b.baseline.cycles for b in conv_pool),
        sum(b.m3d.cycles for b in conv_pool),
        sum(b.baseline.energy for b in conv_pool),
        sum(b.m3d.energy for b in conv_pool))
    return tuple(rows)


def run_table1_total(pdk: PDK | None = None) -> Table1Row:
    """Deprecated shim: just the Table I total row (5.64x / 0.99x / 5.66x)."""
    warn_deprecated_shim("run_table1_total", "table1")
    return table1_experiment(ExperimentContext.create(pdk=pdk))[-1]


def format_table1(rows: tuple[Table1Row, ...]) -> str:
    """Render Table I with the paper's values alongside ours."""
    table_rows = []
    for row in rows:
        paper = times(row.paper_speedup) if row.paper_speedup else "-"
        table_rows.append([
            row.name, times(row.speedup), times(row.energy_benefit),
            times(row.edp_benefit), paper,
        ])
    return format_table(
        "Table I — per-layer ResNet-18 benefits of the iso-footprint, "
        "iso-capacity M3D accelerator",
        ["layer", "speedup", "energy", "EDP benefit", "paper speedup"],
        table_rows,
    )
