"""Decorator-based experiment registry behind the CLI and the report.

Every experiment module registers its driver once, at import time::

    @experiment("fig9", "Fig. 9 / Obs. 6: RRAM capacity sweep",
                formatter=format_fig9)
    def fig9_experiment(ctx: ExperimentContext) -> tuple[CapacityPoint, ...]:
        return sweep_rram_capacity(pdk=ctx.pdk, engine=ctx.engine,
                                   jobs=ctx.jobs)

The registered function is the *uniform* entry point: it takes an
:class:`ExperimentContext` carrying the shared PDK, evaluation engine,
worker count, and (optionally) the active tracer, plus whatever
experiment-specific knobs the module defines as keyword defaults.  The
CLI dispatches through :func:`run_experiment`; the historical
``run_<name>(pdk, ...)`` functions survive as thin shims that build a
context and delegate (see each experiment module) — they are
**deprecated** (each emits :func:`warn_deprecated_shim`'s
``DeprecationWarning``) and will be removed in v2.0 (DESIGN.md Sec. 12).

Importing :mod:`repro.experiments` populates the registry — the package
``__init__`` imports every experiment module, so registration order (and
hence CLI listing order) is the package's import order.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping

from repro.obs.trace import Tracer, current_tracer, span as _span
from repro.runtime.engine import EvaluationEngine, default_engine


def warn_deprecated_shim(shim: str, name: str) -> None:
    """Emit the removal warning for a legacy ``run_*`` convenience shim.

    The shims predate the registry and build a throwaway context per
    call, so nothing — result cache, memo tables, tracer — is shared
    across experiments.  They are slated for removal in v2.0 (DESIGN.md
    Sec. 12); ``run_experiment(name, ctx)`` or the registered
    ``*_experiment(ctx, ...)`` driver with one shared
    :class:`ExperimentContext` is the supported path.

    ``stacklevel=3`` attributes the warning to the shim's caller
    (helper -> shim -> caller), so the deprecation points at the code
    that needs migrating.
    """
    warnings.warn(
        f"{shim}() is deprecated and will be removed in v2.0; use "
        f"run_experiment({name!r}, ctx) or the registry driver for "
        f"{name!r} with a shared ExperimentContext",
        DeprecationWarning, stacklevel=3)
from repro.spec.design import DesignSpec
from repro.tech.pdk import PDK, foundry_m3d_pdk

__all__ = [
    "Experiment",
    "ExperimentContext",
    "all_experiments",
    "experiment",
    "experiment_names",
    "get_experiment",
    "registry_markdown",
    "run_experiment",
]


@dataclass
class ExperimentContext:
    """Everything an experiment needs beyond its own knobs.

    Attributes:
        pdk: The process-design kit every design derives from.  The CLI
            builds **one** context per invocation, so every experiment of
            a run shares one PDK object (and with it the identity-keyed
            memo entries, see :class:`repro.runtime.memo.IdentityKey`).
        engine: The evaluation engine sweeps route through.
        jobs: Worker-count override threaded into ``engine.map`` calls
            (``None`` = the engine's own count).
        tracer: The active tracer, if observability is on (experiments
            rarely need it directly — instrumented layers resolve it
            context-locally — but it is part of the uniform interface).
        spec: Base :class:`~repro.spec.design.DesignSpec` the run derives
            design points from (``None`` = the default spec).  Set by the
            CLI's ``--spec`` flag; experiments read it through
            :meth:`design_spec` so one spec file retargets every
            experiment of a run.
    """

    pdk: PDK
    engine: EvaluationEngine
    jobs: int | None = None
    tracer: Tracer | None = None
    spec: DesignSpec | None = None

    @classmethod
    def create(cls, pdk: PDK | None = None,
               engine: EvaluationEngine | None = None,
               jobs: int | None = None,
               tracer: Tracer | None = None,
               spec: DesignSpec | None = None) -> "ExperimentContext":
        """A context with defaults filled in.

        ``pdk`` defaults to :func:`repro.tech.pdk.foundry_m3d_pdk`,
        ``engine`` to the process-wide default engine, and ``tracer`` to
        the context-locally active one.  This is what the legacy
        ``run_*`` shims call with their historical arguments.
        """
        return cls(
            pdk=pdk if pdk is not None else foundry_m3d_pdk(),
            engine=engine if engine is not None else default_engine(),
            jobs=jobs,
            tracer=tracer if tracer is not None else current_tracer(),
            spec=spec,
        )

    def design_spec(self, changes: Mapping[str, Any] | None = None) -> DesignSpec:
        """The run's base spec, optionally with dotted-path overrides.

        Experiments call this instead of hard-coding their design-point
        knobs: ``ctx.design_spec({"tech.delta": 1.6})`` layers the
        experiment's own knob over whatever base the user supplied via
        ``--spec`` (or the defaults).
        """
        base = self.spec if self.spec is not None else DesignSpec()
        if not changes:
            return base
        return base.updated(changes)


@dataclass(frozen=True)
class Experiment:
    """One registered experiment.

    Attributes:
        name: CLI name (e.g. ``fig9``, ``ext-batching``).
        summary: One-line description shown by ``repro list``.
        run: The uniform driver, ``run(ctx, **knobs) -> Result``.
        formatter: Renders the driver's result as the paper's table.
        module: Defining module (``__module__`` of the driver).
    """

    name: str
    summary: str
    run: Callable[..., Any]
    formatter: Callable[[Any], str]
    module: str

    def run_formatted(self, ctx: ExperimentContext | None = None,
                      **knobs: Any) -> str:
        """Run and render in one step (what the CLI prints)."""
        return self.formatter(run_experiment(self.name, ctx, **knobs))


_REGISTRY: dict[str, Experiment] = {}


def experiment(name: str, summary: str,
               formatter: Callable[[Any], str]) -> Callable:
    """Register the decorated ``run(ctx, **knobs)`` driver under ``name``.

    Registration happens at module import; a duplicate name is a
    programming error and raises immediately.  The decorated function is
    returned unchanged, so modules can still call it directly.
    """

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        if name in _REGISTRY:
            raise ValueError(
                f"experiment {name!r} already registered by "
                f"{_REGISTRY[name].module}")
        _REGISTRY[name] = Experiment(
            name=name, summary=summary, run=fn, formatter=formatter,
            module=fn.__module__)
        return fn

    return decorate


def get_experiment(name: str) -> Experiment:
    """The experiment registered under ``name`` (KeyError if absent)."""
    return _REGISTRY[name]


def all_experiments() -> tuple[Experiment, ...]:
    """Every registered experiment, in registration order."""
    return tuple(_REGISTRY.values())


def experiment_names() -> tuple[str, ...]:
    """Registered names, in registration order."""
    return tuple(_REGISTRY)


def iter_experiments() -> Iterator[Experiment]:
    """Iterate registered experiments in registration order."""
    return iter(_REGISTRY.values())


def run_experiment(name: str, ctx: ExperimentContext | None = None,
                   **knobs: Any) -> Any:
    """Run the registered experiment ``name`` and return its result.

    Builds a default context when none is given, and wraps the run in an
    ``experiment.<name>`` span so traces attribute time per artifact.
    """
    exp = get_experiment(name)
    if ctx is None:
        ctx = ExperimentContext.create()
    with _span(f"experiment.{name}"):
        return exp.run(ctx, **knobs)


def registry_markdown() -> str:
    """The registry as a GitHub-markdown table (``repro list --markdown``).

    README.md's "Experiments" table is generated from this, so docs can
    never drift from the code.
    """
    lines = [
        "| experiment | summary | module |",
        "|---|---|---|",
    ]
    for exp in _REGISTRY.values():
        lines.append(f"| `{exp.name}` | {exp.summary} | "
                     f"`{exp.module.removeprefix('repro.experiments.')}` |")
    return "\n".join(lines)
