"""Fig. 9 / Obs. 6: M3D benefit vs baseline RRAM capacity.

The DNN (ResNet-18, ~12 M parameters) is held fixed while the baseline
on-chip RRAM scales 12 MB -> 128 MB.  Bigger baselines free more silicon
under the arrays, admitting more parallel CSs and larger benefits — the
paper reports 1x at 12 MB rising to 6.8x at 128 MB.
"""

from __future__ import annotations

from repro.core.insights import CapacityPoint, sweep_rram_capacity
from repro.experiments.registry import (
    ExperimentContext,
    experiment,
    warn_deprecated_shim,
)
from repro.experiments.reporting import format_table, times
from repro.runtime.engine import EvaluationEngine
from repro.spec.resolve import build_workload
from repro.tech.pdk import PDK


def format_fig9(points: tuple[CapacityPoint, ...]) -> str:
    """Render the Fig. 9 series."""
    rows = [
        [f"{p.capacity_megabytes:.0f} MB", p.n_cs, times(p.speedup),
         times(p.edp_benefit)]
        for p in points
    ]
    table = format_table(
        "Fig. 9 — RRAM capacity vs M3D benefit, ResNet-18 fixed "
        "(paper: 1x @ 12 MB -> 6.8x @ 128 MB)",
        ["baseline RRAM", "M3D CSs", "speedup", "EDP benefit"],
        rows,
    )
    return table


@experiment("fig9", "Fig. 9 / Obs. 6: RRAM capacity sweep",
            formatter=format_fig9)
def fig9_experiment(ctx: ExperimentContext) -> tuple[CapacityPoint, ...]:
    """Run the capacity sweep (12-128 MB) on the spec's workload."""
    network = build_workload(ctx.design_spec().workload)
    return sweep_rram_capacity(pdk=ctx.pdk, network=network,
                               engine=ctx.engine, jobs=ctx.jobs)


def run_fig9(pdk: PDK | None = None,
             engine: EvaluationEngine | None = None,
             jobs: int | None = None) -> tuple[CapacityPoint, ...]:
    """Deprecated shim: builds a context for :func:`fig9_experiment`."""
    warn_deprecated_shim("run_fig9", "fig9")
    return fig9_experiment(
        ExperimentContext.create(pdk=pdk, engine=engine, jobs=jobs))
