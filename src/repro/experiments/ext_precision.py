"""Extension study: operand precision vs capacity and benefit.

The case study stores 8-bit weights.  Precision couples into the M3D story
twice: lower precision (a) shrinks the weight footprint, letting larger
models meet the iso-capacity constraint (or the same model fit a smaller,
cheaper memory), and (b) reduces per-MAC energy quadratically.  This study
sweeps 4/8/16-bit designs at 64 MB, reporting which Fig. 5 models fit and
the ResNet-18 benefit at each precision.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tech.pdk import PDK
from repro.experiments.registry import (
    ExperimentContext,
    experiment,
    warn_deprecated_shim,
)
from repro.experiments.reporting import format_table, times
from repro.perf.compare import compare_designs
from repro.perf.simulator import simulate
from repro.runtime.engine import EvaluationEngine
from repro.spec.design import ArchSpec, DesignSpec
from repro.spec.resolve import build_workload, resolve
from repro.units import MEGABYTE
from repro.workloads.models import Network, available_networks, build_network


@dataclass(frozen=True)
class PrecisionRow:
    """Result for one operand precision.

    Attributes:
        precision_bits: Weight/activation precision.
        n_cs: M3D CS count (unchanged: area model is capacity-driven).
        models_fitting: Fig. 5-family models whose weights fit 64 MB.
        speedup / energy_benefit / edp_benefit: ResNet-18 benefits.
    """

    precision_bits: int
    n_cs: int
    models_fitting: tuple[str, ...]
    speedup: float
    energy_benefit: float
    edp_benefit: float


def precision_row(
    pdk: PDK,
    bits: int,
    capacity_bits: int,
    network: Network,
) -> PrecisionRow:
    """Evaluate the case-study pair at one operand precision."""
    spec = DesignSpec(arch=ArchSpec(capacity_bits=capacity_bits,
                                    cs="precision-scaled",
                                    precision_bits=bits))
    point = resolve(spec, pdk)
    fitting = tuple(
        name for name in available_networks()
        if build_network(name).weight_bits(bits) <= capacity_bits)
    benefit = compare_designs(
        simulate(point.baseline, network, point.pdk),
        simulate(point.m3d, network, point.pdk),
    )
    return PrecisionRow(
        precision_bits=bits,
        n_cs=point.n_cs_m3d,
        models_fitting=fitting,
        speedup=benefit.speedup,
        energy_benefit=benefit.energy_benefit,
        edp_benefit=benefit.edp_benefit,
    )


def run_precision(
    pdk: PDK | None = None,
    precisions: tuple[int, ...] = (4, 8, 16),
    capacity_bits: int = 64 * MEGABYTE,
    network: Network | None = None,
    engine: EvaluationEngine | None = None,
    jobs: int | None = None,
) -> tuple[PrecisionRow, ...]:
    """Deprecated shim: builds a context for :func:`precision_experiment`."""
    warn_deprecated_shim("run_precision", "ext-precision")
    return precision_experiment(
        ExperimentContext.create(pdk=pdk, engine=engine, jobs=jobs),
        precisions=precisions, capacity_bits=capacity_bits, network=network)


@experiment("ext-precision", "Extension: operand precision sweep",
            formatter=lambda rows: format_precision(rows))
def precision_experiment(
    ctx: ExperimentContext,
    precisions: tuple[int, ...] = (4, 8, 16),
    capacity_bits: int | None = None,
    network: Network | None = None,
) -> tuple[PrecisionRow, ...]:
    """Sweep operand precision at the context spec's capacity.

    ``capacity_bits`` (if given) overrides the context spec's capacity.
    """
    spec = ctx.design_spec()
    if capacity_bits is None:
        capacity_bits = spec.arch.capacity_bits
    network = network if network is not None \
        else build_workload(spec.workload)
    calls = [(ctx.pdk, bits, capacity_bits, network) for bits in precisions]
    return tuple(ctx.engine.map(precision_row, calls,
                                stage="ext_precision.run_precision",
                                jobs=ctx.jobs))


def format_precision(rows: tuple[PrecisionRow, ...]) -> str:
    """Render the precision study."""
    table_rows = [
        [f"{row.precision_bits}-bit", row.n_cs, len(row.models_fitting),
         times(row.speedup), times(row.edp_benefit)]
        for row in rows
    ]
    return format_table(
        "Extension — operand precision at 64 MB (ResNet-18 benefits; "
        "'models' counts Fig. 5-family networks whose weights fit)",
        ["precision", "M3D CSs", "models fitting", "speedup", "EDP benefit"],
        table_rows,
    )
