"""The Sec. II physical design case study (Fig. 2) and Obs. 2 power check.

Runs the full physical flow on both designs and reports the quantities of
Fig. 2: iso footprint, CS counts (1 vs 8), area breakdown, achieved
frequency at the 20 MHz target, wirelength, per-tier power, upper-tier
power fraction (<1%) and peak-power-density ratio (~+1%).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tech.pdk import PDK
from repro.experiments.registry import (
    ExperimentContext,
    experiment,
    warn_deprecated_shim,
)
from repro.experiments.reporting import format_table, percent, times
from repro.physical.flow import FlowResult, run_staged_flows
from repro.runtime.engine import EvaluationEngine
from repro.spec.resolve import resolve
from repro.units import MEGABYTE, to_mm2, to_mw


@dataclass(frozen=True)
class CaseStudyResult:
    """Physical design outcome for the 2D/M3D pair.

    Attributes:
        baseline: 2D flow result.
        m3d: M3D flow result.
    """

    baseline: FlowResult
    m3d: FlowResult

    @property
    def iso_footprint(self) -> bool:
        """True when footprints match (the paper's headline constraint)."""
        return abs(self.baseline.footprint - self.m3d.footprint) \
            <= 1e-6 * self.baseline.footprint

    @property
    def iso_capacity(self) -> bool:
        """True when on-chip memory capacities match."""
        return (self.baseline.design.rram_capacity_bits
                == self.m3d.design.rram_capacity_bits)

    @property
    def cs_gain(self) -> int:
        """Extra parallel CSs unlocked by M3D (paper: 1 -> 8)."""
        return self.m3d.design.n_cs - self.baseline.design.n_cs

    @property
    def peak_density_ratio(self) -> float:
        """M3D/2D peak power density (Obs. 2: ~1.01)."""
        return (self.m3d.power.peak_power_density
                / self.baseline.power.peak_power_density)

    @property
    def upper_tier_fraction(self) -> float:
        """Fraction of M3D power in the BEOL tiers (Obs. 2: <1%)."""
        return self.m3d.power.upper_tier_fraction


def run_case_study(
    pdk: PDK | None = None,
    capacity_bits: int = 64 * MEGABYTE,
    engine: EvaluationEngine | None = None,
    jobs: int | None = None,
) -> CaseStudyResult:
    """Deprecated shim: builds a context for :func:`casestudy_experiment`."""
    warn_deprecated_shim("run_case_study", "casestudy")
    return casestudy_experiment(
        ExperimentContext.create(pdk=pdk, engine=engine, jobs=jobs),
        capacity_bits=capacity_bits)


def format_case_study(result: CaseStudyResult) -> str:
    """Render the Fig. 2 comparison table."""
    rows = []
    for label, flow in (("2D baseline", result.baseline), ("M3D", result.m3d)):
        design = flow.design
        rows.append([
            label,
            design.n_cs,
            f"{to_mm2(flow.footprint):.1f}",
            f"{design.rram_capacity_bits / MEGABYTE:.0f}",
            f"{flow.timing.achieved_frequency / 1e6:.0f}",
            f"{to_mw(flow.power.total):.1f}",
            percent(flow.power.upper_tier_fraction, 2),
            f"{flow.quality['hpwl_metre_bits']:.1f}",
        ])
    table = format_table(
        "Fig. 2 — iso-footprint, iso-capacity physical design case study",
        ["design", "CS", "footprint mm^2", "RRAM MB", "fmax MHz",
         "power mW", "upper-tier P", "HPWL m-bits"],
        rows,
    )
    summary = (
        f"\niso-footprint: {result.iso_footprint}  "
        f"iso-capacity: {result.iso_capacity}  "
        f"CS gain: +{result.cs_gain}  "
        f"peak power density: {times(result.peak_density_ratio, 4)}"
    )
    return table + summary


@experiment("casestudy", "Fig. 2 + Obs. 2: physical design case study",
            formatter=format_case_study)
def casestudy_experiment(ctx: ExperimentContext,
                         capacity_bits: int | None = None) -> CaseStudyResult:
    """Run the flow on the 2D baseline and the iso-footprint M3D design.

    Both designs go through the staged pipeline
    (:func:`~repro.physical.flow.run_staged_flows`) with the spec's
    ``flow`` section, dispatched stage by stage through the evaluation
    engine — a warm cache (memory or ``--cache-dir``) serves repeat runs
    per stage, and ``jobs`` >= 2 runs the two designs concurrently
    within each stage.  ``strict=True`` keeps the historical abort on a
    timing miss.  ``capacity_bits`` (if given) overrides the context
    spec's capacity.
    """
    changes = {} if capacity_bits is None \
        else {"arch.capacity_bits": capacity_bits}
    spec = ctx.design_spec(changes)
    point = resolve(spec, ctx.pdk)
    baseline, m3d = run_staged_flows(
        (point.baseline, point.m3d), point.pdk, flow=spec.flow,
        engine=ctx.engine, jobs=ctx.jobs, strict=True)
    return CaseStudyResult(baseline=baseline.as_result(),
                           m3d=m3d.as_result())
