"""Extension study: computing sub-systems in the BEOL CNFET tier.

The paper's conclusion projects that M3D benefits "will grow with further
performance optimization (e.g., full CMOS on upper layers)".  The case
study uses the CNFET tier only for RRAM access FETs; here we additionally
place CSs built from the (drive-derated) CNFET standard-cell library in
the CNFET-tier area left over beside the memory arrays.

At the case study's relaxed 20 MHz target, a CNFET CS closes timing
comfortably despite the weaker devices (fmax scales with the relative
drive but stays far above 20 MHz), so each upper-tier CS contributes full
throughput — the gain is purely the extra parallelism, and the cost shows
up as upper-tier power (which this study tracks against the thermal
budget).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.tech.pdk import PDK
from repro.arch.accelerator import baseline_2d_design
from repro.core.thermal import ThermalStack, temperature_rise
from repro.experiments.registry import (
    ExperimentContext,
    experiment,
    warn_deprecated_shim,
)
from repro.experiments.reporting import format_table, times
from repro.perf.compare import compare_designs
from repro.perf.simulator import simulate
from repro.runtime.engine import EvaluationEngine
from repro.spec.resolve import resolve
from repro.units import MEGABYTE
from repro.workloads.models import Network


def cnfet_tier_free_area(pdk: PDK, capacity_bits: int) -> float:
    """CNFET-tier area not occupied by memory access FETs, m^2."""
    baseline = baseline_2d_design(pdk, capacity_bits)
    return max(0.0, baseline.area.footprint - baseline.area.cells)


def cnfet_cs_fmax(pdk: PDK) -> float:
    """First-order fmax of a CNFET-tier CS, Hz (logic-depth limited)."""
    nand = pdk.cnfet_library.gate_equivalent
    path = 24 * nand.delay_with_load(2.0 * nand.input_capacitance)
    return 1.0 / path


def extra_cnfet_cs_count(pdk: PDK, capacity_bits: int) -> int:
    """CNFET-tier CSs that fit beside the arrays.

    The upper-tier CS reuses the case-study configuration; CNFET cells have
    the same footprint as Si cells at this node, so the CS area carries
    over.  The SRAM buffers stay per-CS but live in the CNFET tier too
    (BEOL-compatible memories would be used in practice; area-equivalent
    here).
    """
    baseline = baseline_2d_design(pdk, capacity_bits)
    free = cnfet_tier_free_area(pdk, capacity_bits)
    return max(0, math.floor(free / baseline.area.cs_unit))


@dataclass(frozen=True)
class BEOLLogicResult:
    """Outcome of the BEOL-logic extension study.

    Attributes:
        si_cs: CSs in the Si tier (the case-study 8).
        cnfet_cs: Additional CSs in the CNFET tier.
        cnfet_fmax: fmax of a CNFET CS, Hz (must exceed the 20 MHz target).
        speedup / energy_benefit / edp_benefit: ResNet-18 benefits of the
            extended design vs the 2D baseline.
        baseline_edp_benefit: The plain 8-CS M3D benefit, for contrast.
        upper_tier_power_fraction: Chip power now in the upper tiers.
        temperature_rise: Eq. 17 rise with compute in the stack, K.
        thermal_ok: True when inside the 60 K budget.
    """

    si_cs: int
    cnfet_cs: int
    cnfet_fmax: float
    speedup: float
    energy_benefit: float
    edp_benefit: float
    baseline_edp_benefit: float
    upper_tier_power_fraction: float
    temperature_rise: float
    thermal_ok: bool


def run_beol_logic(
    pdk: PDK | None = None,
    capacity_bits: int = 64 * MEGABYTE,
    network: Network | None = None,
    stack: ThermalStack | None = None,
    engine: EvaluationEngine | None = None,
    jobs: int | None = None,
) -> BEOLLogicResult:
    """Deprecated shim: builds a context for :func:`beol_logic_experiment`."""
    warn_deprecated_shim("run_beol_logic", "ext-beol-logic")
    return beol_logic_experiment(
        ExperimentContext.create(pdk=pdk, engine=engine, jobs=jobs),
        capacity_bits=capacity_bits, network=network, stack=stack)


@experiment("ext-beol-logic", "Extension: CSs in the BEOL CNFET tier",
            formatter=lambda result: format_beol_logic(result))
def beol_logic_experiment(
    ctx: ExperimentContext,
    capacity_bits: int | None = None,
    network: Network | None = None,
    stack: ThermalStack | None = None,
) -> BEOLLogicResult:
    """Evaluate the M3D design extended with CNFET-tier CSs.

    ``capacity_bits`` (if given) overrides the context spec's capacity.
    """
    changes = {} if capacity_bits is None \
        else {"arch.capacity_bits": capacity_bits}
    spec = ctx.design_spec(changes)
    capacity_bits = spec.arch.capacity_bits
    point = resolve(spec, ctx.pdk)
    pdk = point.pdk
    network = network if network is not None else point.network
    stack = stack if stack is not None else ThermalStack()
    baseline = point.baseline
    plain_m3d = point.m3d
    extra = extra_cnfet_cs_count(pdk, capacity_bits)
    extended = resolve(
        spec.updated({"arch.n_cs": plain_m3d.n_cs + extra}), ctx.pdk).m3d

    baseline_report, plain_report, extended_report = ctx.engine.map(
        simulate,
        [(baseline, network, pdk), (plain_m3d, network, pdk),
         (extended, network, pdk)],
        stage="ext_beol_logic.simulate", jobs=ctx.jobs)
    plain_benefit = compare_designs(baseline_report, plain_report)
    extended_benefit = compare_designs(baseline_report, extended_report)

    # Power attribution: the CNFET CSs' share of average power moves to the
    # upper tier; Eq. 17 treats the chip as one compute+memory pair with
    # that share dissipated above the Si tier.
    total_power = extended_report.average_power
    upper_share = extra / extended.n_cs
    upper_power = total_power * upper_share
    rise = temperature_rise([total_power - upper_power, upper_power], stack)

    return BEOLLogicResult(
        si_cs=plain_m3d.n_cs,
        cnfet_cs=extra,
        cnfet_fmax=cnfet_cs_fmax(pdk),
        speedup=extended_benefit.speedup,
        energy_benefit=extended_benefit.energy_benefit,
        edp_benefit=extended_benefit.edp_benefit,
        baseline_edp_benefit=plain_benefit.edp_benefit,
        upper_tier_power_fraction=upper_share,
        temperature_rise=rise,
        thermal_ok=rise <= stack.max_rise,
    )


def format_beol_logic(result: BEOLLogicResult) -> str:
    """Render the BEOL-logic study."""
    rows = [
        ["Si-tier CSs (case study)", result.si_cs],
        ["extra CNFET-tier CSs", result.cnfet_cs],
        ["CNFET CS fmax", f"{result.cnfet_fmax / 1e6:.0f} MHz "
                          f"(target 20 MHz)"],
        ["EDP benefit, 8-CS M3D", times(result.baseline_edp_benefit)],
        ["EDP benefit, + BEOL logic", times(result.edp_benefit)],
        ["upper-tier power share", f"{result.upper_tier_power_fraction:.0%}"],
        ["temperature rise", f"{result.temperature_rise:.2f} K "
                             f"(ok={result.thermal_ok})"],
    ]
    return format_table(
        "Extension — computing sub-systems in the BEOL CNFET tier "
        "(the paper's 'full CMOS on upper layers' projection)",
        ["quantity", "value"], rows)
