"""Folding-only M3D: the prior-work baseline the paper's intro contrasts.

Prior RTL-to-GDS M3D studies ([3], [4]) *fold* the existing 2D design into
two tiers — same architecture, iso-on-chip-memory-capacity — and collect
physical-design gains only: ~50% footprint, ~20% wirelength/buffer
reduction, worth ~1.1-1.4x EDP.  The paper's thesis is that the big wins
(5.7x+) need *new architectural design points*, not just folding.

This experiment reproduces both numbers from the same codebase:

* the folded design keeps the single CS but stacks the RRAM above it, so
  the footprint shrinks to max(memory tier, logic tier); wirelength scales
  with sqrt(area), and the wire shares of delay and energy (measured from
  the flow's timing and routing outputs) convert the wirelength saving
  into the folded EDP benefit;
* the architectural M3D design is the usual 8-CS case study.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.tech.pdk import PDK
from repro.experiments.registry import (
    ExperimentContext,
    experiment,
    warn_deprecated_shim,
)
from repro.experiments.reporting import format_table, times
from repro.perf.compare import compare_designs
from repro.perf.simulator import simulate
from repro.physical.flow import run_staged_flow
from repro.runtime.engine import EvaluationEngine
from repro.spec.resolve import resolve
from repro.units import MEGABYTE, to_mm2
from repro.workloads.models import Network

#: Fraction of chip dynamic energy in interconnect at this node class.
WIRE_ENERGY_SHARE = 0.30


@dataclass(frozen=True)
class FoldingResult:
    """Folding-only vs architectural M3D.

    Attributes:
        footprint_2d: 2D baseline footprint, m^2.
        footprint_folded: Folded-M3D footprint, m^2.
        wirelength_ratio: Folded/2D wirelength (sqrt-area scaling).
        wire_delay_share: Wire share of the 2D critical path.
        folded_speedup: Delay benefit of folding at iso-architecture.
        folded_energy_benefit: Energy benefit of folding.
        folded_edp_benefit: EDP benefit of folding (paper: ~1.1-1.4x).
        architectural_edp_benefit: The 8-CS case-study benefit (~5.7x).
    """

    footprint_2d: float
    footprint_folded: float
    wirelength_ratio: float
    wire_delay_share: float
    folded_speedup: float
    folded_energy_benefit: float
    folded_edp_benefit: float
    architectural_edp_benefit: float

    @property
    def footprint_ratio(self) -> float:
        """Folded footprint relative to 2D (prior work: ~0.5)."""
        return self.footprint_folded / self.footprint_2d

    @property
    def architectural_advantage(self) -> float:
        """How much the new design points add over folding alone."""
        return self.architectural_edp_benefit / self.folded_edp_benefit


def run_folding(
    pdk: PDK | None = None,
    capacity_bits: int = 64 * MEGABYTE,
    network: Network | None = None,
    engine: EvaluationEngine | None = None,
    jobs: int | None = None,
) -> FoldingResult:
    """Deprecated shim: builds a context for :func:`folding_experiment`."""
    warn_deprecated_shim("run_folding", "folding")
    return folding_experiment(
        ExperimentContext.create(pdk=pdk, engine=engine, jobs=jobs),
        capacity_bits=capacity_bits, network=network)


@experiment("folding", "Prior-work contrast: folding-only M3D",
            formatter=lambda result: format_folding(result))
def folding_experiment(
    ctx: ExperimentContext,
    capacity_bits: int | None = None,
    network: Network | None = None,
) -> FoldingResult:
    """Evaluate folding-only M3D against the architectural case study.

    ``capacity_bits`` (if given) overrides the context spec's capacity.
    """
    changes = {} if capacity_bits is None \
        else {"arch.capacity_bits": capacity_bits}
    spec = ctx.design_spec(changes)
    point = resolve(spec, ctx.pdk)
    pdk = point.pdk
    network = network if network is not None else point.network

    flow_2d = run_staged_flow(
        point.baseline, pdk, flow=spec.flow,
        engine=ctx.engine, jobs=ctx.jobs, strict=True).as_result()
    baseline = flow_2d.design

    # Folded footprint: the memory tier and the logic tier overlap.
    logic_tier = (baseline.area.cs_unit + baseline.area.peripherals
                  + baseline.area.bus_io)
    folded_footprint = max(baseline.area.cells, logic_tier)
    wl_ratio = math.sqrt(folded_footprint / baseline.area.footprint)

    # Delay: the shorter wires shrink only the wire share of the critical
    # path; clock frequency scales with the inverse of the new path.
    timing = flow_2d.timing
    wire_share = timing.wire_delay / timing.critical_path
    folded_path = (timing.logic_delay + timing.wire_delay * wl_ratio)
    folded_speedup = timing.critical_path / folded_path

    # Energy: the wire share of dynamic energy scales with wirelength.
    folded_energy = 1.0 - WIRE_ENERGY_SHARE * (1.0 - wl_ratio)
    folded_energy_benefit = 1.0 / folded_energy

    base_report, m3d_report = ctx.engine.map(
        simulate,
        [(baseline, network, pdk),
         (point.m3d, network, pdk)],
        stage="folding.simulate", jobs=ctx.jobs)
    architectural = compare_designs(base_report, m3d_report)
    return FoldingResult(
        footprint_2d=baseline.area.footprint,
        footprint_folded=folded_footprint,
        wirelength_ratio=wl_ratio,
        wire_delay_share=wire_share,
        folded_speedup=folded_speedup,
        folded_energy_benefit=folded_energy_benefit,
        folded_edp_benefit=folded_speedup * folded_energy_benefit,
        architectural_edp_benefit=architectural.edp_benefit,
    )


def format_folding(result: FoldingResult) -> str:
    """Render the folding-vs-architecture comparison."""
    rows = [
        ["2D footprint", f"{to_mm2(result.footprint_2d):.0f} mm^2"],
        ["folded M3D footprint",
         f"{to_mm2(result.footprint_folded):.0f} mm^2 "
         f"({result.footprint_ratio:.0%} of 2D)"],
        ["wirelength", f"{result.wirelength_ratio:.0%} of 2D "
                       f"(prior work: ~80%)"],
        ["folded speedup", times(result.folded_speedup)],
        ["folded energy benefit", times(result.folded_energy_benefit)],
        ["folded EDP benefit", f"{times(result.folded_edp_benefit)} "
                               f"(prior work [3-4]: 1.1-1.4x)"],
        ["architectural EDP benefit",
         f"{times(result.architectural_edp_benefit)} (this paper)"],
        ["architecture / folding", times(result.architectural_advantage)],
    ]
    return format_table(
        "Folding-only M3D vs new architectural design points "
        "(the paper's Fig. 1 contrast)",
        ["quantity", "value"], rows)
