"""Fig. 8 / Obs. 5: EDP benefit over the (bandwidth x CS count) plane.

Two abstract workloads bracket the space the paper discusses:

* compute-bound — 16 operations per bit of memory traffic; adding CSs at
  unchanged per-CS bandwidth improves EDP (~2.1x for a doubling);
* memory-bound — 16 bits of traffic per operation; spending the freed
  silicon on bandwidth (memory peripherals) instead of CSs wins (~2.1x for
  halving CSs at doubled per-CS bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.insights import (
    BandwidthCSPoint,
    obs5_compute_bound_ratio,
    obs5_memory_bound_ratio,
    sweep_bandwidth_vs_cs,
)
from repro.experiments.registry import (
    ExperimentContext,
    experiment,
    warn_deprecated_shim,
)
from repro.experiments.reporting import format_table, times


@dataclass(frozen=True)
class Fig8Result:
    """The Fig. 8 grids plus the two Obs. 5 headline ratios.

    Attributes:
        compute_bound: Grid for the 16 ops/bit workload.
        memory_bound: Grid for the 16 bits/op workload.
        compute_bound_doubling: EDP gain from 2x CSs (paper ~2.1x).
        memory_bound_rebalance: EDP gain from 2x per-CS bandwidth at half
            the CSs (paper ~2.1x).
    """

    compute_bound: tuple[BandwidthCSPoint, ...]
    memory_bound: tuple[BandwidthCSPoint, ...]
    compute_bound_doubling: float
    memory_bound_rebalance: float


def _fig8_result() -> Fig8Result:
    """Produce both Fig. 8 grids and the Obs. 5 ratios."""
    return Fig8Result(
        compute_bound=sweep_bandwidth_vs_cs(intensity_ops_per_bit=16.0),
        memory_bound=sweep_bandwidth_vs_cs(intensity_ops_per_bit=1.0 / 16.0),
        compute_bound_doubling=obs5_compute_bound_ratio(),
        memory_bound_rebalance=obs5_memory_bound_ratio(),
    )


def run_fig8() -> Fig8Result:
    """Deprecated shim for :func:`fig8_experiment`."""
    warn_deprecated_shim("run_fig8", "fig8")
    return _fig8_result()


def _grid_table(title: str, grid: tuple[BandwidthCSPoint, ...]) -> str:
    n_values = sorted({p.n_cs for p in grid})
    bw_values = sorted({p.bandwidth_factor for p in grid})
    lookup = {(p.n_cs, p.bandwidth_factor): p.edp_benefit for p in grid}
    rows = []
    for n_cs in n_values:
        rows.append([f"N={n_cs}"] + [
            times(lookup[(n_cs, bw)]) for bw in bw_values])
    headers = ["", *[f"B/CS x{bw:g}" for bw in bw_values]]
    return format_table(title, headers, rows)


def format_fig8(result: Fig8Result) -> str:
    """Render both grids and the headline Obs. 5 ratios."""
    parts = [
        _grid_table("Fig. 8a — EDP benefit vs 2D, compute-bound workload "
                    "(16 ops/bit)", result.compute_bound),
        "",
        _grid_table("Fig. 8b — EDP benefit vs 2D, memory-bound workload "
                    "(16 bits/op)", result.memory_bound),
        "",
        f"Obs. 5: compute-bound, 2x CSs at same per-CS bandwidth -> "
        f"{times(result.compute_bound_doubling)} better EDP (paper ~2.1x)",
        f"Obs. 5: memory-bound, half CSs at 2x per-CS bandwidth -> "
        f"{times(result.memory_bound_rebalance)} better EDP (paper ~2.1x)",
    ]
    return "\n".join(parts)


@experiment("fig8", "Fig. 8 / Obs. 5: bandwidth vs CS count",
            formatter=format_fig8)
def fig8_experiment(ctx: ExperimentContext) -> Fig8Result:
    """Fig. 8 is analytical (abstract workloads) — the context is unused."""
    return _fig8_result()
