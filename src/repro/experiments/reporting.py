"""Plain-text table rendering for experiment outputs.

The benchmark harness prints the same rows/series the paper's tables and
figures report; this module renders them as aligned ASCII tables so the
``--benchmark-only`` output is directly comparable to the paper.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.errors import require

if TYPE_CHECKING:
    from repro.obs.trace import SpanSummary
    from repro.runtime.engine import RunReport


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Render an aligned ASCII table with a title line."""
    require(len(headers) > 0, "need at least one column")
    cells = [[str(value) for value in row] for row in rows]
    for row in cells:
        require(len(row) == len(headers), "row width must match headers")
    widths = [len(header) for header in headers]
    for row in cells:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines = [title]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def times(value: float, digits: int = 2) -> str:
    """Format a benefit ratio the way the paper writes it, e.g. ``5.66x``."""
    return f"{value:.{digits}f}x"


def percent(value: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string."""
    return f"{value * 100:.{digits}f}%"


def _rate(hits: int, lookups: int) -> str:
    """Hit-rate cell: ``hits/lookups`` as a percentage, or ``-``."""
    if lookups <= 0:
        return "-"
    return percent(hits / lookups, 0)


def format_run_report(report: "RunReport") -> str:
    """Render an engine :class:`~repro.runtime.engine.RunReport`.

    One row per stage (calls, cache hits/misses, in-batch dedup hits,
    evaluated count, retries, recorded failures, wall time) plus
    per-table memo hit rates, search counters, and a greppable summary
    line — ``total: C calls, H hits, M misses, E evaluated, R retries,
    F failed, T s`` — whose leading fields the CI cache-smoke job
    matches on (a fully warm run shows ``, 0 misses,``).
    """
    rows = [
        [stage.name, stage.calls, stage.cache_hits, stage.cache_misses,
         stage.dedup_hits, stage.evaluated, stage.retries, stage.failures,
         _rate(stage.cache_hits + stage.dedup_hits, stage.calls),
         f"{stage.wall_time:.3f} s"]
        for stage in report.stages
    ]
    table = format_table(
        f"Evaluation runtime — {report.jobs} job(s)",
        ["stage", "calls", "hits", "misses", "dedup", "evaluated",
         "retries", "failed", "hit rate", "wall time"],
        rows,
    )
    sections = [table]
    memos = [memo for memo in report.memos if memo.lookups]
    if memos:
        sections.append(format_table(
            "Memo tables",
            ["table", "hits", "misses", "entries", "hit rate"],
            [[memo.name, memo.hits, memo.misses, memo.entries,
              _rate(memo.hits, memo.lookups)] for memo in memos],
        ))
    counters = [counter for counter in report.counters if counter.values]
    if counters:
        sections.append(format_table(
            "Counters",
            ["counter", "value"],
            [[f"{counter.name}.{key}", value]
             for counter in counters
             for key, value in counter.values],
        ))
    summary = (f"\ntotal: {report.calls} calls, {report.cache_hits} hits, "
               f"{report.cache_misses} misses, {report.evaluated} evaluated, "
               f"{report.retries} retries, {report.failures} failed, "
               f"{report.wall_time:.3f} s")
    return "\n\n".join(sections) + summary


def format_top_spans(summaries: "Sequence[SpanSummary]") -> str:
    """Render trace-span aggregates (``repro <exp> --profile``).

    One row per span name: call count, total wall time (including
    children), self time (excluding children), and mean per call.
    """
    rows = [
        [summary.name, summary.count, f"{summary.total:.3f} s",
         f"{summary.self_time:.3f} s", f"{summary.mean * 1e3:.2f} ms"]
        for summary in summaries
    ]
    return format_table(
        "Top spans by total wall time",
        ["span", "count", "total", "self", "mean/call"],
        rows,
    )
