"""Plain-text table rendering for experiment outputs.

The benchmark harness prints the same rows/series the paper's tables and
figures report; this module renders them as aligned ASCII tables so the
``--benchmark-only`` output is directly comparable to the paper.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import require


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Render an aligned ASCII table with a title line."""
    require(len(headers) > 0, "need at least one column")
    cells = [[str(value) for value in row] for row in rows]
    for row in cells:
        require(len(row) == len(headers), "row width must match headers")
    widths = [len(header) for header in headers]
    for row in cells:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines = [title]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def times(value: float, digits: int = 2) -> str:
    """Format a benefit ratio the way the paper writes it, e.g. ``5.66x``."""
    return f"{value:.{digits}f}x"


def percent(value: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string."""
    return f"{value * 100:.{digits}f}%"
