"""Plain-text table rendering for experiment outputs.

The benchmark harness prints the same rows/series the paper's tables and
figures report; this module renders them as aligned ASCII tables so the
``--benchmark-only`` output is directly comparable to the paper.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.errors import require

if TYPE_CHECKING:
    from repro.runtime.engine import RunReport


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Render an aligned ASCII table with a title line."""
    require(len(headers) > 0, "need at least one column")
    cells = [[str(value) for value in row] for row in rows]
    for row in cells:
        require(len(row) == len(headers), "row width must match headers")
    widths = [len(header) for header in headers]
    for row in cells:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines = [title]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def times(value: float, digits: int = 2) -> str:
    """Format a benefit ratio the way the paper writes it, e.g. ``5.66x``."""
    return f"{value:.{digits}f}x"


def percent(value: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string."""
    return f"{value * 100:.{digits}f}%"


def format_run_report(report: "RunReport") -> str:
    """Render an engine :class:`~repro.runtime.engine.RunReport`.

    One row per stage (calls, cache hits/misses, evaluated count, wall
    time) plus a greppable summary line —
    ``total: C calls, H hits, M misses, E evaluated, T s`` — which the CI
    cache-smoke job matches on (a fully warm run shows ``, 0 misses,``).
    """
    rows = [
        [stage.name, stage.calls, stage.cache_hits, stage.cache_misses,
         stage.evaluated, f"{stage.wall_time:.3f} s"]
        for stage in report.stages
    ]
    table = format_table(
        f"Evaluation runtime — {report.jobs} job(s)",
        ["stage", "calls", "hits", "misses", "evaluated", "wall time"],
        rows,
    )
    summary = (f"\ntotal: {report.calls} calls, {report.cache_hits} hits, "
               f"{report.cache_misses} misses, {report.evaluated} evaluated, "
               f"{report.wall_time:.3f} s")
    return table + summary
