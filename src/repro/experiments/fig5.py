"""Fig. 5: whole-model benefits for AlexNet / VGG / ResNet inference.

The paper reports 5.7x-7.5x speedup at ~0.99x energy (hence 5.7x-7.5x EDP)
for the iso-footprint, iso-capacity M3D accelerator across AI/ML models.
VGG-16's 138 M-parameter classifier head cannot be stored in the 64 MB
on-chip RRAM at 8-bit precision, so the compact-classifier variant
(``vgg16c``) stands in — see EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tech.pdk import PDK
from repro.experiments.registry import (
    ExperimentContext,
    experiment,
    warn_deprecated_shim,
)
from repro.experiments.reporting import format_table, times
from repro.perf.compare import compare_designs
from repro.perf.simulator import simulate
from repro.runtime.engine import EvaluationEngine
from repro.spec.resolve import resolve
from repro.units import MEGABYTE
from repro.workloads.models import build_network

#: The Fig. 5 model set (vgg16c substitutes VGG-16; see module docstring).
FIG5_NETWORKS: tuple[str, ...] = (
    "alexnet", "vgg16c", "resnet18", "resnet34", "resnet50", "resnet152",
)


@dataclass(frozen=True)
class Fig5Row:
    """One Fig. 5 bar group.

    Attributes:
        network: Model name.
        speedup: T_2D / T_3D.
        energy_benefit: E_2D / E_3D.
        edp_benefit: Product of the two.
    """

    network: str
    speedup: float
    energy_benefit: float
    edp_benefit: float


def run_fig5(
    pdk: PDK | None = None,
    networks: tuple[str, ...] = FIG5_NETWORKS,
    capacity_bits: int = 64 * MEGABYTE,
    engine: EvaluationEngine | None = None,
    jobs: int | None = None,
) -> tuple[Fig5Row, ...]:
    """Deprecated shim: builds a context for :func:`fig5_experiment`."""
    warn_deprecated_shim("run_fig5", "fig5")
    return fig5_experiment(
        ExperimentContext.create(pdk=pdk, engine=engine, jobs=jobs),
        networks=networks, capacity_bits=capacity_bits)


def format_fig5(rows: tuple[Fig5Row, ...]) -> str:
    """Render the Fig. 5 series."""
    table_rows = [
        [row.network, times(row.speedup), times(row.energy_benefit),
         times(row.edp_benefit)]
        for row in rows
    ]
    spread = (min(r.edp_benefit for r in rows), max(r.edp_benefit for r in rows))
    table = format_table(
        "Fig. 5 — iso-footprint, iso-capacity M3D benefits per model "
        "(paper: 5.7x-7.5x EDP at ~0.99x energy)",
        ["model", "speedup", "energy", "EDP benefit"],
        table_rows,
    )
    return table + f"\nEDP benefit range: {times(spread[0])} - {times(spread[1])}"


@experiment("fig5", "Fig. 5: whole-model benefits", formatter=format_fig5)
def fig5_experiment(
    ctx: ExperimentContext,
    networks: tuple[str, ...] = FIG5_NETWORKS,
    capacity_bits: int | None = None,
) -> tuple[Fig5Row, ...]:
    """Simulate every Fig. 5 model on the 2D/M3D design pair.

    All 2 * len(networks) simulations run as one engine batch, so repeats
    hit the cache and ``jobs`` >= 2 spreads models across workers.
    ``capacity_bits`` (if given) overrides the context spec's capacity.
    """
    changes = {} if capacity_bits is None \
        else {"arch.capacity_bits": capacity_bits}
    point = resolve(ctx.design_spec(changes), ctx.pdk)
    built = [build_network(name) for name in networks]
    specs = []
    for network in built:
        specs.append((point.baseline, network, point.pdk))
        specs.append((point.m3d, network, point.pdk))
    reports = ctx.engine.map(simulate, specs, stage="fig5.simulate",
                             jobs=ctx.jobs)
    rows: list[Fig5Row] = []
    for i, name in enumerate(networks):
        benefit = compare_designs(reports[2 * i], reports[2 * i + 1])
        rows.append(Fig5Row(
            network=name,
            speedup=benefit.speedup,
            energy_benefit=benefit.energy_benefit,
            edp_benefit=benefit.edp_benefit,
        ))
    return tuple(rows)
