"""Fig. 10 and Obs. 7-10: FET-width, via-pitch, tier-count, thermal studies.

* :func:`run_fig10c` — Case 1 (Obs. 7): EDP benefit vs BEOL access-FET
  width relaxation delta (paper: flat to 1.6x, small benefits to 2.5x).
* :func:`run_obs8` — Case 2 (Obs. 8): EDP benefit vs ILV pitch beta
  (paper: unchanged to 1.3x, limited-to-none at 1.6x+).
* :func:`run_fig10d` — Case 3 (Obs. 9): EDP benefit vs interleaved tier
  pairs (paper: 5.7 -> 6.9 -> plateau ~7.1 for ResNet-18; a highly
  parallel single layer approaches ~23x).
* :func:`run_obs10` — Eq. 17 (Obs. 10): maximum tier pairs inside a 60 K
  budget for representative per-tier powers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.multitier import MultiTierResult, sweep_tiers
from repro.core.relaxed_fet import RelaxedFETResult, sweep_fet_width
from repro.core.thermal import ThermalStack, max_tier_pairs, temperature_rise
from repro.core.via_pitch import ViaPitchResult, sweep_via_pitch
from repro.experiments.registry import (
    ExperimentContext,
    experiment,
    warn_deprecated_shim,
)
from repro.experiments.reporting import format_table, times
from repro.runtime.engine import EvaluationEngine
from repro.spec.resolve import build_workload
from repro.tech.pdk import PDK


def run_fig10c(pdk: PDK | None = None,
               engine: EvaluationEngine | None = None,
               jobs: int | None = None,
               ) -> tuple[RelaxedFETResult, ...]:
    """Deprecated shim: builds a context for :func:`fig10c_experiment`."""
    warn_deprecated_shim("run_fig10c", "fig10c")
    return fig10c_experiment(
        ExperimentContext.create(pdk=pdk, engine=engine, jobs=jobs))


def format_fig10c(results: tuple[RelaxedFETResult, ...]) -> str:
    """Render the Fig. 10c series."""
    rows = [
        [f"{r.delta:.2f}", r.n_cs_2d, r.n_cs_m3d, times(r.speedup),
         times(r.edp_benefit)]
        for r in results
    ]
    return format_table(
        "Fig. 10c — EDP benefit vs relaxed M3D access-FET width "
        "(paper: no loss to 1.6x, small benefits to 2.5x)",
        ["delta", "2D CSs", "M3D CSs", "speedup", "EDP benefit"],
        rows,
    )


@experiment("fig10c", "Fig. 10c / Obs. 7: access-FET width relaxation",
            formatter=format_fig10c)
def fig10c_experiment(ctx: ExperimentContext) -> tuple[RelaxedFETResult, ...]:
    """Case 1 sweep over the access-FET width relaxation delta."""
    spec = ctx.design_spec()
    return sweep_fet_width(pdk=ctx.pdk,
                           network=build_workload(spec.workload),
                           capacity_bits=spec.arch.capacity_bits,
                           engine=ctx.engine, jobs=ctx.jobs)


def run_obs8(pdk: PDK | None = None,
             engine: EvaluationEngine | None = None,
             jobs: int | None = None,
             ) -> tuple[ViaPitchResult, ...]:
    """Deprecated shim: builds a context for :func:`obs8_experiment`."""
    warn_deprecated_shim("run_obs8", "obs8")
    return obs8_experiment(
        ExperimentContext.create(pdk=pdk, engine=engine, jobs=jobs))


def format_obs8(results: tuple[ViaPitchResult, ...]) -> str:
    """Render the Obs. 8 series."""
    rows = [
        [f"{r.beta:.2f}", f"{r.effective_delta:.2f}", r.n_cs_2d, r.n_cs_m3d,
         times(r.edp_benefit)]
        for r in results
    ]
    return format_table(
        "Obs. 8 — EDP benefit vs M3D via pitch "
        "(paper: unchanged to 1.3x, limited benefit at 1.6x+)",
        ["beta", "cell growth", "2D CSs", "M3D CSs", "EDP benefit"],
        rows,
    )


@experiment("obs8", "Obs. 8: ILV via pitch sweep", formatter=format_obs8)
def obs8_experiment(ctx: ExperimentContext) -> tuple[ViaPitchResult, ...]:
    """Case 2 sweep over the ILV pitch beta."""
    spec = ctx.design_spec()
    return sweep_via_pitch(pdk=ctx.pdk,
                           network=build_workload(spec.workload),
                           capacity_bits=spec.arch.capacity_bits,
                           engine=ctx.engine, jobs=ctx.jobs)


@dataclass(frozen=True)
class Fig10dResult:
    """Tier sweep plus the highly parallel single-layer headline.

    Attributes:
        network_sweep: Whole-network (ResNet-18) results per tier pair.
        parallel_layer_sweep: Single-layer (L4.1 CONV2) results.
    """

    network_sweep: tuple[MultiTierResult, ...]
    parallel_layer_sweep: tuple[MultiTierResult, ...]


def run_fig10d(pdk: PDK | None = None, max_pairs: int = 6,
               engine: EvaluationEngine | None = None,
               jobs: int | None = None) -> Fig10dResult:
    """Deprecated shim: builds a context for :func:`fig10d_experiment`."""
    warn_deprecated_shim("run_fig10d", "fig10d")
    return fig10d_experiment(
        ExperimentContext.create(pdk=pdk, engine=engine, jobs=jobs),
        max_pairs=max_pairs)


def format_fig10d(result: Fig10dResult) -> str:
    """Render the Fig. 10d series."""
    rows = []
    for net_point, layer_point in zip(result.network_sweep,
                                      result.parallel_layer_sweep):
        rows.append([
            net_point.pairs, net_point.n_cs,
            times(net_point.edp_benefit),
            times(layer_point.edp_benefit),
            f"{net_point.temperature_rise:.2f} K",
        ])
    return format_table(
        "Fig. 10d — EDP benefit vs interleaved compute+memory tier pairs "
        "(paper: 5.7 -> 6.9 -> ~7.1 plateau; parallel layer -> ~23x)",
        ["pairs Y", "total CSs", "ResNet-18 EDP", "L4.1 CONV2 EDP",
         "temp rise"],
        rows,
    )


@experiment("fig10d", "Fig. 10d / Obs. 9: interleaved tier pairs",
            formatter=format_fig10d)
def fig10d_experiment(ctx: ExperimentContext,
                      max_pairs: int = 6) -> Fig10dResult:
    """Case 3 sweep for the spec's network and its most parallel layer."""
    spec = ctx.design_spec()
    network = build_workload(spec.workload)
    single = build_workload(
        spec.updated({"workload.layer": "L4.1 CONV2"}).workload)
    capacity = spec.arch.capacity_bits
    return Fig10dResult(
        network_sweep=sweep_tiers(max_pairs, pdk=ctx.pdk, network=network,
                                  capacity_bits=capacity,
                                  engine=ctx.engine, jobs=ctx.jobs),
        parallel_layer_sweep=sweep_tiers(max_pairs, pdk=ctx.pdk,
                                         network=single,
                                         capacity_bits=capacity,
                                         engine=ctx.engine,
                                         jobs=ctx.jobs),
    )


@dataclass(frozen=True)
class Obs10Row:
    """Thermal ceiling for one per-tier power level.

    Attributes:
        power_per_pair: Power of each tier pair, watts.
        max_pairs: Largest stack inside the 60 K budget.
        rise_at_max: Temperature rise of that stack, K.
    """

    power_per_pair: float
    max_pairs: int
    rise_at_max: float


def run_obs10(
    powers: tuple[float, ...] = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0),
    stack: ThermalStack | None = None,
) -> tuple[Obs10Row, ...]:
    """Deprecated shim for :func:`obs10_experiment`."""
    warn_deprecated_shim("run_obs10", "obs10")
    return _obs10_rows(powers, stack)


def _obs10_rows(
    powers: tuple[float, ...] = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0),
    stack: ThermalStack | None = None,
) -> tuple[Obs10Row, ...]:
    """Obs. 10: tier ceiling vs per-tier power at HPC-class dissipation."""
    stack = stack if stack is not None else ThermalStack()
    rows: list[Obs10Row] = []
    for power in powers:
        pairs = max_tier_pairs(power, stack)
        rise = temperature_rise([power] * pairs, stack) if pairs else float("inf")
        rows.append(Obs10Row(power_per_pair=power, max_pairs=pairs,
                             rise_at_max=rise))
    return tuple(rows)


def format_obs10(rows: tuple[Obs10Row, ...]) -> str:
    """Render the Obs. 10 ceiling table."""
    table_rows = [
        [f"{row.power_per_pair:.0f} W", row.max_pairs,
         f"{row.rise_at_max:.1f} K"]
        for row in rows
    ]
    return format_table(
        "Obs. 10 — maximum interleaved tier pairs within a 60 K rise "
        "(Eq. 17)",
        ["power per pair", "max pairs", "rise at max"],
        table_rows,
    )


@experiment("obs10", "Obs. 10: thermal tier ceiling", formatter=format_obs10)
def obs10_experiment(ctx: ExperimentContext) -> tuple[Obs10Row, ...]:
    """Obs. 10 is analytical (Eq. 17 only) — the context is unused."""
    return _obs10_rows()
