"""Obs. 3: a non-BEOL-compatible (SRAM) 2D baseline is even worse for 2D.

If the 2D baseline used a Si-CMOS SRAM that is ~2x less dense than RRAM,
its memory area — and hence the silicon an M3D design frees — doubles.
The paper reports the M3D design then fits 16 CSs instead of 8, raising
the ResNet-18 EDP benefit from 5.7x to 6.8x; RRAM-based baselines therefore
make the reported M3D benefits conservative.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.tech.pdk import PDK
from repro.arch.accelerator import peripheral_area
from repro.experiments.registry import (
    ExperimentContext,
    experiment,
    warn_deprecated_shim,
)
from repro.experiments.reporting import format_table, times
from repro.perf.compare import compare_designs
from repro.perf.simulator import simulate
from repro.runtime.engine import EvaluationEngine
from repro.spec.resolve import resolve
from repro.units import MEGABYTE
from repro.workloads.models import Network


@dataclass(frozen=True)
class Obs3Row:
    """One density-ratio point.

    Attributes:
        density_ratio: Baseline memory bit-cell area relative to RRAM's
            (2.0 = the paper's "2x less dense SRAM").
        n_cs: M3D CSs the doubled freed area admits.
        speedup: ResNet-18 speedup at that CS count.
        edp_benefit: ResNet-18 EDP benefit at that CS count.
    """

    density_ratio: float
    n_cs: int
    speedup: float
    edp_benefit: float


def run_obs3(
    pdk: PDK | None = None,
    density_ratios: tuple[float, ...] = (1.0, 1.5, 2.0),
    network: Network | None = None,
    capacity_bits: int = 64 * MEGABYTE,
    engine: EvaluationEngine | None = None,
    jobs: int | None = None,
) -> tuple[Obs3Row, ...]:
    """Deprecated shim: builds a context for :func:`obs3_experiment`."""
    warn_deprecated_shim("run_obs3", "obs3")
    return obs3_experiment(
        ExperimentContext.create(pdk=pdk, engine=engine, jobs=jobs),
        density_ratios=density_ratios, network=network,
        capacity_bits=capacity_bits)


def format_obs3(rows: tuple[Obs3Row, ...]) -> str:
    """Render the Obs. 3 comparison."""
    table_rows = [
        [f"{row.density_ratio:.1f}x", row.n_cs, times(row.speedup),
         times(row.edp_benefit)]
        for row in rows
    ]
    return format_table(
        "Obs. 3 — less dense (SRAM-like) 2D baselines enable more M3D CSs "
        "(paper: 2x less dense -> 16 CSs -> 6.8x)",
        ["baseline cell area", "M3D CSs", "speedup", "EDP benefit"],
        table_rows,
    )


@experiment("obs3", "Obs. 3: SRAM-class 2D baseline", formatter=format_obs3)
def obs3_experiment(
    ctx: ExperimentContext,
    density_ratios: tuple[float, ...] = (1.0, 1.5, 2.0),
    network: Network | None = None,
    capacity_bits: int | None = None,
) -> tuple[Obs3Row, ...]:
    """Sweep the baseline memory density ratio (1.0 = RRAM baseline).

    The shared-baseline simulation and every per-ratio M3D simulation run
    as one engine batch (the repeated baseline deduplicates).
    ``capacity_bits`` (if given) overrides the context spec's capacity.
    """
    changes = {} if capacity_bits is None \
        else {"arch.capacity_bits": capacity_bits}
    spec = ctx.design_spec(changes)
    point = resolve(spec, ctx.pdk)
    pdk = point.pdk
    network = network if network is not None else point.network
    baseline = point.baseline
    cs_area = baseline.area.cs_unit
    perif = peripheral_area(pdk)
    counts: list[int] = []
    specs = [(baseline, network, pdk)]
    for ratio in density_ratios:
        freed = baseline.area.cells * ratio - perif
        n_cs = 1 + max(0, math.floor(freed / cs_area))
        counts.append(n_cs)
        m3d = resolve(spec.updated({"arch.n_cs": n_cs}), ctx.pdk).m3d
        specs.append((m3d, network, pdk))
    reports = ctx.engine.map(simulate, specs, stage="obs3.simulate",
                             jobs=ctx.jobs)
    base_report = reports[0]
    rows: list[Obs3Row] = []
    for ratio, n_cs, m3d_report in zip(density_ratios, counts, reports[1:]):
        benefit = compare_designs(base_report, m3d_report)
        rows.append(Obs3Row(
            density_ratio=ratio,
            n_cs=n_cs,
            speedup=benefit.speedup,
            edp_benefit=benefit.edp_benefit,
        ))
    return tuple(rows)
