"""Fig. 7 / Table II: six accelerator architectures, two evaluators.

For each Table II architecture the experiment:

1. sizes the CS (PE logic + registers + local/global SRAM) with the PDK's
   area models and derives the iso-footprint M3D CS count N from the
   256 MB RRAM freed area (Eq. 2 with the peripheral blockage);
2. evaluates AlexNet inference 2D (N = 1, single weight channel) vs M3D
   (N CSs, private channels) with **two independent tools**: the
   ZigZag-style mapper (:mod:`repro.mapper`) and the analytical framework
   applied per layer;
3. reports speedup / energy / EDP benefits from both and their agreement.

The paper reports 5.3x-11.5x EDP benefits across the architectures and
agreement within 10% between its analytical model and ZigZag.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.tech import constants
from repro.tech.pdk import PDK, foundry_m3d_pdk
from repro.tech.rram import RRAMArray
from repro.arch.accelerator import (
    DEFAULT_BANK_WIDTH_BITS,
    DEFAULT_FREQUENCY_HZ,
    DEFAULT_WRITEBACK_BUS_BITS,
    derive_parallel_cs_count,
    peripheral_area,
)
from repro.arch.table2 import ArchitectureSpec, table_ii_architectures
from repro.experiments.registry import (
    ExperimentContext,
    experiment,
    warn_deprecated_shim,
)
from repro.experiments.reporting import format_table, percent, times
from repro.runtime.engine import EvaluationEngine
from repro.mapper.cost import CostModel
from repro.mapper.engine import MapperEngine, arch_static_power
from repro.mapper.loopnest import loop_nest_of
from repro.workloads.layers import LayerKind
from repro.workloads.models import Network, alexnet


def arch_cs_area(arch: ArchitectureSpec, pdk: PDK) -> float:
    """Silicon footprint of one CS of a Table II architecture, m^2."""
    pe_gates = arch.spatial.pe_count * constants.PE_GATE_COUNT
    logic = pdk.silicon_library.area_for_gates(pe_gates)
    memories = arch.hierarchy.silicon_area(pdk)
    return logic + memories


#: Practical ceiling on parallel CSs for the normalized Fig. 7 chips: the
#: chip-level interconnect provisions 12 weight channels.  Table II does not
#: publish per-architecture CS counts, so this is a calibration choice (see
#: DESIGN.md); the paper's own studies deploy at most 16 CSs (Obs. 3).
MAX_PARALLEL_CS = 12


def arch_n_cs(arch: ArchitectureSpec, pdk: PDK) -> int:
    """Iso-footprint M3D CS count for a Table II architecture.

    The freed-area bound (Eq. 2) is clamped by the channel-count ceiling of
    the chip-level interconnect.
    """
    cells = RRAMArray(cell=pdk.rram_cell,
                      capacity_bits=arch.rram_capacity_bits, ilv=None).area
    by_area = derive_parallel_cs_count(
        cells_area=cells,
        peripherals_area=peripheral_area(pdk),
        cs_area=arch_cs_area(arch, pdk),
    )
    return min(by_area, MAX_PARALLEL_CS)


@dataclass(frozen=True)
class _Evaluation:
    """Runtime/energy of one chip configuration under one evaluator."""

    runtime: float
    energy: float

    @property
    def edp(self) -> float:
        return self.runtime * self.energy


def _analytical_eval(arch: ArchitectureSpec, network: Network, n_cs: int,
                     pdk: PDK, frequency_hz: float) -> _Evaluation:
    """Per-layer analytical (roofline) evaluation of one configuration."""
    cost_model = CostModel(arch)
    cycle_time = 1.0 / frequency_hz
    static = arch_static_power(arch, pdk, n_cs)
    peak = arch.spatial.pe_count
    total_cycles = 0.0
    total_energy = 0.0
    for layer in network.layers:
        if layer.kind == LayerKind.POOL:
            tiles = max(1, math.ceil(layer.out_channels / 16))
            used = min(n_cs, tiles)
            compute = layer.macs / 16 / used
        else:
            nest = loop_nest_of(layer)
            util = cost_model.utilization(nest)
            tiles = max(1, math.ceil(layer.out_channels / arch.spatial.k))
            used = min(n_cs, tiles)
            compute = layer.macs / (used * peak * util)
        transfer = layer.output_elements * 8 / DEFAULT_WRITEBACK_BUS_BITS
        # Weight-channel roofline (Eq. 1/4 data term): each used CS streams
        # its weight slice over a 256-bit channel (one shared channel at
        # N = 1, private channels in M3D).
        weight_stream = layer.weights * 8 / (DEFAULT_BANK_WIDTH_BITS * used)
        cycles = max(compute, transfer, weight_stream)
        weights = (layer.weights * 8 * constants.RRAM_READ_ENERGY_PER_BIT)
        ops = layer.macs * (constants.MAC8_ENERGY_130NM
                            + 24 * constants.REGISTER_ENERGY_PER_BIT)
        idle = static * cycles * cycle_time
        total_cycles += cycles
        total_energy += weights + ops + idle
    return _Evaluation(runtime=total_cycles * cycle_time, energy=total_energy)


def _mapper_eval(arch: ArchitectureSpec, network: Network, n_cs: int,
                 pdk: PDK, frequency_hz: float,
                 shared_channel: bool) -> _Evaluation:
    """Mapper (ZigZag-style) evaluation of one configuration."""
    engine = MapperEngine(arch, pdk, n_cs=n_cs, frequency_hz=frequency_hz,
                          shared_weight_channel=shared_channel)
    report = engine.map_network(network)
    return _Evaluation(runtime=report.runtime, energy=report.energy)


@dataclass(frozen=True)
class Fig7Row:
    """One Fig. 7 architecture result.

    Attributes:
        arch: The evaluated architecture.
        n_cs: Derived M3D CS count.
        mapper_speedup / mapper_energy / mapper_edp: Mapper-evaluated
            benefits of M3D over 2D.
        analytic_speedup / analytic_energy / analytic_edp: Framework-
            evaluated benefits.
    """

    arch: ArchitectureSpec
    n_cs: int
    mapper_speedup: float
    mapper_energy: float
    mapper_edp: float
    analytic_speedup: float
    analytic_energy: float
    analytic_edp: float

    @property
    def edp_disagreement(self) -> float:
        """|analytic - mapper| / mapper on the EDP benefit (paper: <10%)."""
        return abs(self.analytic_edp - self.mapper_edp) / self.mapper_edp


def run_fig7(
    pdk: PDK | None = None,
    network: Network | None = None,
    frequency_hz: float = DEFAULT_FREQUENCY_HZ,
    engine: EvaluationEngine | None = None,
    jobs: int | None = None,
) -> tuple[Fig7Row, ...]:
    """Deprecated shim: builds a context for :func:`fig7_experiment`."""
    warn_deprecated_shim("run_fig7", "fig7")
    return fig7_experiment(
        ExperimentContext.create(pdk=pdk, engine=engine, jobs=jobs),
        network=network, frequency_hz=frequency_hz)


@experiment("fig7", "Fig. 7: Table II architectures, two evaluators",
            formatter=lambda rows: format_fig7(rows))
def fig7_experiment(
    ctx: ExperimentContext,
    network: Network | None = None,
    frequency_hz: float = DEFAULT_FREQUENCY_HZ,
) -> tuple[Fig7Row, ...]:
    """Evaluate every Table II architecture with both tools.

    The 2 * |archs| mapper evaluations (the expensive half) run as one
    engine batch; the cheap analytical passes run as a second batch.
    """
    pdk = ctx.pdk
    network = network if network is not None else alexnet()
    archs = table_ii_architectures()
    counts = [arch_n_cs(arch, pdk) for arch in archs]
    mapper_specs = []
    analytic_specs = []
    for arch, n_cs in zip(archs, counts):
        mapper_specs.append((arch, network, 1, pdk, frequency_hz, False))
        mapper_specs.append((arch, network, n_cs, pdk, frequency_hz, False))
        analytic_specs.append((arch, network, 1, pdk, frequency_hz))
        analytic_specs.append((arch, network, n_cs, pdk, frequency_hz))
    mapper = ctx.engine.map(_mapper_eval, mapper_specs,
                            stage="fig7.mapper_eval", jobs=ctx.jobs)
    analytic = ctx.engine.map(_analytical_eval, analytic_specs,
                              stage="fig7.analytic_eval", jobs=ctx.jobs)
    rows: list[Fig7Row] = []
    for i, (arch, n_cs) in enumerate(zip(archs, counts)):
        m2, m3 = mapper[2 * i], mapper[2 * i + 1]
        a2, a3 = analytic[2 * i], analytic[2 * i + 1]
        rows.append(Fig7Row(
            arch=arch,
            n_cs=n_cs,
            mapper_speedup=m2.runtime / m3.runtime,
            mapper_energy=m2.energy / m3.energy,
            mapper_edp=m2.edp / m3.edp,
            analytic_speedup=a2.runtime / a3.runtime,
            analytic_energy=a2.energy / a3.energy,
            analytic_edp=a2.edp / a3.edp,
        ))
    return tuple(rows)


def format_fig7(rows: tuple[Fig7Row, ...]) -> str:
    """Render the Fig. 7 comparison."""
    table_rows = [
        [f"Arch {row.arch.index}", row.n_cs,
         times(row.mapper_speedup), times(row.mapper_edp),
         times(row.analytic_speedup), times(row.analytic_edp),
         percent(row.edp_disagreement)]
        for row in rows
    ]
    lo = min(r.mapper_edp for r in rows)
    hi = max(r.mapper_edp for r in rows)
    table = format_table(
        "Fig. 7 — Table II architectures on AlexNet: mapper (ZZ-style) vs "
        "analytical framework (paper: 5.3x-11.5x, agreement <10%)",
        ["arch", "N", "ZZ speedup", "ZZ EDP", "model speedup", "model EDP",
         "disagreement"],
        table_rows,
    )
    return table + f"\nmapper EDP benefit range: {times(lo)} - {times(hi)}"
