"""Extension study: the M3D principle across BEOL memory technologies.

The paper's conclusion claims its analysis "should apply for many other
M3D technologies" (Sec. II lists RRAM, MRAM, FeFET among the BEOL-
compatible families).  This study swaps the on-chip memory cell for each
BEOL preset of :mod:`repro.tech.memories` — re-deriving the iso-footprint
design pair per technology — and reports the CS count and ResNet-18
benefit for each.

Two opposing effects shape the result:

* a *denser* cell (FeFET, PCM) shrinks A_cells, freeing less silicon
  relative to one CS -> fewer parallel CSs;
* a *sparser* cell (MRAM) frees more silicon -> more CSs, at a bigger
  chip for the same capacity.

The benefit therefore tracks gamma_cells, exactly as Eq. 2 predicts —
which is the transferability claim under test.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tech.memories import MemoryTechnology, beol_technologies
from repro.tech.pdk import PDK
from repro.experiments.registry import (
    ExperimentContext,
    experiment,
    warn_deprecated_shim,
)
from repro.experiments.reporting import format_table, times
from repro.perf.compare import compare_designs
from repro.perf.simulator import simulate
from repro.runtime.engine import EvaluationEngine
from repro.spec.design import ArchSpec, DesignSpec, TechSpec
from repro.spec.resolve import build_workload, resolve
from repro.units import MEGABYTE, to_mm2
from repro.workloads.models import Network


@dataclass(frozen=True)
class MemTechRow:
    """Result for one BEOL memory technology.

    Attributes:
        technology: The memory preset.
        gamma_cells: Cell-array / CS area ratio at 64 MB.
        n_cs: Parallel CSs the M3D design derives.
        footprint: Chip footprint (iso between 2D and M3D), m^2.
        speedup: ResNet-18 speedup.
        energy_benefit: ResNet-18 energy benefit.
        edp_benefit: ResNet-18 EDP benefit.
    """

    technology: MemoryTechnology
    gamma_cells: float
    n_cs: int
    footprint: float
    speedup: float
    energy_benefit: float
    edp_benefit: float


def memtech_row(
    pdk: PDK,
    tech: MemoryTechnology,
    capacity_bits: int,
    network: Network,
) -> MemTechRow:
    """Evaluate the case study under one BEOL memory preset."""
    spec = DesignSpec(tech=TechSpec(memory=tech.name),
                      arch=ArchSpec(capacity_bits=capacity_bits))
    point = resolve(spec, pdk)
    benefit = compare_designs(
        simulate(point.baseline, network, point.pdk),
        simulate(point.m3d, network, point.pdk),
    )
    return MemTechRow(
        technology=tech,
        gamma_cells=point.baseline.area.gamma_cells,
        n_cs=point.n_cs_m3d,
        footprint=point.baseline.area.footprint,
        speedup=benefit.speedup,
        energy_benefit=benefit.energy_benefit,
        edp_benefit=benefit.edp_benefit,
    )


def run_memtech(
    pdk: PDK | None = None,
    capacity_bits: int = 64 * MEGABYTE,
    network: Network | None = None,
    engine: EvaluationEngine | None = None,
    jobs: int | None = None,
) -> tuple[MemTechRow, ...]:
    """Deprecated shim: builds a context for :func:`memtech_experiment`."""
    warn_deprecated_shim("run_memtech", "ext-memtech")
    return memtech_experiment(
        ExperimentContext.create(pdk=pdk, engine=engine, jobs=jobs),
        capacity_bits=capacity_bits, network=network)


@experiment("ext-memtech", "Extension: BEOL memory technologies",
            formatter=lambda rows: format_memtech(rows))
def memtech_experiment(
    ctx: ExperimentContext,
    capacity_bits: int | None = None,
    network: Network | None = None,
) -> tuple[MemTechRow, ...]:
    """Evaluate the case study under every BEOL memory preset.

    ``capacity_bits`` (if given) overrides the context spec's capacity.
    """
    spec = ctx.design_spec()
    if capacity_bits is None:
        capacity_bits = spec.arch.capacity_bits
    network = network if network is not None \
        else build_workload(spec.workload)
    calls = [(ctx.pdk, tech, capacity_bits, network)
             for tech in beol_technologies()]
    return tuple(ctx.engine.map(memtech_row, calls,
                                stage="ext_memtech.run_memtech",
                                jobs=ctx.jobs))


def format_memtech(rows: tuple[MemTechRow, ...]) -> str:
    """Render the memory-technology comparison."""
    table_rows = [
        [row.technology.name,
         f"{row.technology.bitcell_area_f2:.0f} F^2",
         f"{row.gamma_cells:.2f}",
         row.n_cs,
         f"{to_mm2(row.footprint):.0f}",
         times(row.speedup),
         times(row.edp_benefit)]
        for row in rows
    ]
    return format_table(
        "Extension — M3D benefit across BEOL memory technologies "
        "(64 MB, ResNet-18)",
        ["memory", "bit-cell", "gamma_cells", "M3D CSs", "footprint mm^2",
         "speedup", "EDP benefit"],
        table_rows,
    )
