"""Extension: joint design-space exploration with Pareto extraction.

Runs the full-factorial (capacity, delta, beta, Y) grid — the sweep the
paper's Sections III-D/E/F take one axis at a time — and reports the
Pareto frontier over (footprint, EDP benefit).  The grid executes on the
streaming path (:func:`repro.core.dse.explore_streaming`): chunked
dispatch through the engine's ``sweep.evaluate`` stage, content-hash
caching per spec, layer-shape memoization across points, and re-runs
served from the result cache outright (see ``repro dse --profile``).
"""

from __future__ import annotations

from repro.core.dse import DesignCandidate, explore_streaming, pareto_frontier
from repro.experiments.registry import (
    ExperimentContext,
    experiment,
    warn_deprecated_shim,
)
from repro.experiments.reporting import format_table, times
from repro.runtime.engine import EvaluationEngine
from repro.tech.pdk import PDK
from repro.units import MEGABYTE, to_mm2


def run_dse(pdk: PDK | None = None,
            engine: EvaluationEngine | None = None,
            jobs: int | None = None) -> tuple[DesignCandidate, ...]:
    """Deprecated shim: builds a context for :func:`dse_experiment`."""
    warn_deprecated_shim("run_dse", "dse")
    return dse_experiment(
        ExperimentContext.create(pdk=pdk, engine=engine, jobs=jobs))


def format_dse(candidates: tuple[DesignCandidate, ...]) -> str:
    """Render the grid with its Pareto-frontier members marked."""
    frontier = set(pareto_frontier(candidates))
    rows = [
        [f"{c.capacity_bits / MEGABYTE:.0f} MB", c.delta, c.beta,
         c.tier_pairs, c.n_cs, c.n_cs_2d, f"{to_mm2(c.footprint):.1f}",
         times(c.speedup), times(c.edp_benefit),
         "*" if c in frontier else ""]
        for c in candidates
    ]
    return format_table(
        "Extension — joint (capacity, delta, beta, Y) design space, "
        "ResNet-18 ('*' = Pareto-optimal in footprint vs EDP benefit)",
        ["capacity", "delta", "beta", "Y", "N", "N_2D", "footprint mm^2",
         "speedup", "EDP benefit", "pareto"],
        rows,
    )


@experiment("dse",
            "Extension: joint (capacity, delta, beta, Y) design space "
            "with Pareto frontier",
            formatter=format_dse)
def dse_experiment(ctx: ExperimentContext) -> tuple[DesignCandidate, ...]:
    """Run the joint design-space grid (36 points) on the spec's workload.

    Routed through the streaming executor (:mod:`repro.sweep.stream`) —
    identical values to the eager :func:`repro.core.dse.explore` on this
    grid, and the path that scales to grids the eager tuple cannot hold.
    """
    return explore_streaming(pdk=ctx.pdk,
                             workload=ctx.design_spec().workload,
                             engine=ctx.engine, jobs=ctx.jobs)
