"""Experiment drivers: one module per table/figure of the paper.

Each driver registers its experiments with :mod:`repro.experiments.registry`
(uniform ``run(ctx: ExperimentContext)`` entry points) and keeps thin
``run_*`` shims for the legacy call signatures.  A ``format_*`` function
renders the same rows/series the paper reports.  The CLI, the benchmark
harness (``benchmarks/``) and the examples all resolve experiments through
the registry.

| Paper artifact | Driver |
|---|---|
| Fig. 2 + Obs. 2  | :mod:`repro.experiments.casestudy` |
| Fig. 5           | :mod:`repro.experiments.fig5` |
| Table I          | :mod:`repro.experiments.table1` |
| Fig. 7 / Table II| :mod:`repro.experiments.fig7` |
| Fig. 8 / Obs. 5  | :mod:`repro.experiments.fig8` |
| Fig. 9 / Obs. 6  | :mod:`repro.experiments.fig9` |
| Fig. 10 / Obs. 7-10 | :mod:`repro.experiments.fig10` |
| Obs. 3           | :mod:`repro.experiments.obs3` |

The import order below is the registration order, and therefore the order
``repro list`` and ``repro all`` present the experiments in.
"""

from repro.experiments.registry import (
    Experiment,
    ExperimentContext,
    all_experiments,
    experiment,
    experiment_names,
    get_experiment,
    registry_markdown,
    run_experiment,
)
from repro.experiments.casestudy import CaseStudyResult, format_case_study, run_case_study
from repro.experiments.fig5 import Fig5Row, format_fig5, run_fig5
from repro.experiments.table1 import Table1Row, format_table1, run_table1
from repro.experiments.fig7 import Fig7Row, format_fig7, run_fig7
from repro.experiments.fig8 import format_fig8, run_fig8
from repro.experiments.fig9 import format_fig9, run_fig9
from repro.experiments.fig10 import (
    format_fig10c,
    format_fig10d,
    format_obs8,
    format_obs10,
    run_fig10c,
    run_fig10d,
    run_obs8,
    run_obs10,
)
from repro.experiments.obs3 import format_obs3, run_obs3
from repro.experiments.ext_dse import format_dse, run_dse
from repro.experiments.ext_memtech import format_memtech, run_memtech
from repro.experiments.ext_beol_logic import format_beol_logic, run_beol_logic
from repro.experiments.ext_precision import format_precision, run_precision
from repro.experiments.ext_batching import format_batching, run_batching
from repro.experiments.folding import format_folding, run_folding
from repro.experiments.reporting import format_run_report, format_table

__all__ = [
    "Experiment",
    "ExperimentContext",
    "all_experiments",
    "experiment",
    "experiment_names",
    "get_experiment",
    "registry_markdown",
    "run_experiment",
    "CaseStudyResult",
    "run_case_study",
    "format_case_study",
    "Fig5Row",
    "run_fig5",
    "format_fig5",
    "Table1Row",
    "run_table1",
    "format_table1",
    "Fig7Row",
    "run_fig7",
    "format_fig7",
    "run_fig8",
    "format_fig8",
    "run_fig9",
    "format_fig9",
    "run_fig10c",
    "format_fig10c",
    "run_fig10d",
    "format_fig10d",
    "run_obs8",
    "format_obs8",
    "run_obs10",
    "format_obs10",
    "run_obs3",
    "format_obs3",
    "run_dse",
    "format_dse",
    "run_memtech",
    "format_memtech",
    "run_beol_logic",
    "format_beol_logic",
    "run_precision",
    "format_precision",
    "run_batching",
    "format_batching",
    "run_folding",
    "format_folding",
    "format_run_report",
    "format_table",
]
