"""Experiment drivers: one module per table/figure of the paper.

Each driver exposes a ``run_*`` function returning structured results and a
``format_*`` function rendering the same rows/series the paper reports.
The benchmark harness (``benchmarks/``) and the examples call these.

| Paper artifact | Driver |
|---|---|
| Fig. 2 + Obs. 2  | :mod:`repro.experiments.casestudy` |
| Fig. 5           | :mod:`repro.experiments.fig5` |
| Table I          | :mod:`repro.experiments.table1` |
| Fig. 7 / Table II| :mod:`repro.experiments.fig7` |
| Fig. 8 / Obs. 5  | :mod:`repro.experiments.fig8` |
| Fig. 9 / Obs. 6  | :mod:`repro.experiments.fig9` |
| Fig. 10 / Obs. 7-10 | :mod:`repro.experiments.fig10` |
| Obs. 3           | :mod:`repro.experiments.obs3` |
"""

from repro.experiments.casestudy import CaseStudyResult, format_case_study, run_case_study
from repro.experiments.fig5 import Fig5Row, format_fig5, run_fig5
from repro.experiments.table1 import Table1Row, format_table1, run_table1
from repro.experiments.fig7 import Fig7Row, format_fig7, run_fig7
from repro.experiments.fig8 import format_fig8, run_fig8
from repro.experiments.fig9 import format_fig9, run_fig9
from repro.experiments.fig10 import (
    format_fig10c,
    format_fig10d,
    format_obs8,
    format_obs10,
    run_fig10c,
    run_fig10d,
    run_obs8,
    run_obs10,
)
from repro.experiments.ext_dse import format_dse, run_dse
from repro.experiments.obs3 import format_obs3, run_obs3
from repro.experiments.reporting import format_run_report, format_table

__all__ = [
    "CaseStudyResult",
    "run_case_study",
    "format_case_study",
    "Fig5Row",
    "run_fig5",
    "format_fig5",
    "Table1Row",
    "run_table1",
    "format_table1",
    "Fig7Row",
    "run_fig7",
    "format_fig7",
    "run_fig8",
    "format_fig8",
    "run_fig9",
    "format_fig9",
    "run_fig10c",
    "format_fig10c",
    "run_fig10d",
    "format_fig10d",
    "run_obs8",
    "format_obs8",
    "run_obs10",
    "format_obs10",
    "run_obs3",
    "format_obs3",
    "run_dse",
    "format_dse",
    "format_run_report",
    "format_table",
]
