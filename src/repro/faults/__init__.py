"""Deterministic fault injection (chaos harness) for the repro runtime.

See :mod:`repro.faults.inject` for the model: a seeded
:class:`FaultPlan` whose rules fire as a pure function of
``(seed, rule, token)``, activated programmatically or through the
``REPRO_FAULTS`` environment variable so injected faults reach
forkserver pool workers.
"""

from repro.faults.inject import (
    CRASH_EXIT_CODE,
    ENV_VAR,
    FAULT_SITES,
    FaultPlan,
    FaultRule,
    active_plan,
    clear_plan,
    corrupt_text,
    in_worker,
    injected_faults,
    install_plan,
    mark_worker,
    maybe_inject,
    perturb_task,
)

__all__ = [
    "CRASH_EXIT_CODE",
    "ENV_VAR",
    "FAULT_SITES",
    "FaultPlan",
    "FaultRule",
    "active_plan",
    "clear_plan",
    "corrupt_text",
    "in_worker",
    "injected_faults",
    "install_plan",
    "mark_worker",
    "maybe_inject",
    "perturb_task",
]
