"""Deterministic, seeded fault injection for chaos testing.

The production failure modes this library must survive — a worker
process dying mid-task, an evaluation hanging, a flaky transient error,
a torn or bit-rotted cache file — are exactly the ones that are hardest
to reproduce in CI.  This module makes them *deterministic*: a
:class:`FaultPlan` is a seed plus a list of :class:`FaultRule` entries,
and whether a fault fires for a given task is a **pure function** of
``(seed, rule, token)`` — independent of scheduling, worker count, or
wall-clock time.  Two runs with the same plan inject the same faults at
the same points, so chaos tests can assert exact retry counts and
bit-identical results for every non-failed point.

Injection sites
---------------
* ``task.crash`` — the worker calls ``os._exit`` before running the
  task (only ever fires inside a pool worker, never in the parent).
* ``task.hang`` — the worker sleeps for ``hang_seconds`` so per-task
  timeouts can be exercised.
* ``task.transient`` — raises :class:`~repro.errors.TransientError`,
  exercising the seeded-backoff retry path.
* ``cache.corrupt`` / ``checkpoint.corrupt`` — the serialized text is
  deterministically mangled before it hits disk, exercising the
  quarantine-and-re-evaluate paths.

Activation
----------
Programmatic: :func:`install_plan` / the :func:`injected_faults` context
manager.  Environmental: the ``REPRO_FAULTS`` variable holding either
inline plan JSON or ``@/path/to/plan.json`` — the env route is what the
CI chaos-smoke job uses, and both routes are shipped into forkserver
workers by the pool initializer in :mod:`repro.runtime.pmap`.

``times`` limits (a crash that fires once, then lets the retry succeed)
need memory that survives the crash itself, so firings are recorded in a
file **ledger** under ``state_dir``: one byte appended per firing, count
= file size.  Without a ``state_dir`` the ledger is in-process only.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import time
from dataclasses import dataclass
from typing import Any, Iterator, Mapping

from repro.errors import ConfigurationError, TransientError, require

__all__ = [
    "ENV_VAR",
    "CRASH_EXIT_CODE",
    "FAULT_SITES",
    "FaultRule",
    "FaultPlan",
    "active_plan",
    "clear_plan",
    "corrupt_text",
    "in_worker",
    "injected_faults",
    "install_plan",
    "mark_worker",
    "maybe_inject",
    "perturb_task",
]

#: Environment variable activating a plan: inline JSON or ``@path``.
ENV_VAR = "REPRO_FAULTS"

#: Exit status used by injected worker crashes (distinctive in ps/logs).
CRASH_EXIT_CODE = 86

#: Every site :func:`maybe_inject` / :func:`corrupt_text` recognizes.
FAULT_SITES = (
    "task.crash",
    "task.hang",
    "task.transient",
    "cache.corrupt",
    "checkpoint.corrupt",
)

#: Sites that must only ever fire inside a pool worker process.
_WORKER_ONLY_SITES = frozenset({"task.crash", "task.hang"})


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: *where*, *how often*, and *how many times*.

    Attributes:
        site: One of :data:`FAULT_SITES`.
        rate: Probability a given token is selected, decided by seeded
            hash (ignored when ``match`` is set).
        match: Substring filter — the rule selects exactly the tokens
            containing it.  This is how a test targets one poison spec.
        times: Firings per ``(rule, token)`` before the rule goes quiet
            for that token; ``0`` means unlimited.
        hang_seconds: Sleep length for ``task.hang``.
    """

    site: str
    rate: float = 0.0
    match: str | None = None
    times: int = 1
    hang_seconds: float = 3600.0

    def __post_init__(self) -> None:
        require(self.site in FAULT_SITES,
                f"unknown fault site {self.site!r}; "
                f"expected one of {', '.join(FAULT_SITES)}")
        require(0.0 <= self.rate <= 1.0,
                f"fault rate must be in [0, 1], got {self.rate}")
        require(self.times >= 0,
                f"fault times must be >= 0, got {self.times}")

    def to_jsonable(self) -> dict[str, Any]:
        return {"site": self.site, "rate": self.rate, "match": self.match,
                "times": self.times, "hang_seconds": self.hang_seconds}

    @classmethod
    def from_jsonable(cls, data: Mapping[str, Any]) -> "FaultRule":
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"fault rule must be an object, got {type(data).__name__}")
        unknown = sorted(set(data) - {
            "site", "rate", "match", "times", "hang_seconds"})
        if unknown:
            raise ConfigurationError(
                f"unknown fault rule key(s): {', '.join(unknown)}")
        if "site" not in data:
            raise ConfigurationError("fault rule is missing 'site'")
        return cls(**dict(data))


# In-process firing counts, used when a plan has no state_dir.
_MEMORY_LEDGER: dict[str, int] = {}


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus rules: the complete, reproducible chaos schedule.

    Whether a rule selects a token is pure — :meth:`selects` lets a test
    compute the exact expected injection schedule up front and assert
    the observed retry counters against it.
    """

    seed: int = 0
    rules: tuple[FaultRule, ...] = ()
    state_dir: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(
            rule if isinstance(rule, FaultRule)
            else FaultRule.from_jsonable(rule)
            for rule in self.rules))

    # -- pure selection -------------------------------------------------
    def selected_rules(self, site: str,
                       token: str) -> tuple[FaultRule, ...]:
        """Rules at ``site`` that select ``token`` (ledger ignored)."""
        return tuple(rule for rule in self.rules
                     if rule.site == site
                     and _rule_selects(self.seed, rule, token))

    def selects(self, site: str, token: str) -> bool:
        """Pure: would any rule at ``site`` ever fire for ``token``?"""
        return bool(self.selected_rules(site, token))

    # -- ledger ---------------------------------------------------------
    def _ledger_key(self, rule: FaultRule, token: str) -> str:
        text = f"{rule.site}|{rule.rate}|{rule.match}|{token}"
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:40]

    def fire_count(self, rule: FaultRule, token: str) -> int:
        """How many times ``rule`` has fired for ``token`` so far."""
        key = self._ledger_key(rule, token)
        if self.state_dir is None:
            return _MEMORY_LEDGER.get(key, 0)
        try:
            return os.path.getsize(os.path.join(self.state_dir, key))
        except OSError:
            return 0

    def claim_count(self, site: str, token: str) -> int:
        """Total recorded firings at ``site`` for ``token``, all rules.

        This is how the dispatch supervisor attributes a pool death to
        the task whose injected crash actually fired (rather than
        blaming every in-flight task).
        """
        return sum(self.fire_count(rule, token)
                   for rule in self.rules if rule.site == site)

    def _claim(self, rule: FaultRule, token: str) -> bool:
        """Record one firing; False when the rule's budget is spent."""
        count = self.fire_count(rule, token)
        if rule.times and count >= rule.times:
            return False
        key = self._ledger_key(rule, token)
        if self.state_dir is None:
            _MEMORY_LEDGER[key] = count + 1
            return True
        try:
            os.makedirs(self.state_dir, exist_ok=True)
            with open(os.path.join(self.state_dir, key), "ab") as handle:
                handle.write(b"!")
        except OSError:
            return False
        return True

    # -- serialization --------------------------------------------------
    def to_jsonable(self) -> dict[str, Any]:
        return {"seed": self.seed, "state_dir": self.state_dir,
                "rules": [rule.to_jsonable() for rule in self.rules]}

    def to_json(self) -> str:
        return json.dumps(self.to_jsonable(), sort_keys=True)

    @classmethod
    def from_jsonable(cls, data: Mapping[str, Any]) -> "FaultPlan":
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"fault plan must be an object, got {type(data).__name__}")
        unknown = sorted(set(data) - {"seed", "rules", "state_dir"})
        if unknown:
            raise ConfigurationError(
                f"unknown fault plan key(s): {', '.join(unknown)}")
        rules = data.get("rules", ())
        if not isinstance(rules, (list, tuple)):
            raise ConfigurationError("fault plan 'rules' must be a list")
        return cls(seed=int(data.get("seed", 0)),
                   rules=tuple(rules),
                   state_dir=data.get("state_dir"))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"invalid fault plan JSON: {error}") from error
        return cls.from_jsonable(data)


def _rule_selects(seed: int, rule: FaultRule, token: str) -> bool:
    """Pure per-token selection: substring match or seeded hash draw."""
    if rule.match is not None:
        return rule.match in token
    if rule.rate <= 0.0:
        return False
    digest = hashlib.sha256(
        f"{seed}|{rule.site}|{rule.rate}|{token}".encode("utf-8")).digest()
    draw = int.from_bytes(digest[:8], "big") / 2.0 ** 64
    return draw < rule.rate


# -- activation ---------------------------------------------------------

_active: FaultPlan | None = None
_env_cache: tuple[str, FaultPlan] | None = None
_in_worker = False


def _load_env_plan(raw: str) -> FaultPlan:
    if raw.startswith("@"):
        with open(raw[1:], "r", encoding="utf-8") as handle:
            raw = handle.read()
    return FaultPlan.from_json(raw)


def active_plan() -> FaultPlan | None:
    """The plan in effect: installed plan first, then ``REPRO_FAULTS``."""
    if _active is not None:
        return _active
    raw = os.environ.get(ENV_VAR)
    if not raw:
        return None
    global _env_cache
    if _env_cache is None or _env_cache[0] != raw:
        _env_cache = (raw, _load_env_plan(raw))
    return _env_cache[1]


def install_plan(plan: FaultPlan | None) -> None:
    """Activate ``plan`` process-wide (``None`` falls back to the env)."""
    global _active
    _active = plan
    _MEMORY_LEDGER.clear()


def clear_plan() -> None:
    """Deactivate any installed plan and forget in-process firings."""
    install_plan(None)


@contextlib.contextmanager
def injected_faults(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Scope ``plan`` to a ``with`` block (tests' preferred activation)."""
    previous = _active
    install_plan(plan)
    try:
        yield plan
    finally:
        install_plan(previous)


def mark_worker(active: bool = True) -> None:
    """Flag this process as a pool worker (crash/hang sites arm only here)."""
    global _in_worker
    _in_worker = active


def in_worker() -> bool:
    """True inside a pool worker process."""
    return _in_worker


# -- injection ----------------------------------------------------------

def maybe_inject(site: str, token: str) -> None:
    """Fire any due fault at ``site`` for ``token`` (no-op without a plan).

    Crash and hang sites are guarded by :func:`mark_worker` so a plan
    can never take down the parent process or a serial run; their ledger
    is only charged when the fault actually fires.
    """
    plan = active_plan()
    if plan is None:
        return
    for rule in plan.selected_rules(site, token):
        if site in _WORKER_ONLY_SITES and not _in_worker:
            continue
        if not plan._claim(rule, token):
            continue
        if site == "task.crash":
            os._exit(CRASH_EXIT_CODE)
        elif site == "task.hang":
            time.sleep(rule.hang_seconds)
        elif site == "task.transient":
            raise TransientError(
                f"injected transient fault (token {token[:12]})")


def perturb_task(token: str) -> None:
    """Run every task-level site, crash first (matches real failure order)."""
    maybe_inject("task.crash", token)
    maybe_inject("task.hang", token)
    maybe_inject("task.transient", token)


def _mangle(seed: int, token: str, text: str) -> str:
    """Deterministically corrupt ``text`` (truncate / zero / garble)."""
    digest = hashlib.sha256(f"{seed}|corrupt|{token}".encode("utf-8"))
    mode = digest.digest()[0] % 3
    if mode == 0 and len(text) > 4:
        broken = text[: len(text) // 2]
    elif mode == 1:
        middle = max(1, len(text) // 2)
        broken = text[:middle] + "\x00\x00#CORRUPT#" + text[middle + 1:]
    else:
        broken = text.rstrip().rstrip("}]") + "{{{"
    try:
        json.loads(broken)
    except (ValueError, UnicodeDecodeError):
        return broken
    # Whatever survived parsing gets an unambiguous poison prefix.
    return "\x00" + text


def corrupt_text(site: str, token: str, text: str) -> str:
    """Return ``text`` mangled when a corruption fault is due, else as-is.

    Writers (`runtime/cache.py`, `sweep/checkpoint.py`) pass their
    serialized payload through here just before the atomic write; the
    corrupted bytes still land atomically, so the *read* path's
    quarantine logic is what gets exercised — exactly the torn-file /
    bit-rot scenario.
    """
    plan = active_plan()
    if plan is None:
        return text
    for rule in plan.selected_rules(site, token):
        if not plan._claim(rule, token):
            continue
        return _mangle(plan.seed, token, text)
    return text
