"""The one resolver pipeline: ``DesignSpec -> ResolvedPoint``.

Every sweep and experiment used to hand-roll its own "apply knob, rebuild
the design pair" plumbing; :func:`resolve` is now the single construction
path.  The pipeline:

1. **Tech** — apply the memory-technology preset, then scale the ILV
   pitch by ``beta`` (``scaled_pdk``, the helper that deduplicates the
   former ``core/dse.py`` / ``core/via_pitch.py`` copies).
2. **Arch** — pick the CS preset; build the original 2D baseline and the
   M3D design at ``delta``; multiply the M3D CS count by ``tier_pairs``
   (or pin it to ``n_cs``); under the ``reoptimized`` baseline policy,
   enlarge the 2D baseline to the M3D footprint and refill it per Eq. 9.
3. **Workload** — build the named network, optionally restricted to one
   layer (:func:`build_workload`).

Resolution is deterministic and simulation-free, and memoizes on the
spec's content fingerprint plus the base PDK's content hash — *not* on
object identity — so equal specs share work no matter where they came
from, and the key scheme matches what the evaluation engine writes to
disk.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.arch.accelerator import (
    AcceleratorDesign,
    baseline_2d_design,
    m3d_design,
    precision_scaled_cs,
    reoptimized_2d_cs_count,
)
from repro.errors import ConfigurationError
from repro.runtime.cache import MISSING
from repro.runtime.keys import stable_key
from repro.runtime.memo import memo_table
from repro.spec.design import DesignSpec, TechSpec, WorkloadSpec
from repro.tech.memories import memory_technology
from repro.tech.pdk import PDK, foundry_m3d_pdk
from repro.workloads.models import Network, available_networks, build_network
from repro.workloads.transformer import base_encoder, tiny_encoder

__all__ = ["ResolvedPoint", "build_workload", "resolve", "scaled_pdk",
           "tech_pdk"]

#: Resolution memo: (spec fingerprint, PDK content hash) -> ResolvedPoint.
_RESOLVE_MEMO = memo_table("spec.resolve")

#: Scaled-PDK memo: (PDK content hash, beta) -> PDK.
_SCALED_PDK_MEMO = memo_table("spec.scaled_pdk")

#: Tech-section memo: (memory, beta, base PDK content) -> adjusted PDK.
_TECH_PDK_MEMO = memo_table("spec.tech_pdk")

#: Transformer-encoder presets addressable by workload.network (the CNN
#: zoo resolves through repro.workloads.models.build_network).
_ENCODER_PRESETS = {
    "tiny_encoder": tiny_encoder,
    "base_encoder": base_encoder,
}


def scaled_pdk(pdk: PDK, beta: float) -> PDK:
    """``pdk.with_ilv_pitch_factor(beta)``, memoized on content.

    At ``beta == 1`` the PDK is returned unchanged (scaling by 1.0 is a
    bit-identical copy, so preserving identity is free and keeps
    identity-based sharing — e.g. worker invariant shipping — intact).
    This is the one scaled-PDK construction site; ``core/dse.py`` and
    ``core/via_pitch.py`` used to keep private copies.
    """
    if beta == 1.0:
        return pdk
    key = (stable_key(pdk), beta)
    scaled = _SCALED_PDK_MEMO.get(key)
    if scaled is MISSING:
        scaled = pdk.with_ilv_pitch_factor(beta)
        _SCALED_PDK_MEMO.put(key, scaled)
    return scaled


def tech_pdk(tech: TechSpec, base: PDK) -> PDK:
    """The tech-adjusted PDK a :class:`TechSpec` denotes against ``base``.

    Applies the memory-technology preset, then the ILV pitch factor —
    exactly the tech stage of :func:`resolve`.  Memoized per *distinct
    tech section* (keyed on the section's values plus the base PDK's
    content hash), so grids that only vary arch/workload axes build the
    adjusted PDK once instead of once per spec — and every point of such
    a grid shares one PDK *object*, which keeps identity-based sharing
    (fingerprint caching, worker invariant shipping) intact.
    """
    if tech.memory is None and tech.beta == 1.0:
        return base
    key = (tech.memory, tech.beta, stable_key(base))
    pdk = _TECH_PDK_MEMO.get(key)
    if pdk is MISSING:
        pdk = base
        if tech.memory is not None:
            pdk = pdk.with_memory_cell(
                memory_technology(tech.memory).cell(pdk.node))
        pdk = scaled_pdk(pdk, tech.beta)
        _TECH_PDK_MEMO.put(key, pdk)
    return pdk


def build_workload(workload: WorkloadSpec) -> Network:
    """The concrete :class:`Network` a workload spec names.

    ``network`` resolves through the CNN zoo or the transformer-encoder
    presets; ``layer`` (if set) restricts the network to that single
    layer, renamed ``<network>_<layer>`` with spaces underscored — the
    Fig. 10d parallel-layer convention.
    """
    name = workload.network
    if name in _ENCODER_PRESETS:
        network = _ENCODER_PRESETS[name]()
    elif name in available_networks():
        network = build_network(name)
    else:
        known = tuple(available_networks()) + tuple(_ENCODER_PRESETS)
        raise ConfigurationError(
            f"unknown workload network {name!r}; "
            f"choose from {', '.join(sorted(known))}")
    if workload.layer is not None:
        suffix = workload.layer.replace(" ", "_")
        network = Network(
            name=f"{network.name}_{suffix}",
            layers=(network.layer(workload.layer),))
    return network


@dataclass(frozen=True)
class ResolvedPoint:
    """The live objects one :class:`DesignSpec` denotes.

    Attributes:
        spec: The spec this point was resolved from.
        pdk: The tech-adjusted PDK both designs are built on.
        baseline: The 2D baseline (policy per ``spec.arch.baseline``).
        m3d: The M3D design.
        network: The workload network.
    """

    spec: DesignSpec
    pdk: PDK
    baseline: AcceleratorDesign
    m3d: AcceleratorDesign
    network: Network

    @property
    def n_cs_2d(self) -> int:
        """CS count of the 2D baseline."""
        return self.baseline.n_cs

    @property
    def n_cs_m3d(self) -> int:
        """CS count of the M3D design."""
        return self.m3d.n_cs

    @property
    def footprint(self) -> float:
        """Common chip footprint, m^2 (the M3D design's; under the
        ``reoptimized`` policy the baseline is enlarged to match)."""
        return self.m3d.area.footprint


def resolve(spec: DesignSpec, pdk: PDK | None = None) -> ResolvedPoint:
    """Resolve ``spec`` against ``pdk`` (default: the foundry M3D PDK).

    Memoized on ``(spec.fingerprint(), content hash of pdk)`` — equal
    specs resolve once per process however and wherever they were built.
    """
    base = pdk if pdk is not None else foundry_m3d_pdk()
    key = (spec.fingerprint(), stable_key(base))
    point = _RESOLVE_MEMO.get(key)
    if point is not MISSING:
        return point
    point = _resolve(spec, base)
    _RESOLVE_MEMO.put(key, point)
    return point


def _resolve(spec: DesignSpec, base: PDK) -> ResolvedPoint:
    tech, arch = spec.tech, spec.arch
    pdk = tech_pdk(tech, base)

    cs = None if arch.cs == "case-study" \
        else precision_scaled_cs(arch.precision_bits)
    original = baseline_2d_design(pdk, arch.capacity_bits, cs=cs)
    single = m3d_design(pdk, arch.capacity_bits, cs=cs,
                        access_width_factor=tech.delta)
    n_cs_m3d = arch.n_cs if arch.n_cs is not None \
        else single.n_cs * arch.tier_pairs
    if n_cs_m3d == single.n_cs:
        m3d = single
    else:
        m3d = m3d_design(pdk, arch.capacity_bits, cs=cs,
                         access_width_factor=tech.delta, n_cs=n_cs_m3d)

    if arch.baseline == "reoptimized":
        n_cs_2d = reoptimized_2d_cs_count(
            grown_footprint=single.area.footprint,
            original_footprint=original.area.footprint,
            cs_area=original.area.cs_unit,
        )
        baseline = baseline_2d_design(
            pdk, arch.capacity_bits, cs=cs, n_cs=n_cs_2d,
            footprint=single.area.footprint)
    else:
        baseline = original

    if arch.precision_bits != baseline.precision_bits:
        baseline = replace(baseline, precision_bits=arch.precision_bits)
    if arch.precision_bits != m3d.precision_bits:
        m3d = replace(m3d, precision_bits=arch.precision_bits)

    return ResolvedPoint(
        spec=spec,
        pdk=pdk,
        baseline=baseline,
        m3d=m3d,
        network=build_workload(spec.workload),
    )
