"""Spec-driven evaluation: ``DesignSpec -> SpecEvaluation``.

:func:`evaluate_spec` resolves a spec and runs the simulator on the
resulting 2D/M3D pair; :func:`evaluate_specs` batches many specs through
the evaluation engine, which content-hashes each ``evaluate_spec(spec)``
call.  Because a spec is pure data, that cache key is a canonical-JSON
hash of a few dozen bytes — it survives process restarts through the disk
cache, and shipping a call to a ``--jobs N`` worker serializes the spec,
not a tree of live design objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.errors import require
from repro.perf.compare import compare_designs
from repro.perf.simulator import simulate
from repro.runtime.engine import EvaluationEngine, default_engine
from repro.runtime.serialize import from_jsonable, to_jsonable
from repro.spec.design import DesignSpec
from repro.spec.resolve import resolve
from repro.spec.sweep import SweepSpec
from repro.tech.pdk import PDK
from repro.units import MEGABYTE

__all__ = [
    "SpecEvaluation",
    "evaluate_spec",
    "evaluate_specs",
    "evaluate_sweep",
    "format_spec_evaluations",
]


@dataclass(frozen=True)
class SpecEvaluation:
    """The benefit summary of one evaluated design spec.

    Attributes:
        spec: The evaluated spec (so a result file is self-describing).
        n_cs_2d: CS count of the 2D baseline.
        n_cs_m3d: CS count of the M3D design.
        footprint: Common chip footprint, m^2.
        speedup: T_2D / T_3D on the spec's workload.
        energy_benefit: E_2D / E_3D.
        edp_benefit: Product of the two.
    """

    spec: DesignSpec
    n_cs_2d: int
    n_cs_m3d: int
    footprint: float
    speedup: float
    energy_benefit: float
    edp_benefit: float

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (used by the disk result cache)."""
        return to_jsonable(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SpecEvaluation":
        """Inverse of :meth:`to_dict`."""
        evaluation = from_jsonable(data)
        require(isinstance(evaluation, cls),
                f"expected a serialized {cls.__name__}")
        return evaluation


def evaluate_spec(spec: DesignSpec, pdk: PDK | None = None) -> SpecEvaluation:
    """Resolve and simulate one design spec."""
    point = resolve(spec, pdk)
    batch = spec.workload.batch
    benefit = compare_designs(
        simulate(point.baseline, point.network, point.pdk, batch=batch),
        simulate(point.m3d, point.network, point.pdk, batch=batch),
    )
    return SpecEvaluation(
        spec=spec,
        n_cs_2d=point.n_cs_2d,
        n_cs_m3d=point.n_cs_m3d,
        footprint=point.footprint,
        speedup=benefit.speedup,
        energy_benefit=benefit.energy_benefit,
        edp_benefit=benefit.edp_benefit,
    )


def evaluate_specs(
    specs: Iterable[DesignSpec],
    pdk: PDK | None = None,
    engine: EvaluationEngine | None = None,
    jobs: int | None = None,
    batch: bool = False,
    batch_size: int | None = None,
) -> tuple[SpecEvaluation, ...]:
    """Evaluate many specs as one engine batch.

    With the default PDK each call's cache key is a pure function of the
    spec's content, so results persisted with ``--cache-dir`` are served
    across process restarts; duplicate specs deduplicate within the
    batch.  ``jobs`` overrides the engine's worker count for this batch
    only.

    ``batch=True`` (or a ``batch_size``) evaluates cache-missing specs
    through the vectorized kernel (:class:`repro.batch.kernel.BatchKernel`)
    instead of per-spec scalar calls — same cache keys, same counters,
    same results within 1e-9 (bit-identical when numpy is unavailable).
    ``batch_size`` caps the points packed per kernel invocation (default:
    the whole sequence as one batch); specs the kernel cannot express
    fall back to scalar evaluation point by point.
    """
    engine = engine if engine is not None else default_engine()
    if pdk is None:
        calls: list[tuple] = [(spec,) for spec in specs]
    else:
        calls = [(spec, pdk) for spec in specs]
    if not batch and batch_size is None:
        return tuple(engine.map(evaluate_spec, calls, stage="spec.evaluate",
                                jobs=jobs))
    from repro.batch.kernel import BatchKernel
    from repro.batch.pack import spec_call_key

    kernel = BatchKernel(pdk)
    size = batch_size if batch_size is not None and batch_size >= 1 \
        else max(1, len(calls))
    results: list[SpecEvaluation] = []
    for chunk in [calls[i:i + size] for i in range(0, len(calls), size)] \
            or [[]]:
        results.extend(engine.map_batched(
            evaluate_spec, chunk, batch_fn=kernel.evaluate_calls,
            stage="spec.evaluate", key_fn=spec_call_key))
    return tuple(results)


def evaluate_sweep(
    sweep: SweepSpec,
    pdk: PDK | None = None,
    engine: EvaluationEngine | None = None,
    jobs: int | None = None,
    batch: bool = False,
    batch_size: int | None = None,
) -> tuple[SpecEvaluation, ...]:
    """Expand a sweep and evaluate every point (in expansion order)."""
    return evaluate_specs(sweep.expand(), pdk=pdk, engine=engine, jobs=jobs,
                          batch=batch, batch_size=batch_size)


def format_spec_evaluations(
    evaluations: Sequence[SpecEvaluation],
    title: str = "Spec evaluation",
) -> str:
    """Render evaluations as the CLI's table (one row per spec)."""
    from repro.experiments.reporting import format_table, times

    rows = []
    for evaluation in evaluations:
        spec = evaluation.spec
        workload = spec.workload.network
        if spec.workload.layer is not None:
            workload += f" [{spec.workload.layer}]"
        if spec.workload.batch != 1:
            workload += f" x{spec.workload.batch}"
        rows.append([
            workload,
            f"{spec.arch.capacity_bits / MEGABYTE:.0f} MB",
            f"{spec.tech.delta:g}",
            f"{spec.tech.beta:g}",
            spec.arch.tier_pairs,
            evaluation.n_cs_2d,
            evaluation.n_cs_m3d,
            times(evaluation.speedup),
            times(evaluation.energy_benefit),
            times(evaluation.edp_benefit),
        ])
    return format_table(
        title,
        ["workload", "capacity", "delta", "beta", "Y", "2D CSs", "M3D CSs",
         "speedup", "energy", "EDP benefit"],
        rows,
    )
