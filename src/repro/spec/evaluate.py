"""Spec-driven evaluation: ``DesignSpec -> SpecEvaluation``.

:func:`evaluate_spec` resolves a spec and runs the simulator on the
resulting 2D/M3D pair; :func:`evaluate_specs` batches many specs through
the evaluation engine, which content-hashes each ``evaluate_spec(spec)``
call.  Because a spec is pure data, that cache key is a canonical-JSON
hash of a few dozen bytes — it survives process restarts through the disk
cache, and shipping a call to a ``--jobs N`` worker serializes the spec,
not a tree of live design objects.

``physical=True`` additionally drives both resolved designs through the
staged physical flow (:func:`repro.physical.flow.run_staged_flow`, knobs
from the spec's ``flow`` section) and attaches a :class:`PhysicalSummary`
— including a feasibility verdict — to the evaluation.  An infeasible
point (timing miss, unroutable, over the thermal budget) is a normal
result carrying ``feasible=False``, never an exception, which is what
lets physical-aware sweeps report infeasible regions instead of aborting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.errors import require
from repro.perf.compare import compare_designs
from repro.perf.simulator import simulate
from repro.runtime.engine import EvaluationEngine, default_engine
from repro.runtime.serialize import from_jsonable, to_jsonable
from repro.spec.design import DesignSpec
from repro.spec.resolve import resolve
from repro.spec.sweep import SweepSpec
from repro.tech.pdk import PDK
from repro.units import MEGABYTE

if TYPE_CHECKING:  # pragma: no cover - typing-only (lazy import below)
    from repro.spec.resolve import ResolvedPoint

__all__ = [
    "PhysicalSummary",
    "SpecEvaluation",
    "evaluate_spec",
    "evaluate_specs",
    "evaluate_sweep",
    "format_spec_evaluations",
]


@dataclass(frozen=True)
class PhysicalSummary:
    """Physical-flow metrics of one evaluated design point.

    The point is *feasible* when both chips of the comparison close
    physically — the M3D design and its 2D baseline each meet timing,
    route, and stay inside the power-density and thermal budgets of the
    spec's ``flow`` section.  The scalar metrics describe the M3D design
    (the paper's subject); ``power_density_ratio`` relates it to the 2D
    baseline (Obs. 2).

    Attributes:
        feasible: Both designs closed every enabled check.
        failed_stage: Flow stage that raised, if the flow could not
            complete (``None`` otherwise).
        timing_met: Both designs close timing at the target clock.
        timing_slack: M3D slack at the target clock, seconds.
        achieved_frequency: M3D maximum frequency, Hz (0 if unknown).
        routable: Both designs fit their routing/ILV capacity.
        track_utilization: M3D routing-track utilization.
        ilv_utilization: M3D inter-layer-via utilization.
        total_power: M3D chip power, watts.
        peak_power_density: M3D peak block power density, W/m^2.
        power_density_ok: Density inside the spec's cap (both designs).
        power_density_ratio: M3D / 2D peak density (paper: ~1.01).
        upper_tier_fraction: M3D power fraction in the BEOL tiers.
        hotspot_rise_k: M3D hotspot temperature rise, K.
        thermal_headroom_k: Budget minus M3D hotspot rise, K.
        thermal_ok: Both designs inside the thermal budget.
    """

    feasible: bool
    failed_stage: str | None
    timing_met: bool
    timing_slack: float
    achieved_frequency: float
    routable: bool
    track_utilization: float
    ilv_utilization: float
    total_power: float
    peak_power_density: float
    power_density_ok: bool
    power_density_ratio: float
    upper_tier_fraction: float
    hotspot_rise_k: float
    thermal_headroom_k: float
    thermal_ok: bool

    @property
    def verdict(self) -> str:
        """Short diagnosis: ``"ok"`` or the failed check(s)."""
        if self.feasible:
            return "ok"
        if self.failed_stage is not None:
            return f"failed:{self.failed_stage}"
        reasons = []
        if not self.timing_met:
            reasons.append("timing")
        if not self.routable:
            reasons.append("routing")
        if not self.power_density_ok:
            reasons.append("density")
        if not self.thermal_ok:
            reasons.append("thermal")
        return "+".join(reasons) if reasons else "infeasible"


@dataclass(frozen=True)
class SpecEvaluation:
    """The benefit summary of one evaluated design spec.

    Attributes:
        spec: The evaluated spec (so a result file is self-describing).
        n_cs_2d: CS count of the 2D baseline.
        n_cs_m3d: CS count of the M3D design.
        footprint: Common chip footprint, m^2.
        speedup: T_2D / T_3D on the spec's workload.
        energy_benefit: E_2D / E_3D.
        edp_benefit: Product of the two.
        physical: Physical-flow summary (``None`` unless the evaluation
            ran with ``physical=True``).
    """

    spec: DesignSpec
    n_cs_2d: int
    n_cs_m3d: int
    footprint: float
    speedup: float
    energy_benefit: float
    edp_benefit: float
    physical: PhysicalSummary | None = None

    @property
    def is_feasible(self) -> bool:
        """Physically feasible (vacuously True without a physical run)."""
        return self.physical is None or self.physical.feasible

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (used by the disk result cache)."""
        return to_jsonable(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SpecEvaluation":
        """Inverse of :meth:`to_dict`."""
        evaluation = from_jsonable(data)
        require(isinstance(evaluation, cls),
                f"expected a serialized {cls.__name__}")
        return evaluation


def _physical_summary(spec: DesignSpec,
                      point: "ResolvedPoint") -> PhysicalSummary:
    """Run both designs through the staged flow and condense the outcomes.

    Single-design non-strict runs, so a stage error on either chip
    becomes an infeasible summary instead of an exception.
    """
    from repro.physical.flow import run_staged_flow

    m3d = run_staged_flow(point.m3d, point.pdk, flow=spec.flow)
    base = run_staged_flow(point.baseline, point.pdk, flow=spec.flow)
    fm, fb = m3d.feasibility, base.feasibility
    ratio = 0.0
    if m3d.power is not None and base.power is not None:
        ratio = (m3d.power.peak_power_density
                 / base.power.peak_power_density)
    return PhysicalSummary(
        feasible=m3d.feasible and base.feasible,
        failed_stage=fm.failed_stage if fm.failed_stage is not None
        else fb.failed_stage,
        timing_met=fm.timing_met and fb.timing_met,
        timing_slack=fm.timing_slack,
        achieved_frequency=(m3d.timing.achieved_frequency
                            if m3d.timing is not None else 0.0),
        routable=fm.routable and fb.routable,
        track_utilization=fm.track_utilization,
        ilv_utilization=fm.ilv_utilization,
        total_power=m3d.power.total if m3d.power is not None else 0.0,
        peak_power_density=fm.peak_power_density,
        power_density_ok=fm.power_density_ok and fb.power_density_ok,
        power_density_ratio=ratio,
        upper_tier_fraction=(m3d.power.upper_tier_fraction
                             if m3d.power is not None else 0.0),
        hotspot_rise_k=(m3d.thermal.hotspot_rise_k
                        if m3d.thermal is not None else 0.0),
        thermal_headroom_k=fm.thermal_headroom_k,
        thermal_ok=fm.thermal_ok and fb.thermal_ok,
    )


def evaluate_spec(spec: DesignSpec, pdk: PDK | None = None,
                  physical: bool = False) -> SpecEvaluation:
    """Resolve and simulate one design spec.

    ``physical=True`` additionally runs the staged physical flow on both
    resolved designs (knobs from ``spec.flow``) and attaches a
    :class:`PhysicalSummary`; infeasible points return normally with
    ``physical.feasible == False``.
    """
    point = resolve(spec, pdk)
    batch = spec.workload.batch
    benefit = compare_designs(
        simulate(point.baseline, point.network, point.pdk, batch=batch),
        simulate(point.m3d, point.network, point.pdk, batch=batch),
    )
    return SpecEvaluation(
        spec=spec,
        n_cs_2d=point.n_cs_2d,
        n_cs_m3d=point.n_cs_m3d,
        footprint=point.footprint,
        speedup=benefit.speedup,
        energy_benefit=benefit.energy_benefit,
        edp_benefit=benefit.edp_benefit,
        physical=_physical_summary(spec, point) if physical else None,
    )


def evaluate_specs(
    specs: Iterable[DesignSpec],
    pdk: PDK | None = None,
    engine: EvaluationEngine | None = None,
    jobs: int | None = None,
    batch: bool = False,
    batch_size: int | None = None,
    physical: bool = False,
) -> tuple[SpecEvaluation, ...]:
    """Evaluate many specs as one engine batch.

    With the default PDK each call's cache key is a pure function of the
    spec's content, so results persisted with ``--cache-dir`` are served
    across process restarts; duplicate specs deduplicate within the
    batch.  ``jobs`` overrides the engine's worker count for this batch
    only.

    ``batch=True`` (or a ``batch_size``) evaluates cache-missing specs
    through the vectorized kernel (:class:`repro.batch.kernel.BatchKernel`)
    instead of per-spec scalar calls — same cache keys, same counters,
    same results within 1e-9 (bit-identical when numpy is unavailable).
    ``batch_size`` caps the points packed per kernel invocation (default:
    the whole sequence as one batch); specs the kernel cannot express
    fall back to scalar evaluation point by point.

    ``physical=True`` runs the staged physical flow per point (see
    :func:`evaluate_spec`).  The flow has no vectorized form, so
    physical evaluations always take the scalar path — ``batch`` is
    ignored for them — and cache under distinct keys (the ``physical``
    keyword is part of the call's content hash).
    """
    engine = engine if engine is not None else default_engine()
    kwargs = {"physical": True} if physical else {}
    if pdk is None:
        calls: list[tuple] = [((spec,), kwargs) for spec in specs]
    else:
        calls = [((spec, pdk), kwargs) for spec in specs]
    if physical or (not batch and batch_size is None):
        return tuple(engine.map(evaluate_spec, calls, stage="spec.evaluate",
                                jobs=jobs))
    from repro.batch.kernel import BatchKernel
    from repro.batch.pack import spec_call_key

    kernel = BatchKernel(pdk)
    size = batch_size if batch_size is not None and batch_size >= 1 \
        else max(1, len(calls))
    results: list[SpecEvaluation] = []
    for chunk in [calls[i:i + size] for i in range(0, len(calls), size)] \
            or [[]]:
        results.extend(engine.map_batched(
            evaluate_spec, chunk, batch_fn=kernel.evaluate_calls,
            stage="spec.evaluate", key_fn=spec_call_key))
    return tuple(results)


def evaluate_sweep(
    sweep: SweepSpec,
    pdk: PDK | None = None,
    engine: EvaluationEngine | None = None,
    jobs: int | None = None,
    batch: bool = False,
    batch_size: int | None = None,
    physical: bool = False,
) -> tuple[SpecEvaluation, ...]:
    """Expand a sweep and evaluate every point (in expansion order)."""
    return evaluate_specs(sweep.expand(), pdk=pdk, engine=engine, jobs=jobs,
                          batch=batch, batch_size=batch_size,
                          physical=physical)


def format_spec_evaluations(
    evaluations: Sequence[SpecEvaluation],
    title: str = "Spec evaluation",
) -> str:
    """Render evaluations as the CLI's table (one row per spec)."""
    from repro.experiments.reporting import format_table, times

    physical = any(evaluation.physical is not None
                   for evaluation in evaluations)
    rows = []
    for evaluation in evaluations:
        spec = evaluation.spec
        workload = spec.workload.network
        if spec.workload.layer is not None:
            workload += f" [{spec.workload.layer}]"
        if spec.workload.batch != 1:
            workload += f" x{spec.workload.batch}"
        row = [
            workload,
            f"{spec.arch.capacity_bits / MEGABYTE:.0f} MB",
            f"{spec.tech.delta:g}",
            f"{spec.tech.beta:g}",
            spec.arch.tier_pairs,
            evaluation.n_cs_2d,
            evaluation.n_cs_m3d,
            times(evaluation.speedup),
            times(evaluation.energy_benefit),
            times(evaluation.edp_benefit),
        ]
        if physical:
            summary = evaluation.physical
            if summary is None:
                row += ["-", "-"]
            else:
                fmax = f"{summary.achieved_frequency / 1e6:.0f} MHz" \
                    if summary.achieved_frequency > 0 else "-"
                row += [fmax, summary.verdict]
        rows.append(row)
    headers = ["workload", "capacity", "delta", "beta", "Y", "2D CSs",
               "M3D CSs", "speedup", "energy", "EDP benefit"]
    if physical:
        headers += ["fmax", "physical"]
    return format_table(title, headers, rows)
