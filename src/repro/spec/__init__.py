"""Declarative design-point construction (the Scenario/Spec layer).

* :mod:`repro.spec.design` — :class:`DesignSpec`: frozen, validated,
  plain-JSON-round-trippable description of one design point (tech
  overrides, arch knobs, workload selection).
* :mod:`repro.spec.sweep` — :class:`SweepSpec`: grid / zip / explicit-
  point axes over a base spec.
* :mod:`repro.spec.resolve` — the single resolver pipeline
  ``resolve(spec) -> ResolvedPoint(pdk, baseline, m3d, network)`` that
  every sweep and experiment constructs designs through.
* :mod:`repro.spec.evaluate` — spec-driven simulation with
  restart-surviving, content-addressed cache keys.
"""

from repro.spec.design import (
    ArchSpec,
    DesignSpec,
    FlowSpec,
    TechSpec,
    WorkloadSpec,
    field_paths,
    load_design_spec,
)
from repro.spec.sweep import SweepSpec, load_sweep_spec
from repro.spec.resolve import ResolvedPoint, build_workload, resolve, scaled_pdk
from repro.spec.evaluate import (
    PhysicalSummary,
    SpecEvaluation,
    evaluate_spec,
    evaluate_specs,
    evaluate_sweep,
    format_spec_evaluations,
)

__all__ = [
    "ArchSpec",
    "DesignSpec",
    "FlowSpec",
    "PhysicalSummary",
    "ResolvedPoint",
    "SpecEvaluation",
    "SweepSpec",
    "TechSpec",
    "WorkloadSpec",
    "build_workload",
    "evaluate_spec",
    "evaluate_specs",
    "evaluate_sweep",
    "field_paths",
    "format_spec_evaluations",
    "load_design_spec",
    "load_sweep_spec",
    "resolve",
    "scaled_pdk",
]
