"""Declarative sweeps over :class:`~repro.spec.design.DesignSpec` axes.

A :class:`SweepSpec` turns one base spec into many: ``grid`` axes expand
full-factorially (the joint-DSE shape), ``zip`` axes advance in lockstep
(paired knobs, e.g. a delta matched to each capacity), and ``points``
appends an explicit list of extra specs.  Axes name spec fields by dotted
path (``"tech.delta"``, ``"arch.capacity_mb"``) — an unknown path fails at
construction, not halfway through a sweep.

Like the design spec itself, a sweep is frozen, validated, and round-trips
through plain JSON::

    {
      "base": {"workload": {"network": "resnet18"}},
      "grid": {"arch.capacity_mb": [32, 64, 128], "tech.delta": [1.0, 2.0]},
      "zip":  {},
      "points": []
    }

Expansion order is deterministic: zip combinations outermost, then the
grid axes in declaration order (itertools.product semantics), then the
explicit points.
"""

from __future__ import annotations

import itertools
import json
import warnings
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.errors import ConfigurationError, require
from repro.spec.design import DesignSpec, field_paths

__all__ = ["SweepSpec", "load_sweep_spec"]

Axes = tuple[tuple[str, tuple[Any, ...]], ...]


#: ``(path, values)`` grid axes whose duplicate warning already fired.
#: Axis normalization runs once per *construction*, but one logical sweep
#: is reconstructed many times along the streaming paths — wire decode on
#: the server, checkpoint resume, chunk replay — which used to re-warn
#: per reconstruction (once per chunk on streamed sweeps).  Keying the
#: warning on the axis content makes "warn once per sweep" structural
#: instead of relying on the process's ``warnings`` filters.
_warned_duplicate_axes: set = set()


def reset_duplicate_axis_warnings() -> None:
    """Forget which duplicated grid axes have warned (for tests)."""
    _warned_duplicate_axes.clear()


def _warn_duplicate_axis(path: str, values: tuple, dropped: int) -> None:
    try:
        fingerprint = (path, values)
        if fingerprint in _warned_duplicate_axes:
            return
        _warned_duplicate_axes.add(fingerprint)
    except TypeError:
        pass                       # unhashable values: always warn
    warnings.warn(
        f"grid axis {path!r} repeats {dropped} value(s); duplicates "
        "are dropped (first occurrence wins)",
        stacklevel=4)


def _normalized_axes(kind: str, axes: Any) -> Axes:
    """Validate and freeze one axis block (mapping or pair sequence).

    Grid axes deduplicate repeated values (first occurrence wins) with a
    warning: a duplicate grid value would silently expand the same spec
    twice, inflating every count derived from ``len(sweep)``.  The
    warning fires once per distinct ``(axis, values)`` content, however
    many times the sweep is re-normalized (streaming and serving decode
    the same sweep repeatedly); see
    :func:`reset_duplicate_axis_warnings`.  Zip axes keep duplicates —
    their values pair positionally with the other zip axes, so a
    repeated value can still denote a distinct combination.
    """
    if isinstance(axes, Mapping):
        pairs = list(axes.items())
    else:
        pairs = [tuple(pair) for pair in axes]
    valid = set(field_paths()) | {"arch.capacity_mb"}
    normalized: list[tuple[str, tuple[Any, ...]]] = []
    seen: set[str] = set()
    for path, values in pairs:
        if path not in valid:
            raise ConfigurationError(
                f"unknown {kind} axis {path!r}; valid paths: "
                f"{', '.join(sorted(valid))}")
        if path in seen:
            raise ConfigurationError(f"duplicate {kind} axis {path!r}")
        seen.add(path)
        values = tuple(values)
        if kind == "grid":
            unique = tuple(dict.fromkeys(values))
            if len(unique) != len(values):
                _warn_duplicate_axis(path, values,
                                     len(values) - len(unique))
                values = unique
        require(len(values) > 0, f"{kind} axis {path!r} must not be empty")
        normalized.append((path, values))
    return tuple(normalized)


@dataclass(frozen=True)
class SweepSpec:
    """A base design spec plus grid / zip / explicit-point axes.

    Attributes:
        base: The spec every axis perturbs.
        grid: Full-factorial axes, ``((path, values), ...)``; also accepts
            a ``{path: values}`` mapping at construction.
        zipped: Lockstep axes (all the same length); JSON key ``"zip"``.
        points: Extra fully-formed specs appended after the expansion.
    """

    base: DesignSpec = field(default_factory=DesignSpec)
    grid: Axes = ()
    zipped: Axes = ()
    points: tuple[DesignSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "grid", _normalized_axes("grid", self.grid))
        object.__setattr__(self, "zipped",
                           _normalized_axes("zip", self.zipped))
        lengths = {len(values) for _, values in self.zipped}
        require(len(lengths) <= 1,
                "zip axes must all have the same length, got lengths "
                f"{sorted(lengths)}")
        object.__setattr__(self, "points", tuple(self.points))
        for point in self.points:
            require(isinstance(point, DesignSpec),
                    "sweep points must be DesignSpec instances")

    # --- expansion --------------------------------------------------------

    def iter_specs(self) -> Iterator[DesignSpec]:
        """Lazily yield every concrete :class:`DesignSpec`, in order.

        This is the streaming counterpart of :meth:`expand`: a
        million-point grid costs one spec of memory at a time, so the
        streaming executor (:mod:`repro.sweep.stream`) can walk grids far
        too large to materialize.  The order is identical to
        :meth:`expand`.
        """
        zip_count = len(self.zipped[0][1]) if self.zipped else 1
        grid_paths = [path for path, _ in self.grid]
        for index in range(zip_count):
            lockstep = {path: values[index] for path, values in self.zipped}
            for combo in itertools.product(
                    *(values for _, values in self.grid)):
                changes = dict(lockstep)
                changes.update(zip(grid_paths, combo))
                yield self.base.updated(changes)
        yield from self.points

    def chunks(self, size: int) -> Iterator[tuple[DesignSpec, ...]]:
        """Lazily yield the sweep's specs in chunks of ``size``.

        The last chunk may be shorter; no chunk is empty.  Backed by
        :meth:`iter_specs`, so only one chunk is ever materialized.
        """
        require(size >= 1, "chunk size must be >= 1")
        specs = self.iter_specs()
        while True:
            chunk = tuple(itertools.islice(specs, size))
            if not chunk:
                return
            yield chunk

    def expand(self) -> tuple[DesignSpec, ...]:
        """Every concrete :class:`DesignSpec` of the sweep, in order."""
        return tuple(self.iter_specs())

    def __len__(self) -> int:
        count = len(self.zipped[0][1]) if self.zipped else 1
        for _, values in self.grid:
            count *= len(values)
        return count + len(self.points)

    # --- serialization ----------------------------------------------------

    def to_jsonable(self) -> dict[str, Any]:
        """Canonical plain-JSON form; inverse of :meth:`from_jsonable`."""
        return {
            "base": self.base.to_jsonable(),
            "grid": {path: list(values) for path, values in self.grid},
            "zip": {path: list(values) for path, values in self.zipped},
            "points": [point.to_jsonable() for point in self.points],
        }

    @classmethod
    def from_jsonable(cls, data: Mapping[str, Any]) -> "SweepSpec":
        """Build a sweep from a plain JSON object.

        ``points`` entries are *partial* spec objects merged over ``base``
        (a full spec object therefore overrides everything, which is what
        :meth:`to_jsonable` emits — so the round trip is exact).
        """
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"sweep spec must be a JSON object, got {type(data).__name__}")
        unknown = sorted(set(data) - {"base", "grid", "zip", "points"})
        if unknown:
            raise ConfigurationError(
                f"unknown key(s) in sweep spec: {', '.join(unknown)}; "
                "allowed: base, grid, zip, points")
        base = DesignSpec.from_jsonable(data.get("base", {}))
        points = []
        for overlay in data.get("points", ()):
            if not isinstance(overlay, Mapping):
                raise ConfigurationError(
                    "sweep points must be JSON objects")
            merged = _merge(base.to_jsonable(), overlay)
            points.append(DesignSpec.from_jsonable(merged))
        return cls(base=base, grid=data.get("grid", {}),
                   zipped=data.get("zip", {}), points=tuple(points))

    def to_json(self, indent: int | None = 2) -> str:
        """The sweep as a JSON document."""
        return json.dumps(self.to_jsonable(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        """Parse a sweep from a JSON document."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"invalid sweep JSON: {error}") from error
        return cls.from_jsonable(data)

    def fingerprint(self) -> str:
        """Content hash of the canonical JSON form."""
        from repro.runtime.keys import stable_key

        return stable_key("repro.spec.SweepSpec", self.to_jsonable())


def _merge(base: dict[str, Any], overlay: Mapping[str, Any]) -> dict[str, Any]:
    """One-level-deep section merge of a partial spec over a full one."""
    merged = {section: dict(values) for section, values in base.items()}
    for section, values in overlay.items():
        if isinstance(values, Mapping) and section in merged:
            merged[section].update(values)
            if "capacity_mb" in merged[section]:
                merged[section].pop("capacity_bits", None)
        else:
            merged[section] = values
    return merged


def load_sweep_spec(path: str) -> SweepSpec:
    """Read a :class:`SweepSpec` from a JSON file.

    A file holding a plain :class:`DesignSpec` (``tech``/``arch``/
    ``workload`` sections, no axes) loads as a one-point sweep, so ``repro
    sweep --spec`` accepts both shapes.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as error:
        raise ConfigurationError(f"cannot read sweep {path!r}: {error}") \
            from error
    except json.JSONDecodeError as error:
        raise ConfigurationError(f"invalid sweep JSON: {error}") from error
    if isinstance(data, Mapping) and not (
            {"base", "grid", "zip", "points"} & set(data)):
        return SweepSpec(base=DesignSpec.from_jsonable(data))
    return SweepSpec.from_jsonable(data)
