"""Declarative, serializable design-point specifications.

A :class:`DesignSpec` is the *data* form of one paper design point: the
technology overrides (access-FET width relaxation delta, ILV pitch factor
beta, BEOL memory preset), the architecture knobs (RRAM capacity, tier
pairs Y, explicit CS-count override, baseline CS-count policy, CS preset,
operand precision) and the workload selection (network, optional single
layer, token batch).  It is frozen, validated on construction, and
round-trips through plain hand-writable JSON — no tagged-codec payloads,
so a ``spec.json`` can be written in an editor and shipped between
processes.

The spec deliberately contains **no live objects**: resolving it into a
``(PDK, baseline design, M3D design, Network)`` tuple is the job of
:func:`repro.spec.resolve.resolve`, the single construction path every
sweep and experiment routes through.  :meth:`DesignSpec.fingerprint`
content-hashes the canonical JSON form, which is what the runtime uses as
a cache key — stable across processes, unlike the identity-keyed memo
tables it replaced.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from typing import Any, Mapping

from repro.errors import ConfigurationError, require
from repro.units import MEGABYTE

__all__ = [
    "ArchSpec",
    "BASELINE_POLICIES",
    "CS_PRESETS",
    "DesignSpec",
    "FlowSpec",
    "TechSpec",
    "WorkloadSpec",
    "field_paths",
    "load_design_spec",
]

#: How the 2D baseline's CS count is chosen.  ``iso`` keeps the paper's
#: single-CS baseline (Fig. 2); ``reoptimized`` enlarges the baseline to
#: the M3D footprint and refills the extra silicon with CSs per Eq. 9
#: (the Case 1/2 comparisons of Sec. III-D/E).
BASELINE_POLICIES: tuple[str, ...] = ("iso", "reoptimized")

#: Which computing sub-system both designs replicate.  ``case-study`` is
#: the paper's Sec. II CS; ``precision-scaled`` rebuilds the registers
#: around ``precision_bits`` (the ext-precision study).
CS_PRESETS: tuple[str, ...] = ("case-study", "precision-scaled")


def _require_mapping(section: str, data: Any) -> None:
    if not isinstance(data, Mapping):
        raise ConfigurationError(
            f"spec section {section!r} must be a JSON object, "
            f"got {type(data).__name__}")


def _check_keys(section: str, data: Mapping[str, Any],
                allowed: tuple[str, ...]) -> None:
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise ConfigurationError(
            f"unknown key(s) in {section!r} spec: {', '.join(unknown)}; "
            f"allowed: {', '.join(allowed)}")


def _checked_float(name: str, value: Any, minimum: float) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(f"{name} must be a number, got {value!r}")
    require(value >= minimum, f"{name} must be >= {minimum}, got {value!r}")
    return float(value)


def _checked_int(name: str, value: Any, minimum: int) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    require(value >= minimum, f"{name} must be >= {minimum}, got {value!r}")
    return value


def _checked_bool(name: str, value: Any) -> bool:
    if not isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a boolean, got {value!r}")
    return value


def _checked_str(name: str, value: Any, choices: tuple[str, ...] | None = None,
                 optional: bool = False) -> str | None:
    if value is None and optional:
        return None
    if not isinstance(value, str) or not value:
        raise ConfigurationError(
            f"{name} must be a non-empty string, got {value!r}")
    if choices is not None and value not in choices:
        raise ConfigurationError(
            f"{name} must be one of {', '.join(choices)}; got {value!r}")
    return value


@dataclass(frozen=True)
class TechSpec:
    """Technology overrides applied to the base PDK.

    Attributes:
        delta: Access-FET width relaxation factor (Case 1, >= 1).
        beta: ILV pitch scaling factor (Case 2, > 0).
        memory: BEOL memory-technology preset name from
            :data:`repro.tech.memories.MEMORY_TECHNOLOGIES`, or ``None``
            for the PDK's own RRAM cell.
    """

    delta: float = 1.0
    beta: float = 1.0
    memory: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "delta",
                           _checked_float("tech.delta", self.delta, 1.0))
        object.__setattr__(self, "beta",
                           _checked_float("tech.beta", self.beta, 0.0))
        require(self.beta > 0, "tech.beta must be positive")
        _checked_str("tech.memory", self.memory, optional=True)

    def to_jsonable(self) -> dict[str, Any]:
        """Plain-JSON form (no tagged-codec payloads)."""
        return {"delta": self.delta, "beta": self.beta, "memory": self.memory}

    @classmethod
    def from_jsonable(cls, data: Mapping[str, Any]) -> "TechSpec":
        """Inverse of :meth:`to_jsonable`; rejects unknown keys."""
        _require_mapping("tech", data)
        _check_keys("tech", data, ("delta", "beta", "memory"))
        return cls(**dict(data))


@dataclass(frozen=True)
class ArchSpec:
    """Architecture knobs for the 2D/M3D design pair.

    Attributes:
        capacity_bits: On-chip RRAM capacity (both designs, iso-capacity).
        tier_pairs: Interleaved compute+memory tier pairs Y (Case 3); the
            M3D CS count is Y times the single-pair Eq. 2 count.
        n_cs: Explicit M3D CS-count override (wins over ``tier_pairs``);
            ``None`` derives the count from the freed silicon.
        baseline: 2D CS-count policy, one of
            :data:`BASELINE_POLICIES`.
        cs: Computing-sub-system preset, one of :data:`CS_PRESETS`.
        precision_bits: Operand precision of both designs.
    """

    capacity_bits: int = 64 * MEGABYTE
    tier_pairs: int = 1
    n_cs: int | None = None
    baseline: str = "iso"
    cs: str = "case-study"
    precision_bits: int = 8

    def __post_init__(self) -> None:
        _checked_int("arch.capacity_bits", self.capacity_bits, 1)
        _checked_int("arch.tier_pairs", self.tier_pairs, 1)
        if self.n_cs is not None:
            _checked_int("arch.n_cs", self.n_cs, 1)
        _checked_str("arch.baseline", self.baseline, BASELINE_POLICIES)
        _checked_str("arch.cs", self.cs, CS_PRESETS)
        _checked_int("arch.precision_bits", self.precision_bits, 1)

    def to_jsonable(self) -> dict[str, Any]:
        """Plain-JSON form (no tagged-codec payloads)."""
        return {
            "capacity_bits": self.capacity_bits,
            "tier_pairs": self.tier_pairs,
            "n_cs": self.n_cs,
            "baseline": self.baseline,
            "cs": self.cs,
            "precision_bits": self.precision_bits,
        }

    @classmethod
    def from_jsonable(cls, data: Mapping[str, Any]) -> "ArchSpec":
        """Inverse of :meth:`to_jsonable`; rejects unknown keys.

        Accepts ``capacity_mb`` as a hand-writing convenience (mutually
        exclusive with ``capacity_bits``).
        """
        _require_mapping("arch", data)
        _check_keys("arch", data, ("capacity_bits", "capacity_mb",
                                   "tier_pairs", "n_cs", "baseline", "cs",
                                   "precision_bits"))
        kwargs = dict(data)
        if "capacity_mb" in kwargs:
            if "capacity_bits" in kwargs:
                raise ConfigurationError(
                    "give either arch.capacity_bits or arch.capacity_mb, "
                    "not both")
            megabytes = kwargs.pop("capacity_mb")
            if isinstance(megabytes, bool) or not isinstance(
                    megabytes, (int, float)):
                raise ConfigurationError(
                    f"arch.capacity_mb must be a number, got {megabytes!r}")
            kwargs["capacity_bits"] = int(megabytes * MEGABYTE)
        return cls(**kwargs)


@dataclass(frozen=True)
class WorkloadSpec:
    """Workload selection.

    Attributes:
        network: Model name — any :func:`repro.workloads.models
            .available_networks` entry or a transformer-encoder preset
            (``tiny_encoder``, ``base_encoder``).
        layer: Optional single-layer restriction by paper layer name
            (e.g. ``"L4.1 CONV2"``); the resolved network then contains
            only that layer, named ``<network>_<layer>`` like the Fig. 10d
            parallel-layer study.
        batch: Inputs (images / tokens) per simulated pass.
    """

    network: str = "resnet18"
    layer: str | None = None
    batch: int = 1

    def __post_init__(self) -> None:
        _checked_str("workload.network", self.network)
        _checked_str("workload.layer", self.layer, optional=True)
        _checked_int("workload.batch", self.batch, 1)

    def to_jsonable(self) -> dict[str, Any]:
        """Plain-JSON form (no tagged-codec payloads)."""
        return {"network": self.network, "layer": self.layer,
                "batch": self.batch}

    @classmethod
    def from_jsonable(cls, data: Mapping[str, Any]) -> "WorkloadSpec":
        """Inverse of :meth:`to_jsonable`; rejects unknown keys."""
        _require_mapping("workload", data)
        _check_keys("workload", data, ("network", "layer", "batch"))
        return cls(**dict(data))


@dataclass(frozen=True)
class FlowSpec:
    """Physical-design flow knobs for the staged P&R pipeline.

    Everything :func:`repro.physical.flow.run_staged_flow` needs beyond
    the design itself: switching-activity factors, an optional target
    frequency override, die shaping, per-stage toggles, and the
    feasibility budgets the :class:`~repro.physical.flow.FlowOutcome`
    checks against.  The defaults reproduce the legacy ``run_flow``
    physical results bit-identically (plus the clock / congestion /
    thermal stages the legacy flow never ran).

    Attributes:
        activity_cs: CS compute-logic switching activity (Sec. III-C).
        activity_channel: Weight-channel switching activity.
        activity_bus: Writeback-bus switching activity.
        frequency_mhz: Target clock override for timing/clock/power;
            ``None`` uses each design's own architected frequency.
        aspect_ratio: Die width/height ratio the floorplanner shapes the
            die to (1.0 = the legacy square die).
        legalize: Run the CS legalization (detailed-placement) stage.
        clock: Run clock-tree synthesis.
        congestion: Run routing-track / ILV congestion analysis.
        thermal: Run the thermal-map solve.
        thermal_grid: Thermal solver grid resolution (cells per side).
        max_rise_k: Thermal feasibility budget — max tolerated hotspot
            temperature rise over ambient, in kelvin.
        max_power_density: Optional power-density feasibility cap in
            W/m^2 (``None`` = unchecked).
    """

    activity_cs: float = 0.85
    activity_channel: float = 0.05
    activity_bus: float = 0.10
    frequency_mhz: float | None = None
    aspect_ratio: float = 1.0
    legalize: bool = True
    clock: bool = True
    congestion: bool = True
    thermal: bool = True
    thermal_grid: int = 64
    max_rise_k: float = 60.0
    max_power_density: float | None = None

    def __post_init__(self) -> None:
        for name in ("activity_cs", "activity_channel", "activity_bus"):
            value = _checked_float(f"flow.{name}", getattr(self, name), 0.0)
            require(value <= 1.0, f"flow.{name} must be <= 1, got {value!r}")
            object.__setattr__(self, name, value)
        if self.frequency_mhz is not None:
            value = _checked_float("flow.frequency_mhz",
                                   self.frequency_mhz, 0.0)
            require(value > 0, "flow.frequency_mhz must be positive")
            object.__setattr__(self, "frequency_mhz", value)
        ratio = _checked_float("flow.aspect_ratio", self.aspect_ratio, 0.0)
        require(ratio > 0, "flow.aspect_ratio must be positive")
        object.__setattr__(self, "aspect_ratio", ratio)
        for name in ("legalize", "clock", "congestion", "thermal"):
            _checked_bool(f"flow.{name}", getattr(self, name))
        _checked_int("flow.thermal_grid", self.thermal_grid, 4)
        rise = _checked_float("flow.max_rise_k", self.max_rise_k, 0.0)
        require(rise > 0, "flow.max_rise_k must be positive")
        object.__setattr__(self, "max_rise_k", rise)
        if self.max_power_density is not None:
            cap = _checked_float("flow.max_power_density",
                                 self.max_power_density, 0.0)
            require(cap > 0, "flow.max_power_density must be positive")
            object.__setattr__(self, "max_power_density", cap)

    @property
    def frequency_hz(self) -> float | None:
        """The frequency override in hertz (``None`` = design default)."""
        if self.frequency_mhz is None:
            return None
        return self.frequency_mhz * 1e6

    def to_jsonable(self) -> dict[str, Any]:
        """Plain-JSON form (no tagged-codec payloads)."""
        return {
            "activity_cs": self.activity_cs,
            "activity_channel": self.activity_channel,
            "activity_bus": self.activity_bus,
            "frequency_mhz": self.frequency_mhz,
            "aspect_ratio": self.aspect_ratio,
            "legalize": self.legalize,
            "clock": self.clock,
            "congestion": self.congestion,
            "thermal": self.thermal,
            "thermal_grid": self.thermal_grid,
            "max_rise_k": self.max_rise_k,
            "max_power_density": self.max_power_density,
        }

    @classmethod
    def from_jsonable(cls, data: Mapping[str, Any]) -> "FlowSpec":
        """Inverse of :meth:`to_jsonable`; rejects unknown keys."""
        _require_mapping("flow", data)
        _check_keys("flow", data, tuple(f.name for f in fields(cls)))
        return cls(**dict(data))


_SECTIONS: tuple[tuple[str, type], ...] = (
    ("tech", TechSpec), ("arch", ArchSpec), ("workload", WorkloadSpec),
    ("flow", FlowSpec),
)


def field_paths() -> tuple[str, ...]:
    """Every valid dotted override path (``"tech.delta"``, ...)."""
    paths: list[str] = []
    for section, cls in _SECTIONS:
        paths.extend(f"{section}.{f.name}" for f in fields(cls))
    return tuple(paths)


@dataclass(frozen=True)
class DesignSpec:
    """One declarative design point: tech + arch + workload + flow.

    The default spec is exactly the paper's case study — 64 MB RRAM,
    delta = beta = 1, one tier pair, the Sec. II CS, ResNet-18 at batch 1
    against the plain single-CS 2D baseline.
    """

    tech: TechSpec = field(default_factory=TechSpec)
    arch: ArchSpec = field(default_factory=ArchSpec)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    flow: FlowSpec = field(default_factory=FlowSpec)

    # --- serialization ----------------------------------------------------

    def to_jsonable(self) -> dict[str, Any]:
        """Canonical plain-JSON form; inverse of :meth:`from_jsonable`."""
        return {
            "tech": self.tech.to_jsonable(),
            "arch": self.arch.to_jsonable(),
            "workload": self.workload.to_jsonable(),
            "flow": self.flow.to_jsonable(),
        }

    @classmethod
    def from_jsonable(cls, data: Mapping[str, Any]) -> "DesignSpec":
        """Build a spec from a plain JSON object.

        Sections may be omitted (defaults apply); unknown sections or keys
        raise :class:`~repro.errors.ConfigurationError` so a typo'd knob
        fails loudly instead of silently sweeping the default.
        """
        _require_mapping("spec", data)
        _check_keys("spec", data, tuple(name for name, _ in _SECTIONS))
        kwargs: dict[str, Any] = {}
        for section, section_cls in _SECTIONS:
            if section in data:
                kwargs[section] = section_cls.from_jsonable(data[section])
        return cls(**kwargs)

    def to_json(self, indent: int | None = 2) -> str:
        """The spec as a JSON document."""
        return json.dumps(self.to_jsonable(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "DesignSpec":
        """Parse a spec from a JSON document."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"invalid spec JSON: {error}") from error
        return cls.from_jsonable(data)

    def fingerprint(self) -> str:
        """Content hash of the canonical JSON form.

        Stable across processes and object identities — two specs with
        equal knobs share one fingerprint however they were built, which
        is what makes spec-keyed caches survive a restart.
        """
        from repro.runtime.keys import stable_key

        return stable_key("repro.spec.DesignSpec", self.to_jsonable())

    # --- derivation -------------------------------------------------------

    def updated(self, changes: Mapping[str, Any] | None = None,
                ) -> "DesignSpec":
        """A copy with dotted-path overrides applied.

        ``spec.updated({"tech.delta": 1.6, "arch.capacity_mb": 32})``
        returns a new validated spec; an unknown path raises
        :class:`~repro.errors.ConfigurationError`.  This is the primitive
        sweep axes expand through.
        """
        if not changes:
            return self
        spec = self
        sections = dict(_SECTIONS)
        for path, value in changes.items():
            section, _, name = str(path).partition(".")
            if section not in sections or not name:
                raise ConfigurationError(
                    f"unknown spec path {path!r}; valid paths: "
                    f"{', '.join(field_paths())}")
            sub = getattr(spec, section)
            if name == "capacity_mb" and section == "arch":
                jsonable = sub.to_jsonable()
                del jsonable["capacity_bits"]
                jsonable["capacity_mb"] = value
                spec = replace(spec, arch=ArchSpec.from_jsonable(jsonable))
                continue
            if name not in {f.name for f in fields(sub)}:
                raise ConfigurationError(
                    f"unknown spec path {path!r}; valid paths: "
                    f"{', '.join(field_paths())}")
            spec = replace(spec, **{section: replace(sub, **{name: value})})
        return spec

    def with_capacity(self, capacity_bits: int) -> "DesignSpec":
        """A copy at a different RRAM capacity."""
        return self.updated({"arch.capacity_bits": capacity_bits})

    def with_network(self, network: str) -> "DesignSpec":
        """A copy targeting a different model."""
        return self.updated({"workload.network": network})


def load_design_spec(path: str) -> DesignSpec:
    """Read a :class:`DesignSpec` from a JSON file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        raise ConfigurationError(f"cannot read spec {path!r}: {error}") \
            from error
    return DesignSpec.from_json(text)
