"""Array-backend selection for the vectorized batch kernel.

The kernel's formulas are written once against the tiny op set of
:class:`ArrayOps` (``maximum``/``minimum``/``where``/``ceil``) and run in
one of two modes:

* **numpy** — operands are broadcast arrays, one row per design and one
  column per workload layer, so a whole batch evaluates in a handful of
  ufunc passes;
* **python** — numpy is not importable (or was forced off with
  :func:`set_numpy_enabled`): the *same* formula body runs on plain
  floats, row by row, which keeps the batch path available everywhere
  and gives the numpy mode an exact reference to agree with.

Nothing outside this module imports numpy, so ``import repro.batch``
works on a numpy-less interpreter.
"""

from __future__ import annotations

import math
from typing import Any, Callable

try:  # pragma: no cover - exercised by the no-numpy CI job
    import numpy as _numpy
except Exception:  # pragma: no cover
    _numpy = None

_forced_python = False


def numpy_available() -> bool:
    """True when numpy imported successfully (regardless of forcing)."""
    return _numpy is not None


def set_numpy_enabled(enabled: bool) -> bool:
    """Force (``False``) or allow (``True``) numpy; returns the previous
    setting.  Forcing the pure-python mode lets the parity tests compare
    both backends in one process."""
    global _forced_python
    previous = not _forced_python
    _forced_python = not enabled
    return previous


def active_numpy():
    """The numpy module the kernel should use, or ``None`` for python."""
    if _forced_python:
        return None
    return _numpy


def backend_name() -> str:
    """``"numpy"`` or ``"python"`` — what a batch would evaluate with."""
    return "numpy" if active_numpy() is not None else "python"


class ArrayOps:
    """The op set shared by the numpy and scalar formula bodies.

    ``where`` evaluates both branches in scalar mode (like numpy's); every
    kernel formula is total over its domain, so that is safe.
    """

    __slots__ = ("maximum", "minimum", "where", "ceil")

    def __init__(self,
                 maximum: Callable[[Any, Any], Any],
                 minimum: Callable[[Any, Any], Any],
                 where: Callable[[Any, Any, Any], Any],
                 ceil: Callable[[Any], Any]) -> None:
        self.maximum = maximum
        self.minimum = minimum
        self.where = where
        self.ceil = ceil


#: Scalar mode: python builtins over one (design row, layer) pair.
scalar_ops = ArrayOps(
    maximum=max,
    minimum=min,
    where=lambda condition, then, otherwise: then if condition else otherwise,
    ceil=math.ceil,
)


def numpy_ops(np) -> ArrayOps:
    """The op set bound to a numpy module."""
    return ArrayOps(maximum=np.maximum, minimum=np.minimum,
                    where=np.where, ceil=np.ceil)
