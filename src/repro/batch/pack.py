"""Packing: ``DesignSpec -> parameter rows`` for the batch kernel.

The scalar pipeline resolves every spec into live objects (PDK, two
:class:`~repro.arch.accelerator.AcceleratorDesign`\\ s, a
:class:`~repro.workloads.models.Network`) and walks them per layer.  The
batch kernel instead lowers each spec to two :class:`DesignRow`\\ s — flat
parameter rows holding exactly the scalars the per-layer cost model reads
— plus a :class:`WorkloadStage` of per-layer feature rows.  Stacking the
design rows (one row per design, one column per parameter) against the
layer features (one column per layer) is what lets the kernel evaluate a
whole batch as array operations.

Delta-evaluation lives in the stage tables here: a spec's sections
identify which intermediate stages its neighbors already computed.

* ``batch.design`` — keyed on the *tech x CS* section values (delta,
  beta, memory preset, CS preset, precision) plus the base PDK's
  identity: cell areas, CS area/leakage, peripheral area/leakage, array
  geometry.  Points that only vary arch/workload axes reuse it.
* ``batch.workload`` — keyed on (network, layer): per-layer feature rows
  and weight totals.  Points that only vary tech/arch axes reuse it.
* ``batch.rows`` — keyed on (DesignRow, workload key): the evaluated
  (cycles, energy) totals.  Equal rows are interchangeable by
  construction (the row *is* everything the cost model reads — the
  vectorized analogue of the simulator's design fingerprint), so sweep
  neighbors whose knob changes are absorbed by the construction (e.g.
  a beta that doesn't change the derived CS count) skip even the
  vectorized math.  Hits count as ``batch.delta_hits``.

All three honor :func:`repro.runtime.memo.set_memoization` and show up
in :class:`~repro.runtime.engine.RunReport` memo stats.

The arithmetic mirrors :mod:`repro.spec.resolve` /
:mod:`repro.arch.accelerator` float-for-float (same operations, same
order), which is what lets the kernel meet its 1e-9 agreement bound —
see DESIGN.md's "Batch kernel" section for the invariants.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import NamedTuple

from repro.arch.accelerator import (
    DEFAULT_BANK_WIDTH_BITS,
    DEFAULT_FREQUENCY_HZ,
    DEFAULT_POOL_LANES,
    DEFAULT_WRITEBACK_BUS_BITS,
    SYSTEM_BUS_IO_AREA,
    ComputingSubsystem,
    case_study_cs,
    peripheral_area,
    precision_scaled_cs,
)
from repro.runtime.cache import MISSING
from repro.runtime.keys import call_key
from repro.runtime.memo import memo_table
from repro.runtime.serialize import dumps, fingerprint_cache_enabled
from repro.spec.design import (
    ArchSpec,
    DesignSpec,
    FlowSpec,
    TechSpec,
    WorkloadSpec,
)
from repro.spec.resolve import build_workload, tech_pdk
from repro.tech.pdk import PDK
from repro.workloads.layers import Layer, LayerKind

__all__ = [
    "DesignRow",
    "LayerRow",
    "PackedPoint",
    "UnsupportedSpec",
    "WorkloadStage",
    "clear_key_caches",
    "design_stage",
    "pack_point",
    "spec_call_key",
    "workload_stage",
]


class UnsupportedSpec(Exception):
    """Raised when a spec cannot take the vectorized path.

    The kernel answers by falling back to scalar ``evaluate_spec`` for
    that point, which either evaluates it correctly or raises the same
    diagnostic the scalar path always raised (e.g. for weights that do
    not fit on chip) — the batch layer never invents new behavior.
    """


class DesignRow(NamedTuple):
    """One design as a flat parameter row — the batch matrix schema.

    Every field is a scalar the per-layer cost model reads; two equal
    rows are interchangeable to the kernel, exactly like equal simulator
    fingerprints.  Stacked rows form the batch's design matrix.

    Attributes:
        n_cs: Parallel CS count N.
        bandwidth_bits: Total weight-read bandwidth, bits/cycle.
        precision_bits: Operand precision.
        read_energy: RRAM read energy, J/bit.
        mac_energy: PE MAC energy, J/op.
        static_power: Chip static power, W.
        cycle_time: Clock period, s.
        rows: Systolic-array input-channel dimension.
        cols: Systolic-array output-channel dimension.
        fill_cycles: Pipeline fill+drain cycles per slab.
        weight_bits_per_slab: Weight bits loaded per slab.
        pool_lanes: Post-processing vector lanes per CS.
        bus_bits: Shared writeback bus width, bits/cycle.
        row_packing: Shallow-channel row-packing mapping enabled.
        batch: Inference batch size.
    """

    n_cs: int
    bandwidth_bits: int
    precision_bits: int
    read_energy: float
    mac_energy: float
    static_power: float
    cycle_time: float
    rows: int
    cols: int
    fill_cycles: int
    weight_bits_per_slab: int
    pool_lanes: int
    bus_bits: int
    row_packing: bool
    batch: int


class LayerRow(NamedTuple):
    """One workload layer as a feature row (one column per layer).

    Attributes:
        is_pool: Pooling layer (vector-unit timing path).
        is_conv: Convolution (kernel passes / row packing apply).
        positions: Output positions streamed per slab (1 for FC).
        out_channels: Output channels K.
        kernel: Square kernel size.
        groups: Channel groups.
        group_in: Input channels per group.
        macs: MAC count.
        weights: Weight count.
        output_elements: Output feature-map elements.
    """

    is_pool: bool
    is_conv: bool
    positions: int
    out_channels: int
    kernel: int
    groups: int
    group_in: int
    macs: int
    weights: int
    output_elements: int


class DesignStage(NamedTuple):
    """Tech x CS intermediates shared by every spec with equal sections.

    Attributes:
        cell_area_2d: 2D RRAM bit-cell area, m^2.
        cell_area_m3d: M3D bit-cell area at the tech's delta, m^2.
        cs_area: Single-CS silicon area, m^2.
        cs_leakage: Single-CS static power, W.
        peripheral: Memory-peripheral silicon area, m^2.
        peripheral_leakage: Memory-peripheral static power, W.
        read_energy: RRAM read energy, J/bit.
        mac_energy: PE MAC energy, J/op.
        rows: Array rows.
        cols: Array cols.
        fill_cycles: Array fill+drain cycles.
        weight_bits_per_slab: Weight bits per slab.
        row_packing: Row-packing mapping enabled.
    """

    cell_area_2d: float
    cell_area_m3d: float
    cs_area: float
    cs_leakage: float
    peripheral: float
    peripheral_leakage: float
    read_energy: float
    mac_energy: float
    rows: int
    cols: int
    fill_cycles: int
    weight_bits_per_slab: int
    row_packing: bool


class WorkloadStage:
    """Per-layer features of one (network, layer-restriction) workload."""

    __slots__ = ("network", "layers", "_weight_bits", "_columns")

    def __init__(self, network) -> None:
        self.network = network
        self.layers = tuple(_layer_row(layer) for layer in network.layers)
        self._weight_bits: dict[int, int] = {}
        self._columns = None

    def weight_bits(self, precision_bits: int) -> int:
        """Total weight bits at a precision (cached per precision)."""
        bits = self._weight_bits.get(precision_bits)
        if bits is None:
            bits = self.network.weight_bits(precision_bits)
            self._weight_bits[precision_bits] = bits
        return bits

    def columns(self, np):
        """The layer features as (1, L) numpy row vectors, built lazily."""
        if self._columns is None:
            stacked = list(zip(*self.layers)) if self.layers else \
                [[] for _ in LayerRow._fields]
            columns = {}
            for name, values in zip(LayerRow._fields, stacked):
                dtype = bool if name in ("is_pool", "is_conv") else np.float64
                columns[name] = np.array(values, dtype=dtype)[None, :]
            self._columns = _Namespace(columns)
        return self._columns


class _Namespace:
    """Attribute access over a dict of packed columns."""

    __slots__ = ("__dict__",)

    def __init__(self, columns: dict) -> None:
        self.__dict__.update(columns)


class PackedPoint(NamedTuple):
    """One spec lowered to kernel inputs.

    Attributes:
        spec: The original spec.
        workload_key: ``(network, layer)`` — key into the workload stage.
        row_2d: The 2D baseline's parameter row.
        row_m3d: The M3D design's parameter row.
        footprint: Common chip footprint, m^2.
    """

    spec: DesignSpec
    workload_key: tuple
    row_2d: DesignRow
    row_m3d: DesignRow
    footprint: float


#: Tech x CS stage: (PDK key, delta, beta, memory, CS key) -> DesignStage.
_DESIGN_STAGE = memo_table("batch.design")

#: Workload stage: (network, layer) -> WorkloadStage.
_WORKLOAD_STAGE = memo_table("batch.workload")

#: Row results: (DesignRow, workload key) -> (cycles, energy).
ROW_RESULTS = memo_table("batch.rows")


def _layer_row(layer: Layer) -> LayerRow:
    kind = layer.kind
    positions = 1 if kind == LayerKind.FC else layer.out_size * layer.out_size
    groups = layer.channel_groups
    return LayerRow(
        is_pool=kind == LayerKind.POOL,
        is_conv=kind == LayerKind.CONV,
        positions=positions,
        out_channels=layer.out_channels,
        kernel=layer.kernel,
        groups=groups,
        group_in=layer.in_channels // groups,
        macs=layer.macs,
        weights=layer.weights,
        output_elements=layer.output_elements,
    )


def _cs_preset(arch: ArchSpec) -> ComputingSubsystem:
    if arch.cs == "case-study":
        return case_study_cs()
    return precision_scaled_cs(arch.precision_bits)


def design_stage(base: PDK, tech: TechSpec, arch: ArchSpec) -> DesignStage:
    """The tech x CS intermediates for one (tech section, CS choice).

    Keyed on section *values* plus the base PDK's identity — every spec
    of a sweep shares the base PDK object, so arch/workload-only grids
    hit one entry.
    """
    cs_key = arch.cs if arch.cs == "case-study" \
        else (arch.cs, arch.precision_bits)
    key = (id(base), tech.delta, tech.beta, tech.memory, cs_key)
    stage = _DESIGN_STAGE.get(key)
    if stage is MISSING:
        stage = _build_design_stage(base, tech, arch)
        # Keep the keyed object alive so id(base) cannot be recycled.
        _DESIGN_STAGE.put(key, (base, stage))
        return stage
    return stage[1]


def _build_design_stage(base: PDK, tech: TechSpec,
                        arch: ArchSpec) -> DesignStage:
    pdk = tech_pdk(tech, base)
    cs = _cs_preset(arch)
    array = cs.array
    perif = peripheral_area(pdk)
    perif_gates = perif / pdk.silicon_library.gate_equivalent.area
    return DesignStage(
        cell_area_2d=pdk.rram_cell.area(None),
        cell_area_m3d=pdk.m3d_rram_cell(tech.delta).area(pdk.ilv),
        cs_area=cs.silicon_area(pdk),
        cs_leakage=cs.leakage(pdk),
        peripheral=perif,
        peripheral_leakage=pdk.silicon_library.leakage_for_gates(perif_gates),
        read_energy=pdk.rram_cell.read_energy_per_bit,
        mac_energy=array.pe.mac_energy,
        rows=array.rows,
        cols=array.cols,
        fill_cycles=array.fill_drain_cycles,
        weight_bits_per_slab=array.weight_bits_per_slab(),
        row_packing=array.enable_row_packing,
    )


def workload_stage(network: str, layer: str | None) -> WorkloadStage:
    """The feature rows for one (network, layer-restriction) pair."""
    key = (network, layer)
    stage = _WORKLOAD_STAGE.get(key)
    if stage is MISSING:
        stage = WorkloadStage(
            build_workload(WorkloadSpec(network=network, layer=layer)))
        _WORKLOAD_STAGE.put(key, stage)
    return stage


def pack_point(spec: DesignSpec, base: PDK) -> PackedPoint:
    """Lower one spec to its two design rows + workload key.

    Mirrors :func:`repro.spec.resolve._resolve` +
    :mod:`repro.arch.accelerator` operation-for-operation on the float
    quantities (footprints, CS counts, leakage), so the derived rows
    equal the scalar pipeline's designs bit-for-bit.  Raises
    :class:`UnsupportedSpec` for anything the row schema cannot express
    or that the scalar path would reject.
    """
    tech, arch, workload = spec.tech, spec.arch, spec.workload
    if arch.precision_bits > DEFAULT_WRITEBACK_BUS_BITS:
        # AcceleratorDesign would reject the precision; let the scalar
        # path raise its diagnostic.
        raise UnsupportedSpec("precision exceeds the writeback bus")
    stage = design_stage(base, tech, arch)
    wstage = workload_stage(workload.network, workload.layer)
    capacity = arch.capacity_bits
    if wstage.weight_bits(arch.precision_bits) > capacity:
        raise UnsupportedSpec("weights do not fit in on-chip RRAM")

    # Geometry, in the exact float-op order of accelerator.py: the 2D
    # baseline footprint, the grown M3D footprint, Eq. 2's refined CS
    # count, and Eq. 9's re-optimized baseline refill.
    cells_2d = capacity * stage.cell_area_2d
    cells_m3d = capacity * stage.cell_area_m3d
    baseline_fp = cells_2d + stage.peripheral + 1 * stage.cs_area \
        + SYSTEM_BUS_IO_AREA
    grown_fp = max(baseline_fp, cells_m3d)
    extra_si = grown_fp - baseline_fp
    freed = cells_2d - stage.peripheral + extra_si
    n_single = 1 + max(0, math.floor(freed / stage.cs_area))
    n_m3d = arch.n_cs if arch.n_cs is not None \
        else n_single * arch.tier_pairs
    if arch.baseline == "reoptimized":
        n_2d = 1 if extra_si <= 0 else 1 + math.floor(extra_si / stage.cs_area)
    else:
        n_2d = 1
    if n_m3d > capacity or n_2d > capacity:
        # RRAMBankPlan rejects more banks than bits.
        raise UnsupportedSpec("more banks than capacity bits")

    cycle_time = 1.0 / DEFAULT_FREQUENCY_HZ
    # Positional DesignRow construction (field order of the NamedTuple);
    # building through a kwargs dict costs ~30% of pack time at scale.
    common = (arch.precision_bits, stage.read_energy, stage.mac_energy)
    tail = (cycle_time, stage.rows, stage.cols, stage.fill_cycles,
            stage.weight_bits_per_slab, DEFAULT_POOL_LANES,
            DEFAULT_WRITEBACK_BUS_BITS, stage.row_packing, workload.batch)
    row_2d = DesignRow(
        n_2d,
        # The (possibly enlarged) 2D baseline keeps its single channel.
        1 * DEFAULT_BANK_WIDTH_BITS,
        *common,
        n_2d * stage.cs_leakage + stage.peripheral_leakage,
        *tail)
    row_m3d = DesignRow(
        n_m3d,
        n_m3d * DEFAULT_BANK_WIDTH_BITS,
        *common,
        n_m3d * stage.cs_leakage + stage.peripheral_leakage,
        *tail)
    return PackedPoint(
        spec=spec,
        workload_key=(workload.network, workload.layer),
        row_2d=row_2d,
        row_m3d=row_m3d,
        footprint=grown_fp,
    )


# --- fast call keys ---------------------------------------------------------
#
# The engine's generic call_key canonicalizes the full call tree per call
# (~100us on a DesignSpec).  evaluate_spec calls have a fixed shape, and
# spec *sections* repeat heavily across a sweep, so the canonical text of
# each section is cached by its values and only the outer wrappers are
# assembled per call — producing byte-identical hashes, self-checked
# against call_key on first use.

_SECTION_TEXTS: dict = {}
_SECTION_TEXTS_MAX = 65536
_PDK_TEXTS: dict[int, tuple] = {}
_FAST_KEY_STATE = {"checked": False, "ok": True}
_SECTION_VERIFIED: set = set()

_SPEC_PREFIX = ('{"__dataclass__":"repro.spec.design:DesignSpec",'
                '"fields":{"arch":')


def _encode_section(section) -> str:
    """One-shot canonical text of a plain-leaf section dataclass.

    Spec sections hold only int/float/str/None leaves, so a single
    C-encoder ``json.dumps`` over the field dict reproduces the generic
    serializer's canonical text (~20x faster per distinct section —
    what keeps the fast key's cost flat on sweeps where an axis makes
    every section distinct).  The first section of each type verifies
    against :func:`~repro.runtime.serialize.dumps`; a mismatch pins
    that type to the generic path permanently.
    """
    cls = type(section)
    text = json.dumps(
        {"__dataclass__": f"{cls.__module__}:{cls.__qualname__}",
         "fields": {name: getattr(section, name)
                    for name in section.__dataclass_fields__}},
        sort_keys=True, separators=(",", ":"))
    if cls not in _SECTION_VERIFIED:
        generic = dumps(section)
        _SECTION_VERIFIED.add(cls)
        if text != generic:  # pragma: no cover - safety net
            _SECTION_VERIFIED.discard(cls)
            return generic
    return text


def _section_text(section) -> str:
    if isinstance(section, TechSpec):
        key = ("tech", section.delta, section.beta, section.memory)
    elif isinstance(section, ArchSpec):
        key = ("arch", section.capacity_bits, section.tier_pairs,
               section.n_cs, section.baseline, section.cs,
               section.precision_bits)
    elif isinstance(section, FlowSpec):
        key = ("flow", section.activity_cs, section.activity_channel,
               section.activity_bus, section.frequency_mhz,
               section.aspect_ratio, section.legalize, section.clock,
               section.congestion, section.thermal, section.thermal_grid,
               section.max_rise_k, section.max_power_density)
    else:
        key = ("workload", section.network, section.layer, section.batch)
    text = _SECTION_TEXTS.get(key)
    if text is None:
        text = _encode_section(section)
        if len(_SECTION_TEXTS) >= _SECTION_TEXTS_MAX:
            _SECTION_TEXTS.clear()
        _SECTION_TEXTS[key] = text
    return text


def _spec_text(spec: DesignSpec) -> str:
    return (_SPEC_PREFIX + _section_text(spec.arch)
            + ',"flow":' + _section_text(spec.flow)
            + ',"tech":' + _section_text(spec.tech)
            + ',"workload":' + _section_text(spec.workload) + "}}")


def _pdk_text(pdk: PDK) -> str:
    entry = _PDK_TEXTS.get(id(pdk))
    if entry is None or entry[0] is not pdk:
        entry = (pdk, dumps(pdk))
        if len(_PDK_TEXTS) >= 64:
            _PDK_TEXTS.clear()
        _PDK_TEXTS[id(pdk)] = entry
    return entry[1]


def clear_key_caches() -> None:
    """Drop the fast-key text caches (benchmarks' cold-state reset)."""
    _SECTION_TEXTS.clear()
    _PDK_TEXTS.clear()


def spec_call_key(fn, args: tuple, kwargs: dict) -> str:
    """Engine ``key_fn`` for ``evaluate_spec`` calls.

    Byte-identical to :func:`repro.runtime.keys.call_key` (verified at
    runtime on first use; permanent fallback to the generic key on any
    mismatch), but assembled from value-cached section texts so a sweep
    pays canonicalization once per distinct section, not once per spec.
    Calls outside the ``(spec[, pdk])`` shape — and runs with the
    fingerprint cache disabled, which benchmarks use to measure uncached
    behavior — take the generic path.
    """
    if (kwargs or not 1 <= len(args) <= 2
            or not isinstance(args[0], DesignSpec)
            or not fingerprint_cache_enabled()):
        return call_key(fn, args, kwargs)
    parts = [_spec_text(args[0])]
    if len(args) == 2:
        if not isinstance(args[1], PDK):
            return call_key(fn, args, kwargs)
        parts.append(_pdk_text(args[1]))
    name = f"{fn.__module__}.{fn.__qualname__}"
    payload = f'["{name}",[' + ",".join(parts) + "],{}]"
    key = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    if not _FAST_KEY_STATE["checked"]:
        _FAST_KEY_STATE["checked"] = True
        _FAST_KEY_STATE["ok"] = key == call_key(fn, args, kwargs)
    if not _FAST_KEY_STATE["ok"]:
        return call_key(fn, args, kwargs)
    return key
