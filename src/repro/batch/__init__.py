"""Vectorized batch evaluation of design specs (ROADMAP item 3).

Public surface:

* :class:`~repro.batch.kernel.BatchKernel` — batched ``evaluate_spec``
  with delta-evaluation between neighboring sweep points.
* :mod:`repro.batch.analytical` — Eqs. 1-8 over packed arrays.
* :mod:`repro.batch.backend` — numpy/pure-python backend selection.

Importing this package never imports numpy eagerly; the kernel degrades
to row-wise python loops when numpy is unavailable.
"""

from repro.batch.backend import backend_name, numpy_available, set_numpy_enabled
from repro.batch.kernel import BatchKernel
from repro.batch.pack import DesignRow, UnsupportedSpec, pack_point, spec_call_key

__all__ = [
    "BatchKernel",
    "DesignRow",
    "UnsupportedSpec",
    "backend_name",
    "numpy_available",
    "pack_point",
    "set_numpy_enabled",
    "spec_call_key",
]
