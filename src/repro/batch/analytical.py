"""Vectorized Eqs. 1-8: the analytical framework over packed arrays.

:mod:`repro.core.framework` evaluates one (workload, design point) pair
per call; these functions evaluate whole sequences at once.  Sequences
broadcast like numpy: a length-1 sequence pairs with every element of
the longer one (Fig. 8's shape — one workload, one baseline, a grid of
candidates).  With numpy the math runs as float64 arrays; without it
each pair delegates to the scalar framework functions, so the fallback
is bit-identical by construction and the numpy path agrees within 1e-9
(same formulas, same operation order — only the max/min/floor ops turn
elementwise).
"""

from __future__ import annotations

from typing import Sequence

from repro.batch.backend import active_numpy
from repro.core.framework import (
    DesignPoint,
    Workload,
    energy,
    energy_benefit,
    execution_time,
    speedup,
)
from repro.errors import require

__all__ = [
    "edp_benefit_batch",
    "energy_batch",
    "energy_benefit_batch",
    "execution_time_batch",
    "speedup_batch",
]


def _broadcast(*sequences: Sequence) -> int:
    """Common length of the sequences (each must have it, or length 1)."""
    length = 1
    for sequence in sequences:
        size = len(sequence)
        require(size >= 1, "batch sequences must be non-empty")
        if length == 1:
            length = size
        else:
            require(size in (1, length),
                    f"cannot broadcast batch of {size} against {length}")
    return length


def _pick(sequence: Sequence, index: int):
    return sequence[0] if len(sequence) == 1 else sequence[index]


def _workload_columns(np, workloads: Sequence[Workload]):
    ops = np.array([w.compute_ops for w in workloads], dtype=np.float64)
    bits = np.array([w.data_bits for w in workloads], dtype=np.float64)
    partitions = np.array([w.max_partitions for w in workloads],
                          dtype=np.float64)
    return ops, bits, partitions


def _design_columns(np, designs: Sequence[DesignPoint]):
    return tuple(
        np.array([getattr(d, name) for d in designs], dtype=np.float64)
        for name in ("n_cs", "peak_ops_per_cycle", "bandwidth_bits_per_cycle",
                     "memory_energy_per_bit", "compute_energy_per_op",
                     "cs_idle_energy_per_cycle",
                     "memory_idle_energy_per_cycle"))


def _time_terms(np, workloads, designs):
    """(transfer, compute, total) time arrays — Eqs. 1/4 vectorized."""
    ops, bits, partitions = _workload_columns(np, workloads)
    n_cs, peak, bandwidth, _, _, _, _ = _design_columns(np, designs)
    # int(min(N#, N)) truncates toward zero == floor for N >= 1.
    n_max = np.floor(np.minimum(partitions, n_cs))
    transfer = bits * n_cs / bandwidth
    compute = ops / (n_max * peak)
    return transfer, compute, np.maximum(transfer, compute)


def execution_time_batch(workloads: Sequence[Workload],
                         designs: Sequence[DesignPoint]) -> "list[float]":
    """Eq. 1/4 over pairs; length-1 sequences broadcast."""
    length = _broadcast(workloads, designs)
    np = active_numpy()
    if np is None:
        return [execution_time(_pick(workloads, i), _pick(designs, i))
                for i in range(length)]
    workloads = [_pick(workloads, i) for i in range(length)]
    designs = [_pick(designs, i) for i in range(length)]
    _, _, total = _time_terms(np, workloads, designs)
    return total.tolist()


def energy_batch(workloads: Sequence[Workload],
                 designs: Sequence[DesignPoint]) -> "list[float]":
    """Eq. 6/7 over pairs; length-1 sequences broadcast."""
    length = _broadcast(workloads, designs)
    np = active_numpy()
    if np is None:
        return [energy(_pick(workloads, i), _pick(designs, i))
                for i in range(length)]
    workloads = [_pick(workloads, i) for i in range(length)]
    designs = [_pick(designs, i) for i in range(length)]
    ops, bits, _ = _workload_columns(np, workloads)
    n_cs, _, _, alpha, per_op, cs_idle, memory_idle = \
        _design_columns(np, designs)
    transfer, compute, total = _time_terms(np, workloads, designs)
    partitions = _workload_columns(np, workloads)[2]
    n_max = np.floor(np.minimum(partitions, n_cs))
    access = alpha * bits
    memory_stall = memory_idle * (total - transfer)
    unused_cs = (n_cs - n_max) * cs_idle * total
    stalled_cs = n_cs * cs_idle * (total - compute)
    ops_energy = per_op * ops
    return (access + memory_stall + unused_cs + stalled_cs
            + ops_energy).tolist()


def speedup_batch(workloads: Sequence[Workload],
                  baselines: Sequence[DesignPoint],
                  m3ds: Sequence[DesignPoint]) -> "list[float]":
    """Eq. 5 over triples; length-1 sequences broadcast."""
    length = _broadcast(workloads, baselines, m3ds)
    np = active_numpy()
    if np is None:
        return [speedup(_pick(workloads, i), _pick(baselines, i),
                        _pick(m3ds, i)) for i in range(length)]
    baseline_t = execution_time_batch(workloads, baselines)
    m3d_t = execution_time_batch(workloads, m3ds)
    return (np.array(baseline_t) / np.array(m3d_t)).tolist()


def energy_benefit_batch(workloads: Sequence[Workload],
                         baselines: Sequence[DesignPoint],
                         m3ds: Sequence[DesignPoint]) -> "list[float]":
    """E_2D / E_3D over triples; length-1 sequences broadcast."""
    length = _broadcast(workloads, baselines, m3ds)
    np = active_numpy()
    if np is None:
        return [energy_benefit(_pick(workloads, i), _pick(baselines, i),
                               _pick(m3ds, i)) for i in range(length)]
    baseline_e = energy_batch(workloads, baselines)
    m3d_e = energy_batch(workloads, m3ds)
    return (np.array(baseline_e) / np.array(m3d_e)).tolist()


def edp_benefit_batch(workloads: Sequence[Workload],
                      baselines: Sequence[DesignPoint],
                      m3ds: Sequence[DesignPoint]) -> "list[float]":
    """Eq. 8 over triples: speedup x energy benefit, elementwise."""
    gains = speedup_batch(workloads, baselines, m3ds)
    savings = energy_benefit_batch(workloads, baselines, m3ds)
    return [gain * saving for gain, saving in zip(gains, savings)]
