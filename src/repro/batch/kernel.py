"""The vectorized batch evaluation kernel.

:class:`BatchKernel` evaluates many ``evaluate_spec`` calls at once:

1. **Pack** (python, per point): each spec lowers to two
   :class:`~repro.batch.pack.DesignRow` parameter rows through the
   delta-evaluation stage tables (:mod:`repro.batch.pack`), mirroring
   the scalar resolver's float arithmetic exactly.  Specs the row
   schema cannot express fall back to scalar ``evaluate_spec``
   (counted as ``batch.fallback_scalar``).
2. **Evaluate** (arrays): the distinct ``(design row, workload)`` pairs
   that no earlier point — in this batch or a previous one — already
   evaluated run through :func:`_layer_terms`, the per-layer cost model
   written once against :class:`~repro.batch.backend.ArrayOps`.  With
   numpy the whole group computes as (rows x layers) broadcast
   matrices; without it the same body loops row by row on plain floats
   (bit-identical to the scalar simulator).  Reused pairs count as
   ``batch.delta_hits``.
3. **Assemble** (python, per point): per-design cycle/energy totals
   combine into :class:`~repro.spec.evaluate.SpecEvaluation` results
   with the exact ratio arithmetic of ``compare_designs``.

The kernel plugs into ``EvaluationEngine.map_batched`` as the batch
executor for the ``spec.evaluate`` / ``sweep.evaluate`` stages — cache
keys, dedup and counters stay identical to the scalar path, so a batch
run warms the same cache a scalar run reads and vice versa.
"""

from __future__ import annotations

from typing import Sequence

from repro.batch.backend import (
    active_numpy,
    backend_name,
    numpy_ops,
    scalar_ops,
)
from repro.batch.pack import (
    ROW_RESULTS,
    DesignRow,
    PackedPoint,
    UnsupportedSpec,
    WorkloadStage,
    _Namespace,
    pack_point,
    workload_stage,
)
from repro.obs.metrics import registry as _metrics_registry
from repro.obs.trace import is_enabled as _obs_enabled
from repro.runtime.cache import MISSING
from repro.runtime.memo import add_counts
from repro.spec.design import DesignSpec
from repro.spec.evaluate import SpecEvaluation, evaluate_spec
from repro.tech.constants import SRAM_ENERGY_PER_BIT, WIRE_ENERGY_PER_BIT_MM
from repro.tech.pdk import PDK, foundry_m3d_pdk

__all__ = ["BatchKernel"]

#: Average on-chip writeback wire length in mm (simulator's 5e-3 m / 1 mm).
_WIRE_MM = 5e-3 / 1e-3


def _layer_terms(ops, d, f):
    """(cycles, dynamic energy, leakage energy) of design x layer pairs.

    ``d`` carries :class:`DesignRow` fields, ``f`` carries
    :class:`~repro.batch.pack.LayerRow` fields — either plain scalars
    (python mode) or broadcastable column/row vectors (numpy mode:
    ``d.*`` are (R, 1), ``f.*`` are (1, L), every expression is (R, L)).
    The formulas restate ``AcceleratorSimulator._conv_fc_cycles`` /
    ``_pool_cycles`` / ``_dynamic_energy`` with identical operations in
    identical order; ``where`` replaces control flow, and every branch
    is total (no division by zero on the untaken side).
    """
    # Timing: conv/FC tiling (systolic.py arithmetic inlined).
    per_group = ops.maximum(1, ops.ceil(f.out_channels / f.groups / d.cols))
    k_tiles = f.groups * per_group
    packing = d.row_packing & f.is_conv & (f.group_in < d.rows) & (f.kernel > 1)
    row_tiles = ops.where(
        packing,
        ops.maximum(1, ops.ceil(f.group_in * f.kernel / d.rows)),
        ops.maximum(1, ops.ceil(f.group_in / d.rows)))
    passes = ops.where(
        f.is_conv, ops.where(packing, f.kernel, f.kernel * f.kernel), 1)
    used_cs = ops.minimum(d.n_cs, k_tiles)
    slabs_per_cs = ops.ceil(k_tiles / used_cs) * row_tiles * passes
    stream = f.positions * d.batch + d.fill_cycles
    channel_bits = d.bandwidth_bits / d.n_cs
    weight_load = d.weight_bits_per_slab / channel_bits
    per_slab = ops.maximum(stream, weight_load)
    conv_compute = slabs_per_cs * per_slab
    # Timing: pooling on the per-CS vector lanes.
    pool_used = ops.minimum(
        d.n_cs, ops.maximum(1, ops.ceil(f.out_channels / d.pool_lanes)))
    pool_compute = f.macs * d.batch / d.pool_lanes / pool_used
    compute = ops.where(f.is_pool, pool_compute, conv_compute)
    writeback = f.output_elements * d.batch * d.precision_bits / d.bus_bits
    cycles = compute + writeback
    # Energy (simulator's _dynamic_energy, same term order).
    compute_e = f.macs * d.batch * d.mac_energy
    weights_e = f.weights * d.precision_bits * d.read_energy
    input_reads = f.macs * d.batch / d.cols
    inputs_e = input_reads * d.precision_bits * SRAM_ENERGY_PER_BIT
    output_bits = f.output_elements * d.batch * d.precision_bits
    wire_e = output_bits * WIRE_ENERGY_PER_BIT_MM * _WIRE_MM
    outputs_e = output_bits * SRAM_ENERGY_PER_BIT * (1 + d.n_cs)
    dynamic = compute_e + weights_e + inputs_e + outputs_e + wire_e
    leakage = d.static_power * cycles * d.cycle_time
    return cycles, dynamic, leakage


def _design_columns(np, rows: Sequence[DesignRow]):
    """Stack design rows into (R, 1) column vectors for broadcasting."""
    columns = {}
    for name, values in zip(DesignRow._fields, zip(*rows)):
        dtype = bool if name == "row_packing" else np.float64
        columns[name] = np.array(values, dtype=dtype)[:, None]
    return _Namespace(columns)


def _evaluate_rows(rows: Sequence[DesignRow],
                   stage: WorkloadStage) -> "list[tuple[float, float]]":
    """Total (cycles, energy) of each design row on the stage's network."""
    np = active_numpy()
    if np is None:
        totals = []
        for row in rows:
            cycles = 0.0
            energy = 0.0
            for feature in stage.layers:
                layer_cycles, dynamic, leakage = \
                    _layer_terms(scalar_ops, row, feature)
                cycles += layer_cycles
                energy += dynamic + leakage
            totals.append((cycles, energy))
        return totals
    d = _design_columns(np, rows)
    f = stage.columns(np)
    cycles, dynamic, leakage = _layer_terms(numpy_ops(np), d, f)
    total_cycles = cycles.sum(axis=1)
    total_energy = (dynamic + leakage).sum(axis=1)
    return list(zip(total_cycles.tolist(), total_energy.tolist()))


class BatchKernel:
    """Batched ``evaluate_spec`` against one base PDK.

    ``pdk=None`` means the default foundry M3D PDK, matching
    ``evaluate_spec(spec)``'s default — the kernel then only accepts the
    one-argument call shape, so its results answer exactly the calls the
    scalar path would have made.
    """

    def __init__(self, pdk: PDK | None = None) -> None:
        self.pdk = pdk
        self.base = pdk if pdk is not None else foundry_m3d_pdk()
        self._pdk_verdicts: dict[int, tuple] = {}

    def _accepts_pdk(self, pdk) -> bool:
        """Whether a call's explicit PDK matches this kernel's base
        (identity, or content equality cached per object)."""
        if pdk is self.base or pdk is self.pdk:
            return True
        if not isinstance(pdk, PDK):
            return False
        verdict = self._pdk_verdicts.get(id(pdk))
        if verdict is None or verdict[0] is not pdk:
            verdict = (pdk, pdk == self.base)
            self._pdk_verdicts[id(pdk)] = verdict
        return verdict[1]

    def evaluate_specs(
            self, specs: Sequence[DesignSpec]) -> "list[SpecEvaluation]":
        """Evaluate specs directly (no engine cache involved)."""
        if self.pdk is None:
            calls = [((spec,), {}) for spec in specs]
        else:
            calls = [((spec, self.pdk), {}) for spec in specs]
        return self.evaluate_calls(calls)

    def evaluate_calls(
            self,
            calls: "Sequence[tuple[tuple, dict]]") -> "list[SpecEvaluation]":
        """Evaluate normalized ``(args, kwargs)`` ``evaluate_spec`` calls.

        This is the ``batch_fn`` the engine's ``map_batched`` invokes for
        cache-missing calls.  Results are positional; calls the kernel
        cannot take (unexpected shape, mismatched PDK, unsupported spec)
        evaluate through scalar ``evaluate_spec`` — errors those specs
        would raise scalar-side propagate unchanged.
        """
        results: list = [None] * len(calls)
        packed: "list[tuple[int, PackedPoint]]" = []
        fallback: list[int] = []
        for index, (args, kwargs) in enumerate(calls):
            supported = (not kwargs and 1 <= len(args) <= 2
                         and isinstance(args[0], DesignSpec))
            if supported:
                supported = self.pdk is None if len(args) == 1 \
                    else self._accepts_pdk(args[1])
            if supported:
                try:
                    packed.append((index, pack_point(args[0], self.base)))
                    continue
                except UnsupportedSpec:
                    pass
                except Exception:
                    # Invalid specs re-raise their scalar diagnostics.
                    pass
            fallback.append(index)

        # Delta evaluation: collect the distinct (row, workload) pairs no
        # earlier point already evaluated; everything else is a hit.
        local: dict = {}
        pending: dict = {}
        delta_hits = 0
        for _, point in packed:
            for row in (point.row_2d, point.row_m3d):
                row_key = (row, point.workload_key)
                if row_key in local or row_key in pending:
                    delta_hits += 1
                    continue
                memoized = ROW_RESULTS.get(row_key)
                if memoized is not MISSING:
                    local[row_key] = memoized
                    delta_hits += 1
                    continue
                pending[row_key] = None

        groups: dict = {}
        for row, workload_key in pending:
            groups.setdefault(workload_key, []).append(row)
        for workload_key, rows in groups.items():
            stage = workload_stage(*workload_key)
            for row, totals in zip(rows, _evaluate_rows(rows, stage)):
                row_key = (row, workload_key)
                local[row_key] = totals
                ROW_RESULTS.put(row_key, totals)

        for index, point in packed:
            cycles_2d, energy_2d = local[(point.row_2d, point.workload_key)]
            cycles_m3d, energy_m3d = local[(point.row_m3d, point.workload_key)]
            # compare_designs ratio arithmetic, with runtime = cycles * t.
            speedup = (cycles_2d * point.row_2d.cycle_time) \
                / (cycles_m3d * point.row_m3d.cycle_time)
            energy_benefit = energy_2d / energy_m3d
            results[index] = SpecEvaluation(
                spec=point.spec,
                n_cs_2d=point.row_2d.n_cs,
                n_cs_m3d=point.row_m3d.n_cs,
                footprint=point.footprint,
                speedup=speedup,
                energy_benefit=energy_benefit,
                edp_benefit=speedup * energy_benefit,
            )

        for index in fallback:
            args, kwargs = calls[index]
            results[index] = evaluate_spec(*args, **kwargs)

        add_counts("batch", points=len(calls), delta_hits=delta_hits,
                   fallback_scalar=len(fallback))
        if _obs_enabled():
            registry = _metrics_registry()
            registry.counter("repro_batch_points_total",
                             backend=backend_name()).inc(len(calls))
            registry.counter("repro_batch_delta_hits_total").inc(delta_hits)
            registry.counter("repro_batch_fallback_scalar_total") \
                .inc(len(fallback))
        return results
