"""Unit constants and conversion helpers.

All internal quantities in the library are stored in SI base units
(metres, seconds, joules, watts, bits).  These constants make call sites
read like datasheets::

    pitch = 100 * NM
    energy = 2.0 * PJ
    capacity = 64 * MEGABYTE

Helper functions convert back to the display units used in the paper
(mm^2 footprints, pJ/bit energies, MB capacities).
"""

from __future__ import annotations

# --- length -----------------------------------------------------------------
NM = 1e-9
UM = 1e-6
MM = 1e-3

# --- area --------------------------------------------------------------------
NM2 = NM * NM
UM2 = UM * UM
MM2 = MM * MM

# --- time ---------------------------------------------------------------------
PS = 1e-12
NS = 1e-9
US = 1e-6
MS = 1e-3

# --- energy -------------------------------------------------------------------
FJ = 1e-15
PJ = 1e-12
NJ = 1e-9
UJ = 1e-6
MJ = 1e-3

# --- power --------------------------------------------------------------------
UW = 1e-6
MW = 1e-3

# --- frequency ----------------------------------------------------------------
KHZ = 1e3
MHZ = 1e6
GHZ = 1e9

# --- information --------------------------------------------------------------
BIT = 1
BYTE = 8
KILOBYTE = 8 * 1024
MEGABYTE = 8 * 1024 * 1024
GIGABYTE = 8 * 1024 * 1024 * 1024


def to_mm2(area_m2: float) -> float:
    """Convert an area in square metres to square millimetres."""
    return area_m2 / MM2


def to_um2(area_m2: float) -> float:
    """Convert an area in square metres to square micrometres."""
    return area_m2 / UM2


def to_megabytes(bits: float) -> float:
    """Convert a bit count to megabytes (2**20 bytes)."""
    return bits / MEGABYTE


def to_pj(energy_j: float) -> float:
    """Convert an energy in joules to picojoules."""
    return energy_j / PJ


def to_mw(power_w: float) -> float:
    """Convert a power in watts to milliwatts."""
    return power_w / MW


def to_mhz(freq_hz: float) -> float:
    """Convert a frequency in hertz to megahertz."""
    return freq_hz / MHZ
