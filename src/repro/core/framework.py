"""Equations 1-8 of the paper, implemented verbatim.

The framework abstracts a workload as (F0 compute operations, D0 bits of
on-chip memory traffic) and a design as (peak throughput P_peak, memory
bandwidth B, parallel CS count N, and per-component energies).  Execution
time is the roofline maximum of data-transfer and compute time (after [12]);
energy adds idle terms for the memory and for every CS over its stall time.

All quantities are per *cycle* on the time axis (the paper works in cycles)
and joules on the energy axis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.errors import require


@dataclass(frozen=True)
class Workload:
    """An abstract workload for the analytical framework.

    Attributes:
        compute_ops: F0 — total compute operations.
        data_bits: D0 — bits of on-chip memory traffic the workload moves
            through the shared interconnect (broadcast to every partition).
        max_partitions: N# — maximum parallel partitions the workload
            admits (math.inf for perfectly parallel workloads).
    """

    compute_ops: float
    data_bits: float
    max_partitions: float = math.inf

    def __post_init__(self) -> None:
        require(self.compute_ops >= 0, "F0 must be non-negative")
        require(self.data_bits >= 0, "D0 must be non-negative")
        require(self.max_partitions >= 1, "N# must be >= 1")

    @property
    def intensity(self) -> float:
        """Operations per bit of memory traffic (Obs. 5's knob)."""
        if self.data_bits == 0:
            return math.inf
        return self.compute_ops / self.data_bits


@dataclass(frozen=True)
class DesignPoint:
    """A design point for the analytical framework (2D: N = 1).

    Attributes:
        n_cs: N — parallel computing sub-systems.
        peak_ops_per_cycle: P_peak — ops/cycle of *one* CS.
        bandwidth_bits_per_cycle: B — total memory bandwidth, bits/cycle
            (each CS receives B / N).
        memory_energy_per_bit: alpha — J/bit of memory access.
        compute_energy_per_op: E_C — J/op.
        cs_idle_energy_per_cycle: E_C^idle — J/cycle of one stalled CS.
        memory_idle_energy_per_cycle: E_M^idle — J/cycle of idle memory.
    """

    n_cs: int
    peak_ops_per_cycle: float
    bandwidth_bits_per_cycle: float
    memory_energy_per_bit: float
    compute_energy_per_op: float
    cs_idle_energy_per_cycle: float = 0.0
    memory_idle_energy_per_cycle: float = 0.0

    def __post_init__(self) -> None:
        require(self.n_cs >= 1, "N must be >= 1")
        require(self.peak_ops_per_cycle > 0, "P_peak must be positive")
        require(self.bandwidth_bits_per_cycle > 0, "B must be positive")
        require(self.memory_energy_per_bit >= 0, "alpha must be non-negative")
        require(self.compute_energy_per_op >= 0, "E_C must be non-negative")
        require(self.cs_idle_energy_per_cycle >= 0, "E_C^idle must be non-negative")
        require(self.memory_idle_energy_per_cycle >= 0, "E_M^idle must be non-negative")

    def with_n_cs(self, n_cs: int) -> "DesignPoint":
        """Copy with a different CS count (bandwidth unchanged)."""
        return replace(self, n_cs=n_cs)

    def with_bandwidth(self, bandwidth_bits_per_cycle: float) -> "DesignPoint":
        """Copy with a different total bandwidth."""
        return replace(self, bandwidth_bits_per_cycle=bandwidth_bits_per_cycle)


def used_partitions(workload: Workload, design: DesignPoint) -> int:
    """N_max = min(N#, N): CSs that can actually work in parallel."""
    return int(min(workload.max_partitions, design.n_cs))


def execution_time(workload: Workload, design: DesignPoint) -> float:
    """Execution time in cycles — Eq. 1 (N = 1) and Eq. 4 (general N).

    T = max(D0 * N / B,  F0 / (N_max * P_peak))

    The D0 * N / B term models the broadcast of the workload's data to every
    partition over per-partition bandwidth B / N.
    """
    n_max = used_partitions(workload, design)
    transfer = workload.data_bits * design.n_cs / design.bandwidth_bits_per_cycle
    compute = workload.compute_ops / (n_max * design.peak_ops_per_cycle)
    return max(transfer, compute)


def energy(workload: Workload, design: DesignPoint) -> float:
    """Total energy in joules — Eq. 6 (N = 1) and Eq. 7 (general N).

    E = alpha * D0
        + E_M^idle * (T - D0 * N / B)                 [memory stall]
        + (N - N_max) * E_C^idle * T                  [unused CSs]
        + N * E_C^idle * (T - F0 / (N_max * P_peak))  [compute stall]
        + E_C * F0
    """
    n_max = used_partitions(workload, design)
    t_total = execution_time(workload, design)
    transfer = workload.data_bits * design.n_cs / design.bandwidth_bits_per_cycle
    compute = workload.compute_ops / (n_max * design.peak_ops_per_cycle)
    access = design.memory_energy_per_bit * workload.data_bits
    memory_idle = design.memory_idle_energy_per_cycle * (t_total - transfer)
    unused_cs = (design.n_cs - n_max) * design.cs_idle_energy_per_cycle * t_total
    stalled_cs = design.n_cs * design.cs_idle_energy_per_cycle * (t_total - compute)
    ops = design.compute_energy_per_op * workload.compute_ops
    return access + memory_idle + unused_cs + stalled_cs + ops


def speedup(workload: Workload, baseline: DesignPoint, m3d: DesignPoint) -> float:
    """Speedup of ``m3d`` over ``baseline`` — Eq. 5."""
    return execution_time(workload, baseline) / execution_time(workload, m3d)


def energy_benefit(workload: Workload, baseline: DesignPoint, m3d: DesignPoint) -> float:
    """Energy benefit E_2D / E_3D of ``m3d`` over ``baseline``."""
    return energy(workload, baseline) / energy(workload, m3d)


def edp_benefit(workload: Workload, baseline: DesignPoint, m3d: DesignPoint) -> float:
    """EDP benefit — Eq. 8: speedup x energy benefit."""
    return (speedup(workload, baseline, m3d)
            * energy_benefit(workload, baseline, m3d))
