"""Per-layer roofline coordinates (after Gables [12], the paper's Eq. 1 base).

For each layer of a network on a design this computes the classic roofline
pair — operational intensity (ops per byte of weight traffic) on x,
achieved throughput (ops/cycle) on y — plus the design's two ceilings
(peak compute, bandwidth-limited slope).  Layers hugging the bandwidth
slope are the ones Obs. 5 says to feed with channels; layers on the flat
ceiling want CSs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import require
from repro.tech.pdk import PDK, foundry_m3d_pdk
from repro.arch.accelerator import AcceleratorDesign
from repro.perf.simulator import AcceleratorSimulator
from repro.workloads.layers import Layer, LayerKind
from repro.workloads.models import Network


@dataclass(frozen=True)
class RooflinePoint:
    """One layer's roofline coordinates on one design.

    Attributes:
        layer: Layer name.
        intensity: Operational intensity, MACs per weight byte.
        achieved: Achieved throughput, MACs per cycle (whole chip).
        bound: "compute" or "memory", from the nearest ceiling.
    """

    layer: str
    intensity: float
    achieved: float
    bound: str


@dataclass(frozen=True)
class RooflineModel:
    """Roofline ceilings plus per-layer points for one design/workload.

    Attributes:
        design_name: The design.
        peak_ops_per_cycle: Chip compute ceiling, MACs/cycle.
        bandwidth_bytes_per_cycle: Weight-traffic ceiling, bytes/cycle.
        points: Per-layer roofline points.
    """

    design_name: str
    peak_ops_per_cycle: float
    bandwidth_bytes_per_cycle: float
    points: tuple[RooflinePoint, ...]

    @property
    def ridge_intensity(self) -> float:
        """Intensity where the two ceilings meet, MACs/byte."""
        return self.peak_ops_per_cycle / self.bandwidth_bytes_per_cycle

    def ceiling(self, intensity: float) -> float:
        """Attainable throughput at an intensity, MACs/cycle."""
        require(intensity > 0, "intensity must be positive")
        return min(self.peak_ops_per_cycle,
                   intensity * self.bandwidth_bytes_per_cycle)

    def memory_bound_layers(self) -> tuple[str, ...]:
        """Layers below the ridge (bandwidth-limited)."""
        return tuple(p.layer for p in self.points if p.bound == "memory")


def roofline(design: AcceleratorDesign, network: Network,
             pdk: PDK | None = None, batch: int = 1) -> RooflineModel:
    """Build the roofline for ``network`` on ``design``."""
    pdk = pdk if pdk is not None else foundry_m3d_pdk()
    simulator = AcceleratorSimulator(design, pdk, batch=batch)
    peak = design.peak_macs_per_cycle
    bandwidth = design.total_weight_bandwidth / 8.0  # bytes/cycle
    points: list[RooflinePoint] = []
    for layer in network.layers:
        if layer.kind == LayerKind.POOL:
            continue
        result = simulator.run_layer(layer)
        weight_bytes = layer.weights * design.precision_bits / 8.0
        intensity = layer.macs * batch / weight_bytes
        achieved = layer.macs * batch / result.cycles
        bound = "memory" if intensity < peak / bandwidth else "compute"
        points.append(RooflinePoint(
            layer=layer.name, intensity=intensity, achieved=achieved,
            bound=bound))
    return RooflineModel(
        design_name=design.name,
        peak_ops_per_cycle=peak,
        bandwidth_bytes_per_cycle=bandwidth,
        points=tuple(points),
    )
