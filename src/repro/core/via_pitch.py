"""Case 2 (Sec. III-E): M3D inter-layer-via pitch.

Every M3D memory cell needs ``m`` ILVs to reach its access FET in the upper
tier, so when the via pitch beta grows, the cell becomes via-pitch limited:
A_cells = m * k * beta^2 (k bits, m vias per bit).  The area consequence is
the same as a width relaxation of delta_eff = A_cell(beta) / A_cell(2D), so
the study reuses the Case 1 machinery with the PDK's ILV scaled.

Obs. 8 (reproduced by :func:`sweep_via_pitch`): up to ~1.3x pitch the cell
stays FET-limited and benefits are unchanged; at ~1.6x and beyond the
quadratic growth (delta_eff ~ 2.5) erases the benefit — ultra-dense vias
are load-bearing for M3D architectural benefits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import require
from repro.tech.pdk import PDK, foundry_m3d_pdk
from repro.perf.compare import BenefitReport, compare_designs
from repro.perf.simulator import simulate
from repro.runtime.engine import EvaluationEngine, default_engine
from repro.spec.design import ArchSpec, DesignSpec, TechSpec
from repro.spec.resolve import resolve, scaled_pdk
from repro.units import MEGABYTE
from repro.workloads.models import Network


@dataclass(frozen=True)
class ViaPitchResult:
    """Outcome of the Case 2 analysis at one via-pitch factor.

    Attributes:
        beta: ILV pitch scaling factor (1.0 = the PDK's fine pitch).
        effective_delta: Equivalent cell-area growth factor.
        n_cs_2d: CSs in the re-optimized 2D baseline.
        n_cs_m3d: CSs in the M3D design.
        benefit: Full benefit comparison at this beta.
    """

    beta: float
    effective_delta: float
    n_cs_2d: int
    n_cs_m3d: int
    benefit: BenefitReport

    @property
    def speedup(self) -> float:
        """Speedup of M3D over the (possibly enlarged) 2D baseline."""
        return self.benefit.speedup

    @property
    def edp_benefit(self) -> float:
        """EDP benefit at this via pitch."""
        return self.benefit.edp_benefit


def effective_cell_growth(pdk: PDK, beta: float) -> float:
    """delta_eff: M3D cell area at pitch beta over the 2D cell area."""
    require(beta > 0, "beta must be positive")
    scaled = scaled_pdk(pdk, beta)
    cell_m3d = scaled.m3d_rram_cell().area(scaled.ilv)
    cell_2d = pdk.rram_cell.area(None)
    return cell_m3d / cell_2d


def via_pitch_study(
    beta: float,
    pdk: PDK | None = None,
    network: Network | None = None,
    capacity_bits: int = 64 * MEGABYTE,
) -> ViaPitchResult:
    """Evaluate the iso-capacity benefit at one ILV pitch factor ``beta``."""
    pdk = pdk if pdk is not None else foundry_m3d_pdk()
    delta_eff = effective_cell_growth(pdk, beta)
    # The grown cell is a pure area effect, identical to Case 1 at
    # delta_eff; the resolver scales the ILV pitch and re-optimizes the 2D
    # baseline into the grown footprint (delta = 1: the area growth
    # already lives in the scaled ILV).
    spec = DesignSpec(
        tech=TechSpec(beta=beta),
        arch=ArchSpec(capacity_bits=capacity_bits, baseline="reoptimized"),
    )
    point = resolve(spec, pdk)
    network = network if network is not None else point.network
    benefit = compare_designs(
        simulate(point.baseline, network, point.pdk),
        simulate(point.m3d, network, point.pdk),
    )
    return ViaPitchResult(
        beta=beta,
        effective_delta=delta_eff,
        n_cs_2d=point.n_cs_2d,
        n_cs_m3d=point.n_cs_m3d,
        benefit=benefit,
    )


def sweep_via_pitch(
    betas: tuple[float, ...] = (1.0, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.8, 2.0),
    pdk: PDK | None = None,
    network: Network | None = None,
    capacity_bits: int = 64 * MEGABYTE,
    engine: EvaluationEngine | None = None,
    jobs: int | None = None,
) -> tuple[ViaPitchResult, ...]:
    """The Obs. 8 sweep over ILV pitch, via the evaluation engine.

    ``jobs`` overrides the engine's worker count for this sweep only.
    """
    engine = engine if engine is not None else default_engine()
    calls = [(beta, pdk, network, capacity_bits) for beta in betas]
    return tuple(engine.map(via_pitch_study, calls,
                            stage="via_pitch.sweep_via_pitch", jobs=jobs))
