"""Design-space sweeps behind Obs. 5 and Obs. 6 (Figs. 8 and 9).

* :func:`sweep_bandwidth_vs_cs` — Fig. 8: EDP benefit over a grid of
  (per-design bandwidth, parallel CS count) for an abstract workload of a
  given arithmetic intensity.  Reproduces the Obs. 5 rules of thumb:
  compute-bound workloads want CSs, memory-bound workloads want bandwidth.
* :func:`sweep_rram_capacity` — Fig. 9: EDP benefit of the case-study M3D
  design as the baseline RRAM capacity scales from 12 MB to 128 MB with the
  DNN compute held fixed (ResNet-18).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import require
from repro.tech.pdk import PDK, foundry_m3d_pdk
from repro.arch.accelerator import baseline_2d_design
from repro.core.framework import DesignPoint, Workload, edp_benefit
from repro.perf.compare import compare_designs
from repro.perf.simulator import simulate
from repro.runtime.engine import EvaluationEngine, default_engine
from repro.runtime.serialize import from_jsonable, to_jsonable
from repro.spec.design import ArchSpec, DesignSpec
from repro.spec.resolve import ResolvedPoint, resolve
from repro.units import MEGABYTE
from repro.workloads.models import Network


@dataclass(frozen=True)
class BandwidthCSPoint:
    """One Fig. 8 grid point.

    Attributes:
        n_cs: Parallel CSs in the M3D design point.
        bandwidth_factor: Total bandwidth relative to the 2D baseline's B.
        edp_benefit: EDP benefit over the 2D baseline (Eq. 8).
    """

    n_cs: int
    bandwidth_factor: float
    edp_benefit: float


def reference_design_point(pdk: PDK | None = None) -> DesignPoint:
    """The 2D case-study design expressed as a framework design point."""
    from repro.core.params import design_point  # local import avoids a cycle

    pdk = pdk if pdk is not None else foundry_m3d_pdk()
    return design_point(baseline_2d_design(pdk), pdk)


def m3d_point(base: DesignPoint, n_cs: int, per_cs_bandwidth_factor: float) -> DesignPoint:
    """An M3D design point with ``n_cs`` CSs, each with ``factor`` times the
    baseline's per-CS bandwidth (total B = N * factor * B_2D — banking
    scales with the CS count, per the case study)."""
    require(per_cs_bandwidth_factor > 0, "bandwidth factor must be positive")
    total = n_cs * per_cs_bandwidth_factor * base.bandwidth_bits_per_cycle
    return base.with_n_cs(n_cs).with_bandwidth(total)


def sweep_bandwidth_vs_cs(
    intensity_ops_per_bit: float,
    n_cs_values: tuple[int, ...] = (1, 2, 4, 8, 16),
    bandwidth_factors: tuple[float, ...] = (0.25, 0.5, 1.0, 2.0, 4.0),
    base: DesignPoint | None = None,
    data_bits: float = 1e9,
    batch: bool = False,
) -> tuple[BandwidthCSPoint, ...]:
    """Fig. 8 grid: EDP benefit vs (per-CS bandwidth, CS count).

    The workload is abstract: ``data_bits`` of broadcast traffic and
    ``intensity * data_bits`` operations, perfectly partitionable — which
    isolates the bandwidth/parallelism trade-off the way the paper does.
    ``bandwidth_factors`` scale the *per-CS* bandwidth relative to the 2D
    baseline's B (Obs. 5 reasons in per-CS terms).

    ``batch=True`` evaluates the whole grid through the vectorized
    framework (:func:`repro.batch.analytical.edp_benefit_batch`) in one
    array pass — same values within 1e-9 (bit-identical without numpy).
    """
    require(intensity_ops_per_bit > 0, "intensity must be positive")
    base = base if base is not None else reference_design_point()
    workload = Workload(
        compute_ops=intensity_ops_per_bit * data_bits,
        data_bits=data_bits,
    )
    pairs = [(n_cs, factor)
             for n_cs in n_cs_values
             for factor in bandwidth_factors]
    if batch:
        from repro.batch.analytical import edp_benefit_batch

        candidates = [m3d_point(base, n_cs, factor)
                      for n_cs, factor in pairs]
        benefits = edp_benefit_batch([workload], [base], candidates)
        return tuple(
            BandwidthCSPoint(n_cs=n_cs, bandwidth_factor=factor,
                             edp_benefit=benefit)
            for (n_cs, factor), benefit in zip(pairs, benefits))
    grid: list[BandwidthCSPoint] = []
    for n_cs, factor in pairs:
        candidate = m3d_point(base, n_cs, factor)
        grid.append(BandwidthCSPoint(
            n_cs=n_cs,
            bandwidth_factor=factor,
            edp_benefit=edp_benefit(workload, base, candidate),
        ))
    return tuple(grid)


def obs5_compute_bound_ratio(
    intensity_ops_per_bit: float = 16.0,
    base: DesignPoint | None = None,
    n_cs: int = 8,
    data_bits: float = 1e9,
) -> float:
    """Obs. 5, compute-bound example: EDP gain from doubling the CS count
    at unchanged per-CS bandwidth (the paper reports ~2.1x at 16 ops/bit)."""
    base = base if base is not None else reference_design_point()
    workload = Workload(compute_ops=intensity_ops_per_bit * data_bits,
                        data_bits=data_bits)
    reference = m3d_point(base, n_cs, 1.0)
    doubled = m3d_point(base, 2 * n_cs, 1.0)
    return (edp_benefit(workload, base, doubled)
            / edp_benefit(workload, base, reference))


def obs5_memory_bound_ratio(
    intensity_bits_per_op: float = 16.0,
    base: DesignPoint | None = None,
    n_cs: int = 8,
    compute_ops: float = 1e9,
) -> float:
    """Obs. 5, memory-bound example: EDP gain from halving the CS count but
    doubling per-CS bandwidth (the paper reports ~2.1x at 16 bits/op)."""
    base = base if base is not None else reference_design_point()
    workload = Workload(compute_ops=compute_ops,
                        data_bits=intensity_bits_per_op * compute_ops)
    reference = m3d_point(base, n_cs, 1.0)
    rebalanced = m3d_point(base, n_cs // 2, 2.0)
    return (edp_benefit(workload, base, rebalanced)
            / edp_benefit(workload, base, reference))


@dataclass(frozen=True)
class CapacityPoint:
    """One Fig. 9 sweep point.

    Attributes:
        capacity_bits: Baseline on-chip RRAM capacity.
        n_cs: Parallel CSs the M3D design derives at this capacity (Eq. 2).
        speedup: Network speedup at this capacity.
        edp_benefit: Network EDP benefit at this capacity.
    """

    capacity_bits: int
    n_cs: int
    speedup: float
    edp_benefit: float

    @property
    def capacity_megabytes(self) -> float:
        """Capacity in MB for display."""
        return self.capacity_bits / MEGABYTE

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (used by the disk result cache)."""
        return to_jsonable(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CapacityPoint":
        """Inverse of :meth:`to_dict`."""
        point = from_jsonable(data)
        require(isinstance(point, cls),
                f"expected a serialized {cls.__name__}")
        return point


def resolve_capacity_point(pdk: PDK | None, capacity_bits: int) -> ResolvedPoint:
    """The design pair for one Fig. 9 capacity (no simulation).

    A thin wrapper over :func:`repro.spec.resolve.resolve`, which memoizes
    on the spec's content fingerprint.
    """
    spec = DesignSpec(arch=ArchSpec(capacity_bits=capacity_bits))
    return resolve(spec, pdk)


def plan_capacity_point(pdk: PDK, capacity_bits: int):
    """(baseline, m3d) design pair for one Fig. 9 capacity.

    Legacy shim over :func:`resolve_capacity_point`.
    """
    point = resolve_capacity_point(pdk, capacity_bits)
    return point.baseline, point.m3d


def capacity_point(
    pdk: PDK,
    network: Network,
    capacity_bits: int,
) -> CapacityPoint:
    """Evaluate one Fig. 9 capacity point with the simulator pipeline."""
    point = resolve_capacity_point(pdk, capacity_bits)
    benefit = compare_designs(
        simulate(point.baseline, network, point.pdk),
        simulate(point.m3d, network, point.pdk),
    )
    return CapacityPoint(
        capacity_bits=capacity_bits,
        n_cs=point.n_cs_m3d,
        speedup=benefit.speedup,
        edp_benefit=benefit.edp_benefit,
    )


def sweep_rram_capacity(
    capacities_bits: tuple[int, ...] = tuple(
        mb * MEGABYTE for mb in (12, 16, 24, 32, 48, 64, 96, 128)),
    pdk: PDK | None = None,
    network: Network | None = None,
    engine: EvaluationEngine | None = None,
    jobs: int | None = None,
) -> tuple[CapacityPoint, ...]:
    """Fig. 9: benefit vs baseline RRAM capacity at fixed DNN compute.

    Larger baseline memories free more silicon under the arrays in M3D,
    admitting more parallel CSs (Obs. 6); the workload must fit at the
    smallest capacity (ResNet-18's ~12 M parameters at 12 MB).  The sweep
    is resolved up front through the spec layer and the resulting
    ``simulate`` calls dispatch through ``engine`` (default: the
    process-wide engine) in one deduplicated batch; ``jobs`` applies to
    this sweep only.
    """
    engine = engine if engine is not None else default_engine()
    points_resolved = [resolve_capacity_point(pdk, capacity)
                       for capacity in capacities_bits]
    sim_calls = []
    for point in points_resolved:
        workload = network if network is not None else point.network
        sim_calls.append({"design": point.baseline, "network": workload,
                          "pdk": point.pdk})
        sim_calls.append({"design": point.m3d, "network": workload,
                          "pdk": point.pdk})
    reports = engine.map(simulate, sim_calls, stage="insights.simulate",
                         jobs=jobs)
    points = []
    for index, (capacity, point) in enumerate(
            zip(capacities_bits, points_resolved)):
        benefit = compare_designs(reports[2 * index], reports[2 * index + 1])
        points.append(CapacityPoint(
            capacity_bits=capacity,
            n_cs=point.n_cs_m3d,
            speedup=benefit.speedup,
            edp_benefit=benefit.edp_benefit,
        ))
    return tuple(points)
