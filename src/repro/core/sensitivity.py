"""Sensitivity of the EDP benefit to the framework's parameters.

The reproduction rests on calibrated constants; this module quantifies how
much each one matters.  For every knob of the Eq. 1-8 design points it
computes the local elasticity

    S_p = d(log EDP_benefit) / d(log p)

by central finite difference.  An elasticity of +1 means a 1% increase in
the parameter buys ~1% more benefit; ~0 means the headline number does not
hinge on that constant — the robustness analysis a reviewer would ask for.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields, replace

from repro.errors import require
from repro.core.framework import DesignPoint, Workload, edp_benefit
from repro.runtime.engine import EvaluationEngine, default_engine
from repro.spec.design import DesignSpec
from repro.spec.resolve import resolve
from repro.tech.pdk import PDK

#: Design-point fields whose elasticity is reported.
PARAMETERS: tuple[str, ...] = (
    "peak_ops_per_cycle",
    "bandwidth_bits_per_cycle",
    "memory_energy_per_bit",
    "compute_energy_per_op",
    "cs_idle_energy_per_cycle",
    "memory_idle_energy_per_cycle",
)


@dataclass(frozen=True)
class Elasticity:
    """Elasticity of the EDP benefit with respect to one parameter.

    Attributes:
        parameter: Field name on :class:`DesignPoint`.
        applied_to: "m3d", "baseline", or "both".
        value: d(log EDP) / d(log p) at the operating point.
    """

    parameter: str
    applied_to: str
    value: float


def _perturbed(point: DesignPoint, parameter: str, factor: float) -> DesignPoint:
    known = tuple(field.name for field in fields(type(point)))
    require(parameter in known,
            f"unknown design-point parameter {parameter!r}; "
            f"choose from {', '.join(known)}")
    current = getattr(point, parameter)
    if current == 0:
        return point
    return replace(point, **{parameter: current * factor})


def elasticity(
    workload: Workload,
    baseline: DesignPoint,
    m3d: DesignPoint,
    parameter: str,
    applied_to: str = "m3d",
    step: float = 0.01,
) -> Elasticity:
    """Central-difference elasticity for one parameter."""
    require(parameter in PARAMETERS, f"unknown parameter {parameter!r}")
    require(applied_to in ("m3d", "baseline", "both"),
            "applied_to must be m3d, baseline, or both")
    require(0 < step < 0.5, "step must be a small fraction")

    def benefit(factor: float) -> float:
        base = baseline
        new = m3d
        if applied_to in ("baseline", "both"):
            base = _perturbed(base, parameter, factor)
        if applied_to in ("m3d", "both"):
            new = _perturbed(new, parameter, factor)
        return edp_benefit(workload, base, new)

    up = benefit(1.0 + step)
    down = benefit(1.0 - step)
    if up <= 0 or down <= 0:
        value = 0.0
    else:
        value = (math.log(up) - math.log(down)) / (
            math.log(1.0 + step) - math.log(1.0 - step))
    return Elasticity(parameter=parameter, applied_to=applied_to, value=value)


def sensitivity_profile(
    workload: Workload,
    baseline: DesignPoint,
    m3d: DesignPoint,
    applied_to: str = "m3d",
    engine: EvaluationEngine | None = None,
) -> tuple[Elasticity, ...]:
    """Elasticities for every reported parameter, largest magnitude first.

    Per-parameter probes evaluate through ``engine`` (default: the
    process-wide engine), so repeated profiles are memoized.
    """
    engine = engine if engine is not None else default_engine()
    calls = [(workload, baseline, m3d, parameter, applied_to)
             for parameter in PARAMETERS]
    results = engine.map(elasticity, calls,
                         stage="sensitivity.sensitivity_profile")
    return tuple(sorted(results, key=lambda e: abs(e.value), reverse=True))


def sensitivity_profile_from_spec(
    spec: DesignSpec | None = None,
    pdk: PDK | None = None,
    applied_to: str = "m3d",
    engine: EvaluationEngine | None = None,
) -> tuple[Elasticity, ...]:
    """:func:`sensitivity_profile` at the operating point a spec denotes.

    The spec resolves to the 2D/M3D design pair; both lower to framework
    design points and the spec's network becomes the canonical Eq. 1-8
    workload (total MACs times the batch size as compute, total weight
    bits as broadcast traffic).
    """
    from repro.core.params import design_point  # local import avoids a cycle

    spec = spec if spec is not None else DesignSpec()
    point = resolve(spec, pdk)
    network = point.network
    workload = Workload(
        compute_ops=float(network.total_macs) * spec.workload.batch,
        data_bits=float(network.weight_bits(spec.arch.precision_bits)),
    )
    return sensitivity_profile(
        workload,
        design_point(point.baseline, point.pdk),
        design_point(point.m3d, point.pdk),
        applied_to=applied_to,
        engine=engine,
    )
