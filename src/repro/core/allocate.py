"""Freed-silicon allocation: CSs vs bandwidth, automated (Obs. 5).

Obs. 5 gives the rule of thumb — compute-bound workloads want the freed
silicon spent on parallel CSs, memory-bound workloads on memory
peripherals (bandwidth).  This module turns the rule into an optimizer:
given a workload's arithmetic profile and the freed area (in CS units), it
enumerates every split between extra CSs and extra weight channels,
evaluates each with the Eq. 1-8 framework, and returns the best design
point.

Channel cost is expressed in CS-area units: the case-study peripherals
(one 256-bit channel) occupy ~0.48 of a CS, so a broadside channel is
charged ``CHANNEL_AREA_COST`` CS units.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import require
from repro.core.framework import DesignPoint, Workload, edp_benefit

#: Area of one additional 256-bit weight channel (peripherals + wiring),
#: in units of one CS area — derived from the case-study gamma_perif.
CHANNEL_AREA_COST = 0.5


@dataclass(frozen=True)
class Allocation:
    """One candidate split of the freed silicon.

    Attributes:
        extra_cs: CSs added beyond the baseline's single CS.
        extra_channels: Weight channels added beyond the baseline's one.
        edp_benefit: Eq. 8 benefit of the resulting design point.
    """

    extra_cs: int
    extra_channels: int
    edp_benefit: float

    @property
    def n_cs(self) -> int:
        """Total parallel CSs."""
        return 1 + self.extra_cs

    @property
    def channels(self) -> int:
        """Total weight channels."""
        return 1 + self.extra_channels


@dataclass(frozen=True)
class AllocationResult:
    """Outcome of the allocation search.

    Attributes:
        best: The winning allocation.
        candidates: Every evaluated allocation (for plotting the frontier).
    """

    best: Allocation
    candidates: tuple[Allocation, ...] = field(default_factory=tuple)

    @property
    def prefers_compute(self) -> bool:
        """True when the winner spends more area on CSs than channels."""
        return (self.best.extra_cs
                >= self.best.extra_channels * CHANNEL_AREA_COST)


def optimize_freed_silicon(
    workload: Workload,
    base: DesignPoint,
    freed_cs_units: float,
    channel_area_cost: float = CHANNEL_AREA_COST,
) -> AllocationResult:
    """Search the best split of ``freed_cs_units`` of silicon.

    The baseline is ``base`` (N = 1, one channel of bandwidth B).  Each
    extra CS costs one unit; each extra channel costs
    ``channel_area_cost`` units and adds B of aggregate bandwidth.
    """
    require(freed_cs_units >= 0, "freed area must be non-negative")
    require(channel_area_cost > 0, "channel cost must be positive")
    candidates: list[Allocation] = []
    max_cs = int(freed_cs_units)
    for extra_cs in range(0, max_cs + 1):
        remaining = freed_cs_units - extra_cs
        max_channels = int(remaining / channel_area_cost)
        for extra_channels in range(0, max_channels + 1):
            point = base.with_n_cs(1 + extra_cs).with_bandwidth(
                base.bandwidth_bits_per_cycle * (1 + extra_channels))
            candidates.append(Allocation(
                extra_cs=extra_cs,
                extra_channels=extra_channels,
                edp_benefit=edp_benefit(workload, base, point),
            ))
    best = max(candidates, key=lambda c: c.edp_benefit)
    return AllocationResult(best=best, candidates=tuple(candidates))
