"""Joint design-space exploration over the paper's four knobs.

Sections III-D/E/F study one knob at a time (FET width delta, via pitch
beta, tier pairs Y) around the capacity sweep of Obs. 6.  This module
explores the *joint* space: a full-factorial grid over
(capacity, delta, beta, Y), each point evaluated with the same simulator
pipeline as the single-knob studies, plus a Pareto-frontier extractor over
(footprint, EDP benefit) — the "which chips are worth building" view.

Sweeps are *planned* before they run: :func:`plan_design_point` builds the
(cheap, deterministic) design pair for each grid point, and
:func:`explore` hands the resulting ``simulate`` calls to the evaluation
engine in one batch.  The engine content-hashes each call, so grid points
that induce the same (design, network, PDK) triple — e.g. points whose
knobs only differ in ways the constructed designs absorb — simulate once
and share the result (``dedup_hits`` in the run report).  Plan
construction itself memoizes per (PDK identity, knobs), as does the
``beta``-scaled PDK, so repeated sweeps over the same grid skip straight
to the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.errors import require
from repro.tech.pdk import PDK, foundry_m3d_pdk
from repro.arch.accelerator import AcceleratorDesign, baseline_2d_design, m3d_design
from repro.core.relaxed_fet import reoptimized_2d_cs_count
from repro.perf.compare import compare_designs
from repro.perf.simulator import simulate
from repro.runtime.cache import MISSING
from repro.runtime.engine import EvaluationEngine, default_engine
from repro.runtime.memo import IdentityKey, memo_table
from repro.runtime.serialize import from_jsonable, to_jsonable
from repro.units import MEGABYTE
from repro.workloads.models import Network, resnet18

#: Plan memo: (PDK identity, capacity, delta, beta, Y) -> DesignPointPlan.
_PLAN_MEMO = memo_table("dse.plan")

#: Scaled-PDK memo: (PDK identity, beta) -> PDK.
_PDK_MEMO = memo_table("dse.scaled_pdk")


@dataclass(frozen=True)
class DesignCandidate:
    """One evaluated point of the joint design space.

    Attributes:
        capacity_bits: On-chip memory capacity.
        delta: Access-FET width relaxation.
        beta: ILV pitch factor.
        tier_pairs: Interleaved compute+memory pairs Y.
        n_cs: Parallel CSs of the M3D design.
        n_cs_2d: CSs of the (possibly enlarged) 2D baseline.
        footprint: Common chip footprint, m^2.
        speedup: Workload speedup.
        edp_benefit: Workload EDP benefit.
    """

    capacity_bits: int
    delta: float
    beta: float
    tier_pairs: int
    n_cs: int
    n_cs_2d: int
    footprint: float
    speedup: float
    edp_benefit: float

    def dominates(self, other: "DesignCandidate") -> bool:
        """True when this point is no worse on both Pareto axes and
        strictly better on at least one (smaller footprint, larger EDP)."""
        no_worse = (self.footprint <= other.footprint
                    and self.edp_benefit >= other.edp_benefit)
        better = (self.footprint < other.footprint
                  or self.edp_benefit > other.edp_benefit)
        return no_worse and better

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (used by the disk result cache)."""
        return to_jsonable(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "DesignCandidate":
        """Inverse of :meth:`to_dict`."""
        candidate = from_jsonable(data)
        require(isinstance(candidate, cls),
                f"expected a serialized {cls.__name__}")
        return candidate


@dataclass(frozen=True)
class DesignPointPlan:
    """The deterministic, simulation-free part of one grid point.

    Attributes:
        capacity_bits: On-chip memory capacity.
        delta: Access-FET width relaxation.
        beta: ILV pitch factor.
        tier_pairs: Interleaved compute+memory pairs Y.
        pdk: The ``beta``-scaled PDK both designs are built on.
        baseline: The iso-footprint (possibly enlarged) 2D baseline.
        m3d: The M3D design.
        n_cs_2d: CSs of the 2D baseline.
        footprint: Common chip footprint, m^2.
    """

    capacity_bits: int
    delta: float
    beta: float
    tier_pairs: int
    pdk: PDK
    baseline: AcceleratorDesign
    m3d: AcceleratorDesign
    n_cs_2d: int
    footprint: float

    def candidate(self, baseline_report, m3d_report) -> DesignCandidate:
        """Combine two simulation reports into a :class:`DesignCandidate`."""
        benefit = compare_designs(baseline_report, m3d_report)
        return DesignCandidate(
            capacity_bits=self.capacity_bits,
            delta=self.delta,
            beta=self.beta,
            tier_pairs=self.tier_pairs,
            n_cs=self.m3d.n_cs,
            n_cs_2d=self.n_cs_2d,
            footprint=self.footprint,
            speedup=benefit.speedup,
            edp_benefit=benefit.edp_benefit,
        )


def _scaled_pdk(pdk: PDK, beta: float) -> PDK:
    """``pdk.with_ilv_pitch_factor(beta)``, memoized per PDK identity."""
    key = (IdentityKey(pdk), beta)
    scaled = _PDK_MEMO.get(key)
    if scaled is MISSING:
        scaled = pdk.with_ilv_pitch_factor(beta)
        _PDK_MEMO.put(key, scaled)
    return scaled


def plan_design_point(
    pdk: PDK,
    capacity_bits: int,
    delta: float = 1.0,
    beta: float = 1.0,
    tier_pairs: int = 1,
) -> DesignPointPlan:
    """Build the design pair for one grid point (no simulation).

    Memoized on ``(PDK identity, knobs)``: PDKs are unhashable (they hold
    a metal-stack dict), so the key pins the PDK object itself via
    :class:`~repro.runtime.memo.IdentityKey`.
    """
    require(tier_pairs >= 1, "need at least one tier pair")
    key = (IdentityKey(pdk), capacity_bits, delta, beta, tier_pairs)
    plan = _PLAN_MEMO.get(key)
    if plan is not MISSING:
        return plan
    scaled = _scaled_pdk(pdk, beta)
    original = baseline_2d_design(scaled, capacity_bits)
    single = m3d_design(scaled, capacity_bits, access_width_factor=delta)
    m3d = m3d_design(scaled, capacity_bits, access_width_factor=delta,
                     n_cs=single.n_cs * tier_pairs)
    n_2d = reoptimized_2d_cs_count(
        grown_footprint=single.area.footprint,
        original_footprint=original.area.footprint,
        cs_area=original.area.cs_unit,
    )
    baseline = baseline_2d_design(
        scaled, capacity_bits, n_cs=n_2d, footprint=single.area.footprint)
    plan = DesignPointPlan(
        capacity_bits=capacity_bits, delta=delta, beta=beta,
        tier_pairs=tier_pairs, pdk=scaled, baseline=baseline, m3d=m3d,
        n_cs_2d=n_2d, footprint=single.area.footprint)
    _PLAN_MEMO.put(key, plan)
    return plan


def evaluate_design_point(
    pdk: PDK,
    network: Network,
    capacity_bits: int,
    delta: float = 1.0,
    beta: float = 1.0,
    tier_pairs: int = 1,
) -> DesignCandidate:
    """Evaluate one joint design point with the simulator pipeline."""
    plan = plan_design_point(pdk, capacity_bits, delta=delta, beta=beta,
                             tier_pairs=tier_pairs)
    return plan.candidate(
        simulate(plan.baseline, network, plan.pdk),
        simulate(plan.m3d, network, plan.pdk),
    )


def explore(
    pdk: PDK | None = None,
    network: Network | None = None,
    capacities_bits: Iterable[int] = (32 * MEGABYTE, 64 * MEGABYTE,
                                      128 * MEGABYTE),
    deltas: Iterable[float] = (1.0, 1.6, 2.0),
    betas: Iterable[float] = (1.0, 1.3),
    tier_pairs: Iterable[int] = (1, 2),
    engine: EvaluationEngine | None = None,
    jobs: int | None = None,
) -> tuple[DesignCandidate, ...]:
    """Full-factorial sweep over the joint design space.

    The sweep is planned up front (:func:`plan_design_point` per grid
    point), then every ``simulate(design, network, pdk)`` call dispatches
    through ``engine`` in one batch — content-hash deduplicated, memoized
    across runs, and with ``jobs`` > 1 evaluated on a process pool.
    ``jobs`` applies to this sweep only; the engine's own worker count is
    left untouched.  Results are in grid order regardless.
    """
    pdk = pdk if pdk is not None else foundry_m3d_pdk()
    network = network if network is not None else resnet18()
    engine = engine if engine is not None else default_engine()
    plans = [
        plan_design_point(pdk, capacity, delta=delta, beta=beta,
                          tier_pairs=pairs)
        for capacity in capacities_bits
        for delta in deltas
        for beta in betas
        for pairs in tier_pairs
    ]
    sim_calls: list[dict[str, Any]] = []
    for plan in plans:
        sim_calls.append({"design": plan.baseline, "network": network,
                          "pdk": plan.pdk})
        sim_calls.append({"design": plan.m3d, "network": network,
                          "pdk": plan.pdk})
    reports = engine.map(simulate, sim_calls, stage="dse.simulate",
                         jobs=jobs)
    return tuple(
        plan.candidate(reports[2 * index], reports[2 * index + 1])
        for index, plan in enumerate(plans)
    )


def pareto_frontier(
    candidates: Iterable[DesignCandidate],
) -> tuple[DesignCandidate, ...]:
    """Non-dominated subset over (minimize footprint, maximize EDP benefit),
    sorted by footprint."""
    pool = list(candidates)
    require(len(pool) > 0, "need at least one candidate")
    frontier = [
        candidate for candidate in pool
        if not any(other.dominates(candidate) for other in pool)
    ]
    return tuple(sorted(frontier, key=lambda c: c.footprint))
