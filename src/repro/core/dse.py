"""Joint design-space exploration over the paper's four knobs.

Sections III-D/E/F study one knob at a time (FET width delta, via pitch
beta, tier pairs Y) around the capacity sweep of Obs. 6.  This module
explores the *joint* space: a full-factorial grid over
(capacity, delta, beta, Y), each point evaluated with the same simulator
pipeline as the single-knob studies, plus a Pareto-frontier extractor over
(footprint, EDP benefit) — the "which chips are worth building" view.

Sweeps are *resolved* before they run: each grid point lowers to a
:class:`~repro.spec.design.DesignSpec` (:func:`design_point_spec`) and
:func:`explore` hands the resulting ``simulate`` calls to the evaluation
engine in one batch.  The engine content-hashes each call, so grid points
that induce the same (design, network, PDK) triple — e.g. points whose
knobs only differ in ways the constructed designs absorb — simulate once
and share the result (``dedup_hits`` in the run report).  Resolution
itself memoizes on the spec's content fingerprint (see
:mod:`repro.spec.resolve`), so repeated sweeps over the same grid skip
straight to the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.errors import require
from repro.tech.pdk import PDK
from repro.perf.compare import compare_designs
from repro.perf.simulator import simulate
from repro.runtime.engine import EvaluationEngine, default_engine
from repro.runtime.serialize import from_jsonable, to_jsonable
from repro.spec.design import ArchSpec, DesignSpec, TechSpec, WorkloadSpec
from repro.spec.resolve import ResolvedPoint, resolve
from repro.spec.sweep import SweepSpec
from repro.units import MEGABYTE
from repro.workloads.models import Network


@dataclass(frozen=True)
class DesignCandidate:
    """One evaluated point of the joint design space.

    Attributes:
        capacity_bits: On-chip memory capacity.
        delta: Access-FET width relaxation.
        beta: ILV pitch factor.
        tier_pairs: Interleaved compute+memory pairs Y.
        n_cs: Parallel CSs of the M3D design.
        n_cs_2d: CSs of the (possibly enlarged) 2D baseline.
        footprint: Common chip footprint, m^2.
        speedup: Workload speedup.
        edp_benefit: Workload EDP benefit.
    """

    capacity_bits: int
    delta: float
    beta: float
    tier_pairs: int
    n_cs: int
    n_cs_2d: int
    footprint: float
    speedup: float
    edp_benefit: float

    def dominates(self, other: "DesignCandidate") -> bool:
        """True when this point is no worse on both Pareto axes and
        strictly better on at least one (smaller footprint, larger EDP)."""
        no_worse = (self.footprint <= other.footprint
                    and self.edp_benefit >= other.edp_benefit)
        better = (self.footprint < other.footprint
                  or self.edp_benefit > other.edp_benefit)
        return no_worse and better

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (used by the disk result cache)."""
        return to_jsonable(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "DesignCandidate":
        """Inverse of :meth:`to_dict`."""
        candidate = from_jsonable(data)
        require(isinstance(candidate, cls),
                f"expected a serialized {cls.__name__}")
        return candidate


def design_point_spec(
    capacity_bits: int,
    delta: float = 1.0,
    beta: float = 1.0,
    tier_pairs: int = 1,
) -> DesignSpec:
    """The :class:`DesignSpec` for one joint grid point.

    DSE compares against the re-optimized 2D baseline (Eq. 9), matching
    the single-knob Case 1/2 studies.
    """
    return DesignSpec(
        tech=TechSpec(delta=delta, beta=beta),
        arch=ArchSpec(capacity_bits=capacity_bits, tier_pairs=tier_pairs,
                      baseline="reoptimized"),
    )


def candidate_from_point(
    point: ResolvedPoint,
    baseline_report,
    m3d_report,
) -> DesignCandidate:
    """Combine a resolved point and its two simulation reports."""
    benefit = compare_designs(baseline_report, m3d_report)
    return DesignCandidate(
        capacity_bits=point.spec.arch.capacity_bits,
        delta=point.spec.tech.delta,
        beta=point.spec.tech.beta,
        tier_pairs=point.spec.arch.tier_pairs,
        n_cs=point.n_cs_m3d,
        n_cs_2d=point.n_cs_2d,
        footprint=point.footprint,
        speedup=benefit.speedup,
        edp_benefit=benefit.edp_benefit,
    )


def plan_design_point(
    pdk: PDK,
    capacity_bits: int,
    delta: float = 1.0,
    beta: float = 1.0,
    tier_pairs: int = 1,
) -> ResolvedPoint:
    """Build the design pair for one grid point (no simulation).

    Legacy shim: lowers the knobs to a spec and resolves it.  Memoization
    lives in :func:`repro.spec.resolve.resolve`, keyed on the spec's
    content fingerprint plus the PDK's content hash.
    """
    spec = design_point_spec(capacity_bits, delta=delta, beta=beta,
                             tier_pairs=tier_pairs)
    return resolve(spec, pdk)


def evaluate_design_point(
    pdk: PDK,
    network: Network,
    capacity_bits: int,
    delta: float = 1.0,
    beta: float = 1.0,
    tier_pairs: int = 1,
) -> DesignCandidate:
    """Evaluate one joint design point with the simulator pipeline."""
    point = plan_design_point(pdk, capacity_bits, delta=delta, beta=beta,
                              tier_pairs=tier_pairs)
    return candidate_from_point(
        point,
        simulate(point.baseline, network, point.pdk),
        simulate(point.m3d, network, point.pdk),
    )


def explore(
    pdk: PDK | None = None,
    network: Network | None = None,
    capacities_bits: Iterable[int] = (32 * MEGABYTE, 64 * MEGABYTE,
                                      128 * MEGABYTE),
    deltas: Iterable[float] = (1.0, 1.6, 2.0),
    betas: Iterable[float] = (1.0, 1.3),
    tier_pairs: Iterable[int] = (1, 2),
    engine: EvaluationEngine | None = None,
    jobs: int | None = None,
    batch: bool = False,
) -> tuple[DesignCandidate, ...]:
    """Full-factorial sweep over the joint design space.

    The sweep is resolved up front (:func:`design_point_spec` +
    :func:`~repro.spec.resolve.resolve` per grid point), then every
    ``simulate(design, network, pdk)`` call dispatches through ``engine``
    in one batch — content-hash deduplicated, memoized across runs, and
    with ``jobs`` > 1 evaluated on a process pool.  ``jobs`` applies to
    this sweep only; the engine's own worker count is left untouched.
    Results are in grid order regardless.

    ``batch=True`` routes the grid through the vectorized spec kernel
    (:func:`repro.spec.evaluate.evaluate_specs` with ``batch=True``)
    instead of per-point simulation — numerically within 1e-9 of the
    scalar path, typically orders of magnitude faster cold.  The spec
    path only expresses the spec-defined workload, so it requires the
    default ``network=None``.
    """
    engine = engine if engine is not None else default_engine()
    if batch:
        require(network is None,
                "explore(batch=True) evaluates the spec-defined workload; "
                "pass workload knobs via specs, not a Network object")
        from repro.spec.evaluate import evaluate_specs

        specs = [
            design_point_spec(capacity, delta=delta, beta=beta,
                              tier_pairs=pairs)
            for capacity in capacities_bits
            for delta in deltas
            for beta in betas
            for pairs in tier_pairs
        ]
        evaluations = evaluate_specs(specs, pdk=pdk, engine=engine,
                                     jobs=jobs, batch=True)
        return tuple(candidate_from_evaluation(evaluation)
                     for evaluation in evaluations)
    points = [
        resolve(design_point_spec(capacity, delta=delta, beta=beta,
                                  tier_pairs=pairs), pdk)
        for capacity in capacities_bits
        for delta in deltas
        for beta in betas
        for pairs in tier_pairs
    ]
    sim_calls: list[dict[str, Any]] = []
    for point in points:
        workload = network if network is not None else point.network
        sim_calls.append({"design": point.baseline, "network": workload,
                          "pdk": point.pdk})
        sim_calls.append({"design": point.m3d, "network": workload,
                          "pdk": point.pdk})
    reports = engine.map(simulate, sim_calls, stage="dse.simulate",
                         jobs=jobs)
    return tuple(
        candidate_from_point(point, reports[2 * index], reports[2 * index + 1])
        for index, point in enumerate(points)
    )


def joint_grid_sweep(
    capacities_bits: Iterable[int] = (32 * MEGABYTE, 64 * MEGABYTE,
                                      128 * MEGABYTE),
    deltas: Iterable[float] = (1.0, 1.6, 2.0),
    betas: Iterable[float] = (1.0, 1.3),
    tier_pairs: Iterable[int] = (1, 2),
    workload: WorkloadSpec | None = None,
) -> SweepSpec:
    """The joint grid as a declarative :class:`SweepSpec`.

    Expansion order matches :func:`explore`'s loop nesting (capacity
    outermost, tier pairs innermost), and each expanded point equals
    :func:`design_point_spec` for the same knobs, so the streaming path
    evaluates the very same specs the eager path does.
    """
    base = DesignSpec(arch=ArchSpec(baseline="reoptimized"),
                      workload=workload if workload is not None
                      else WorkloadSpec())
    return SweepSpec(base=base, grid={
        "arch.capacity_bits": tuple(capacities_bits),
        "tech.delta": tuple(deltas),
        "tech.beta": tuple(betas),
        "arch.tier_pairs": tuple(tier_pairs),
    })


def candidate_from_evaluation(evaluation) -> DesignCandidate:
    """Lower a :class:`~repro.spec.evaluate.SpecEvaluation` to the joint
    grid's candidate shape (the two views carry the same numbers)."""
    spec = evaluation.spec
    return DesignCandidate(
        capacity_bits=spec.arch.capacity_bits,
        delta=spec.tech.delta,
        beta=spec.tech.beta,
        tier_pairs=spec.arch.tier_pairs,
        n_cs=evaluation.n_cs_m3d,
        n_cs_2d=evaluation.n_cs_2d,
        footprint=evaluation.footprint,
        speedup=evaluation.speedup,
        edp_benefit=evaluation.edp_benefit,
    )


def explore_streaming(
    pdk: PDK | None = None,
    workload: WorkloadSpec | None = None,
    capacities_bits: Iterable[int] = (32 * MEGABYTE, 64 * MEGABYTE,
                                      128 * MEGABYTE),
    deltas: Iterable[float] = (1.0, 1.6, 2.0),
    betas: Iterable[float] = (1.0, 1.3),
    tier_pairs: Iterable[int] = (1, 2),
    engine: EvaluationEngine | None = None,
    jobs: int | None = None,
    chunk_size: int | None = None,
    prune: bool = False,
    checkpoint: "str | None" = None,
    checkpoint_every: int = 1,
    batch: bool = False,
) -> tuple[DesignCandidate, ...]:
    """The joint sweep through the streaming executor.

    Produces candidates with the same values as :func:`explore` (both
    paths resolve the same specs and share the layer memo), but walks the
    grid chunk by chunk with optional checkpointing and certified Pareto
    pruning — see :mod:`repro.sweep.stream`.  With ``prune=True`` the
    returned tuple omits certifiably dominated points, leaving the Pareto
    frontier (and every point evaluated before a dominator appeared).
    """
    from repro.sweep.stream import DEFAULT_CHUNK_SIZE, run_streaming_sweep

    sweep = joint_grid_sweep(capacities_bits, deltas, betas, tier_pairs,
                             workload=workload)
    result = run_streaming_sweep(
        sweep, pdk=pdk, engine=engine, jobs=jobs,
        chunk_size=chunk_size if chunk_size is not None
        else DEFAULT_CHUNK_SIZE,
        prune=prune, checkpoint=checkpoint,
        checkpoint_every=checkpoint_every, batch=batch)
    assert result.evaluations is not None
    return tuple(candidate_from_evaluation(evaluation)
                 for evaluation in result.evaluations)


def pareto_frontier(
    candidates: Iterable[DesignCandidate],
) -> tuple[DesignCandidate, ...]:
    """Non-dominated subset over (minimize footprint, maximize EDP benefit),
    sorted by footprint."""
    pool = list(candidates)
    require(len(pool) > 0, "need at least one candidate")
    frontier = [
        candidate for candidate in pool
        if not any(other.dominates(candidate) for other in pool)
    ]
    return tuple(sorted(frontier, key=lambda c: c.footprint))
