"""Joint design-space exploration over the paper's four knobs.

Sections III-D/E/F study one knob at a time (FET width delta, via pitch
beta, tier pairs Y) around the capacity sweep of Obs. 6.  This module
explores the *joint* space: a full-factorial grid over
(capacity, delta, beta, Y), each point evaluated with the same simulator
pipeline as the single-knob studies, plus a Pareto-frontier extractor over
(footprint, EDP benefit) — the "which chips are worth building" view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.errors import require
from repro.tech.pdk import PDK, foundry_m3d_pdk
from repro.arch.accelerator import baseline_2d_design, m3d_design
from repro.core.relaxed_fet import reoptimized_2d_cs_count
from repro.perf.compare import compare_designs
from repro.perf.simulator import simulate
from repro.runtime.engine import EvaluationEngine, default_engine
from repro.runtime.serialize import from_jsonable, to_jsonable
from repro.units import MEGABYTE
from repro.workloads.models import Network, resnet18


@dataclass(frozen=True)
class DesignCandidate:
    """One evaluated point of the joint design space.

    Attributes:
        capacity_bits: On-chip memory capacity.
        delta: Access-FET width relaxation.
        beta: ILV pitch factor.
        tier_pairs: Interleaved compute+memory pairs Y.
        n_cs: Parallel CSs of the M3D design.
        n_cs_2d: CSs of the (possibly enlarged) 2D baseline.
        footprint: Common chip footprint, m^2.
        speedup: Workload speedup.
        edp_benefit: Workload EDP benefit.
    """

    capacity_bits: int
    delta: float
    beta: float
    tier_pairs: int
    n_cs: int
    n_cs_2d: int
    footprint: float
    speedup: float
    edp_benefit: float

    def dominates(self, other: "DesignCandidate") -> bool:
        """True when this point is no worse on both Pareto axes and
        strictly better on at least one (smaller footprint, larger EDP)."""
        no_worse = (self.footprint <= other.footprint
                    and self.edp_benefit >= other.edp_benefit)
        better = (self.footprint < other.footprint
                  or self.edp_benefit > other.edp_benefit)
        return no_worse and better

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (used by the disk result cache)."""
        return to_jsonable(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "DesignCandidate":
        """Inverse of :meth:`to_dict`."""
        candidate = from_jsonable(data)
        require(isinstance(candidate, cls),
                f"expected a serialized {cls.__name__}")
        return candidate


def evaluate_design_point(
    pdk: PDK,
    network: Network,
    capacity_bits: int,
    delta: float = 1.0,
    beta: float = 1.0,
    tier_pairs: int = 1,
) -> DesignCandidate:
    """Evaluate one joint design point with the simulator pipeline."""
    require(tier_pairs >= 1, "need at least one tier pair")
    scaled = pdk.with_ilv_pitch_factor(beta)
    original = baseline_2d_design(scaled, capacity_bits)
    single = m3d_design(scaled, capacity_bits, access_width_factor=delta)
    m3d = m3d_design(scaled, capacity_bits, access_width_factor=delta,
                     n_cs=single.n_cs * tier_pairs)
    n_2d = reoptimized_2d_cs_count(
        grown_footprint=single.area.footprint,
        original_footprint=original.area.footprint,
        cs_area=original.area.cs_unit,
    )
    baseline = baseline_2d_design(
        scaled, capacity_bits, n_cs=n_2d, footprint=single.area.footprint)
    benefit = compare_designs(
        simulate(baseline, network, scaled),
        simulate(m3d, network, scaled),
    )
    return DesignCandidate(
        capacity_bits=capacity_bits,
        delta=delta,
        beta=beta,
        tier_pairs=tier_pairs,
        n_cs=m3d.n_cs,
        n_cs_2d=n_2d,
        footprint=single.area.footprint,
        speedup=benefit.speedup,
        edp_benefit=benefit.edp_benefit,
    )


def explore(
    pdk: PDK | None = None,
    network: Network | None = None,
    capacities_bits: Iterable[int] = (32 * MEGABYTE, 64 * MEGABYTE,
                                      128 * MEGABYTE),
    deltas: Iterable[float] = (1.0, 1.6, 2.0),
    betas: Iterable[float] = (1.0, 1.3),
    tier_pairs: Iterable[int] = (1, 2),
    engine: EvaluationEngine | None = None,
    jobs: int | None = None,
) -> tuple[DesignCandidate, ...]:
    """Full-factorial sweep over the joint design space.

    Points evaluate through ``engine`` (default: the process-wide engine),
    so they are memoized across runs and, with ``jobs`` > 1, evaluated on
    a process pool — in grid order either way.  ``jobs`` overrides the
    engine's worker count for this sweep only.
    """
    pdk = pdk if pdk is not None else foundry_m3d_pdk()
    network = network if network is not None else resnet18()
    engine = engine if engine is not None else default_engine()
    calls = [
        {"pdk": pdk, "network": network, "capacity_bits": capacity,
         "delta": delta, "beta": beta, "tier_pairs": pairs}
        for capacity in capacities_bits
        for delta in deltas
        for beta in betas
        for pairs in tier_pairs
    ]
    saved_jobs = engine.jobs
    if jobs is not None:
        engine.jobs = jobs
    try:
        points = engine.map(evaluate_design_point, calls,
                            stage="dse.explore")
    finally:
        engine.jobs = saved_jobs
    return tuple(points)


def pareto_frontier(
    candidates: Iterable[DesignCandidate],
) -> tuple[DesignCandidate, ...]:
    """Non-dominated subset over (minimize footprint, maximize EDP benefit),
    sorted by footprint."""
    pool = list(candidates)
    require(len(pool) > 0, "need at least one candidate")
    frontier = [
        candidate for candidate in pool
        if not any(other.dominates(candidate) for other in pool)
    ]
    return tuple(sorted(frontier, key=lambda c: c.footprint))
