"""Thermal model for stacked M3D tiers — Eq. 17 of the paper.

Heat generated in tier pair i must flow through every tier pair below it
and the package/heat-sink resistance R0 to reach ambient:

    Temp_rise = sum_{i=1..Y} ( (sum_{j=1..i} R_j) + R0 ) * P_i

Obs. 10: with a ~60 K budget [20] this quickly caps the number of
interleaved compute+memory pairs a design may stack (Case 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import require
from repro.tech import constants


@dataclass(frozen=True)
class ThermalStack:
    """Thermal description of an interleaved M3D stack.

    Attributes:
        r_ambient: R0 — heat-sink (junction-to-ambient) resistance, K/W.
        r_per_pair: R_j — added resistance of each compute+memory pair, K/W.
        max_rise: Allowed temperature rise budget, K.
    """

    r_ambient: float = constants.THERMAL_R_AMBIENT
    r_per_pair: float = constants.THERMAL_R_PER_TIER
    max_rise: float = constants.THERMAL_MAX_RISE_K

    def __post_init__(self) -> None:
        require(self.r_ambient >= 0, "R0 must be non-negative")
        require(self.r_per_pair >= 0, "R_j must be non-negative")
        require(self.max_rise > 0, "temperature budget must be positive")

    def pair_resistances(self, pairs: int) -> tuple[float, ...]:
        """R_j for each of ``pairs`` tier pairs (uniform by default)."""
        require(pairs >= 1, "need at least one tier pair")
        return (self.r_per_pair,) * pairs


def vertical_conductance(cells_on_die: float,
                         stack: ThermalStack | None = None) -> float:
    """Per-cell through-package conductance to ambient, W/K.

    The stack's junction-to-ambient resistance R0 describes the whole
    die; a grid model splits it evenly over ``cells_on_die`` cells, so
    each cell sees ``1 / (R0 * cells)``.  This is the single definition
    both the scalar Eq. 17 budget (:func:`temperature_rise`) and the
    spatial solver (:mod:`repro.physical.thermal_map`) derive their
    vertical heat path from — the two feasibility checks cannot diverge.
    """
    stack = stack if stack is not None else ThermalStack()
    require(cells_on_die > 0, "cell count must be positive")
    require(stack.r_ambient > 0, "R0 must be positive for a grid model")
    return 1.0 / (stack.r_ambient * cells_on_die)


def temperature_rise(
    powers: Sequence[float],
    stack: ThermalStack | None = None,
    resistances: Sequence[float] | None = None,
) -> float:
    """Eq. 17: total temperature rise of a stack dissipating ``powers``.

    ``powers[i]`` is the power of tier pair i (bottom first), in watts.
    ``resistances`` overrides the per-pair R_j values when tiers differ.
    """
    stack = stack if stack is not None else ThermalStack()
    require(len(powers) >= 1, "need at least one tier pair")
    for power in powers:
        require(power >= 0, "tier power must be non-negative")
    if resistances is None:
        resistances = stack.pair_resistances(len(powers))
    require(len(resistances) == len(powers),
            "one thermal resistance per tier pair required")
    rise = 0.0
    cumulative = 0.0
    for power, resistance in zip(powers, resistances):
        cumulative += resistance
        rise += (cumulative + stack.r_ambient) * power
    return rise


def max_tier_pairs(
    power_per_pair: float,
    stack: ThermalStack | None = None,
    hard_limit: int = 64,
) -> int:
    """Largest Y whose uniform stack stays inside the temperature budget.

    With uniform P and R the rise grows quadratically in Y, so the budget
    binds quickly (Obs. 10).
    """
    stack = stack if stack is not None else ThermalStack()
    require(power_per_pair >= 0, "power must be non-negative")
    require(hard_limit >= 1, "hard limit must be >= 1")
    best = 0
    for pairs in range(1, hard_limit + 1):
        rise = temperature_rise([power_per_pair] * pairs, stack)
        if rise > stack.max_rise:
            break
        best = pairs
    return best
