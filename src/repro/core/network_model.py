"""Layer-level analytical evaluation of a DNN on a 2D/M3D design pair.

This is the model behind the paper's Obs. 4: applying the Sec. III roofline
equations *per layer* and summing.  For each layer:

* compute time  = F0 / (N_max * P_eff), where N_max = min(N, N#) partitions
  along output-channel tiles and P_eff is the closed-form effective
  throughput of the weight-stationary array on that layer's shape
  (P_peak derated by slab fill/drain and shallow-channel utilization);
* transfer time = output bits / writeback-bus width — the bus is a shared
  chip-level resource, so this term does **not** scale with N (it is what
  caps the paper's per-layer speedups below N);
* T = max(compute, transfer) per the roofline Eqs. 1/4, and energies follow
  Eqs. 6/7 with the memory-access term alpha * D0 over the weight bits.

The model is intentionally coarser than :mod:`repro.perf.simulator` (max
instead of sum, no weight-load double-buffering boundary); the paper's
claim — and our test — is agreement within 10% on network-level benefits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import require
from repro.tech import constants
from repro.tech.pdk import PDK, foundry_m3d_pdk
from repro.arch.accelerator import AcceleratorDesign
from repro.core.params import (
    _compute_energy_per_op,
    _cs_idle_energy_per_cycle,
    _memory_idle_energy_per_cycle,
)
from repro.workloads.layers import Layer, LayerKind
from repro.workloads.models import Network


@dataclass(frozen=True)
class AnalyticalLayerResult:
    """Roofline result for one layer on one design.

    Attributes:
        layer: The layer.
        used_cs: N_max.
        compute_cycles: F0 / (N_max * P_eff).
        transfer_cycles: Shared-bus transfer time.
        cycles: max(compute, transfer).
        energy: Layer energy in joules (Eqs. 6/7 structure).
    """

    layer: Layer
    used_cs: int
    compute_cycles: float
    transfer_cycles: float
    cycles: float
    energy: float


@dataclass(frozen=True)
class AnalyticalNetworkResult:
    """Roofline result for a full network on one design.

    Attributes:
        design: The design evaluated.
        network: The workload.
        layers: Per-layer results.
    """

    design: AcceleratorDesign
    network: Network
    layers: tuple[AnalyticalLayerResult, ...] = field(default_factory=tuple)

    @property
    def cycles(self) -> float:
        """Total cycles."""
        return sum(item.cycles for item in self.layers)

    @property
    def runtime(self) -> float:
        """Total runtime in seconds."""
        return self.cycles * self.design.cycle_time

    @property
    def energy(self) -> float:
        """Total energy in joules."""
        return sum(item.energy for item in self.layers)

    @property
    def edp(self) -> float:
        """Energy-delay product, joule-seconds."""
        return self.energy * self.runtime


def effective_throughput(design: AcceleratorDesign, layer: Layer) -> float:
    """P_eff: ops/cycle of one CS on this layer's shape (closed form).

    Derates P_peak by the slab fill/drain overhead and by shallow-channel
    under-utilization, using the same tiling arithmetic as the architecture
    definition (no cycle simulation involved).
    """
    array = design.cs.array
    if layer.kind == LayerKind.POOL:
        return float(design.pool_lanes)
    slabs = array.slab_count(layer)
    stream = array.stream_cycles_per_slab(layer)
    return layer.macs / (slabs * stream)


def _layer_quantities(design: AcceleratorDesign, layer: Layer) -> tuple[int, float, float]:
    """(n_max, compute_cycles, transfer_cycles) for one layer."""
    array = design.cs.array
    if layer.kind == LayerKind.POOL:
        tiles = max(1, math.ceil(layer.out_channels / design.pool_lanes))
    else:
        tiles = array.k_tiles(layer)
    n_max = min(design.n_cs, tiles)
    p_eff = effective_throughput(design, layer)
    compute = layer.macs / (n_max * p_eff)
    transfer = (layer.output_elements * design.precision_bits
                / design.writeback_bus_bits)
    return n_max, compute, transfer


def analyze_layer(design: AcceleratorDesign, layer: Layer,
                  pdk: PDK | None = None) -> AnalyticalLayerResult:
    """Evaluate one layer analytically on ``design``."""
    pdk = pdk if pdk is not None else foundry_m3d_pdk()
    n_max, compute, transfer = _layer_quantities(design, layer)
    cycles = max(compute, transfer)
    # Eq. 6/7 energy structure; alpha comes from the design's memory cell.
    alpha_d0 = (layer.weights * design.precision_bits
                * design.bank_plan.array.cell.read_energy_per_bit)
    e_compute = _compute_energy_per_op(design) * layer.macs
    cs_idle = _cs_idle_energy_per_cycle(design, pdk)
    mem_idle = _memory_idle_energy_per_cycle(design, pdk)
    unused = (design.n_cs - n_max) * cs_idle * cycles
    stalled = n_max * cs_idle * (cycles - compute)
    memory_stall = mem_idle * max(0.0, cycles - transfer)
    total_energy = alpha_d0 + e_compute + unused + stalled + memory_stall
    return AnalyticalLayerResult(
        layer=layer,
        used_cs=n_max,
        compute_cycles=compute,
        transfer_cycles=transfer,
        cycles=cycles,
        energy=total_energy,
    )


def analyze_network(design: AcceleratorDesign, network: Network,
                    pdk: PDK | None = None) -> AnalyticalNetworkResult:
    """Evaluate a full network analytically on ``design``."""
    pdk = pdk if pdk is not None else foundry_m3d_pdk()
    require(network.weight_bits(design.precision_bits) <= design.rram_capacity_bits,
            f"{network.name} weights do not fit in on-chip RRAM")
    layers = tuple(analyze_layer(design, layer, pdk) for layer in network.layers)
    return AnalyticalNetworkResult(design=design, network=network, layers=layers)
