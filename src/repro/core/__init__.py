"""The paper's analytical framework (Sec. III) — the primary contribution.

* :mod:`repro.core.framework` — Eqs. 1-8 exactly as published: roofline
  execution times, energies with idle terms, and EDP benefits.
* :mod:`repro.core.params` — extraction of the framework's scalar inputs
  (gamma ratios, bandwidths, energies) from concrete designs.
* :mod:`repro.core.network_model` — per-layer analytical evaluation of a DNN
  on a 2D/M3D design pair (the model validated within 10% of the simulator).
* :mod:`repro.core.relaxed_fet` — Case 1: BEOL access-FET width relaxation.
* :mod:`repro.core.via_pitch` — Case 2: ILV pitch scaling.
* :mod:`repro.core.multitier` — Case 3: interleaved compute/memory tiers.
* :mod:`repro.core.thermal` — Eq. 17 thermal stack model.
* :mod:`repro.core.insights` — Obs. 5/6 design-space sweeps.
"""

from repro.core.framework import (
    DesignPoint,
    Workload,
    edp_benefit,
    energy,
    execution_time,
    speedup,
)
from repro.core.params import FrameworkParams, params_from_designs
from repro.core.network_model import (
    AnalyticalLayerResult,
    AnalyticalNetworkResult,
    analyze_network,
)
from repro.core.relaxed_fet import RelaxedFETResult, relaxed_fet_study, sweep_fet_width
from repro.core.via_pitch import ViaPitchResult, sweep_via_pitch, via_pitch_study
from repro.core.multitier import MultiTierResult, multitier_study, sweep_tiers
from repro.core.thermal import (
    ThermalStack,
    max_tier_pairs,
    temperature_rise,
)
from repro.core.insights import (
    BandwidthCSPoint,
    sweep_bandwidth_vs_cs,
    sweep_rram_capacity,
)
from repro.core.allocate import Allocation, AllocationResult, optimize_freed_silicon
from repro.core.dse import (
    DesignCandidate,
    candidate_from_point,
    design_point_spec,
    evaluate_design_point,
    explore,
    pareto_frontier,
    plan_design_point,
)
from repro.core.roofline import RooflineModel, RooflinePoint, roofline
from repro.core.sensitivity import (
    Elasticity,
    elasticity,
    sensitivity_profile,
    sensitivity_profile_from_spec,
)

__all__ = [
    "Workload",
    "DesignPoint",
    "execution_time",
    "energy",
    "speedup",
    "edp_benefit",
    "FrameworkParams",
    "params_from_designs",
    "AnalyticalLayerResult",
    "AnalyticalNetworkResult",
    "analyze_network",
    "RelaxedFETResult",
    "relaxed_fet_study",
    "sweep_fet_width",
    "ViaPitchResult",
    "via_pitch_study",
    "sweep_via_pitch",
    "MultiTierResult",
    "multitier_study",
    "sweep_tiers",
    "ThermalStack",
    "temperature_rise",
    "max_tier_pairs",
    "BandwidthCSPoint",
    "sweep_bandwidth_vs_cs",
    "sweep_rram_capacity",
    "Allocation",
    "AllocationResult",
    "optimize_freed_silicon",
    "DesignCandidate",
    "candidate_from_point",
    "design_point_spec",
    "evaluate_design_point",
    "explore",
    "pareto_frontier",
    "plan_design_point",
    "RooflinePoint",
    "RooflineModel",
    "roofline",
    "Elasticity",
    "elasticity",
    "sensitivity_profile",
    "sensitivity_profile_from_spec",
]
