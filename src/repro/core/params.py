"""Extraction of the analytical framework's scalar inputs from designs.

The paper instantiates Eqs. 1-8 with parameters measured from its physical
design (bandwidths, energies, area ratios).  :func:`params_from_designs`
does the same from our :class:`~repro.arch.accelerator.AcceleratorDesign`
objects, producing ready-to-use :class:`~repro.core.framework.DesignPoint`
pairs plus the gamma area ratios of Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import require
from repro.tech import constants
from repro.tech.pdk import PDK, foundry_m3d_pdk
from repro.arch.accelerator import AcceleratorDesign, peripheral_area
from repro.core.framework import DesignPoint


@dataclass(frozen=True)
class FrameworkParams:
    """Scalar inputs to the analytical framework for a 2D/M3D design pair.

    Attributes:
        gamma_cells: A_M^cells / A_C of the 2D baseline.
        gamma_perif: A_M^perif / A_C of the 2D baseline.
        n_cs_m3d: N — parallel CSs in the M3D design.
        baseline: 2D design point (N = 1).
        m3d: M3D design point.
        cycle_time: Clock period in seconds (both designs run at the same
            target frequency, per Sec. II).
    """

    gamma_cells: float
    gamma_perif: float
    n_cs_m3d: int
    baseline: DesignPoint
    m3d: DesignPoint
    cycle_time: float

    def __post_init__(self) -> None:
        require(self.gamma_cells > 0, "gamma_cells must be positive")
        require(self.gamma_perif >= 0, "gamma_perif must be non-negative")
        require(self.cycle_time > 0, "cycle time must be positive")


def _compute_energy_per_op(design: AcceleratorDesign) -> float:
    """E_C: MAC energy plus the per-op share of input-buffer streaming."""
    pe = design.cs.array.pe
    streaming_share = (design.precision_bits / design.cs.array.cols
                       * constants.SRAM_ENERGY_PER_BIT)
    return pe.mac_energy + streaming_share


def _cs_idle_energy_per_cycle(design: AcceleratorDesign, pdk: PDK) -> float:
    """E_C^idle: one CS's static energy per clock cycle."""
    return design.cs.leakage(pdk) * design.cycle_time


def _memory_idle_energy_per_cycle(design: AcceleratorDesign, pdk: PDK) -> float:
    """E_M^idle: memory peripheral static energy per clock cycle (the RRAM
    cells themselves are non-volatile and draw no retention power)."""
    perif_gates = peripheral_area(pdk) / pdk.silicon_library.gate_equivalent.area
    return pdk.silicon_library.leakage_for_gates(perif_gates) * design.cycle_time


def design_point(design: AcceleratorDesign, pdk: PDK | None = None) -> DesignPoint:
    """Build a framework :class:`DesignPoint` from a concrete design."""
    pdk = pdk if pdk is not None else foundry_m3d_pdk()
    return DesignPoint(
        n_cs=design.n_cs,
        peak_ops_per_cycle=design.cs.array.peak_macs_per_cycle,
        bandwidth_bits_per_cycle=design.total_weight_bandwidth,
        memory_energy_per_bit=design.bank_plan.array.cell.read_energy_per_bit,
        compute_energy_per_op=_compute_energy_per_op(design),
        cs_idle_energy_per_cycle=_cs_idle_energy_per_cycle(design, pdk),
        memory_idle_energy_per_cycle=_memory_idle_energy_per_cycle(design, pdk),
    )


def params_from_designs(
    baseline: AcceleratorDesign,
    m3d: AcceleratorDesign,
    pdk: PDK | None = None,
) -> FrameworkParams:
    """Extract framework parameters from a 2D/M3D design pair.

    Validates the paper's comparison constraints: iso-on-chip-memory
    capacity and iso-footprint (to within floorplan rounding).
    """
    pdk = pdk if pdk is not None else foundry_m3d_pdk()
    require(baseline.rram_capacity_bits == m3d.rram_capacity_bits,
            "designs must be iso-on-chip-memory-capacity")
    require(m3d.area.footprint <= baseline.area.footprint * 1.001,
            "M3D design must be iso-footprint with the 2D baseline")
    return FrameworkParams(
        gamma_cells=baseline.area.gamma_cells,
        gamma_perif=baseline.area.gamma_perif,
        n_cs_m3d=m3d.n_cs,
        baseline=design_point(baseline, pdk),
        m3d=design_point(m3d, pdk),
        cycle_time=baseline.cycle_time,
    )
