"""Case 3 (Sec. III-F): multiple interleaved M3D compute & memory tiers.

Stacking Y pairs of compute and memory tiers multiplies the parallel CS
count (each pair brings its own memory banks, peripherals and therefore its
own bandwidth): N(Y) = Y * N(1).  Benefits grow with Y but plateau once the
total CS count exceeds the workload's parallelizable partitions (Fig. 10d),
and Eq. 17's thermal stack puts a hard ceiling on Y (Obs. 10).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import require
from repro.tech.pdk import PDK
from repro.perf.compare import BenefitReport, compare_designs
from repro.perf.simulator import simulate
from repro.runtime.engine import EvaluationEngine, default_engine
from repro.spec.design import ArchSpec, DesignSpec
from repro.spec.resolve import resolve
from repro.units import MEGABYTE
from repro.workloads.models import Network
from repro.core.thermal import ThermalStack, temperature_rise


@dataclass(frozen=True)
class MultiTierResult:
    """Outcome of the Case 3 analysis at one tier-pair count.

    Attributes:
        pairs: Y — interleaved compute+memory tier pairs (1 = case study).
        n_cs: Total parallel CSs, Y * N(1).
        benefit: Benefit comparison against the single-tier 2D baseline.
        temperature_rise: Eq. 17 stack temperature rise, K.
        thermal_ok: True when the rise fits the budget (Obs. 10).
    """

    pairs: int
    n_cs: int
    benefit: BenefitReport
    temperature_rise: float
    thermal_ok: bool

    @property
    def speedup(self) -> float:
        """Speedup over the 2D baseline."""
        return self.benefit.speedup

    @property
    def energy_benefit(self) -> float:
        """Energy benefit over the 2D baseline."""
        return self.benefit.energy_benefit

    @property
    def edp_benefit(self) -> float:
        """EDP benefit over the 2D baseline."""
        return self.benefit.edp_benefit


def multitier_study(
    pairs: int,
    pdk: PDK | None = None,
    network: Network | None = None,
    capacity_bits: int = 64 * MEGABYTE,
    stack: ThermalStack | None = None,
) -> MultiTierResult:
    """Evaluate the benefit of an M3D chip with ``pairs`` tier pairs."""
    require(pairs >= 1, "need at least one tier pair")
    stack = stack if stack is not None else ThermalStack()
    spec = DesignSpec(
        arch=ArchSpec(capacity_bits=capacity_bits, tier_pairs=pairs))
    point = resolve(spec, pdk)
    network = network if network is not None else point.network
    baseline_report = simulate(point.baseline, network, point.pdk)
    m3d_report = simulate(point.m3d, network, point.pdk)
    benefit = compare_designs(baseline_report, m3d_report)
    # Average chip power split uniformly across the pairs for Eq. 17.
    per_pair_power = m3d_report.average_power / pairs
    rise = temperature_rise([per_pair_power] * pairs, stack)
    return MultiTierResult(
        pairs=pairs,
        n_cs=point.n_cs_m3d,
        benefit=benefit,
        temperature_rise=rise,
        thermal_ok=rise <= stack.max_rise,
    )


def sweep_tiers(
    max_pairs: int = 8,
    pdk: PDK | None = None,
    network: Network | None = None,
    capacity_bits: int = 64 * MEGABYTE,
    stack: ThermalStack | None = None,
    engine: EvaluationEngine | None = None,
    jobs: int | None = None,
) -> tuple[MultiTierResult, ...]:
    """The Fig. 10d sweep: EDP benefit vs tier-pair count.

    ``jobs`` overrides the engine's worker count for this sweep only.
    """
    require(max_pairs >= 1, "max_pairs must be >= 1")
    engine = engine if engine is not None else default_engine()
    calls = [(pairs, pdk, network, capacity_bits, stack)
             for pairs in range(1, max_pairs + 1)]
    return tuple(engine.map(multitier_study, calls,
                            stage="multitier.sweep_tiers", jobs=jobs))
