"""Case 1 (Sec. III-D): relaxed M3D memory-access-FET drive strength.

A BEOL access FET with weaker drive (e.g. a newly integrated CNFET) must be
wider by a factor delta to supply the cell current, growing the M3D bit-cell
footprint.  While delta * A_cells fits inside the original footprint nothing
changes; beyond that both chips grow to the new footprint and the enlarged
*2D baseline* is re-optimized with extra parallel CSs (Eq. 9) sharing its
single weight channel, while the M3D design also gains CSs in the extra
silicon.  Eqs. 10-12 then give the surviving benefit.

Obs. 7 (reproduced by :func:`sweep_fet_width`): benefits are flat up to
delta ~1.6 and small benefits survive to delta ~2.5.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import require
from repro.tech.pdk import PDK, foundry_m3d_pdk
from repro.arch.accelerator import (
    AcceleratorDesign,
    baseline_2d_design,
    m3d_design,
)
from repro.perf.compare import BenefitReport, compare_designs
from repro.perf.simulator import simulate
from repro.runtime.engine import EvaluationEngine, default_engine
from repro.units import MEGABYTE
from repro.workloads.models import Network, resnet18


@dataclass(frozen=True)
class RelaxedFETResult:
    """Outcome of the Case 1 analysis at one width-relaxation factor.

    Attributes:
        delta: Access-FET width relaxation factor (>= 1).
        footprint: Common (possibly grown) footprint of both chips, m^2.
        n_cs_2d: CSs in the re-optimized 2D baseline (Eq. 9).
        n_cs_m3d: CSs in the M3D design at this delta.
        benefit: Full benefit comparison at this delta.
    """

    delta: float
    footprint: float
    n_cs_2d: int
    n_cs_m3d: int
    benefit: BenefitReport

    @property
    def speedup(self) -> float:
        """Speedup of M3D over the re-optimized 2D baseline (Eq. 10)."""
        return self.benefit.speedup

    @property
    def energy_benefit(self) -> float:
        """Energy benefit over the re-optimized baseline (Eq. 11 ratio)."""
        return self.benefit.energy_benefit

    @property
    def edp_benefit(self) -> float:
        """EDP benefit (Eq. 12)."""
        return self.benefit.edp_benefit


def reoptimized_2d_cs_count(
    grown_footprint: float,
    original_footprint: float,
    cs_area: float,
) -> int:
    """Eq. 9: CSs a commensurately enlarged 2D baseline can host."""
    require(cs_area > 0, "CS area must be positive")
    extra = grown_footprint - original_footprint
    if extra <= 0:
        return 1
    return 1 + math.floor(extra / cs_area)


def relaxed_fet_study(
    delta: float,
    pdk: PDK | None = None,
    network: Network | None = None,
    capacity_bits: int = 64 * MEGABYTE,
) -> RelaxedFETResult:
    """Evaluate the iso-capacity benefit at one width relaxation ``delta``."""
    require(delta >= 1.0, "delta must be >= 1")
    pdk = pdk if pdk is not None else foundry_m3d_pdk()
    network = network if network is not None else resnet18()
    original = baseline_2d_design(pdk, capacity_bits)
    m3d = m3d_design(pdk, capacity_bits, access_width_factor=delta)
    n_2d = reoptimized_2d_cs_count(
        grown_footprint=m3d.area.footprint,
        original_footprint=original.area.footprint,
        cs_area=original.area.cs_unit,
    )
    baseline = baseline_2d_design(
        pdk, capacity_bits, n_cs=n_2d, footprint=m3d.area.footprint)
    benefit = compare_designs(
        simulate(baseline, network, pdk),
        simulate(m3d, network, pdk),
    )
    return RelaxedFETResult(
        delta=delta,
        footprint=m3d.area.footprint,
        n_cs_2d=n_2d,
        n_cs_m3d=m3d.n_cs,
        benefit=benefit,
    )


def sweep_fet_width(
    deltas: tuple[float, ...] = (1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 2.25, 2.5, 2.75, 3.0),
    pdk: PDK | None = None,
    network: Network | None = None,
    capacity_bits: int = 64 * MEGABYTE,
    engine: EvaluationEngine | None = None,
    jobs: int | None = None,
) -> tuple[RelaxedFETResult, ...]:
    """The Fig. 10b-c sweep over access-FET width relaxation.

    Points evaluate through ``engine`` (default: the process-wide engine),
    memoized and parallelizable like every other sweep; ``jobs`` overrides
    the engine's worker count for this sweep only.
    """
    engine = engine if engine is not None else default_engine()
    calls = [(delta, pdk, network, capacity_bits) for delta in deltas]
    return tuple(engine.map(relaxed_fet_study, calls,
                            stage="relaxed_fet.sweep_fet_width", jobs=jobs))
