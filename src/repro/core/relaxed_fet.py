"""Case 1 (Sec. III-D): relaxed M3D memory-access-FET drive strength.

A BEOL access FET with weaker drive (e.g. a newly integrated CNFET) must be
wider by a factor delta to supply the cell current, growing the M3D bit-cell
footprint.  While delta * A_cells fits inside the original footprint nothing
changes; beyond that both chips grow to the new footprint and the enlarged
*2D baseline* is re-optimized with extra parallel CSs (Eq. 9) sharing its
single weight channel, while the M3D design also gains CSs in the extra
silicon.  Eqs. 10-12 then give the surviving benefit.

Obs. 7 (reproduced by :func:`sweep_fet_width`): benefits are flat up to
delta ~1.6 and small benefits survive to delta ~2.5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import require
from repro.tech.pdk import PDK
from repro.arch.accelerator import reoptimized_2d_cs_count
from repro.perf.compare import BenefitReport, compare_designs
from repro.perf.simulator import simulate
from repro.runtime.engine import EvaluationEngine, default_engine
from repro.spec.design import ArchSpec, DesignSpec, TechSpec
from repro.spec.resolve import resolve
from repro.units import MEGABYTE
from repro.workloads.models import Network

__all__ = [
    "RelaxedFETResult",
    "relaxed_fet_study",
    "reoptimized_2d_cs_count",  # re-export; Eq. 9 lives in the arch layer
    "sweep_fet_width",
]


@dataclass(frozen=True)
class RelaxedFETResult:
    """Outcome of the Case 1 analysis at one width-relaxation factor.

    Attributes:
        delta: Access-FET width relaxation factor (>= 1).
        footprint: Common (possibly grown) footprint of both chips, m^2.
        n_cs_2d: CSs in the re-optimized 2D baseline (Eq. 9).
        n_cs_m3d: CSs in the M3D design at this delta.
        benefit: Full benefit comparison at this delta.
    """

    delta: float
    footprint: float
    n_cs_2d: int
    n_cs_m3d: int
    benefit: BenefitReport

    @property
    def speedup(self) -> float:
        """Speedup of M3D over the re-optimized 2D baseline (Eq. 10)."""
        return self.benefit.speedup

    @property
    def energy_benefit(self) -> float:
        """Energy benefit over the re-optimized baseline (Eq. 11 ratio)."""
        return self.benefit.energy_benefit

    @property
    def edp_benefit(self) -> float:
        """EDP benefit (Eq. 12)."""
        return self.benefit.edp_benefit


def relaxed_fet_study(
    delta: float,
    pdk: PDK | None = None,
    network: Network | None = None,
    capacity_bits: int = 64 * MEGABYTE,
) -> RelaxedFETResult:
    """Evaluate the iso-capacity benefit at one width relaxation ``delta``."""
    require(delta >= 1.0, "delta must be >= 1")
    spec = DesignSpec(
        tech=TechSpec(delta=delta),
        arch=ArchSpec(capacity_bits=capacity_bits, baseline="reoptimized"),
    )
    point = resolve(spec, pdk)
    network = network if network is not None else point.network
    benefit = compare_designs(
        simulate(point.baseline, network, point.pdk),
        simulate(point.m3d, network, point.pdk),
    )
    return RelaxedFETResult(
        delta=delta,
        footprint=point.footprint,
        n_cs_2d=point.n_cs_2d,
        n_cs_m3d=point.n_cs_m3d,
        benefit=benefit,
    )


def sweep_fet_width(
    deltas: tuple[float, ...] = (1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 2.25, 2.5, 2.75, 3.0),
    pdk: PDK | None = None,
    network: Network | None = None,
    capacity_bits: int = 64 * MEGABYTE,
    engine: EvaluationEngine | None = None,
    jobs: int | None = None,
) -> tuple[RelaxedFETResult, ...]:
    """The Fig. 10b-c sweep over access-FET width relaxation.

    Points evaluate through ``engine`` (default: the process-wide engine),
    memoized and parallelizable like every other sweep; ``jobs`` overrides
    the engine's worker count for this sweep only.
    """
    engine = engine if engine is not None else default_engine()
    calls = [(delta, pdk, network, capacity_bits) for delta in deltas]
    return tuple(engine.map(relaxed_fet_study, calls,
                            stage="relaxed_fet.sweep_fet_width", jobs=jobs))
