"""The streaming sweep executor: bounded memory, resume, exact pruning.

``evaluate_sweep`` expands a :class:`~repro.spec.sweep.SweepSpec` into one
tuple and evaluates every point — fine at the paper's 36-point joint grid,
hopeless at the million-point grids the spec layer can express.
:func:`stream_sweep` walks the same grid as a *stream*:

1. specs materialize one chunk at a time (:meth:`SweepSpec.chunks`, backed
   by the lazy generator — peak spec memory is one chunk, not the grid);
2. each chunk dispatches through the evaluation engine (content-hash
   cache, dedup, persistent worker pool) as the ``sweep.evaluate`` stage;
3. with ``prune=True`` a cheaper ``sweep.bounds`` stage runs first
   (:func:`~repro.sweep.bounds.spec_bounds`) and every point whose bounds
   a frontier member *certifiably* dominates is skipped — provably
   without changing the final frontier (see DESIGN.md Sec. 10);
4. completed chunks persist as atomic checkpoint records
   (:mod:`repro.sweep.checkpoint`); re-running the same sweep replays
   them instead of re-evaluating, so a SIGKILLed sweep resumes exactly
   where its last flushed chunk left off;
5. per-chunk progress lands in the obs metrics registry
   (``repro_sweep_chunks_total``, ``repro_sweep_points_total{status}``,
   ``repro_sweep_frontier_size``, ``repro_sweep_chunk_seconds``) and a
   ``sweep.chunk`` trace span — all zero-cost unless observability is on.

Exactness invariants (enforced by ``tests/test_streaming_sweep.py``):
without pruning the evaluations equal eager ``evaluate_sweep`` results in
order and value; with pruning the surviving frontier equals the
exhaustive frontier; resumed runs return values ``==`` uninterrupted
runs.  The engine cache keys of the evaluate stage match the eager path's
(same function, same call shapes), so streaming and eager runs share
disk-cache entries.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace
from typing import Iterator

from repro.errors import EvaluationFailure, PermanentError, require
from repro.obs.metrics import registry as _metrics_registry
from repro.obs.trace import is_enabled as _obs_enabled, span as _span
from repro.runtime.engine import EvaluationEngine, default_engine
from repro.spec.design import DesignSpec
from repro.spec.evaluate import SpecEvaluation, evaluate_spec
from repro.spec.sweep import SweepSpec
from repro.sweep.bounds import spec_bounds
from repro.sweep.checkpoint import ChunkRecord, SweepCheckpoint, chunk_hash
from repro.sweep.pareto import ParetoFrontier
from repro.tech.pdk import PDK

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "StreamingSweepResult",
    "SweepChunk",
    "run_streaming_sweep",
    "stream_sweep",
]

#: Default points per dispatched chunk: large enough to keep a worker
#: pool busy, small enough that one in-flight chunk bounds peak memory.
DEFAULT_CHUNK_SIZE = 64


@dataclass(frozen=True)
class SweepChunk:
    """One completed chunk of a streaming sweep.

    Attributes:
        index: Position in the sweep's chunk sequence.
        size: Points the chunk covered (evaluated + pruned).
        evaluations: Results in spec order (pruned points absent).
        pruned: Points skipped by certified frontier domination.
        resumed: True when the chunk was replayed from a checkpoint.
        frontier_size: Frontier size *after* folding this chunk in.
        seconds: Wall-clock time spent producing the chunk.
        infeasible: Evaluated points whose physical flow failed a
            feasibility check (present in ``evaluations``, excluded
            from the frontier); always 0 for non-physical sweeps.
        failures: Points that failed in partial-results mode
            (``max_failures != 0``), as structured
            :class:`~repro.errors.EvaluationFailure` records carrying
            the failed spec; absent from ``evaluations``.
    """

    index: int
    size: int
    evaluations: tuple[SpecEvaluation, ...]
    pruned: int
    resumed: bool
    frontier_size: int
    seconds: float
    infeasible: int = 0
    failures: tuple[EvaluationFailure, ...] = ()

    @property
    def failed(self) -> int:
        """Points recorded as failed in this chunk."""
        return len(self.failures)


@dataclass(frozen=True)
class StreamingSweepResult:
    """Aggregate of one :func:`run_streaming_sweep` drive.

    Attributes:
        chunks: Chunks processed (computed + resumed).
        points: Total grid points covered.
        pruned: Points never evaluated thanks to certified domination.
        resumed_chunks: Chunks replayed from checkpoint records.
        frontier: The incremental Pareto frontier over
            ``(footprint, edp_benefit)``; payloads are the frontier's
            :class:`~repro.spec.evaluate.SpecEvaluation` objects.
        evaluations: Every evaluation in sweep order, or ``None`` when
            the drive ran with ``collect=False`` (bounded-memory mode).
        infeasible: Evaluated points excluded from the frontier because
            their physical flow failed a feasibility check.  Infeasible
            points are *results*, not errors: they appear in
            ``evaluations`` with a :class:`~repro.spec.evaluate
            .PhysicalSummary` naming the violated checks.
        failures: Structured records of every point that failed in
            partial-results mode (``max_failures != 0``), in sweep
            order.  Always retained, even with ``collect=False``.
    """

    chunks: int
    points: int
    pruned: int
    resumed_chunks: int
    frontier: ParetoFrontier
    evaluations: tuple[SpecEvaluation, ...] | None = field(default=None)
    infeasible: int = 0
    failures: tuple[EvaluationFailure, ...] = ()

    @property
    def failed(self) -> int:
        """Points recorded as failed across the whole sweep."""
        return len(self.failures)

    @property
    def evaluated(self) -> int:
        """Points that produced an evaluation (replays included)."""
        return self.points - self.pruned - self.failed

    def frontier_evaluations(self) -> tuple[SpecEvaluation, ...]:
        """The Pareto-optimal evaluations, by ascending footprint."""
        return self.frontier.items()


def _calls(specs: "tuple[DesignSpec, ...] | list[DesignSpec]",
           pdk: PDK | None, physical: bool = False) -> list[tuple]:
    """Engine call specs mirroring ``evaluate_specs``'s shapes, so the
    streaming path hits the same cache entries as the eager path."""
    kwargs: dict = {"physical": True} if physical else {}
    if pdk is None:
        return [((spec,), kwargs) for spec in specs]
    return [((spec, pdk), kwargs) for spec in specs]


def stream_sweep(
    sweep: SweepSpec,
    pdk: PDK | None = None,
    engine: EvaluationEngine | None = None,
    jobs: int | None = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    prune: bool = False,
    checkpoint: "SweepCheckpoint | str | os.PathLike | None" = None,
    checkpoint_every: int = 1,
    frontier: ParetoFrontier | None = None,
    batch: bool = False,
    physical: bool = False,
    max_failures: int = 0,
) -> Iterator[SweepChunk]:
    """Lazily evaluate ``sweep`` chunk by chunk, yielding each chunk.

    ``checkpoint`` is a :class:`~repro.sweep.checkpoint.SweepCheckpoint`
    or a directory path (the store inside it is keyed by the sweep's
    content, the PDK, ``chunk_size``, and ``prune``, so unrelated runs
    never cross-contaminate).  ``checkpoint_every`` sets the flush
    cadence in chunks — 1 (the default) persists every chunk as soon as
    it completes, so a killed run re-evaluates nothing that finished.
    ``frontier`` lets a caller share/inspect the incremental frontier;
    by default a fresh one is built.  Pruning decisions are certified
    against the frontier as of the *previous* chunks, which is exactly
    what replay reproduces — resumed runs prune identically.

    ``batch=True`` evaluates each chunk's survivors as one vectorized
    kernel call (:class:`repro.batch.kernel.BatchKernel`, shared across
    chunks so delta-evaluation spans the whole sweep) instead of
    per-point scalar dispatch; points the kernel cannot express fall
    back to scalar evaluation inside the batch.  Cache keys, checkpoint
    records and results match the scalar path (within 1e-9 on numpy).

    ``physical=True`` runs every evaluated point through the staged
    physical flow (``evaluate_spec(..., physical=True)``) and gates the
    frontier on flow feasibility: a point that fails timing, routing,
    power density, or thermal checks still yields a full evaluation (so
    sweeps *report* infeasible points instead of aborting) but is never
    admitted to the frontier.  The physical path is scalar-only, so
    ``batch`` is ignored when ``physical`` is set, mirroring
    ``evaluate_specs``.

    ``max_failures`` selects **partial-results mode**: with the default
    ``0`` the first failed point raises (the classic all-or-nothing
    contract); a positive budget records up to that many failed points
    as :class:`~repro.errors.EvaluationFailure` entries — in the yielded
    chunks *and* in the checkpoint records, so a resumed run retries
    exactly the failed points and nothing else — and raises
    :class:`~repro.errors.PermanentError` only once the budget is
    exceeded (the breaching chunk's record is flushed first, so no
    completed work is lost); a negative value means unlimited.
    """
    require(checkpoint_every >= 1, "checkpoint_every must be >= 1")
    engine = engine if engine is not None else default_engine()
    frontier = frontier if frontier is not None else ParetoFrontier()
    kernel = key_fn = None
    if batch and not physical:
        from repro.batch.kernel import BatchKernel
        from repro.batch.pack import spec_call_key

        kernel = BatchKernel(pdk)
        key_fn = spec_call_key
    store: SweepCheckpoint | None
    if checkpoint is None or isinstance(checkpoint, SweepCheckpoint):
        store = checkpoint
    else:
        store = SweepCheckpoint.for_sweep(
            checkpoint, sweep, pdk=pdk, chunk_size=chunk_size, prune=prune,
            physical=physical)
    pending: list[ChunkRecord] = []
    on_error = "raise" if max_failures == 0 else "record"
    failed_total = 0

    def flush() -> None:
        while pending:
            store.store(pending.pop(0))

    def split(specs, raw):
        """Separate engine results into evaluations and spec-annotated
        failures (slot = position in the chunk's survivor order)."""
        evaluations: list[SpecEvaluation] = []
        failures: list[EvaluationFailure] = []
        for slot, (spec, value) in enumerate(zip(specs, raw)):
            if isinstance(value, EvaluationFailure):
                failures.append(replace(value, spec=spec, index=slot))
            else:
                evaluations.append(value)
        return tuple(evaluations), tuple(failures)

    def retry_failures(record: ChunkRecord) -> ChunkRecord:
        """Resume path: re-evaluate only a record's failed points.

        Successful retries are merged back into their original survivor
        slots; points that fail again stay recorded (same slots), so
        repeated resumes keep converging without re-evaluating anything
        that already succeeded.
        """
        retry_specs = [failure.spec for failure in record.failures]
        raw = engine.map(
            evaluate_spec, _calls(retry_specs, pdk, physical=physical),
            stage="sweep.evaluate", jobs=jobs, on_error=on_error)
        recovered: dict[int, SpecEvaluation] = {}
        still_failed: list[EvaluationFailure] = []
        for failure, value in zip(record.failures, raw):
            if isinstance(value, EvaluationFailure):
                still_failed.append(replace(
                    value, spec=failure.spec, index=failure.index))
            else:
                recovered[failure.index] = value
        slots = len(record.evaluations) + len(record.failures)
        failed_slots = {failure.index for failure in record.failures}
        ordered: list[SpecEvaluation] = []
        replay = iter(record.evaluations)
        for slot in range(slots):
            if slot in failed_slots:
                if slot in recovered:
                    ordered.append(recovered[slot])
            else:
                ordered.append(next(replay))
        return replace(record, evaluations=tuple(ordered),
                       failures=tuple(still_failed))

    try:
        for index, chunk in enumerate(sweep.chunks(chunk_size)):
            start = time.perf_counter()
            specs_hash = chunk_hash(chunk)
            record = None if store is None else store.get(index, specs_hash)
            with _span("sweep.chunk", index=index, size=len(chunk)) as sp:
                if record is not None:
                    if record.failures:
                        record = retry_failures(record)
                        if store is not None:
                            pending.append(record)
                            if len(pending) >= checkpoint_every:
                                flush()
                    evaluations = record.evaluations
                    pruned = record.pruned
                    failures = record.failures
                else:
                    survivors = chunk
                    pruned = 0
                    if prune and len(frontier):
                        bounds = engine.map(
                            spec_bounds, _calls(chunk, pdk),
                            stage="sweep.bounds", jobs=jobs)
                        kept = []
                        for spec, bound in zip(chunk, bounds):
                            if frontier.certified_dominator(
                                    bound.footprint,
                                    bound.edp_benefit_ub) is None:
                                kept.append(spec)
                            else:
                                pruned += 1
                        survivors = tuple(kept)
                    if not survivors:
                        evaluations = ()
                        failures = ()
                    elif kernel is not None:
                        raw = engine.map_batched(
                            evaluate_spec, _calls(survivors, pdk),
                            batch_fn=kernel.evaluate_calls,
                            stage="sweep.evaluate", key_fn=key_fn,
                            on_error=on_error)
                        evaluations, failures = split(survivors, raw)
                    else:
                        raw = engine.map(
                            evaluate_spec,
                            _calls(survivors, pdk, physical=physical),
                            stage="sweep.evaluate", jobs=jobs,
                            on_error=on_error)
                        evaluations, failures = split(survivors, raw)
                    if store is not None:
                        pending.append(ChunkRecord(
                            index=index, specs_hash=specs_hash,
                            pruned=pruned, evaluations=evaluations,
                            failures=failures))
                        if len(pending) >= checkpoint_every:
                            flush()
                infeasible = 0
                for evaluation in evaluations:
                    feasible = evaluation.is_feasible
                    infeasible += not feasible
                    frontier.add(evaluation.footprint,
                                 evaluation.edp_benefit, evaluation,
                                 feasible=feasible)
                if sp:
                    sp.set(pruned=pruned, evaluated=len(evaluations),
                           infeasible=infeasible, failed=len(failures),
                           resumed=record is not None,
                           frontier=len(frontier))
            elapsed = time.perf_counter() - start
            failed_total += len(failures)
            if _obs_enabled():
                registry = _metrics_registry()
                status = "resumed" if record is not None else "computed"
                registry.counter("repro_sweep_chunks_total",
                                 status=status).inc()
                registry.counter("repro_sweep_points_total",
                                 status=status).inc(len(evaluations))
                registry.counter("repro_sweep_points_total",
                                 status="pruned").inc(pruned)
                if infeasible:
                    registry.counter("repro_sweep_points_total",
                                     status="infeasible").inc(infeasible)
                if failures:
                    registry.counter("repro_sweep_points_total",
                                     status="failed").inc(len(failures))
                registry.gauge("repro_sweep_frontier_size") \
                    .set(len(frontier))
                registry.histogram("repro_sweep_chunk_seconds") \
                    .observe(elapsed)
            if max_failures > 0 and failed_total > max_failures:
                # Flush the breaching chunk's record first: the failed
                # points are on disk, so a resume retries exactly them.
                if store is not None:
                    flush()
                raise PermanentError(
                    f"sweep exceeded --max-failures={max_failures}: "
                    f"{failed_total} point(s) failed; last: "
                    f"{failures[-1].error_type}: {failures[-1].message}")
            yield SweepChunk(
                index=index, size=len(chunk), evaluations=evaluations,
                pruned=pruned, resumed=record is not None,
                frontier_size=len(frontier), seconds=elapsed,
                infeasible=infeasible, failures=failures)
    finally:
        if store is not None:
            flush()


def run_streaming_sweep(
    sweep: SweepSpec,
    pdk: PDK | None = None,
    engine: EvaluationEngine | None = None,
    jobs: int | None = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    prune: bool = False,
    checkpoint: "SweepCheckpoint | str | os.PathLike | None" = None,
    checkpoint_every: int = 1,
    collect: bool = True,
    batch: bool = False,
    physical: bool = False,
    max_failures: int = 0,
) -> StreamingSweepResult:
    """Drive :func:`stream_sweep` to completion and aggregate the run.

    ``collect=False`` drops per-point results as chunks complete —
    memory then holds one chunk plus the frontier, which is what lets a
    100k-point sweep run in bounded RSS
    (``benchmarks/bench_streaming_sweep.py`` measures exactly this).
    ``batch=True`` evaluates each chunk through the vectorized kernel.
    ``physical=True`` adds the staged physical flow per point and keeps
    infeasible points out of the frontier (they stay in the results,
    counted by :attr:`StreamingSweepResult.infeasible`).
    ``max_failures`` enables partial-results mode exactly as in
    :func:`stream_sweep`; recorded failures aggregate into
    :attr:`StreamingSweepResult.failures` (kept even with
    ``collect=False`` — failure records are small).
    """
    frontier = ParetoFrontier()
    evaluations: list[SpecEvaluation] | None = [] if collect else None
    failures: list[EvaluationFailure] = []
    chunks = points = pruned = resumed = infeasible = 0
    for chunk in stream_sweep(
            sweep, pdk=pdk, engine=engine, jobs=jobs,
            chunk_size=chunk_size, prune=prune, checkpoint=checkpoint,
            checkpoint_every=checkpoint_every, frontier=frontier,
            batch=batch, physical=physical, max_failures=max_failures):
        chunks += 1
        points += chunk.size
        pruned += chunk.pruned
        resumed += chunk.resumed
        infeasible += chunk.infeasible
        failures.extend(chunk.failures)
        if evaluations is not None:
            evaluations.extend(chunk.evaluations)
    return StreamingSweepResult(
        chunks=chunks, points=points, pruned=pruned,
        resumed_chunks=resumed, frontier=frontier,
        evaluations=None if evaluations is None else tuple(evaluations),
        infeasible=infeasible, failures=tuple(failures))
