"""Streaming sweep execution: bounded memory, checkpoints, exact pruning.

The package splits into four layers:

* :mod:`repro.sweep.pareto` — incremental exact Pareto frontier over
  (minimize footprint, maximize EDP benefit) with O(log n) certified
  domination queries;
* :mod:`repro.sweep.bounds` — admissible per-spec bounds (exact
  footprint, certified EDP-benefit upper bound), the design-space
  analogue of the mapper's B&B bound;
* :mod:`repro.sweep.checkpoint` — atomic per-chunk result records that
  make a killed sweep resumable;
* :mod:`repro.sweep.stream` — the chunked executor tying them together.
"""

from repro.sweep.bounds import PointBounds, spec_bounds
from repro.sweep.checkpoint import (
    ChunkRecord,
    SweepCheckpoint,
    checkpoint_key,
    chunk_hash,
)
from repro.sweep.pareto import ParetoFrontier, dominates, exhaustive_frontier
from repro.sweep.stream import (
    DEFAULT_CHUNK_SIZE,
    StreamingSweepResult,
    SweepChunk,
    run_streaming_sweep,
    stream_sweep,
)

__all__ = [
    "ChunkRecord",
    "DEFAULT_CHUNK_SIZE",
    "ParetoFrontier",
    "PointBounds",
    "StreamingSweepResult",
    "SweepChunk",
    "SweepCheckpoint",
    "checkpoint_key",
    "chunk_hash",
    "dominates",
    "exhaustive_frontier",
    "run_streaming_sweep",
    "spec_bounds",
    "stream_sweep",
]
