"""Crash-safe chunk checkpoints for streaming sweeps.

A streaming sweep's unit of durability is the *chunk*: after a chunk's
evaluations complete, a :class:`ChunkRecord` — the chunk's index, a
content hash of its specs, how many points were pruned, and every
:class:`~repro.spec.evaluate.SpecEvaluation` it produced — lands as one
JSON file, written atomically (temp file + rename, the disk cache's
policy) so a SIGKILL can never leave a torn record.  Restarting the same
sweep replays completed chunks from these records instead of
re-evaluating them; the generic codec round-trips floats through
shortest-repr JSON, so a replayed evaluation compares ``==`` to the
original object.

Records for different sweeps never collide: each store keys its
subdirectory by :func:`checkpoint_key`, a content hash over the sweep
spec, the PDK, the chunk size (chunk boundaries move with it), the
pruning flag (a pruned chunk legitimately holds fewer evaluations), and
the physical flag (physical evaluations carry extra payload).  Each
record also embeds its chunk's spec hash, so a stale or foreign file —
like a corrupt one — degrades to "re-evaluate this chunk", never to wrong
results.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.errors import EvaluationFailure, require
from repro.faults import corrupt_text as _corrupt_text
from repro.runtime.cache import atomic_write_text
from repro.runtime.keys import stable_key
from repro.runtime.serialize import dumps, loads
from repro.spec.design import DesignSpec
from repro.spec.evaluate import SpecEvaluation
from repro.spec.sweep import SweepSpec
from repro.tech.pdk import PDK

__all__ = ["ChunkRecord", "SweepCheckpoint", "checkpoint_key", "chunk_hash"]


def chunk_hash(specs: Iterable[DesignSpec]) -> str:
    """Content hash identifying one chunk's specs (order-sensitive)."""
    return stable_key("repro.sweep.chunk", list(specs))


def checkpoint_key(sweep: SweepSpec, pdk: PDK | None = None,
                   chunk_size: int = 1, prune: bool = False,
                   physical: bool = False) -> str:
    """Content hash identifying one streaming run's checkpoint store."""
    return stable_key("repro.sweep.checkpoint", sweep.to_jsonable(),
                      None if pdk is None else stable_key(pdk),
                      chunk_size, prune, physical)


@dataclass(frozen=True)
class ChunkRecord:
    """Everything needed to replay one completed chunk.

    Attributes:
        index: The chunk's position in the sweep's chunk sequence.
        specs_hash: :func:`chunk_hash` of the chunk's specs — replay
            refuses a record whose hash does not match the live chunk.
        pruned: Points skipped by certified frontier domination.
        evaluations: Results of the points that were evaluated, in spec
            order (``len(evaluations) + pruned + len(failures)`` = chunk
            size).
        failures: Structured records of points that failed in
            partial-results mode, each carrying its chunk-local spec
            index — resume retries exactly these points and nothing
            else.  Defaults to empty, so records written before this
            field existed deserialize unchanged.
    """

    index: int
    specs_hash: str
    pruned: int
    evaluations: tuple[SpecEvaluation, ...]
    failures: tuple[EvaluationFailure, ...] = ()


class SweepCheckpoint:
    """One streaming run's on-disk chunk records.

    ``SweepCheckpoint(directory, key)`` stores records as
    ``<directory>/<key prefix>/chunk-<index>.json``.  Unreadable files
    and hash mismatches degrade to a miss (the chunk re-evaluates); a
    directory that cannot be created degrades to "nothing persists",
    matching the disk cache's never-fail policy.
    """

    def __init__(self, directory: str | os.PathLike, key: str) -> None:
        require(len(key) >= 16, "checkpoint key must be a content hash")
        self.directory = Path(directory) / key[:16]
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._writable = True
        except OSError:
            self._writable = False
        self._records: dict[int, ChunkRecord] = {}
        if self._writable:
            self._load()

    @classmethod
    def for_sweep(cls, directory: str | os.PathLike, sweep: SweepSpec,
                  pdk: PDK | None = None, chunk_size: int = 1,
                  prune: bool = False,
                  physical: bool = False) -> "SweepCheckpoint":
        """The checkpoint store for one (sweep, pdk, chunking) identity."""
        return cls(directory, checkpoint_key(sweep, pdk=pdk,
                                             chunk_size=chunk_size,
                                             prune=prune,
                                             physical=physical))

    def _path(self, index: int) -> Path:
        return self.directory / f"chunk-{index:08d}.json"

    def _load(self) -> None:
        try:
            paths = sorted(self.directory.glob("chunk-*.json"))
        except OSError:
            return
        for path in paths:
            try:
                record = loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError, TypeError, KeyError,
                    AttributeError, ImportError):
                continue  # torn/foreign file: that chunk re-evaluates
            if isinstance(record, ChunkRecord):
                self._records[record.index] = record

    def get(self, index: int, specs_hash: str) -> ChunkRecord | None:
        """The stored record for chunk ``index``, validated by hash."""
        record = self._records.get(index)
        if record is not None and record.specs_hash == specs_hash:
            return record
        return None

    def store(self, record: ChunkRecord) -> bool:
        """Persist one record atomically; False when the disk refused."""
        self._records[record.index] = record
        if not self._writable:
            return False
        try:
            text = dumps(record)
        except TypeError:
            return False
        # Fault-injection site: chaos plans corrupt checkpoint bytes
        # here to prove torn records degrade to re-evaluation.
        text = _corrupt_text("checkpoint.corrupt", record.specs_hash, text)
        return atomic_write_text(self._path(record.index), text)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, index: int) -> bool:
        return index in self._records
