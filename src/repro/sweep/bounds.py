"""Admissible design-space bounds: cheap certificates for sweep pruning.

The B&B tiling search (:mod:`repro.mapper.cost`) skips a mapping when a
fast *admissible* bound proves it cannot beat the incumbent.
:func:`spec_bounds` lifts that idea from the mapping space to the design
space: for one :class:`~repro.spec.design.DesignSpec` it returns the
point's exact footprint together with a certified *upper* bound on its
EDP benefit, so the streaming executor can discard a grid point that a
frontier member already dominates — without ever simulating its M3D
design.

The bound prices exactly the simulator's *mandatory* work:

* the 2D baseline simulates **exactly** (its per-layer results memoize on
  the design fingerprint, and under the ``reoptimized`` policy the
  baseline does not change along the ``tier_pairs`` axis, so this cost
  amortizes across the axis the sweep scales);
* the M3D side is **lower-bounded** per layer by terms that are
  independent of the CS count: input streaming with every weight slab
  stream-bound (``per_slab >= stream``) and perfect output-channel
  partitioning (``ceil(k_tiles / used_cs) >= 1``), pooling at its full
  channel-tile parallelism (``used_cs <= channel_tiles``), the exact
  serial writeback, and the dynamic energy with the output fan-out at its
  ``n_cs = 1`` minimum and leakage at its ``>= 0`` minimum.

Each mandatory term reproduces the corresponding expression of
:class:`repro.perf.simulator.AcceleratorSimulator` (same arithmetic, same
order), so where the bound is mathematically tight it is bit-tight too;
:data:`repro.mapper.cost.BOUND_MARGIN` keeps the benefit ratio on the
admissible side of any remaining float reassociation.  Admissibility —
``spec_bounds(spec).edp_benefit_ub >= evaluate_spec(spec).edp_benefit``
and exact footprints — is what makes frontier pruning provably exact;
``tests/test_streaming_sweep.py`` checks the inequality across the joint
grid and ``tests/test_pareto_properties.py`` covers the frontier side.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from repro.arch.accelerator import AcceleratorDesign
from repro.errors import require
from repro.mapper.cost import BOUND_MARGIN
from repro.perf.simulator import _WRITEBACK_WIRE_LENGTH, simulate
from repro.runtime.cache import MISSING
from repro.runtime.memo import memo_table
from repro.runtime.serialize import from_jsonable, to_jsonable
from repro.spec.design import DesignSpec
from repro.spec.resolve import resolve
from repro.tech import constants
from repro.tech.pdk import PDK
from repro.workloads.layers import Layer, LayerKind, shape_key

__all__ = ["PointBounds", "spec_bounds"]

#: Per-layer bound memo: (n_cs-free design fingerprint, layer shape)
#: -> (cycles_lb, dynamic_energy_lb).  Excluding the CS count is the
#: point — every ``tier_pairs`` / ``n_cs`` sibling of a grid point shares
#: one entry per layer shape.
_BOUND_MEMO = memo_table("sweep.bound")


@dataclass(frozen=True)
class PointBounds:
    """Certified objective bounds for one (unevaluated) design spec.

    Attributes:
        spec: The bounded spec (so pruning logs are self-describing).
        footprint: Exact chip footprint, m^2 (from resolution alone).
        speedup_ub: Certified upper bound on T_2D / T_3D.
        energy_benefit_ub: Certified upper bound on E_2D / E_3D.
        edp_benefit_ub: Certified upper bound on the EDP benefit.
    """

    spec: DesignSpec
    footprint: float
    speedup_ub: float
    energy_benefit_ub: float
    edp_benefit_ub: float

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (used by the disk result cache)."""
        return to_jsonable(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "PointBounds":
        """Inverse of :meth:`to_dict`."""
        bounds = from_jsonable(data)
        require(isinstance(bounds, cls),
                f"expected a serialized {cls.__name__}")
        return bounds


def _layer_lower_bounds(design: AcceleratorDesign, layer: Layer,
                        batch: int) -> tuple[float, float]:
    """(cycles_lb, dynamic_energy_lb) for one layer on the M3D design.

    Mirrors ``AcceleratorSimulator._conv_fc_cycles`` / ``_pool_cycles`` /
    ``_dynamic_energy`` term by term, replacing every CS-count-dependent
    factor with its best case over ``n_cs >= 1``.
    """
    array = design.cs.array
    precision = design.precision_bits
    if layer.kind == LayerKind.POOL:
        lanes = design.pool_lanes
        channel_tiles = max(1, math.ceil(layer.out_channels / lanes))
        # used_cs = min(n_cs, channel_tiles) <= channel_tiles.
        compute = layer.macs * batch / lanes / channel_tiles
    else:
        fill = array.fill_drain_cycles
        stream = ((array.stream_cycles_per_slab(layer) - fill) * batch
                  + fill)
        # slabs_per_cs >= row_tiles * kernel_passes (perfect K-tile
        # partitioning) and per_slab = max(stream, weight_load) >= stream.
        compute = array.row_tiles(layer) * array.kernel_passes(layer) * stream
    writeback = (layer.output_elements * batch
                 * precision / design.writeback_bus_bits)
    cycles = compute + writeback

    mac_energy = design.cs.array.pe.mac_energy
    compute_e = layer.macs * batch * mac_energy
    read_energy = design.bank_plan.array.cell.read_energy_per_bit
    weights = layer.weights * precision * read_energy
    input_reads = layer.macs * batch / design.cs.array.cols
    inputs = input_reads * precision * constants.SRAM_ENERGY_PER_BIT
    output_bits = layer.output_elements * batch * precision
    wire = (output_bits * constants.WIRE_ENERGY_PER_BIT_MM
            * (_WRITEBACK_WIRE_LENGTH / 1e-3))
    # Output fan-out (1 + n_cs) bottoms out at 2; leakage bottoms at 0.
    outputs = output_bits * constants.SRAM_ENERGY_PER_BIT * 2
    energy = compute_e + weights + inputs + outputs + wire
    return cycles, energy


def _m3d_lower_bounds(design: AcceleratorDesign, layers: tuple[Layer, ...],
                      batch: int) -> tuple[float, float]:
    """Network-total (runtime_lb, energy_lb) for the M3D design."""
    fingerprint = (
        design.cs.array,
        design.precision_bits,
        design.writeback_bus_bits,
        design.pool_lanes,
        design.bank_plan.array.cell.read_energy_per_bit,
        batch,
    )
    cycles = 0.0
    energy = 0.0
    for layer in layers:
        key = (fingerprint, shape_key(layer))
        bound = _BOUND_MEMO.get(key)
        if bound is MISSING:
            bound = _layer_lower_bounds(design, layer, batch)
            _BOUND_MEMO.put(key, bound)
        cycles += bound[0]
        energy += bound[1]
    return cycles * design.cycle_time, energy


def spec_bounds(spec: DesignSpec, pdk: PDK | None = None) -> PointBounds:
    """Exact footprint plus certified benefit upper bounds for ``spec``.

    A pure function of its arguments (like
    :func:`repro.spec.evaluate.evaluate_spec`), so the evaluation engine
    can content-hash, deduplicate, and pool-dispatch it; the streaming
    executor maps it as its own ``sweep.bounds`` stage.
    """
    point = resolve(spec, pdk)
    batch = spec.workload.batch
    baseline = simulate(point.baseline, point.network, point.pdk,
                        batch=batch)
    runtime_lb, energy_lb = _m3d_lower_bounds(
        point.m3d, point.network.layers, batch)
    require(runtime_lb > 0.0 and energy_lb > 0.0,
            "M3D lower bounds must be positive")
    t_ratio = baseline.runtime / runtime_lb
    e_ratio = baseline.energy / energy_lb
    return PointBounds(
        spec=spec,
        footprint=point.footprint,
        speedup_ub=t_ratio / BOUND_MARGIN,
        energy_benefit_ub=e_ratio / BOUND_MARGIN,
        edp_benefit_ub=t_ratio * e_ratio / BOUND_MARGIN,
    )
