"""Incremental exact Pareto frontier over (minimize x, maximize y).

The design-space objectives are the paper's "which chips are worth
building" axes: chip footprint (smaller is better) and workload EDP
benefit (larger is better).  A point dominates another when it is no
worse on both axes and strictly better on at least one — the same
convention as :meth:`repro.core.dse.DesignCandidate.dominates`.

:class:`ParetoFrontier` maintains the non-dominated set *incrementally*
in O(log n) per operation: because the frontier of a 2-objective space is
a monotone staircase (footprint ascending implies EDP benefit ascending —
a larger chip must buy more benefit to stay non-dominated), both
membership and dominance queries reduce to one ``bisect`` probe against
the staircase.  Ties — points with exactly equal objectives — all stay on
the frontier, matching :func:`repro.core.dse.pareto_frontier`.

:meth:`ParetoFrontier.certified_dominator` is the pruning primitive: it
answers dominance for a point known only through *admissible bounds*
(an exact-or-lower footprint, an exact-or-upper EDP benefit).  When it
returns a witness, the true point — wherever it lies inside its bounds —
is certifiably dominated by that witness, so a sweep may skip evaluating
it without ever changing the final frontier (the soundness argument is
spelled out in DESIGN.md Sec. 10; ``tests/test_pareto_properties.py``
checks the invariants on randomized objective sets).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Any, Iterable, Iterator

from repro.errors import require

__all__ = ["ParetoFrontier", "dominates", "exhaustive_frontier"]


def dominates(x_a: float, y_a: float, x_b: float, y_b: float) -> bool:
    """True when point A dominates point B (minimize x, maximize y)."""
    no_worse = x_a <= x_b and y_a >= y_b
    better = x_a < x_b or y_a > y_b
    return no_worse and better


def exhaustive_frontier(
    points: Iterable[tuple[float, float, Any]],
) -> tuple[tuple[float, float, Any], ...]:
    """Brute-force O(n^2) non-dominated subset, sorted by x then y.

    The reference implementation the property suite checks
    :class:`ParetoFrontier` against; also handy for small point sets.
    """
    pool = list(points)
    frontier = [
        (x, y, item) for x, y, item in pool
        if not any(dominates(ox, oy, x, y) for ox, oy, _ in pool)
    ]
    return tuple(sorted(frontier, key=lambda entry: (entry[0], entry[1])))


class ParetoFrontier:
    """Incremental non-dominated set over (minimize x, maximize y).

    Internally a staircase: ``_xs`` strictly ascending, ``_ys`` strictly
    ascending in lockstep, ``_items[i]`` holding every payload whose
    objectives equal ``(_xs[i], _ys[i])`` (exact ties share one step).
    """

    def __init__(self) -> None:
        self._xs: list[float] = []
        self._ys: list[float] = []
        self._items: list[list[Any]] = []
        self._infeasible = 0

    # --- updates ----------------------------------------------------------

    @property
    def infeasible(self) -> int:
        """Points offered with ``feasible=False`` (never admitted)."""
        return self._infeasible

    def add(self, x: float, y: float, item: Any = None,
            feasible: bool = True) -> bool:
        """Offer a point; returns True when it joins the frontier.

        A dominated point is rejected; an accepted point evicts every
        staircase step it dominates.  Exact ties join the existing step.
        ``feasible=False`` marks a point that violates a hard constraint
        (e.g. a physical-flow feasibility check): it is counted in
        :attr:`infeasible` and rejected without touching the staircase,
        so infeasible design points can never dominate feasible ones.
        """
        if not feasible:
            self._infeasible += 1
            return False
        require(math.isfinite(x) and math.isfinite(y),
                f"frontier objectives must be finite, got ({x!r}, {y!r})")
        pos = bisect_right(self._xs, x)
        if pos > 0:
            left_x, left_y = self._xs[pos - 1], self._ys[pos - 1]
            if left_y > y or (left_y >= y and left_x < x):
                return False  # dominated by the step at or left of x
            if left_x == x and left_y == y:
                self._items[pos - 1].append(item)
                return True
        # Evict steps the new point dominates: the contiguous run at and
        # after the insertion position whose y does not exceed the new y
        # (a same-x step with smaller y sits just left of ``pos``).
        start = pos
        if pos > 0 and self._xs[pos - 1] == x and self._ys[pos - 1] < y:
            start = pos - 1
        end = start
        while end < len(self._xs) and self._ys[end] <= y:
            end += 1
        self._xs[start:end] = [x]
        self._ys[start:end] = [y]
        self._items[start:end] = [[item]]
        return True

    def update(self, points: Iterable[tuple[float, float, Any]]) -> int:
        """Offer many points; returns how many joined the frontier."""
        return sum(1 for x, y, item in points if self.add(x, y, item))

    # --- queries ----------------------------------------------------------

    def dominator(self, x: float, y: float) -> Any | None:
        """A frontier payload strictly dominating ``(x, y)``, or None."""
        pos = bisect_right(self._xs, x)
        if pos == 0:
            return None
        left_x, left_y = self._xs[pos - 1], self._ys[pos - 1]
        if left_y > y or (left_y >= y and left_x < x):
            return self._items[pos - 1][0]
        return None

    def certified_dominator(self, x_lb: float, y_ub: float) -> Any | None:
        """A witness certifiably dominating any point inside the bounds.

        ``x_lb`` must not exceed the point's true x and ``y_ub`` must not
        undercut its true y (admissible bounds; exact values qualify).
        A non-None witness ``w`` satisfies either ``w.x <= x_lb`` with
        ``w.y > y_ub`` or ``w.x < x_lb`` with ``w.y >= y_ub`` — in both
        cases ``w`` dominates the true point outright, so pruning on this
        answer can never discard a frontier member.
        """
        pos = bisect_right(self._xs, x_lb)
        if pos == 0:
            return None
        left_x, left_y = self._xs[pos - 1], self._ys[pos - 1]
        if left_y > y_ub or (left_x < x_lb and left_y >= y_ub):
            return self._items[pos - 1][0]
        return None

    # --- views ------------------------------------------------------------

    def __len__(self) -> int:
        """Number of frontier points (ties counted individually)."""
        return sum(len(items) for items in self._items)

    def __iter__(self) -> Iterator[tuple[float, float, Any]]:
        """Frontier points in ascending-x order, ties in arrival order."""
        for x, y, items in zip(self._xs, self._ys, self._items):
            for item in items:
                yield (x, y, item)

    def items(self) -> tuple[Any, ...]:
        """Frontier payloads in ascending-x order."""
        return tuple(item for _, _, item in self)

    def steps(self) -> tuple[tuple[float, float], ...]:
        """The staircase's distinct (x, y) pairs, ascending."""
        return tuple(zip(self._xs, self._ys))
