"""repro — reproduction of "Ultra-Dense 3D Physical Design Unlocks New
Architectural Design Points with Large Benefits" (DATE 2023).

Quickstart::

    from repro import (
        foundry_m3d_pdk, baseline_2d_design, m3d_design,
        simulate, compare_designs, resnet18,
    )

    pdk = foundry_m3d_pdk()
    baseline = baseline_2d_design(pdk)     # Si CMOS + RRAM, 1 CS
    m3d = m3d_design(pdk)                  # iso-footprint M3D, 8 CSs
    benefit = compare_designs(
        simulate(baseline, resnet18(), pdk),
        simulate(m3d, resnet18(), pdk),
    )
    print(f"EDP benefit: {benefit.edp_benefit:.2f}x")   # ~5.7x

Subpackages
-----------
* :mod:`repro.tech` — PDK stand-in: devices, RRAM, ILVs, stack-up, cells.
* :mod:`repro.arch` — accelerator architectures (case study + Table II).
* :mod:`repro.workloads` — DNN models (AlexNet, VGG, ResNet family).
* :mod:`repro.perf` — cycle-level performance/energy simulator.
* :mod:`repro.core` — the paper's analytical framework (Sec. III).
* :mod:`repro.mapper` — ZigZag-style mapping DSE (Fig. 7 comparator).
* :mod:`repro.physical` — block-level RTL-to-GDS flow (Fig. 4b).
* :mod:`repro.experiments` — one driver per paper table/figure.
* :mod:`repro.runtime` — parallel, memoized evaluation engine for sweeps.
* :mod:`repro.spec` — declarative JSON design/sweep specs.
* :mod:`repro.sweep` — streaming sweep executor with Pareto pruning.
* :mod:`repro.serve` — the ``repro serve`` HTTP evaluation server (/v1).
* :mod:`repro.faults` — deterministic fault injection for chaos tests.

The names in ``__all__`` are the **declared public API**: they follow the
semantic-versioning contract (`tests/test_public_api.py` snapshots the
surface so accidental breaks fail CI).  Everything else is internal and
may change between minor versions.
"""

from repro.errors import (
    ConfigurationError,
    EvaluationFailure,
    FloorplanError,
    MappingError,
    ModelError,
    PermanentError,
    PoisonTaskError,
    ReproError,
    TransientError,
    error_envelope,
)
from repro.faults import FaultPlan, FaultRule, injected_faults
from repro.tech import foundry_m3d_pdk
from repro.arch import baseline_2d_design, case_study_cs, m3d_design
from repro.workloads import (
    alexnet,
    build_network,
    resnet18,
    resnet34,
    resnet50,
    resnet152,
    vgg16,
)
from repro.perf import compare_designs, simulate
from repro.core import (
    DesignPoint,
    Workload,
    analyze_network,
    edp_benefit,
    energy,
    execution_time,
    speedup,
)
from repro.physical import (
    FlowOutcome,
    run_flow,
    run_staged_flow,
    run_staged_flows,
)
from repro.runtime import (
    EvaluationEngine,
    ResultCache,
    RetryPolicy,
    configure,
    default_engine,
    pmap,
    stable_key,
)
from repro.spec import (
    DesignSpec,
    FlowSpec,
    SweepSpec,
    evaluate_spec,
    evaluate_specs,
    evaluate_sweep,
    load_design_spec,
    load_sweep_spec,
)
from repro.sweep import run_streaming_sweep, stream_sweep
from repro.serve import ReproServer, ServeClient, ServeError, ServerConfig

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ModelError",
    "FloorplanError",
    "MappingError",
    "TransientError",
    "PermanentError",
    "PoisonTaskError",
    "EvaluationFailure",
    "FaultPlan",
    "FaultRule",
    "injected_faults",
    "RetryPolicy",
    "foundry_m3d_pdk",
    "baseline_2d_design",
    "m3d_design",
    "case_study_cs",
    "alexnet",
    "vgg16",
    "resnet18",
    "resnet34",
    "resnet50",
    "resnet152",
    "build_network",
    "simulate",
    "compare_designs",
    "Workload",
    "DesignPoint",
    "execution_time",
    "energy",
    "speedup",
    "edp_benefit",
    "analyze_network",
    "run_flow",
    "FlowOutcome",
    "run_staged_flow",
    "run_staged_flows",
    "EvaluationEngine",
    "ResultCache",
    "configure",
    "default_engine",
    "pmap",
    "stable_key",
    "error_envelope",
    "DesignSpec",
    "FlowSpec",
    "SweepSpec",
    "evaluate_spec",
    "evaluate_specs",
    "evaluate_sweep",
    "load_design_spec",
    "load_sweep_spec",
    "run_streaming_sweep",
    "stream_sweep",
    "ReproServer",
    "ServerConfig",
    "ServeClient",
    "ServeError",
    "serve",
    "__version__",
]
