"""repro — reproduction of "Ultra-Dense 3D Physical Design Unlocks New
Architectural Design Points with Large Benefits" (DATE 2023).

Quickstart::

    from repro import (
        foundry_m3d_pdk, baseline_2d_design, m3d_design,
        simulate, compare_designs, resnet18,
    )

    pdk = foundry_m3d_pdk()
    baseline = baseline_2d_design(pdk)     # Si CMOS + RRAM, 1 CS
    m3d = m3d_design(pdk)                  # iso-footprint M3D, 8 CSs
    benefit = compare_designs(
        simulate(baseline, resnet18(), pdk),
        simulate(m3d, resnet18(), pdk),
    )
    print(f"EDP benefit: {benefit.edp_benefit:.2f}x")   # ~5.7x

Subpackages
-----------
* :mod:`repro.tech` — PDK stand-in: devices, RRAM, ILVs, stack-up, cells.
* :mod:`repro.arch` — accelerator architectures (case study + Table II).
* :mod:`repro.workloads` — DNN models (AlexNet, VGG, ResNet family).
* :mod:`repro.perf` — cycle-level performance/energy simulator.
* :mod:`repro.core` — the paper's analytical framework (Sec. III).
* :mod:`repro.mapper` — ZigZag-style mapping DSE (Fig. 7 comparator).
* :mod:`repro.physical` — block-level RTL-to-GDS flow (Fig. 4b).
* :mod:`repro.experiments` — one driver per paper table/figure.
* :mod:`repro.runtime` — parallel, memoized evaluation engine for sweeps.
"""

from repro.errors import (
    ConfigurationError,
    FloorplanError,
    MappingError,
    ModelError,
    ReproError,
)
from repro.tech import foundry_m3d_pdk
from repro.arch import baseline_2d_design, case_study_cs, m3d_design
from repro.workloads import (
    alexnet,
    build_network,
    resnet18,
    resnet34,
    resnet50,
    resnet152,
    vgg16,
)
from repro.perf import compare_designs, simulate
from repro.core import (
    DesignPoint,
    Workload,
    analyze_network,
    edp_benefit,
    energy,
    execution_time,
    speedup,
)
from repro.physical import run_flow
from repro.runtime import (
    EvaluationEngine,
    ResultCache,
    configure,
    default_engine,
    pmap,
    stable_key,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ModelError",
    "FloorplanError",
    "MappingError",
    "foundry_m3d_pdk",
    "baseline_2d_design",
    "m3d_design",
    "case_study_cs",
    "alexnet",
    "vgg16",
    "resnet18",
    "resnet34",
    "resnet50",
    "resnet152",
    "build_network",
    "simulate",
    "compare_designs",
    "Workload",
    "DesignPoint",
    "execution_time",
    "energy",
    "speedup",
    "edp_benefit",
    "analyze_network",
    "run_flow",
    "EvaluationEngine",
    "ResultCache",
    "configure",
    "default_engine",
    "pmap",
    "stable_key",
    "__version__",
]
