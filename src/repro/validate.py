"""Programmatic validation: every headline paper claim, PASS/FAIL.

``python -m repro validate`` runs the same checks the integration test
suite (:mod:`tests.test_paper_claims`) enforces, but as a self-contained
report — the thing you run after touching any calibration constant.

Each check compares a measured quantity against the paper's value at an
explicit tolerance and reports PASS/FAIL; the exit code is the number of
failures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tech.pdk import PDK, foundry_m3d_pdk


@dataclass(frozen=True)
class Check:
    """One validated claim.

    Attributes:
        name: Short claim identifier.
        paper: The paper's value, as text.
        measured: Our measured value, as text.
        passed: Whether the claim holds at its tolerance.
    """

    name: str
    paper: str
    measured: str
    passed: bool


def _within(measured: float, target: float, rel: float) -> bool:
    return abs(measured - target) <= rel * abs(target)


def run_validation(pdk: PDK | None = None) -> tuple[Check, ...]:
    """Run every headline check and return the results.

    Experiments run through their registry drivers with **one** shared
    :class:`~repro.experiments.registry.ExperimentContext`, so the whole
    validation shares a result cache and memo tables (the deprecated
    ``run_*`` shims would rebuild both per call).
    """
    from repro.experiments.registry import ExperimentContext

    pdk = pdk if pdk is not None else foundry_m3d_pdk()
    ctx = ExperimentContext.create(pdk=pdk)
    checks: list[Check] = []

    def add(name: str, paper: str, measured: str, passed: bool) -> None:
        checks.append(Check(name=name, paper=paper, measured=measured,
                            passed=passed))

    # Table I total.
    from repro.experiments.table1 import table1_experiment
    total = table1_experiment(ctx)[-1]
    add("Table I total speedup", "5.64x", f"{total.speedup:.2f}x",
        _within(total.speedup, 5.64, 0.05))
    add("Table I total EDP", "5.66x", f"{total.edp_benefit:.2f}x",
        _within(total.edp_benefit, 5.66, 0.05))

    # Fig. 5 range.
    from repro.experiments.fig5 import fig5_experiment
    rows = fig5_experiment(ctx)
    lo = min(r.edp_benefit for r in rows)
    hi = max(r.edp_benefit for r in rows)
    add("Fig. 5 EDP range", "5.7x-7.5x", f"{lo:.2f}x-{hi:.2f}x",
        _within(lo, 5.7, 0.05) and _within(hi, 7.5, 0.10))

    # Fig. 7 agreement and range.
    from repro.experiments.fig7 import fig7_experiment
    f7 = fig7_experiment(ctx)
    worst = max(r.edp_disagreement for r in f7)
    lo7 = min(r.analytic_edp for r in f7)
    hi7 = max(r.analytic_edp for r in f7)
    add("Fig. 7 model agreement", "<10%", f"{worst * 100:.1f}%",
        worst < 0.10)
    add("Fig. 7 EDP range", "5.3x-11.5x", f"{lo7:.2f}x-{hi7:.2f}x",
        _within(lo7, 5.3, 0.20) and _within(hi7, 11.5, 0.15))

    # Fig. 9 endpoints.
    from repro.core.insights import sweep_rram_capacity
    points = {round(p.capacity_megabytes): p for p in sweep_rram_capacity(pdk=pdk)}
    add("Fig. 9 @ 12 MB", "1.0x", f"{points[12].edp_benefit:.2f}x",
        _within(points[12].edp_benefit, 1.0, 0.02))
    add("Fig. 9 @ 128 MB", "6.8x", f"{points[128].edp_benefit:.2f}x",
        _within(points[128].edp_benefit, 6.8, 0.05))

    # Obs. 7 / Obs. 8 thresholds.
    from repro.core.relaxed_fet import relaxed_fet_study
    from repro.core.via_pitch import via_pitch_study
    flat = relaxed_fet_study(1.6, pdk).edp_benefit
    nominal = relaxed_fet_study(1.0, pdk).edp_benefit
    retained = relaxed_fet_study(2.5, pdk).edp_benefit
    add("Obs. 7 flat to delta=1.6", "no loss",
        f"{flat / nominal:.3f}x of nominal", _within(flat, nominal, 0.02))
    add("Obs. 7 retained at delta=2.5", ">1x", f"{retained:.2f}x",
        1.0 < retained < 2.0)
    beta_ok = via_pitch_study(1.3, pdk).edp_benefit
    beta_dead = via_pitch_study(1.6, pdk).edp_benefit
    add("Obs. 8 unchanged at beta=1.3", "no loss",
        f"{beta_ok / nominal:.3f}x of nominal",
        _within(beta_ok, nominal, 0.02))
    add("Obs. 8 limited at beta=1.6", "~1x", f"{beta_dead:.2f}x",
        beta_dead < 2.0)

    # Obs. 9 tiers.
    from repro.core.multitier import multitier_study
    y2 = multitier_study(2, pdk).edp_benefit
    add("Obs. 9 second tier pair", "6.9x", f"{y2:.2f}x",
        _within(y2, 6.9, 0.05))

    # Obs. 2 physical power.
    from repro.experiments.casestudy import casestudy_experiment
    case = casestudy_experiment(ctx)
    add("Obs. 2 upper-tier power", "<1%",
        f"{case.upper_tier_fraction * 100:.2f}%",
        case.upper_tier_fraction < 0.01)
    add("Obs. 2 peak density", "+1%",
        f"+{(case.peak_density_ratio - 1) * 100:.2f}%",
        case.peak_density_ratio < 1.02)

    # Obs. 3 SRAM baseline.
    from repro.experiments.obs3 import obs3_experiment
    sram = next(r for r in obs3_experiment(ctx) if r.density_ratio == 2.0)
    add("Obs. 3 SRAM baseline", "16 CS / 6.8x",
        f"{sram.n_cs} CS / {sram.edp_benefit:.2f}x",
        sram.n_cs == 16 and _within(sram.edp_benefit, 6.8, 0.05))

    # Intro contrast: folding-only prior work.
    from repro.experiments.folding import folding_experiment
    folded = folding_experiment(ctx)
    add("Folding-only EDP ([3-4])", "1.1x-1.4x",
        f"{folded.folded_edp_benefit:.2f}x",
        1.05 <= folded.folded_edp_benefit <= 1.5)

    return tuple(checks)


def format_validation(checks: tuple[Check, ...]) -> str:
    """Render the PASS/FAIL report."""
    lines = ["paper-claim validation"]
    width = max(len(check.name) for check in checks)
    for check in checks:
        status = "PASS" if check.passed else "FAIL"
        lines.append(f"  [{status}] {check.name.ljust(width)}  "
                     f"paper: {check.paper:12s} measured: {check.measured}")
    failures = sum(1 for check in checks if not check.passed)
    lines.append(f"{len(checks) - failures}/{len(checks)} claims reproduced")
    return "\n".join(lines)


def main(pdk: PDK | None = None) -> int:
    """Run and print the validation; returns the failure count."""
    checks = run_validation(pdk)
    print(format_validation(checks))
    return sum(1 for check in checks if not check.passed)
