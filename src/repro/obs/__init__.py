"""Zero-dependency observability: tracing, metrics, exporters.

The subsystem has three parts:

* :mod:`repro.obs.trace` — context-local nested-span tracing with a
  falsy :data:`NULL_SPAN` fast path when disabled;
* :mod:`repro.obs.metrics` — counters/gauges/histograms in a
  context-local :class:`MetricsRegistry` with picklable snapshots;
* :mod:`repro.obs.export` — Chrome-trace JSON, flat CSV, and
  Prometheus-text exporters.

Everything is off by default; ``with trace() as tracer:`` (or the CLI's
``--trace``/``--profile`` flags) turns it on for a scope.
"""

from repro.obs.export import (
    chrome_trace,
    prometheus_text,
    spans_csv,
    validate_chrome_trace,
    write_chrome_trace,
    write_prometheus,
    write_spans_csv,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricSample,
    MetricsRegistry,
    registry,
    use_registry,
)
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    SpanSummary,
    Tracer,
    current_tracer,
    is_enabled,
    set_enabled,
    span,
    summarize_spans,
    trace,
    walk_spans,
)

__all__ = [
    "NULL_SPAN",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricSample",
    "MetricsRegistry",
    "Span",
    "SpanSummary",
    "Tracer",
    "chrome_trace",
    "current_tracer",
    "is_enabled",
    "prometheus_text",
    "registry",
    "set_enabled",
    "span",
    "spans_csv",
    "summarize_spans",
    "trace",
    "use_registry",
    "validate_chrome_trace",
    "walk_spans",
    "write_chrome_trace",
    "write_prometheus",
    "write_spans_csv",
]
