"""Counters, gauges, and histograms for the evaluation runtime.

A :class:`MetricsRegistry` holds named, labelled instruments:

* :class:`Counter` — monotonically increasing totals (calls, hits);
* :class:`Gauge` — last-written values (worker counts, table sizes);
* :class:`Histogram` — bucketed timing distributions (stage latency).

Like tracing (:mod:`repro.obs.trace`), metrics are context-local: call
sites record into :func:`registry`, a :class:`contextvars.ContextVar`
default that :func:`use_registry` can scope — which is how pool workers
record into a private registry whose :meth:`~MetricsRegistry.snapshot`
ships back with the task result and merges into the parent's registry
(:meth:`~MetricsRegistry.merge`).

Recording call sites guard on :func:`repro.obs.trace.is_enabled`, so the
disabled default costs one boolean test per site.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricSample",
    "MetricsRegistry",
    "registry",
    "use_registry",
]

#: Default histogram buckets (seconds): five decades around typical
#: evaluation-stage latencies, plus the implicit +Inf bucket.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)

Labels = tuple[tuple[str, str], ...]


def _labels(labels: dict[str, object]) -> Labels:
    """Canonical (sorted, stringified) label tuple."""
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


@dataclass(frozen=True)
class MetricSample:
    """One instrument's picklable state (the unit of snapshot/merge).

    Attributes:
        kind: ``"counter"``, ``"gauge"``, or ``"histogram"``.
        name: Metric name (Prometheus-style, e.g.
            ``repro_engine_calls_total``).
        labels: Sorted ``(key, value)`` label pairs.
        value: Counter total / gauge value / histogram sum.
        count: Histogram observation count (0 otherwise).
        minimum: Smallest histogram observation (``inf`` when empty).
        maximum: Largest histogram observation (``-inf`` when empty).
        buckets: Histogram ``(upper_bound, cumulative_count)`` pairs,
            ending with the ``+Inf`` bound.
    """

    kind: str
    name: str
    labels: Labels = ()
    value: float = 0.0
    count: int = 0
    minimum: float = math.inf
    maximum: float = -math.inf
    buckets: tuple[tuple[float, int], ...] = ()


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Labels) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount

    def sample(self) -> MetricSample:
        """Picklable state snapshot."""
        return MetricSample(kind="counter", name=self.name,
                            labels=self.labels, value=self.value)


class Gauge:
    """A last-write-wins value."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Labels) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)

    def sample(self) -> MetricSample:
        """Picklable state snapshot."""
        return MetricSample(kind="gauge", name=self.name,
                            labels=self.labels, value=self.value)


class Histogram:
    """A bucketed distribution with count/sum/min/max summary."""

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count",
                 "total", "minimum", "maximum")

    def __init__(self, name: str, labels: Labels,
                 bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.labels = labels
        self.bounds = tuple(sorted(bounds))
        self.bucket_counts = [0] * (len(self.bounds) + 1)  # + the Inf bucket
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    def sample(self) -> MetricSample:
        """Picklable state snapshot (buckets cumulative, Prometheus-style)."""
        cumulative = 0
        buckets: list[tuple[float, int]] = []
        for bound, count in zip((*self.bounds, math.inf), self.bucket_counts):
            cumulative += count
            buckets.append((bound, cumulative))
        return MetricSample(kind="histogram", name=self.name,
                            labels=self.labels, value=self.total,
                            count=self.count, minimum=self.minimum,
                            maximum=self.maximum, buckets=tuple(buckets))


class MetricsRegistry:
    """Named, labelled instruments with snapshot/merge support."""

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, str, Labels],
                            Counter | Gauge | Histogram] = {}

    def counter(self, name: str, **labels: object) -> Counter:
        """The counter registered under ``(name, labels)`` (created once)."""
        return self._instrument("counter", Counter, name, _labels(labels))

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The gauge registered under ``(name, labels)`` (created once)."""
        return self._instrument("gauge", Gauge, name, _labels(labels))

    def histogram(self, name: str, *,
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS,
                  **labels: object) -> Histogram:
        """The histogram registered under ``(name, labels)`` (created once).

        ``buckets`` sets the bounds on first creation; later lookups of an
        existing histogram ignore it.
        """
        return self._instrument(
            "histogram",
            lambda metric_name, metric_labels: Histogram(
                metric_name, metric_labels, buckets),
            name, _labels(labels))

    def _instrument(self, kind: str, factory, name: str, labels: Labels):
        key = (kind, name, labels)
        instrument = self._metrics.get(key)
        if instrument is None:
            instrument = self._metrics[key] = factory(name, labels)
        return instrument

    def snapshot(self) -> tuple[MetricSample, ...]:
        """Picklable samples of every instrument, sorted by (name, labels)."""
        return tuple(sorted(
            (metric.sample() for metric in self._metrics.values()),
            key=lambda s: (s.name, s.labels)))

    def merge(self, samples: Iterable[MetricSample]) -> None:
        """Fold foreign samples (e.g. a worker snapshot) into this registry.

        Counters and histograms add; gauges take the incoming value.
        """
        for sample in samples:
            if sample.kind == "counter":
                self.counter(sample.name, **dict(sample.labels)) \
                    .inc(sample.value)
            elif sample.kind == "gauge":
                self.gauge(sample.name, **dict(sample.labels)) \
                    .set(sample.value)
            elif sample.kind == "histogram":
                self._merge_histogram(sample)
            else:
                raise ValueError(f"unknown metric kind {sample.kind!r}")

    def _merge_histogram(self, sample: MetricSample) -> None:
        bounds = tuple(bound for bound, _ in sample.buckets[:-1])
        histogram = self._instrument(
            "histogram",
            lambda name, labels: Histogram(name, labels, bounds or
                                           DEFAULT_BUCKETS),
            sample.name, sample.labels)
        histogram.count += sample.count
        histogram.total += sample.value
        histogram.minimum = min(histogram.minimum, sample.minimum)
        histogram.maximum = max(histogram.maximum, sample.maximum)
        previous = 0
        for index, (_, cumulative) in enumerate(sample.buckets):
            if index < len(histogram.bucket_counts):
                histogram.bucket_counts[index] += cumulative - previous
            previous = cumulative

    def clear(self) -> None:
        """Drop every instrument."""
        self._metrics.clear()

    def __len__(self) -> int:
        return len(self._metrics)


_default = MetricsRegistry()
_active: ContextVar[MetricsRegistry] = ContextVar("repro_obs_metrics",
                                                  default=_default)


def registry() -> MetricsRegistry:
    """The context-local metrics registry call sites record into."""
    return _active.get()


@contextmanager
def use_registry(target: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scope the context-local registry to ``target`` for a block.

    Pool workers use this to isolate per-task metrics for shipping.
    """
    token = _active.set(target)
    try:
        yield target
    finally:
        _active.reset(token)
