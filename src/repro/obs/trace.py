"""Context-local span tracing for the evaluation pipeline.

A :class:`Tracer` records a tree of nested :class:`Span` objects — one
per instrumented region (an ``engine.map`` batch, a mapper slice search,
a simulator layer, a cache deserialization).  Instrumented code never
holds a tracer; it calls the module-level :func:`span` helper, which
resolves the *context-local* active tracer (a :class:`contextvars.ContextVar`,
so worker tasks and async callers each see their own) and returns either
a live recording handle or the shared no-op :data:`NULL_SPAN`.

Disabled-by-default contract: with no active tracer (the default), every
instrumentation point reduces to one context-variable read returning the
falsy null span — no allocation beyond the ``attrs`` dict of the call
site, no clock reads, no tree mutation.  Hot paths that want to skip even
attribute assembly test the handle's truthiness::

    with span("mapper.best_slice_cost") as sp:
        if sp:                      # False on the null span
            sp.set(layer=name, memo="miss")

Clocks: span *start* times are wall-clock (``time.time``), so spans
recorded in different processes (pool workers) land on one comparable
timeline; *durations* are measured with ``time.perf_counter`` for
resolution.  Worker-side trees ship back with results (see
:mod:`repro.runtime.pmap`) and merge into the parent trace via
:meth:`Tracer.attach`, labelled with the worker's identity.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

__all__ = [
    "NULL_SPAN",
    "Span",
    "SpanSummary",
    "Tracer",
    "current_tracer",
    "is_enabled",
    "set_enabled",
    "span",
    "summarize_spans",
    "trace",
    "walk_spans",
]

#: Module-level master switch for *all* observability instrumentation.
#: Metrics-recording call sites guard on :func:`is_enabled`; tracing
#: additionally requires an active tracer.  Disabled by default so the
#: golden-value suite and cold-run benchmarks see zero overhead.
_enabled: bool = False


def set_enabled(enabled: bool) -> bool:
    """Flip the master instrumentation switch; returns the previous state."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


def is_enabled() -> bool:
    """Whether observability instrumentation is currently on."""
    return _enabled


@dataclass
class Span:
    """One timed region of the trace tree.

    Attributes:
        name: Dotted span name (see DESIGN.md Sec. 8 for the taxonomy).
        start: Wall-clock start, seconds since the epoch (``time.time``) —
            comparable across processes on one machine.
        duration: Elapsed seconds (``time.perf_counter`` delta).
        attrs: Free-form attributes (stage names, hit/miss, counts).
        children: Nested spans, in start order.
        worker: Identity label of the process that recorded the span
            (set on attached worker roots; ``None`` for local spans).
    """

    name: str
    start: float
    duration: float = 0.0
    attrs: dict[str, Any] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    worker: str | None = None

    @property
    def self_time(self) -> float:
        """Seconds spent in this span excluding its children."""
        return max(0.0, self.duration - sum(c.duration for c in self.children))


class _NullSpan:
    """Shared falsy no-op handle returned when tracing is inactive."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        """Discard attributes (no active trace)."""

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "NULL_SPAN"


#: The module-wide no-op span handle.
NULL_SPAN = _NullSpan()


class _OpenSpan:
    """Live recording handle for one span (context manager)."""

    __slots__ = ("_tracer", "span", "_t0")

    def __init__(self, tracer: "Tracer", span_: Span) -> None:
        self._tracer = tracer
        self.span = span_
        self._t0 = 0.0

    def __enter__(self) -> "_OpenSpan":
        self._tracer._push(self.span)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self.span.duration = time.perf_counter() - self._t0
        self._tracer._pop(self.span)
        return False

    def set(self, **attrs: Any) -> None:
        """Attach attributes to the recording span."""
        self.span.attrs.update(attrs)

    def __bool__(self) -> bool:
        return True


class Tracer:
    """Records one trace: a forest of root spans plus an open-span stack.

    A tracer is context-local state, not engine state: activate one with
    :func:`trace` (or :meth:`activate`), run any amount of instrumented
    code — including engine maps that fan out to pool workers — and read
    the merged forest from :attr:`roots`.
    """

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    def span(self, name: str, **attrs: Any) -> _OpenSpan:
        """A context-manager handle recording one nested span."""
        span_ = Span(name=name, start=time.time(), attrs=attrs)
        return _OpenSpan(self, span_)

    def _push(self, span_: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span_)
        else:
            self.roots.append(span_)
        self._stack.append(span_)

    def _pop(self, span_: Span) -> None:
        if self._stack and self._stack[-1] is span_:
            self._stack.pop()

    def attach(self, spans: Iterable[Span], worker: str | None = None) -> None:
        """Merge foreign span trees (e.g. shipped from a pool worker).

        Roots nest under the currently open span (or become trace roots),
        and carry ``worker`` so exporters can lane them per process.
        """
        parent = self._stack[-1].children if self._stack else self.roots
        for root in spans:
            if worker is not None and root.worker is None:
                root.worker = worker
            parent.append(root)

    def iter_spans(self) -> Iterator[Span]:
        """Depth-first iteration over every span in the trace."""
        return walk_spans(self.roots)

    def activate(self):
        """Make this tracer the context-local active one; returns a token
        for :meth:`deactivate`."""
        return _active.set(self)

    def deactivate(self, token) -> None:
        """Restore the previously active tracer."""
        _active.reset(token)


_active: ContextVar[Tracer | None] = ContextVar("repro_obs_tracer",
                                                default=None)


def current_tracer() -> Tracer | None:
    """The context-local active tracer, or ``None``."""
    return _active.get()


def span(name: str, **attrs: Any):
    """A span handle on the active tracer, or :data:`NULL_SPAN`.

    The single instrumentation entry point: always safe to call, returns
    a context manager either way.
    """
    tracer = _active.get()
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attrs)


@contextmanager
def trace() -> Iterator[Tracer]:
    """Run a block with instrumentation enabled and a fresh active tracer.

    Restores both the master switch and the previously active tracer on
    exit, so nested/overlapping uses compose.
    """
    tracer = Tracer()
    previous = set_enabled(True)
    token = tracer.activate()
    try:
        yield tracer
    finally:
        tracer.deactivate(token)
        set_enabled(previous)


def walk_spans(spans: Iterable[Span]) -> Iterator[Span]:
    """Depth-first pre-order walk over span forests."""
    stack = list(spans)
    stack.reverse()
    while stack:
        span_ = stack.pop()
        yield span_
        stack.extend(reversed(span_.children))


@dataclass(frozen=True)
class SpanSummary:
    """Aggregate of every span sharing one name.

    Attributes:
        name: Span name.
        count: Occurrences in the trace.
        total: Summed durations, seconds (double-counts nested repeats
            of the *same* name only if a span nests under itself).
        self_time: Summed durations excluding child spans, seconds —
            the "where time actually goes" column.
    """

    name: str
    count: int
    total: float
    self_time: float

    @property
    def mean(self) -> float:
        """Average duration per occurrence, seconds."""
        return self.total / self.count if self.count else 0.0


def summarize_spans(spans: Iterable[Span],
                    limit: int | None = None) -> tuple[SpanSummary, ...]:
    """Per-name aggregates over a span forest, by total time descending.

    This is the table behind ``RunReport.top_spans()`` and the CLI's
    ``--profile`` breakdown.
    """
    counts: dict[str, int] = {}
    totals: dict[str, float] = {}
    selfs: dict[str, float] = {}
    for span_ in walk_spans(spans):
        counts[span_.name] = counts.get(span_.name, 0) + 1
        totals[span_.name] = totals.get(span_.name, 0.0) + span_.duration
        selfs[span_.name] = selfs.get(span_.name, 0.0) + span_.self_time
    summaries = sorted(
        (SpanSummary(name=name, count=counts[name], total=totals[name],
                     self_time=selfs[name])
         for name in counts),
        key=lambda s: (-s.total, s.name))
    if limit is not None:
        summaries = summaries[:limit]
    return tuple(summaries)
