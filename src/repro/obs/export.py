"""Exporters: Chrome-trace JSON, flat CSV, Prometheus text.

* :func:`chrome_trace` — the ``chrome://tracing`` / Perfetto JSON object
  format: one complete (``"ph": "X"``) event per span, lanes (``tid``)
  assigned per worker label so a parallel sweep reads as one merged
  timeline.  :func:`validate_chrome_trace` checks the schema (the CI
  trace-smoke step runs it on real CLI output).
* :func:`spans_csv` — one row per span (depth-first), for spreadsheets
  and ad-hoc grepping.
* :func:`prometheus_text` — the Prometheus exposition format for a
  :class:`~repro.obs.metrics.MetricsRegistry` snapshot.
"""

from __future__ import annotations

import csv
import io
import json
import math
import os
from typing import Any, Iterable, Sequence

from repro.obs.metrics import MetricSample, MetricsRegistry
from repro.obs.trace import Span

__all__ = [
    "chrome_trace",
    "prometheus_text",
    "spans_csv",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_prometheus",
    "write_spans_csv",
]

#: Process id used for every event (one logical process per trace).
_TRACE_PID = 1

#: The main (non-worker) lane.
_MAIN_LANE = "main"


def _lane_of(span: Span, inherited: str) -> str:
    return span.worker if span.worker is not None else inherited


def _collect_events(span: Span, lane: str, origin: float,
                    lanes: dict[str, int],
                    events: list[dict[str, Any]]) -> None:
    lane = _lane_of(span, lane)
    tid = lanes.setdefault(lane, len(lanes) + 1)
    events.append({
        "name": span.name,
        "ph": "X",
        "ts": max(0.0, (span.start - origin) * 1e6),
        "dur": span.duration * 1e6,
        "pid": _TRACE_PID,
        "tid": tid,
        "cat": span.name.split(".", 1)[0],
        "args": {key: _jsonable(value) for key, value in span.attrs.items()},
    })
    for child in span.children:
        _collect_events(child, lane, origin, lanes, events)


def _jsonable(value: Any) -> Any:
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


def chrome_trace(spans: Sequence[Span]) -> dict[str, Any]:
    """Lower a span forest to the Chrome trace-event JSON object format.

    Every span becomes one complete event; worker-labelled subtrees get
    their own ``tid`` lane (named via ``thread_name`` metadata events) so
    ``--jobs N`` runs render as N+1 parallel tracks.
    """
    origin = min((span.start for span in spans), default=0.0)
    lanes: dict[str, int] = {_MAIN_LANE: 1}
    events: list[dict[str, Any]] = []
    for span in spans:
        _collect_events(span, _MAIN_LANE, origin, lanes, events)
    metadata = [
        {"name": "thread_name", "ph": "M", "pid": _TRACE_PID, "tid": tid,
         "args": {"name": lane}}
        for lane, tid in sorted(lanes.items(), key=lambda item: item[1])
    ]
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs"},
    }


def write_chrome_trace(path: str | os.PathLike, spans: Sequence[Span]) -> None:
    """Serialize :func:`chrome_trace` to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(spans), handle, indent=1)


def validate_chrome_trace(data: Any) -> list[str]:
    """Schema errors in a Chrome-trace object (empty list = valid).

    Checks the invariants the trace viewers rely on: a ``traceEvents``
    list whose members carry ``name``/``ph``/``pid``/``tid``, complete
    (``X``) events with non-negative ``ts``/``dur``, and metadata events
    with an ``args`` dict.
    """
    errors: list[str] = []
    if not isinstance(data, dict):
        return [f"top level must be an object, got {type(data).__name__}"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    if not events:
        errors.append("traceEvents is empty")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where} is not an object")
            continue
        if not isinstance(event.get("name"), str) or not event.get("name"):
            errors.append(f"{where} has no name")
        phase = event.get("ph")
        if phase not in ("X", "M", "B", "E", "i", "C"):
            errors.append(f"{where} has unknown phase {phase!r}")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                errors.append(f"{where}.{key} must be an int")
        if phase == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    errors.append(f"{where}.{key} must be a number >= 0")
        if phase == "M" and not isinstance(event.get("args"), dict):
            errors.append(f"{where}.args must be an object")
    return errors


def spans_csv(spans: Sequence[Span]) -> str:
    """One CSV row per span: depth-first, with flattened attributes."""
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(["name", "depth", "worker", "start_s", "duration_s",
                     "self_s", "attrs"])

    def visit(span: Span, depth: int, worker: str) -> None:
        worker = span.worker if span.worker is not None else worker
        attrs = ";".join(f"{key}={value}"
                         for key, value in sorted(span.attrs.items()))
        writer.writerow([span.name, depth, worker,
                         f"{span.start:.6f}", f"{span.duration:.6f}",
                         f"{span.self_time:.6f}", attrs])
        for child in span.children:
            visit(child, depth + 1, worker)

    for span in spans:
        visit(span, 0, _MAIN_LANE)
    return out.getvalue()


def write_spans_csv(path: str | os.PathLike, spans: Sequence[Span]) -> None:
    """Write :func:`spans_csv` to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(spans_csv(spans))


def _prom_labels(labels: Iterable[tuple[str, str]]) -> str:
    pairs = [f'{key}="{value}"' for key, value in labels]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _prom_number(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    return repr(value) if isinstance(value, float) else str(value)


def prometheus_text(source: MetricsRegistry | Sequence[MetricSample]) -> str:
    """The Prometheus text exposition of a registry (or its snapshot)."""
    samples = (source.snapshot() if isinstance(source, MetricsRegistry)
               else tuple(source))
    lines: list[str] = []
    typed: set[str] = set()
    for sample in samples:
        if sample.name not in typed:
            lines.append(f"# TYPE {sample.name} {sample.kind}")
            typed.add(sample.name)
        labels = _prom_labels(sample.labels)
        if sample.kind in ("counter", "gauge"):
            lines.append(f"{sample.name}{labels} "
                         f"{_prom_number(sample.value)}")
            continue
        for bound, cumulative in sample.buckets:
            bucket_labels = _prom_labels(
                (*sample.labels, ("le", _prom_number(bound))))
            lines.append(f"{sample.name}_bucket{bucket_labels} {cumulative}")
        lines.append(f"{sample.name}_sum{labels} "
                     f"{_prom_number(sample.value)}")
        lines.append(f"{sample.name}_count{labels} {sample.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(path: str | os.PathLike,
                     source: MetricsRegistry | Sequence[MetricSample]) -> None:
    """Write :func:`prometheus_text` to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(prometheus_text(source))
