"""Transformer-encoder workloads (weight-bound FC chains).

The paper's evaluation is CNN-centric, where weight-stationary arrays are
compute-bound.  Transformer blocks are the opposite regime the framework's
Obs. 5 reasons about: at token-batch 1 every projection/FFN layer reads
each weight exactly once, making the workload memory-(weight-)bound; with
more tokens batched per slab pass the reuse grows and the workload crosses
into the compute-bound regime.

Each encoder layer contributes its four attention projections
(Q, K, V, output; all d_model x d_model) and the two FFN matrices
(d_model x d_ff and back), modelled as FC layers.  The attention
score/value matmuls (QK^T, AV) carry no weights and are token-count
dependent; they are intentionally out of scope for the weight-stationary
accelerator model (documented limitation).
"""

from __future__ import annotations

from repro.errors import require
from repro.workloads.layers import FCLayer, Layer
from repro.workloads.models import Network


def transformer_encoder(
    layers: int = 4,
    d_model: int = 512,
    d_ff: int = 2048,
    name: str | None = None,
) -> Network:
    """An encoder stack of ``layers`` blocks as a weight-bound FC chain."""
    require(layers >= 1, "need at least one encoder layer")
    require(d_model >= 1 and d_ff >= 1, "dimensions must be >= 1")
    network_layers: list[Layer] = []
    for index in range(layers):
        prefix = f"L{index}"
        for proj in ("Q", "K", "V", "O"):
            network_layers.append(FCLayer(
                f"{prefix}.{proj}", in_features=d_model,
                out_features=d_model))
        network_layers.append(FCLayer(
            f"{prefix}.FFN1", in_features=d_model, out_features=d_ff))
        network_layers.append(FCLayer(
            f"{prefix}.FFN2", in_features=d_ff, out_features=d_model))
    built = Network(name=name or f"encoder{layers}_{d_model}",
                    layers=tuple(network_layers))
    return built


def tiny_encoder() -> Network:
    """A 4-layer, 512-wide encoder (~12.6 M parameters; fits 16 MB)."""
    return transformer_encoder(layers=4, d_model=512, d_ff=2048,
                               name="encoder_tiny")


def base_encoder() -> Network:
    """A 12-layer, 768-wide encoder (~85 M parameters; BERT-base-class)."""
    return transformer_encoder(layers=12, d_model=768, d_ff=3072,
                               name="encoder_base")
