"""Workload partitioning across parallel computing sub-systems.

The analytical framework (Sec. III-A) bounds the usable parallelism of a
workload by N#, the maximum number of parallel partitions.  For the
weight-stationary systolic accelerator of the case study, a layer partitions
along its *output channels*: each computing sub-system (CS) owns a disjoint
set of K-tiles (tiles of ``array_columns`` output channels), keeps those
weights stationary, and receives the full input feature map.  A layer with
``ceil(K / array_columns)`` tiles therefore admits at most that many
partitions — this is why the paper's Table I shows ~3.7x speedup for the
64-channel ResNet-18 stage-1 layers (only 4 of the 8 CSs can be used) but
~7.4-7.9x for the wider later stages.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import require
from repro.workloads.layers import Layer, LayerKind


def k_tiles(layer: Layer, array_columns: int) -> int:
    """Number of output-channel tiles of width ``array_columns``.

    Grouped convolutions tile per group (output channels from different
    groups read different inputs, so they cannot share a tile).
    """
    require(array_columns >= 1, "array_columns must be >= 1")
    groups = layer.channel_groups
    per_group = max(1, math.ceil(layer.out_channels / groups / array_columns))
    return groups * per_group


def max_parallel_partitions(layer: Layer, array_columns: int) -> int:
    """The paper's N# for one layer on a K-partitioned systolic accelerator."""
    if layer.kind == LayerKind.POOL:
        # Pooling has no weights; it partitions along channels directly.
        return max(1, math.ceil(layer.out_channels / array_columns))
    return k_tiles(layer, array_columns)


@dataclass(frozen=True)
class LayerPartition:
    """Assignment of one layer across parallel CSs.

    Attributes:
        layer: The partitioned layer.
        available_cs: Parallel CSs available in the design (the paper's N).
        used_cs: CSs actually used, min(N, N#) (the paper's N_max).
        tiles_total: Total K-tiles in the layer.
        tiles_per_cs: K-tiles the busiest CS must process.
    """

    layer: Layer
    available_cs: int
    used_cs: int
    tiles_total: int
    tiles_per_cs: int

    @property
    def idle_cs(self) -> int:
        """CSs left idle for this layer (they still burn idle energy, Eq. 7)."""
        return self.available_cs - self.used_cs

    @property
    def balance(self) -> float:
        """Load balance in (0, 1]: 1 when tiles divide evenly across CSs."""
        ideal = self.tiles_total / self.used_cs
        return ideal / self.tiles_per_cs


def partition_plan(layer: Layer, available_cs: int, array_columns: int) -> LayerPartition:
    """Partition ``layer`` across ``available_cs`` parallel CSs.

    Uses the K-tile scheme described in the module docstring; the busiest CS
    receives ``ceil(tiles / used_cs)`` tiles, which sets the layer latency.
    """
    require(available_cs >= 1, "need at least one CS")
    tiles = max_parallel_partitions(layer, array_columns)
    used = min(available_cs, tiles)
    per_cs = math.ceil(tiles / used)
    return LayerPartition(
        layer=layer,
        available_cs=available_cs,
        used_cs=used,
        tiles_total=tiles,
        tiles_per_cs=per_cs,
    )
