"""DNN layer shape descriptions.

Layers carry exactly the quantities the performance models need: MAC counts
(the paper's F0), weight/activation footprints (the paper's D0), and the
spatial dimensions that drive systolic-array tiling (K, C, OX, OY in the
paper's Table II notation: K = output channels, C = input channels,
OX/OY = output width/height).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.errors import require


class LayerKind(enum.Enum):
    """Kind of a DNN layer."""

    CONV = "conv"
    FC = "fc"
    POOL = "pool"


@dataclass(frozen=True)
class ConvLayer:
    """A 2-D convolution layer.

    Attributes:
        name: Layer name (paper Table I naming, e.g. ``"L2.0 CONV1"``).
        in_channels: Input channels C.
        out_channels: Output channels K.
        kernel: Square kernel size R = S.
        stride: Stride.
        in_size: Square input feature-map size IX = IY.
        padding: Zero padding on each side.
        groups: Channel groups (1 = dense conv; groups == C = depthwise).
    """

    name: str
    in_channels: int
    out_channels: int
    kernel: int
    stride: int
    in_size: int
    padding: int = 0
    groups: int = 1

    def __post_init__(self) -> None:
        require(self.in_channels >= 1, "in_channels must be >= 1")
        require(self.out_channels >= 1, "out_channels must be >= 1")
        require(self.kernel >= 1, "kernel must be >= 1")
        require(self.stride >= 1, "stride must be >= 1")
        require(self.in_size >= self.kernel - self.padding,
                f"{self.name}: input smaller than kernel")
        require(self.padding >= 0, "padding must be non-negative")
        require(self.groups >= 1, "groups must be >= 1")
        require(self.in_channels % self.groups == 0,
                f"{self.name}: groups must divide input channels")
        require(self.out_channels % self.groups == 0,
                f"{self.name}: groups must divide output channels")

    @property
    def kind(self) -> LayerKind:
        return LayerKind.CONV

    @property
    def channel_groups(self) -> int:
        """Channel group count (1 for dense layers)."""
        return self.groups

    @property
    def group_in_channels(self) -> int:
        """Input channels per group."""
        return self.in_channels // self.groups

    @property
    def group_out_channels(self) -> int:
        """Output channels per group."""
        return self.out_channels // self.groups

    @property
    def out_size(self) -> int:
        """Output feature-map size OX = OY."""
        return (self.in_size + 2 * self.padding - self.kernel) // self.stride + 1

    @property
    def weights(self) -> int:
        """Weight (parameter) count."""
        return (self.out_channels * self.group_in_channels
                * self.kernel * self.kernel)

    @property
    def macs(self) -> int:
        """Multiply-accumulate count F0 for one inference."""
        return self.weights * self.out_size * self.out_size

    @property
    def input_elements(self) -> int:
        """Input feature-map element count."""
        return self.in_channels * self.in_size * self.in_size

    @property
    def output_elements(self) -> int:
        """Output feature-map element count."""
        return self.out_channels * self.out_size * self.out_size


@dataclass(frozen=True)
class FCLayer:
    """A fully connected layer.

    Attributes:
        name: Layer name.
        in_features: Input feature count.
        out_features: Output feature count.
    """

    name: str
    in_features: int
    out_features: int

    def __post_init__(self) -> None:
        require(self.in_features >= 1, "in_features must be >= 1")
        require(self.out_features >= 1, "out_features must be >= 1")

    @property
    def kind(self) -> LayerKind:
        return LayerKind.FC

    @property
    def channel_groups(self) -> int:
        """FC layers are dense (one group)."""
        return 1

    @property
    def in_channels(self) -> int:
        """FC viewed as 1x1 conv: C = in_features."""
        return self.in_features

    @property
    def out_channels(self) -> int:
        """FC viewed as 1x1 conv: K = out_features."""
        return self.out_features

    @property
    def kernel(self) -> int:
        return 1

    @property
    def stride(self) -> int:
        return 1

    @property
    def out_size(self) -> int:
        """FC output has a single spatial position."""
        return 1

    @property
    def weights(self) -> int:
        return self.in_features * self.out_features

    @property
    def macs(self) -> int:
        return self.weights

    @property
    def input_elements(self) -> int:
        return self.in_features

    @property
    def output_elements(self) -> int:
        return self.out_features


@dataclass(frozen=True)
class PoolLayer:
    """A pooling layer (no weights; contributes data movement only).

    Attributes:
        name: Layer name.
        channels: Channel count.
        kernel: Pooling window size.
        stride: Stride.
        in_size: Square input feature-map size.
        padding: Zero padding on each side.
    """

    name: str
    channels: int
    kernel: int
    stride: int
    in_size: int
    padding: int = 0

    def __post_init__(self) -> None:
        require(self.channels >= 1, "channels must be >= 1")
        require(self.kernel >= 1, "kernel must be >= 1")
        require(self.stride >= 1, "stride must be >= 1")
        require(self.padding >= 0, "padding must be non-negative")

    @property
    def kind(self) -> LayerKind:
        return LayerKind.POOL

    @property
    def channel_groups(self) -> int:
        """Pooling operates per channel; grouping is irrelevant."""
        return 1

    @property
    def in_channels(self) -> int:
        return self.channels

    @property
    def out_channels(self) -> int:
        return self.channels

    @property
    def out_size(self) -> int:
        return (self.in_size + 2 * self.padding - self.kernel) // self.stride + 1

    @property
    def weights(self) -> int:
        return 0

    @property
    def macs(self) -> int:
        """Pooling comparisons/adds counted as ops."""
        return self.channels * self.out_size * self.out_size * self.kernel * self.kernel

    @property
    def input_elements(self) -> int:
        return self.channels * self.in_size * self.in_size

    @property
    def output_elements(self) -> int:
        return self.channels * self.out_size * self.out_size


#: Union type of all layers.
Layer = ConvLayer | FCLayer | PoolLayer


def shape_key(layer: Layer) -> tuple:
    """Hashable fingerprint of a layer's *shape*, excluding its name.

    Two layers with equal shape keys are indistinguishable to every
    performance/energy model in this repository (all derived quantities —
    MACs, weights, element counts, loop nests — are functions of these
    fields), so per-layer results memoize on this key: ResNet's repeated
    residual-block shapes evaluate once per design fingerprint.
    """
    if isinstance(layer, ConvLayer):
        return ("conv", layer.in_channels, layer.out_channels, layer.kernel,
                layer.stride, layer.in_size, layer.padding, layer.groups)
    if isinstance(layer, FCLayer):
        return ("fc", layer.in_features, layer.out_features)
    if isinstance(layer, PoolLayer):
        return ("pool", layer.channels, layer.kernel, layer.stride,
                layer.in_size, layer.padding)
    raise TypeError(f"unknown layer type {type(layer).__name__}")


def weight_bits(layer: Layer, precision_bits: int = 8) -> int:
    """Weight storage of ``layer`` in bits at the given precision."""
    require(precision_bits >= 1, "precision must be >= 1 bit")
    return layer.weights * precision_bits


def arithmetic_intensity(layer: Layer, precision_bits: int = 8) -> float:
    """Operations per bit of weight traffic — the paper's Obs. 5 knob."""
    bits = weight_bits(layer, precision_bits)
    if bits == 0:
        return math.inf
    return layer.macs / bits
