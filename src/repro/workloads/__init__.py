"""DNN workload definitions used throughout the paper's evaluation.

The paper evaluates AlexNet, VGG, and ResNet-family models (Fig. 5), with a
per-layer breakdown for ResNet-18 (Table I).  This package defines layer
shapes, full-network builders, and the workload-partitioning model that
produces the paper's N# (maximum parallel partitions per layer).
"""

from repro.workloads.layers import (
    ConvLayer,
    FCLayer,
    Layer,
    LayerKind,
    PoolLayer,
    shape_key,
)
from repro.workloads.models import (
    Network,
    alexnet,
    available_networks,
    build_network,
    resnet18,
    resnet34,
    resnet50,
    resnet152,
    vgg16,
)
from repro.workloads.partition import max_parallel_partitions, partition_plan

__all__ = [
    "Layer",
    "LayerKind",
    "ConvLayer",
    "FCLayer",
    "PoolLayer",
    "shape_key",
    "Network",
    "alexnet",
    "vgg16",
    "resnet18",
    "resnet34",
    "resnet50",
    "resnet152",
    "build_network",
    "available_networks",
    "max_parallel_partitions",
    "partition_plan",
]
