"""Full-network builders for the models the paper evaluates (Fig. 5).

Networks are flat layer lists with Table-I style names (``"L2.0 CONV1"``,
``"L3.0 DS"``) so per-layer results can be compared against the paper row by
row.  Parameter counts reproduce the well-known totals the paper quotes
(ResNet-18 ~12 M, ResNet-152 ~60 M), which is what makes the Fig. 9 capacity
sweep meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import require
from repro.workloads.layers import ConvLayer, FCLayer, Layer, PoolLayer


@dataclass(frozen=True)
class Network:
    """An ordered DNN workload.

    Attributes:
        name: Network name, e.g. ``"resnet18"``.
        layers: Layers in execution order.
    """

    name: str
    layers: tuple[Layer, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        require(len(self.layers) > 0, "a network needs at least one layer")
        names = [layer.name for layer in self.layers]
        require(len(names) == len(set(names)), f"{self.name}: duplicate layer names")

    @property
    def total_macs(self) -> int:
        """Total MACs (the paper's F0) for one inference."""
        return sum(layer.macs for layer in self.layers)

    @property
    def total_weights(self) -> int:
        """Total parameter count."""
        return sum(layer.weights for layer in self.layers)

    def weight_bits(self, precision_bits: int = 8) -> int:
        """Total weight storage in bits."""
        return self.total_weights * precision_bits

    def weighted_layers(self) -> tuple[Layer, ...]:
        """Layers that carry weights (conv + fc)."""
        return tuple(layer for layer in self.layers if layer.weights > 0)

    def layer(self, name: str) -> Layer:
        """Look up a layer by name."""
        for candidate in self.layers:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no layer named {name!r} in {self.name!r}")


def alexnet() -> Network:
    """AlexNet (ImageNet, single-tower shapes, groups folded in)."""
    return Network(
        name="alexnet",
        layers=(
            ConvLayer("CONV1", in_channels=3, out_channels=96, kernel=11, stride=4,
                      in_size=227),
            PoolLayer("POOL1", channels=96, kernel=3, stride=2, in_size=55),
            ConvLayer("CONV2", in_channels=96, out_channels=256, kernel=5, stride=1,
                      in_size=27, padding=2),
            PoolLayer("POOL2", channels=256, kernel=3, stride=2, in_size=27),
            ConvLayer("CONV3", in_channels=256, out_channels=384, kernel=3, stride=1,
                      in_size=13, padding=1),
            ConvLayer("CONV4", in_channels=384, out_channels=384, kernel=3, stride=1,
                      in_size=13, padding=1),
            ConvLayer("CONV5", in_channels=384, out_channels=256, kernel=3, stride=1,
                      in_size=13, padding=1),
            PoolLayer("POOL5", channels=256, kernel=3, stride=2, in_size=13),
            FCLayer("FC6", in_features=9216, out_features=4096),
            FCLayer("FC7", in_features=4096, out_features=4096),
            FCLayer("FC8", in_features=4096, out_features=1000),
        ),
    )


def vgg16(compact_classifier: bool = False) -> Network:
    """VGG-16 (ImageNet).

    ``compact_classifier`` replaces the 124 M-parameter FC head with a
    pooled 512-wide head (conv trunk unchanged), bringing the model to
    ~28 M parameters so it fits the 64 MB on-chip RRAM of the case-study
    chip.  The full model (~138 M parameters) cannot be stored on-chip at
    8-bit precision; the compact variant is the substitution we evaluate in
    the Fig. 5 experiment (see EXPERIMENTS.md).
    """
    layers: list[Layer] = []
    size = 224
    channels = 3
    block_widths = ((64, 2), (128, 2), (256, 3), (512, 3), (512, 3))
    for block_index, (width, depth) in enumerate(block_widths, start=1):
        for conv_index in range(1, depth + 1):
            layers.append(ConvLayer(
                name=f"CONV{block_index}_{conv_index}",
                in_channels=channels, out_channels=width, kernel=3, stride=1,
                in_size=size, padding=1,
            ))
            channels = width
        layers.append(PoolLayer(f"POOL{block_index}", channels=channels, kernel=2,
                                stride=2, in_size=size))
        size //= 2
    if compact_classifier:
        layers.append(PoolLayer("GAP", channels=512, kernel=7, stride=7, in_size=7))
        layers.append(FCLayer("FC6", in_features=512, out_features=512))
        layers.append(FCLayer("FC8", in_features=512, out_features=1000))
        return Network(name="vgg16c", layers=tuple(layers))
    layers.append(FCLayer("FC6", in_features=512 * 7 * 7, out_features=4096))
    layers.append(FCLayer("FC7", in_features=4096, out_features=4096))
    layers.append(FCLayer("FC8", in_features=4096, out_features=1000))
    return Network(name="vgg16", layers=tuple(layers))


_RESNET_STAGE_SIZES = (56, 28, 14, 7)
_RESNET_STAGE_WIDTHS = (64, 128, 256, 512)


def _resnet_basic(name: str, blocks_per_stage: tuple[int, int, int, int]) -> Network:
    """ResNet with basic (two 3x3 conv) blocks — ResNet-18/34."""
    layers: list[Layer] = [
        ConvLayer("CONV1", in_channels=3, out_channels=64, kernel=7, stride=2,
                  in_size=224, padding=3),
        PoolLayer("POOL", channels=64, kernel=3, stride=2, in_size=112, padding=1),
    ]
    in_channels = 64
    for stage, (width, blocks, size) in enumerate(
            zip(_RESNET_STAGE_WIDTHS, blocks_per_stage, _RESNET_STAGE_SIZES), start=1):
        for block in range(blocks):
            first = block == 0
            stride = 2 if (first and stage > 1) else 1
            in_size = size * stride
            if first and stage > 1:
                layers.append(ConvLayer(
                    name=f"L{stage}.0 DS",
                    in_channels=in_channels, out_channels=width, kernel=1,
                    stride=2, in_size=in_size,
                ))
            layers.append(ConvLayer(
                name=f"L{stage}.{block} CONV1",
                in_channels=in_channels, out_channels=width, kernel=3,
                stride=stride, in_size=in_size, padding=1,
            ))
            layers.append(ConvLayer(
                name=f"L{stage}.{block} CONV2",
                in_channels=width, out_channels=width, kernel=3, stride=1,
                in_size=size, padding=1,
            ))
            in_channels = width
    layers.append(FCLayer("FC", in_features=512, out_features=1000))
    return Network(name=name, layers=tuple(layers))


def _resnet_bottleneck(name: str, blocks_per_stage: tuple[int, int, int, int]) -> Network:
    """ResNet with bottleneck (1x1 / 3x3 / 1x1) blocks — ResNet-50/152."""
    layers: list[Layer] = [
        ConvLayer("CONV1", in_channels=3, out_channels=64, kernel=7, stride=2,
                  in_size=224, padding=3),
        PoolLayer("POOL", channels=64, kernel=3, stride=2, in_size=112, padding=1),
    ]
    expansion = 4
    in_channels = 64
    for stage, (width, blocks, size) in enumerate(
            zip(_RESNET_STAGE_WIDTHS, blocks_per_stage, _RESNET_STAGE_SIZES), start=1):
        out_channels = width * expansion
        for block in range(blocks):
            first = block == 0
            stride = 2 if (first and stage > 1) else 1
            in_size = size * stride
            if first:
                layers.append(ConvLayer(
                    name=f"L{stage}.0 DS",
                    in_channels=in_channels, out_channels=out_channels, kernel=1,
                    stride=stride, in_size=in_size,
                ))
            layers.append(ConvLayer(
                name=f"L{stage}.{block} CONV1",
                in_channels=in_channels, out_channels=width, kernel=1,
                stride=1, in_size=in_size,
            ))
            layers.append(ConvLayer(
                name=f"L{stage}.{block} CONV2",
                in_channels=width, out_channels=width, kernel=3, stride=stride,
                in_size=in_size, padding=1,
            ))
            layers.append(ConvLayer(
                name=f"L{stage}.{block} CONV3",
                in_channels=width, out_channels=out_channels, kernel=1, stride=1,
                in_size=size,
            ))
            in_channels = out_channels
    layers.append(FCLayer("FC", in_features=512 * expansion, out_features=1000))
    return Network(name=name, layers=tuple(layers))


def resnet18() -> Network:
    """ResNet-18 (~11.7 M parameters; the paper's Table I / Fig. 9 workload)."""
    return _resnet_basic("resnet18", (2, 2, 2, 2))


def resnet34() -> Network:
    """ResNet-34 (~21.8 M parameters)."""
    return _resnet_basic("resnet34", (3, 4, 6, 3))


def resnet50() -> Network:
    """ResNet-50 (~25.6 M parameters)."""
    return _resnet_bottleneck("resnet50", (3, 4, 6, 3))


def resnet152() -> Network:
    """ResNet-152 (~60 M parameters; the paper's 64 MB sizing workload)."""
    return _resnet_bottleneck("resnet152", (3, 8, 36, 3))


def vgg16_compact() -> Network:
    """VGG-16 with the compact classifier head (fits 64 MB RRAM)."""
    return vgg16(compact_classifier=True)


def mobilenet_v1() -> Network:
    """MobileNetV1 (ImageNet, ~4.2 M parameters).

    Thirteen depthwise-separable blocks: a depthwise 3x3 (groups = C)
    followed by a pointwise 1x1.  Depthwise layers occupy one array row
    and one column per group on a weight-stationary systolic array — the
    known-hostile workload class for this architecture, included to probe
    the M3D benefit where the substrate is least favourable.
    """
    layers: list[Layer] = [
        ConvLayer("CONV1", in_channels=3, out_channels=32, kernel=3,
                  stride=2, in_size=224, padding=1),
    ]
    # (input channels, output channels, stride of the depthwise stage)
    blocks = ((32, 64, 1), (64, 128, 2), (128, 128, 1), (128, 256, 2),
              (256, 256, 1), (256, 512, 2), (512, 512, 1), (512, 512, 1),
              (512, 512, 1), (512, 512, 1), (512, 512, 1), (512, 1024, 2),
              (1024, 1024, 1))
    size = 112
    for index, (in_ch, out_ch, stride) in enumerate(blocks, start=1):
        layers.append(ConvLayer(
            name=f"B{index}.DW", in_channels=in_ch, out_channels=in_ch,
            kernel=3, stride=stride, in_size=size, padding=1,
            groups=in_ch))
        size = size // stride
        layers.append(ConvLayer(
            name=f"B{index}.PW", in_channels=in_ch, out_channels=out_ch,
            kernel=1, stride=1, in_size=size))
    layers.append(PoolLayer("GAP", channels=1024, kernel=7, stride=7,
                            in_size=7))
    layers.append(FCLayer("FC", in_features=1024, out_features=1000))
    return Network(name="mobilenet_v1", layers=tuple(layers))


_BUILDERS = {
    "alexnet": alexnet,
    "vgg16": vgg16,
    "vgg16c": vgg16_compact,
    "mobilenet_v1": mobilenet_v1,
    "resnet18": resnet18,
    "resnet34": resnet34,
    "resnet50": resnet50,
    "resnet152": resnet152,
}


def available_networks() -> tuple[str, ...]:
    """Names accepted by :func:`build_network`."""
    return tuple(sorted(_BUILDERS))


def build_network(name: str) -> Network:
    """Build a network by name (see :func:`available_networks`)."""
    if name not in _BUILDERS:
        raise KeyError(f"unknown network {name!r}; choose from {available_networks()}")
    return _BUILDERS[name]()
