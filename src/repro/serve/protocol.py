"""The frozen ``/v1`` wire schema shared by server and clients.

Everything that crosses the HTTP boundary is defined here, in one place,
so the server (:mod:`repro.serve.app`), the bundled client
(:mod:`repro.serve.client`), the load generator and the tests all speak
the same contract — and so the contract is greppable and diffable as a
unit.  The schema is **versioned and additive**: ``/v1/`` responses may
grow new fields, but an existing field never changes name, type, or
meaning (DESIGN.md Sec. 12).

Request bodies
--------------
* ``POST /v1/eval`` — a :class:`~repro.spec.design.DesignSpec` JSON
  object, optionally wrapped as ``{"spec": {...}}``.
* ``POST /v1/sweep`` — a :class:`~repro.spec.sweep.SweepSpec` JSON
  object (``base``/``grid``/``zip``/``points``), a bare design spec
  (one-point sweep), or a wrapper ``{"sweep": {...}, "options": {...}}``
  with ``options`` drawn from :data:`SWEEP_OPTIONS`.

Response bodies
---------------
* ``/v1/eval`` — ``{"api", "result", "cached", "coalesced"}`` where
  ``result`` is :func:`evaluation_wire`.
* ``/v1/sweep`` — an ``application/x-ndjson`` stream: a ``start`` event,
  one ``evaluation`` event per surviving point (in sweep order), one
  ``chunk`` event per completed chunk, and a final ``end`` summary.
* errors — the :func:`repro.errors.error_envelope` shape, always.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.errors import ConfigurationError, ReproError, error_envelope
from repro.spec.design import DesignSpec
from repro.spec.evaluate import SpecEvaluation
from repro.spec.sweep import SweepSpec

__all__ = [
    "API_VERSION",
    "SWEEP_OPTIONS",
    "evaluation_wire",
    "http_status_for",
    "parse_eval_body",
    "parse_sweep_body",
    "wire_error",
]

#: The wire-schema version every route is prefixed with.
API_VERSION = "v1"

#: Per-request sweep options accepted in the ``options`` wrapper key.
#: ``chunk_size`` bounds points per NDJSON flush, ``prune`` switches on
#: certified Pareto pruning, ``batch`` routes chunks through the
#: vectorized kernel (on by default — the whole point of serving).
SWEEP_OPTIONS = ("chunk_size", "prune", "batch")


def _loads_object(body: bytes) -> Mapping[str, Any]:
    """Parse a request body into a JSON object, with envelope-ready errors."""
    try:
        data = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ConfigurationError(f"invalid JSON body: {error}") from error
    if not isinstance(data, Mapping):
        raise ConfigurationError(
            f"request body must be a JSON object, got {type(data).__name__}")
    return data


def parse_eval_body(body: bytes) -> DesignSpec:
    """Lower a ``POST /v1/eval`` body to a validated design spec."""
    data = _loads_object(body)
    if set(data) == {"spec"}:
        data = data["spec"]
        if not isinstance(data, Mapping):
            raise ConfigurationError("'spec' must be a JSON object")
    return DesignSpec.from_jsonable(data)


def parse_sweep_body(body: bytes) -> tuple[SweepSpec, dict[str, Any]]:
    """Lower a ``POST /v1/sweep`` body to ``(sweep, options)``.

    Accepts the wrapper shape (``{"sweep": ..., "options": ...}``), a
    bare sweep object, or a bare design spec (a one-point sweep), so a
    ``curl`` of an ``examples/*.json`` file just works.
    """
    data = _loads_object(body)
    options: dict[str, Any] = {}
    if "sweep" in data:
        unknown = sorted(set(data) - {"sweep", "options"})
        if unknown:
            raise ConfigurationError(
                f"unknown key(s) in sweep request: {', '.join(unknown)}")
        raw_options = data.get("options", {})
        if not isinstance(raw_options, Mapping):
            raise ConfigurationError("'options' must be a JSON object")
        bad = sorted(set(raw_options) - set(SWEEP_OPTIONS))
        if bad:
            raise ConfigurationError(
                f"unknown sweep option(s): {', '.join(bad)}; "
                f"allowed: {', '.join(SWEEP_OPTIONS)}")
        options = dict(raw_options)
        if "chunk_size" in options:
            size = options["chunk_size"]
            if not isinstance(size, int) or isinstance(size, bool) \
                    or size < 1:
                raise ConfigurationError(
                    "sweep option 'chunk_size' must be an integer >= 1")
        for flag in ("prune", "batch"):
            if flag in options and not isinstance(options[flag], bool):
                raise ConfigurationError(
                    f"sweep option {flag!r} must be a boolean")
        data = data["sweep"]
        if not isinstance(data, Mapping):
            raise ConfigurationError("'sweep' must be a JSON object")
    if not ({"base", "grid", "zip", "points"} & set(data)):
        return SweepSpec(base=DesignSpec.from_jsonable(data)), options
    return SweepSpec.from_jsonable(data), options


def evaluation_wire(evaluation: SpecEvaluation) -> dict[str, Any]:
    """One evaluated point in wire form: plain fields, no codec markers.

    The shape mirrors :class:`~repro.spec.evaluate.SpecEvaluation` but
    lowers the spec through its canonical plain-JSON form so clients in
    any language can read it.
    """
    return {
        "spec": evaluation.spec.to_jsonable(),
        "fingerprint": evaluation.spec.fingerprint(),
        "n_cs_2d": evaluation.n_cs_2d,
        "n_cs_m3d": evaluation.n_cs_m3d,
        "footprint": evaluation.footprint,
        "speedup": evaluation.speedup,
        "energy_benefit": evaluation.energy_benefit,
        "edp_benefit": evaluation.edp_benefit,
    }


def http_status_for(error: BaseException) -> int:
    """The HTTP status an exception maps to under the ``/v1`` contract.

    Malformed JSON and non-object bodies are client syntax errors (400);
    a well-formed body that fails spec validation is a semantic error
    (422).  Any other library error is also 422 — the request was
    readable, the configuration it described was not evaluable.  The
    server guarantees spec failures never surface as 500.
    """
    if isinstance(error, ConfigurationError):
        message = str(error)
        if message.startswith(("invalid JSON body", "request body must be",
                               "'spec' must be", "'sweep' must be",
                               "'options' must be", "sweep option",
                               "unknown sweep option",
                               "unknown key(s) in sweep request")):
            return 400
        return 422
    if isinstance(error, ReproError):
        return 422
    return 500


def wire_error(error: BaseException, path: str | None = None) -> bytes:
    """The error envelope as an encoded JSON body."""
    return (json.dumps(error_envelope(error, path=path)) + "\n") \
        .encode("utf-8")
