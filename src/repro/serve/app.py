"""Evaluation-as-a-service: the asyncio application behind ``repro serve``.

One process, one warm :class:`~repro.runtime.engine.EvaluationEngine`,
many clients.  The server's job is to make N concurrent clients cost as
close to one evaluation as their requests allow:

* **coalescing** — identical specs in flight at the same time share one
  evaluation.  The first arrival becomes the *owner* and spawns the
  engine call; every later arrival of the same spec fingerprint
  (:meth:`~repro.spec.design.DesignSpec.fingerprint`) awaits the owner's
  task.  This is the serving-time analogue of the engine's batch dedup:
  the cache collapses duplicates *across* time, coalescing collapses
  them *within* the in-flight window, before any result exists to cache.
* **batching** — ``/v1/sweep`` rides the streaming executor
  (:func:`~repro.sweep.stream.stream_sweep`) with ``batch=True`` by
  default, so a sweep's chunks evaluate through the vectorized kernel.
* **backpressure** — admitted work is bounded by ``max_pending``; beyond
  it the server answers 429 with ``Retry-After`` instead of queueing
  without limit.  Coalesced followers never consume a slot — duplicates
  are free by construction.
* **quotas** — optional per-client token buckets (keyed by the
  ``x-client-id`` header, falling back to the peer address) bound any
  single client's admission rate, again via 429 + ``Retry-After``.
* **fault tolerance** — a circuit breaker trips after consecutive
  unexpected engine failures (503 ``circuit_open`` with a half-open
  probe after cooldown), optional per-request deadlines answer 504
  ``deadline_exceeded`` (streams get an in-band error event), and
  SIGTERM drains in-flight work — open NDJSON streams included —
  before the process exits.

Evaluations are synchronous CPU work, so they run on a small thread pool
behind an engine lock: the event loop stays free to accept, coalesce and
reject, while engine internals (cache, counters, memo tables) only ever
run single-threaded.  Sweeps hold the lock per *chunk*, so a long sweep
interleaves fairly with point evaluations.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import signal
import threading
import time
from dataclasses import dataclass
from typing import Any, Awaitable, Callable, Mapping

from repro.errors import ReproError, envelope, error_envelope
from repro.obs.export import prometheus_text
from repro.obs.metrics import MetricsRegistry, registry as _metrics_registry
from repro.runtime.engine import EvaluationEngine, default_engine
from repro.runtime.keys import call_key
from repro.serve.http import (
    ProtocolError,
    Request,
    Response,
    StreamingBody,
    read_request,
    write_response,
)
from repro.serve.protocol import (
    API_VERSION,
    evaluation_wire,
    http_status_for,
    parse_eval_body,
    parse_sweep_body,
)
from repro.spec.design import DesignSpec
from repro.spec.evaluate import SpecEvaluation, evaluate_spec
from repro.sweep.stream import DEFAULT_CHUNK_SIZE, stream_sweep

__all__ = ["ReproServer", "ServerConfig", "serve"]

#: Default TCP port: "DB48" — the paper is DATE 2023, the repo is repro.
DEFAULT_PORT = 8348


@dataclass(frozen=True)
class ServerConfig:
    """Tunable knobs of one :class:`ReproServer`.

    Attributes:
        host: Bind address.
        port: Bind port (0 = ephemeral, for tests and benchmarks).
        max_pending: Admitted-but-unfinished evaluation/sweep budget;
            beyond it new work is rejected with 429 ``overloaded``.
            Coalesced duplicates do not count against it.
        quota_rate: Per-client token-bucket refill rate in requests per
            second; 0 disables quotas.
        quota_burst: Per-client bucket capacity (burst size).
        eval_workers: Threads evaluating engine work.  The engine lock
            serializes engine access regardless; extra workers only keep
            a sweep stream and point evaluations interleaving.
        chunk_size: Default points per sweep chunk (and NDJSON flush).
        batch: Evaluate sweep chunks through the vectorized batch
            kernel by default (per-request ``options.batch`` overrides).
        max_body_bytes: Request-body cap (413 beyond it).
        request_timeout: Per-request deadline in seconds; 0 disables.
            Non-streaming requests that overrun answer 504
            ``deadline_exceeded``; a sweep stream applies it to each
            inter-chunk gap and ends the stream with an error event.
        drain_seconds: How long a SIGTERM-triggered drain waits for
            in-flight requests (including open NDJSON streams) to
            finish before the process exits anyway.
        breaker_threshold: Consecutive *unexpected* engine failures
            (``ReproError`` never counts — that blames the request)
            that trip the circuit breaker; 0 disables it.  While open,
            POST work answers 503 ``circuit_open`` + ``Retry-After``.
        breaker_reset_seconds: Cooldown before an open breaker admits
            one half-open probe whose outcome closes or re-opens it.
    """

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    max_pending: int = 1024
    quota_rate: float = 0.0
    quota_burst: int = 64
    eval_workers: int = 2
    chunk_size: int = DEFAULT_CHUNK_SIZE
    batch: bool = True
    max_body_bytes: int = 8 * 1024 * 1024
    request_timeout: float = 0.0
    drain_seconds: float = 10.0
    breaker_threshold: int = 5
    breaker_reset_seconds: float = 30.0


class _TokenBucket:
    """Classic token bucket; refills continuously at ``rate`` per second."""

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: int, now: float) -> None:
        self.rate = rate
        self.burst = float(burst)
        self.tokens = float(burst)
        self.stamp = now

    def acquire(self, now: float) -> float:
        """0.0 when a token was taken, else seconds until one refills."""
        self.tokens = min(self.burst,
                          self.tokens + (now - self.stamp) * self.rate)
        self.stamp = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate


class _CircuitBreaker:
    """Trips open after ``threshold`` consecutive engine failures.

    Only unexpected exceptions count — a :class:`~repro.errors.ReproError`
    blames the request, not the engine.  While open, new engine work is
    refused; after ``reset_seconds`` exactly one half-open probe is
    admitted, and its outcome closes or re-opens the circuit.  All
    transitions run under a lock because sweep workers record outcomes
    from executor threads while the event loop asks for admission.
    """

    __slots__ = ("threshold", "reset_seconds", "_lock", "_failures",
                 "_opened_at", "_probing")

    def __init__(self, threshold: int, reset_seconds: float) -> None:
        self.threshold = threshold
        self.reset_seconds = reset_seconds
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: float | None = None
        self._probing = False

    @property
    def state(self) -> str:
        with self._lock:
            if self._opened_at is None:
                return "closed"
            return "half_open" if self._probing else "open"

    def allow(self, now: float) -> float:
        """0.0 when admitted, else seconds until the next probe slot."""
        if self.threshold <= 0:
            return 0.0
        with self._lock:
            if self._opened_at is None:
                return 0.0
            elapsed = now - self._opened_at
            if elapsed >= self.reset_seconds and not self._probing:
                self._probing = True        # half-open: exactly one probe
                return 0.0
            return max(self.reset_seconds - elapsed, 0.001)

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._opened_at = None
            self._probing = False

    def record_failure(self, now: float) -> bool:
        """Count one engine failure; True when this call opened the circuit."""
        if self.threshold <= 0:
            return False
        with self._lock:
            self._failures += 1
            if self._probing:               # failed probe: re-open
                self._opened_at = now
                self._probing = False
                return True
            if self._opened_at is None and self._failures >= self.threshold:
                self._opened_at = now
                return True
            return False


@dataclass
class _ServeStats:
    """Server-side counters surfaced by ``/v1/cache`` and the benchmark.

    Attributes:
        requests: Requests answered, by any status.
        coalesced: Eval requests that shared an in-flight evaluation.
        rejected_overload: Requests refused by the pending budget.
        rejected_quota: Requests refused by a client's token bucket.
        rejected_breaker: Requests refused by the open circuit breaker.
        rejected_draining: Requests refused during SIGTERM drain.
        deadline_exceeded: Requests (or stream gaps) past the deadline.
        streams_cancelled: Sweep streams cancelled by client disconnect.
        peak_pending: High-water mark of admitted concurrent work.
        peak_inflight: High-water mark of concurrently open requests
            (admitted + coalesced + reads in progress).
    """

    requests: int = 0
    coalesced: int = 0
    rejected_overload: int = 0
    rejected_quota: int = 0
    rejected_breaker: int = 0
    rejected_draining: int = 0
    deadline_exceeded: int = 0
    streams_cancelled: int = 0
    peak_pending: int = 0
    peak_inflight: int = 0

    def to_jsonable(self) -> dict[str, int]:
        return dict(vars(self))


@dataclass
class _EvalOutcome:
    """What one owned evaluation produced (shared by all coalescees)."""

    evaluation: SpecEvaluation
    cached: bool = False


_DONE = object()


class ReproServer:
    """The ``/v1`` evaluation server over one shared engine.

    Construct, then either ``await start()`` inside a running loop (tests,
    benchmarks) or call the blocking :func:`serve` helper.  The engine
    defaults to the process-wide one, so a CLI-configured cache directory
    (``repro serve --cache-dir``) is what every client shares.
    """

    def __init__(self, config: ServerConfig | None = None,
                 engine: EvaluationEngine | None = None) -> None:
        self.config = config if config is not None else ServerConfig()
        self.engine = engine if engine is not None else default_engine()
        self.stats = _ServeStats()
        self.metrics: MetricsRegistry = _metrics_registry()
        self.started = time.time()
        self._engine_lock = threading.Lock()
        self._breaker = _CircuitBreaker(self.config.breaker_threshold,
                                        self.config.breaker_reset_seconds)
        self._draining = False
        self._inflight_evals: dict[str, asyncio.Task] = {}
        self._pending = 0
        self._open_requests = 0
        self._buckets: dict[str, _TokenBucket] = {}
        self._executor: concurrent.futures.ThreadPoolExecutor | None = None
        self._server: asyncio.AbstractServer | None = None
        self._routes: dict[tuple[str, str], Callable[
            [Request], Awaitable[Response]]] = {
            ("GET", f"/{API_VERSION}/health"): self._handle_health,
            ("GET", f"/{API_VERSION}/cache"): self._handle_cache,
            ("GET", "/metrics"): self._handle_metrics,
            ("GET", f"/{API_VERSION}/metrics"): self._handle_metrics,
            ("POST", f"/{API_VERSION}/eval"): self._handle_eval,
        }

    # --- lifecycle --------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``."""
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=max(1, self.config.eval_workers),
            thread_name_prefix="repro-serve-eval")
        # A deep accept backlog: the load generator opens thousands of
        # connections in one burst, and dropped SYNs on loopback would
        # show up as 1 s retransmission spikes in the latency tail.
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port,
            backlog=4096)
        sockets = self._server.sockets or ()
        host, port = sockets[0].getsockname()[:2]
        return host, port

    async def serve_forever(self) -> None:
        """Run until cancelled (``start`` must have been awaited)."""
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def drain(self, timeout: float | None = None) -> bool:
        """Graceful shutdown: stop accepting, let in-flight work finish.

        Closes the listening socket, flips the server into draining mode
        (new POST work on surviving keep-alive connections answers 503
        ``shutting_down``), then waits up to ``timeout`` (default
        ``config.drain_seconds``) for every open request — including
        in-flight NDJSON sweep streams — to complete.  Returns ``True``
        when the server drained fully, ``False`` on timeout.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        budget = self.config.drain_seconds if timeout is None else timeout
        deadline = time.monotonic() + max(budget, 0.0)
        while self._open_requests > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        return self._open_requests == 0

    async def stop(self) -> None:
        """Stop accepting and release the worker threads."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    # --- connection handling ----------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        peer = writer.get_extra_info("peername")
        client = f"{peer[0]}:{peer[1]}" if isinstance(peer, tuple) \
            else "local"
        try:
            while True:
                request = await read_request(reader, client,
                                             self.config.max_body_bytes)
                if request is None:
                    break
                self._open_requests += 1
                self.stats.peak_inflight = max(self.stats.peak_inflight,
                                               self._open_requests)
                started = time.perf_counter()
                status = 500
                try:
                    response = await self._dispatch(request, writer)
                    if response is None:      # body was streamed
                        status = 200
                        break
                    status = response.status
                    await write_response(writer, response,
                                         request.keep_alive)
                finally:
                    self._open_requests -= 1
                    self._observe(request, status,
                                  time.perf_counter() - started)
                if not request.keep_alive or self._draining:
                    break
        except ProtocolError as error:
            await self._best_effort_error(writer, error.status, str(error))
        except (ConnectionError, asyncio.CancelledError, TimeoutError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _best_effort_error(self, writer: asyncio.StreamWriter,
                                 status: int, message: str) -> None:
        try:
            body = (json.dumps(envelope("protocol_error", message)) + "\n") \
                .encode("utf-8")
            await write_response(writer, Response(status=status, body=body),
                                 keep_alive=False)
        except (ConnectionError, OSError):
            pass

    async def _dispatch(self, request: Request,
                        writer: asyncio.StreamWriter) -> Response | None:
        """Route one request; ``None`` means the handler streamed the body."""
        self.stats.requests += 1
        is_sweep = request.method == "POST" \
            and request.path == f"/{API_VERSION}/sweep"
        route = self._routes.get((request.method, request.path))
        if route is None and not is_sweep:
            return self._route_miss(request)
        if request.method == "POST":
            denied = self._check_draining() or self._check_breaker() \
                or self._check_quota(request)
            if denied is not None:
                return denied
        try:
            if is_sweep:
                # The only route that owns the writer: it streams NDJSON.
                return await self._handle_sweep(request, writer)
            if self.config.request_timeout > 0:
                try:
                    return await asyncio.wait_for(
                        route(request), self.config.request_timeout)
                except asyncio.TimeoutError:
                    return self._deadline_response()
            return await route(request)
        except ReproError as error:
            return self._error_response(error)
        except (ConnectionError, asyncio.CancelledError):
            raise
        except Exception as error:                      # noqa: BLE001
            body = (json.dumps(envelope(
                "internal_error", f"{type(error).__name__}: {error}"))
                + "\n").encode("utf-8")
            return Response(status=500, body=body)

    def _route_miss(self, request: Request) -> Response:
        is_sweep = request.path == f"/{API_VERSION}/sweep"
        known_paths = {path for _, path in self._routes} \
            | {f"/{API_VERSION}/sweep"}
        if request.path in known_paths:
            allowed = sorted({method for method, path in self._routes
                              if path == request.path}
                             | ({"POST"} if is_sweep else set()))
            body = (json.dumps(envelope(
                "method_not_allowed",
                f"{request.method} not allowed on {request.path}; "
                f"allowed: {', '.join(allowed)}")) + "\n").encode("utf-8")
            return Response(status=405, body=body,
                            headers={"Allow": ", ".join(allowed)})
        body = (json.dumps(envelope(
            "not_found",
            f"unknown route {request.path}; this server speaks the "
            f"/{API_VERSION}/ API")) + "\n").encode("utf-8")
        return Response(status=404, body=body)

    def _error_response(self, error: BaseException) -> Response:
        status = http_status_for(error)
        body = (json.dumps(error_envelope(error)) + "\n").encode("utf-8")
        return Response(status=status, body=body)

    def _observe(self, request: Request, status: int, seconds: float) -> None:
        self.metrics.counter("repro_serve_requests_total",
                             method=request.method, path=request.path,
                             status=status).inc()
        self.metrics.histogram("repro_serve_request_seconds",
                               path=request.path).observe(seconds)
        self.metrics.gauge("repro_serve_inflight").set(self._open_requests)

    # --- admission control ------------------------------------------------

    def _check_draining(self) -> Response | None:
        if not self._draining:
            return None
        self.stats.rejected_draining += 1
        self.metrics.counter("repro_serve_rejected_total",
                             reason="draining").inc()
        body = (json.dumps(envelope(
            "shutting_down",
            "server is draining and accepts no new work")) + "\n") \
            .encode("utf-8")
        return Response(status=503, body=body,
                        headers={"Retry-After": "1"})

    def _check_breaker(self) -> Response | None:
        wait = self._breaker.allow(time.monotonic())
        if wait <= 0:
            return None
        self.stats.rejected_breaker += 1
        self.metrics.counter("repro_serve_rejected_total",
                             reason="breaker").inc()
        body = (json.dumps(envelope(
            "circuit_open",
            f"engine failing persistently "
            f"({self._breaker.threshold} consecutive failures); "
            f"circuit re-probes after cooldown")) + "\n").encode("utf-8")
        return Response(status=503, body=body,
                        headers={"Retry-After": f"{wait:.3f}"})

    def _deadline_response(self) -> Response:
        self.stats.deadline_exceeded += 1
        self.metrics.counter("repro_serve_deadline_total").inc()
        body = (json.dumps(envelope(
            "deadline_exceeded",
            f"request exceeded the {self.config.request_timeout:g} s "
            f"deadline")) + "\n").encode("utf-8")
        return Response(status=504, body=body)

    def _check_quota(self, request: Request) -> Response | None:
        if self.config.quota_rate <= 0:
            return None
        client = request.headers.get("x-client-id") \
            or request.client.rsplit(":", 1)[0]
        now = time.monotonic()
        bucket = self._buckets.get(client)
        if bucket is None:
            if len(self._buckets) >= 4096:       # bound per-client state
                self._buckets.clear()
            bucket = self._buckets[client] = _TokenBucket(
                self.config.quota_rate, self.config.quota_burst, now)
        wait = bucket.acquire(now)
        if wait <= 0:
            return None
        self.stats.rejected_quota += 1
        self.metrics.counter("repro_serve_rejected_total",
                             reason="quota").inc()
        body = (json.dumps(envelope(
            "rate_limited",
            f"client {client} exceeded {self.config.quota_rate:g} "
            f"requests/s (burst {self.config.quota_burst})")) + "\n") \
            .encode("utf-8")
        return Response(status=429, body=body,
                        headers={"Retry-After": f"{max(wait, 0.001):.3f}"})

    def _admit(self) -> Response | None:
        """Take one pending slot, or produce the 429 overload response."""
        if self._pending >= self.config.max_pending:
            self.stats.rejected_overload += 1
            self.metrics.counter("repro_serve_rejected_total",
                                 reason="overload").inc()
            body = (json.dumps(envelope(
                "overloaded",
                f"{self._pending} evaluations already pending "
                f"(max_pending={self.config.max_pending})")) + "\n") \
                .encode("utf-8")
            return Response(status=429, body=body,
                            headers={"Retry-After": "1"})
        self._pending += 1
        self.stats.peak_pending = max(self.stats.peak_pending, self._pending)
        self.metrics.gauge("repro_serve_pending").set(self._pending)
        return None

    def _release(self) -> None:
        self._pending -= 1
        self.metrics.gauge("repro_serve_pending").set(self._pending)

    # --- GET routes -------------------------------------------------------

    async def _handle_health(self, request: Request) -> Response:
        from repro import __version__

        payload = {
            "status": "ok",
            "api": API_VERSION,
            "version": __version__,
            "uptime_seconds": round(time.time() - self.started, 3),
            "pending": self._pending,
            "inflight_evals": len(self._inflight_evals),
            "breaker": self._breaker.state,
            "draining": self._draining,
        }
        return Response(status=200,
                        body=(json.dumps(payload) + "\n").encode("utf-8"))

    async def _handle_cache(self, request: Request) -> Response:
        cache = self.engine.cache
        report = self.engine.report()
        payload: dict[str, Any] = {
            "api": API_VERSION,
            "entries": len(cache) if cache is not None else 0,
            "cache": dict(vars(cache.stats)) if cache is not None else None,
            "stages": {
                stage.name: {
                    "calls": stage.calls,
                    "evaluated": stage.evaluated,
                    "cache_hits": stage.cache_hits,
                    "cache_misses": stage.cache_misses,
                    "dedup_hits": stage.dedup_hits,
                    "wall_time": stage.wall_time,
                }
                for stage in report.stages
            },
            "serve": self.stats.to_jsonable(),
        }
        return Response(status=200,
                        body=(json.dumps(payload) + "\n").encode("utf-8"))

    async def _handle_metrics(self, request: Request) -> Response:
        text = prometheus_text(self.metrics)
        return Response(status=200, body=text.encode("utf-8"),
                        content_type="text/plain; version=0.0.4")

    # --- POST /v1/eval ----------------------------------------------------

    async def _handle_eval(self, request: Request) -> Response:
        spec = parse_eval_body(request.body)
        key = spec.fingerprint()
        task = self._inflight_evals.get(key)
        coalesced = task is not None
        if task is None:
            denied = self._admit()
            if denied is not None:
                return denied
            task = asyncio.get_running_loop().create_task(
                self._run_eval(spec))
            self._inflight_evals[key] = task
            task.add_done_callback(
                lambda _done, key=key: self._eval_done(key))
        else:
            self.stats.coalesced += 1
            self.metrics.counter("repro_serve_coalesced_total").inc()
        # Shielded: a disconnecting follower (or owner) must not cancel
        # the shared evaluation other clients are waiting on.
        outcome = await asyncio.shield(task)
        payload = {
            "api": API_VERSION,
            "result": evaluation_wire(outcome.evaluation),
            "cached": outcome.cached,
            "coalesced": coalesced,
        }
        return Response(status=200,
                        body=(json.dumps(payload) + "\n").encode("utf-8"))

    def _eval_done(self, key: str) -> None:
        self._inflight_evals.pop(key, None)
        self._release()

    async def _run_eval(self, spec: DesignSpec) -> _EvalOutcome:
        loop = asyncio.get_running_loop()
        assert self._executor is not None, "server not started"
        try:
            outcome = await loop.run_in_executor(
                self._executor, self._eval_sync, spec)
        except ReproError:
            raise                   # blames the request, not the engine
        except Exception:
            self._record_engine_failure()
            raise
        self._breaker.record_success()
        return outcome

    def _record_engine_failure(self) -> None:
        if self._breaker.record_failure(time.monotonic()):
            self.metrics.counter("repro_serve_breaker_opened_total").inc()

    def _eval_sync(self, spec: DesignSpec) -> _EvalOutcome:
        # The bare (spec,) call shape matches what evaluate_specs builds
        # under the default PDK, so served points and library sweeps
        # share cache entries — a sweep warms /v1/eval and vice versa.
        with self._engine_lock:
            cached = False
            cache = self.engine.cache
            if cache is not None:
                cached = call_key(evaluate_spec, (spec,), {}) in cache
            result = self.engine.map(evaluate_spec, [(spec,)],
                                     stage="serve.eval", jobs=1)[0]
            return _EvalOutcome(evaluation=result, cached=cached)

    # --- POST /v1/sweep (streaming) ---------------------------------------

    async def _handle_sweep(self, request: Request,
                            writer: asyncio.StreamWriter) -> Response | None:
        """Stream a sweep as NDJSON; returns a Response only on rejection."""
        sweep, options = parse_sweep_body(request.body)
        denied = self._admit()
        if denied is not None:
            return denied
        chunk_size = int(options.get("chunk_size", self.config.chunk_size))
        prune = bool(options.get("prune", False))
        batch = bool(options.get("batch", self.config.batch))

        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue(maxsize=4)
        cancelled = threading.Event()

        def put(item: tuple) -> None:
            # Runs on the worker thread; blocks when the client reads
            # slowly, which is exactly the backpressure we want on the
            # producer.  A dead loop/consumer surfaces as a timeout.
            future = asyncio.run_coroutine_threadsafe(queue.put(item), loop)
            try:
                future.result(timeout=600)
            except (concurrent.futures.TimeoutError,
                    concurrent.futures.CancelledError):
                cancelled.set()

        assert self._executor is not None, "server not started"
        worker = loop.run_in_executor(
            self._executor, self._run_sweep_sync,
            sweep, chunk_size, prune, batch, put, cancelled)

        stream = StreamingBody(writer)
        points = evaluated = pruned = chunks = 0
        try:
            await stream.start()
            await self._send_event(stream, {
                "event": "start", "api": API_VERSION, "points": len(sweep),
                "chunk_size": chunk_size, "prune": prune, "batch": batch,
            })
            while True:
                # The per-request deadline bounds each inter-chunk gap:
                # a stuck engine surfaces as an in-band error event
                # instead of a silently hung stream.
                gap = self.config.request_timeout or None
                try:
                    kind, item = await asyncio.wait_for(queue.get(), gap)
                except asyncio.TimeoutError:
                    cancelled.set()
                    self.stats.deadline_exceeded += 1
                    self.metrics.counter("repro_serve_deadline_total").inc()
                    await self._send_event(stream, {
                        "event": "error", **envelope(
                            "deadline_exceeded",
                            f"no chunk within the "
                            f"{self.config.request_timeout:g} s deadline")})
                    break
                if kind == "chunk":
                    chunks += 1
                    points += item.size
                    evaluated += len(item.evaluations)
                    pruned += item.pruned
                    for evaluation in item.evaluations:
                        await self._send_event(stream, {
                            "event": "evaluation",
                            **evaluation_wire(evaluation),
                        })
                    await self._send_event(stream, {
                        "event": "chunk", "index": item.index,
                        "size": item.size, "pruned": item.pruned,
                        "frontier_size": item.frontier_size,
                        "seconds": item.seconds,
                    })
                    self.metrics.counter(
                        "repro_serve_stream_points_total").inc(item.size)
                elif kind == "error":
                    await self._send_event(stream, {
                        "event": "error", **error_envelope(item)})
                    break
                else:                                   # kind == "done"
                    await self._send_event(stream, {
                        "event": "end", "points": points,
                        "evaluated": evaluated, "pruned": pruned,
                        "chunks": chunks,
                    })
                    break
            await stream.finish()
        except (ConnectionError, asyncio.CancelledError, OSError):
            # Client went away mid-stream: stop producing, drain what the
            # worker already queued, and leave the shared cache exactly as
            # the completed chunks left it (their results stay valid).
            cancelled.set()
            self.stats.streams_cancelled += 1
            self.metrics.counter("repro_serve_streams_cancelled_total").inc()
        finally:
            cancelled.set()
            while True:                # unblock a producer stuck on put()
                try:
                    kind, _item = queue.get_nowait()
                except asyncio.QueueEmpty:
                    if worker.done():
                        break
                    await asyncio.sleep(0.01)
                    continue
                if kind in ("done", "error"):
                    break
            try:
                await worker
            except Exception:                           # noqa: BLE001
                pass                   # already surfaced as an error event
            self._release()
        return None

    @staticmethod
    async def _send_event(stream: StreamingBody,
                          payload: Mapping[str, Any]) -> None:
        """Write one NDJSON event line to the chunked body."""
        await stream.send((json.dumps(payload) + "\n").encode("utf-8"))

    def _run_sweep_sync(self, sweep, chunk_size: int, prune: bool,
                        batch: bool, put: Callable[[tuple], None],
                        cancelled: threading.Event) -> None:
        """Worker-thread side of one sweep stream.

        Holds the engine lock per chunk (not for the whole sweep), so
        concurrent ``/v1/eval`` requests interleave with a long stream.
        """
        generator = stream_sweep(sweep, engine=self.engine,
                                 chunk_size=chunk_size, prune=prune,
                                 batch=batch)
        try:
            while not cancelled.is_set():
                with self._engine_lock:
                    chunk = next(generator, _DONE)
                if chunk is _DONE:
                    break
                put(("chunk", chunk))
            self._breaker.record_success()
            put(("done", None))
        except Exception as error:                      # noqa: BLE001
            if not isinstance(error, ReproError):
                self._record_engine_failure()
            put(("error", error))
        finally:
            generator.close()


def serve(config: ServerConfig | None = None,
          engine: EvaluationEngine | None = None) -> None:
    """Run a :class:`ReproServer` until interrupted (the CLI entry point).

    SIGTERM and SIGINT both trigger a graceful drain: the listener
    closes immediately (a supervisor's replacement can bind), in-flight
    requests — including open NDJSON sweep streams — get
    ``config.drain_seconds`` to finish, then the process exits cleanly.
    """

    async def _main() -> None:
        server = ReproServer(config=config, engine=engine)
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        handled = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
                handled.append(signum)
            except (NotImplementedError, RuntimeError, ValueError):
                pass            # non-Unix loop: fall back to KeyboardInterrupt
        # Handlers first, listener second: a SIGTERM that races the
        # startup print must already find the graceful path installed.
        host, port = await server.start()
        print(f"repro serve listening on http://{host}:{port} "
              f"(api /{API_VERSION}/)", flush=True)
        forever = asyncio.ensure_future(server.serve_forever())
        stopper = asyncio.ensure_future(stop.wait())
        try:
            await asyncio.wait({forever, stopper},
                               return_when=asyncio.FIRST_COMPLETED)
            if stop.is_set():
                print("repro serve draining "
                      f"(up to {server.config.drain_seconds:g} s) ...",
                      flush=True)
                drained = await server.drain()
                print("repro serve drained cleanly" if drained
                      else "repro serve drain timed out; exiting anyway",
                      flush=True)
        finally:
            forever.cancel()
            stopper.cancel()
            for signum in handled:
                loop.remove_signal_handler(signum)
            await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
