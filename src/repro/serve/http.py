"""A minimal asyncio HTTP/1.1 layer — just enough protocol for serving.

The repository bakes in no web framework, and the server needs only a
narrow slice of HTTP: request-line + headers + ``Content-Length`` bodies
in, fixed-length JSON or chunked NDJSON streams out, keep-alive in
between.  This module implements exactly that slice over
``asyncio.StreamReader``/``StreamWriter`` and nothing more; routing,
queuing and evaluation live in :mod:`repro.serve.app`.

Design notes:

* Requests with bodies must carry ``Content-Length`` — chunked *request*
  bodies are refused with 411 (curl and the bundled client both send
  lengths, and refusing keeps the parser single-pass).
* Header and body sizes are capped (:data:`MAX_HEADER_BYTES`, the app's
  ``max_body_bytes``) so a misbehaving client cannot balloon memory.
* :class:`StreamingBody` writes ``Transfer-Encoding: chunked`` frames
  with an explicit ``drain()`` per flush, which is what lets the sweep
  handler detect a disconnected client *between* chunks and cancel the
  work it was streaming.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Mapping
from urllib.parse import parse_qsl, urlsplit

__all__ = [
    "HTTP_REASONS",
    "MAX_HEADER_BYTES",
    "ProtocolError",
    "Request",
    "Response",
    "StreamingBody",
    "read_request",
    "write_response",
]

#: Upper bound on the request line + headers block.
MAX_HEADER_BYTES = 16 * 1024

#: Reason phrases for every status the server emits.
HTTP_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ProtocolError(Exception):
    """A request that violates the HTTP slice we speak.

    Attributes:
        status: The HTTP status the connection handler answers with
            before closing the connection.
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass(frozen=True)
class Request:
    """One parsed HTTP request.

    Attributes:
        method: Upper-cased method (``GET``, ``POST``, ...).
        path: Decoded path component (no query string).
        query: Decoded query parameters (last value wins per key).
        headers: Header mapping with lower-cased names.
        body: The request body (empty for body-less methods).
        client: Peer address string (``ip:port``), for quota keying.
    """

    method: str
    path: str
    query: Mapping[str, str]
    headers: Mapping[str, str]
    body: bytes
    client: str

    @property
    def keep_alive(self) -> bool:
        """Whether the connection should survive this exchange."""
        return self.headers.get("connection", "keep-alive").lower() != "close"


@dataclass
class Response:
    """One fixed-length response (streaming goes via :class:`StreamingBody`).

    Attributes:
        status: HTTP status code.
        body: Encoded response body.
        content_type: ``Content-Type`` header value.
        headers: Extra headers (e.g. ``Retry-After``).
    """

    status: int
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)


async def read_request(reader: asyncio.StreamReader, client: str,
                       max_body_bytes: int) -> Request | None:
    """Parse one request; ``None`` on a clean EOF before any bytes.

    Raises:
        ProtocolError: when the request violates the supported slice
            (oversized headers/body, missing length, bad syntax).
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ProtocolError(400, "truncated request head") from error
    except asyncio.LimitOverrunError as error:
        raise ProtocolError(413, "request head too large") from error
    if len(head) > MAX_HEADER_BYTES:
        raise ProtocolError(413, "request head too large")

    try:
        request_line, *header_lines = head.decode("latin-1").split("\r\n")[:-2]
        method, target, version = request_line.split(" ", 2)
    except ValueError as error:
        raise ProtocolError(400, "malformed request line") from error
    if not version.startswith("HTTP/1."):
        raise ProtocolError(400, f"unsupported protocol {version!r}")

    headers: dict[str, str] = {}
    for line in header_lines:
        name, separator, value = line.partition(":")
        if not separator or not name.strip():
            raise ProtocolError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise ProtocolError(411, "chunked request bodies are not supported")
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError as error:
        raise ProtocolError(400, "bad Content-Length") from error
    if length < 0:
        raise ProtocolError(400, "bad Content-Length")
    if length > max_body_bytes:
        raise ProtocolError(413, f"body exceeds {max_body_bytes} bytes")
    try:
        body = await reader.readexactly(length) if length else b""
    except asyncio.IncompleteReadError as error:
        raise ProtocolError(400, "truncated request body") from error

    parts = urlsplit(target)
    query = dict(parse_qsl(parts.query, keep_blank_values=True))
    return Request(method=method.upper(), path=parts.path or "/",
                   query=query, headers=headers, body=body, client=client)


def _head_lines(status: int, headers: dict[str, str]) -> bytes:
    reason = HTTP_REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    lines.extend(f"{name}: {value}" for name, value in headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def write_response(writer: asyncio.StreamWriter, response: Response,
                         keep_alive: bool) -> None:
    """Serialize a fixed-length response and drain the transport."""
    headers = {
        "Content-Type": response.content_type,
        "Content-Length": str(len(response.body)),
        "Connection": "keep-alive" if keep_alive else "close",
        **response.headers,
    }
    writer.write(_head_lines(response.status, headers) + response.body)
    await writer.drain()


class StreamingBody:
    """A chunked-transfer response body with per-flush disconnect checks.

    Usage::

        stream = StreamingBody(writer, content_type="application/x-ndjson")
        await stream.start()
        await stream.send(line_bytes)   # raises ConnectionError when the
        ...                             # peer has gone away
        await stream.finish()
    """

    def __init__(self, writer: asyncio.StreamWriter,
                 content_type: str = "application/x-ndjson",
                 headers: Mapping[str, str] | None = None) -> None:
        self._writer = writer
        self._content_type = content_type
        self._headers = dict(headers or {})
        self.bytes_sent = 0

    async def start(self, status: int = 200) -> None:
        """Send the response head opening a chunked body."""
        headers = {
            "Content-Type": self._content_type,
            "Transfer-Encoding": "chunked",
            "Connection": "close",
            **self._headers,
        }
        self._writer.write(_head_lines(status, headers))
        await self._writer.drain()

    async def send(self, payload: bytes) -> None:
        """Write one chunk and drain; raises ``ConnectionError`` if gone."""
        if not payload:
            return
        if self._writer.is_closing():
            raise ConnectionResetError("client disconnected")
        self._writer.write(f"{len(payload):x}\r\n".encode("latin-1")
                           + payload + b"\r\n")
        await self._writer.drain()
        self.bytes_sent += len(payload)

    async def finish(self) -> None:
        """Terminate the chunked body."""
        if self._writer.is_closing():
            return
        self._writer.write(b"0\r\n\r\n")
        await self._writer.drain()


def json_headers(extra: Mapping[str, Any] | None = None) -> dict[str, str]:
    """Stringified extra headers for a :class:`Response`."""
    return {name: str(value) for name, value in (extra or {}).items()}
