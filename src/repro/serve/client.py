"""A small asyncio client for the ``/v1`` evaluation server.

The server speaks plain HTTP/1.1, so any client works — ``curl`` is the
documented interface (README "Serving").  This module exists so the
*bundled* consumers (the load generator in ``benchmarks/bench_serve.py``
and the failure-mode tests) exercise the real wire protocol through one
shared, dependency-free implementation instead of three ad-hoc socket
parsers.

:class:`ServeClient` opens one connection per call — deliberately, since
measuring the server under thousands of independent clients is the
benchmark's whole point.  Errors surface as :class:`ServeError`, carrying
the HTTP status and the decoded error envelope.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, AsyncIterator, Mapping

__all__ = ["ServeClient", "ServeError"]


class ServeError(Exception):
    """A non-2xx response from the server.

    Attributes:
        status: The HTTP status code.
        payload: The decoded response body — the error envelope
            (``{"error": {"type", "message", "path"}}``) for JSON
            bodies, else ``{"raw": <text>}``.
        retry_after: Parsed ``Retry-After`` header seconds, if sent.
    """

    def __init__(self, status: int, payload: Mapping[str, Any],
                 retry_after: float | None = None) -> None:
        error = payload.get("error", {}) if isinstance(payload, Mapping) \
            else {}
        super().__init__(
            f"HTTP {status}: {error.get('type', 'unknown')}: "
            f"{error.get('message', payload)}")
        self.status = status
        self.payload = payload
        self.retry_after = retry_after

    @property
    def error_type(self) -> str | None:
        """The envelope ``type`` tag (``rate_limited``, ...), if present."""
        error = self.payload.get("error")
        return error.get("type") if isinstance(error, Mapping) else None


class ServeClient:
    """Async client for one ``repro serve`` endpoint."""

    def __init__(self, host: str, port: int,
                 client_id: str | None = None) -> None:
        self.host = host
        self.port = port
        self.client_id = client_id

    # --- raw HTTP ---------------------------------------------------------

    async def _open(self, method: str, path: str, body: bytes,
                    close: bool = True) -> tuple[asyncio.StreamReader,
                                                 asyncio.StreamWriter]:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        lines = [f"{method} {path} HTTP/1.1",
                 f"Host: {self.host}:{self.port}",
                 f"Content-Length: {len(body)}",
                 "Content-Type: application/json"]
        if close:
            lines.append("Connection: close")
        if self.client_id is not None:
            lines.append(f"X-Client-Id: {self.client_id}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
                     + body)
        await writer.drain()
        return reader, writer

    @staticmethod
    async def _read_head(reader: asyncio.StreamReader) \
            -> tuple[int, dict[str, str]]:
        head = await reader.readuntil(b"\r\n\r\n")
        status_line, *header_lines = head.decode("latin-1").split("\r\n")[:-2]
        status = int(status_line.split(" ", 2)[1])
        headers = {}
        for line in header_lines:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return status, headers

    async def _request(self, method: str, path: str,
                       payload: Any = None) -> tuple[int, dict[str, str],
                                                     bytes]:
        body = b"" if payload is None \
            else json.dumps(payload).encode("utf-8")
        reader, writer = await self._open(method, path, body)
        try:
            status, headers = await self._read_head(reader)
            length = int(headers.get("content-length", 0))
            data = await reader.readexactly(length) if length \
                else await reader.read()
            return status, headers, data
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    def _decode(status: int, headers: Mapping[str, str],
                data: bytes) -> Any:
        try:
            payload = json.loads(data) if data else {}
        except json.JSONDecodeError:
            payload = {"raw": data.decode("utf-8", "replace")}
        if status >= 300:
            retry_after = headers.get("retry-after")
            raise ServeError(status, payload,
                             float(retry_after) if retry_after else None)
        return payload

    # --- /v1 API ----------------------------------------------------------

    async def health(self) -> dict[str, Any]:
        """``GET /v1/health``."""
        return self._decode(*await self._request("GET", "/v1/health"))

    async def cache(self) -> dict[str, Any]:
        """``GET /v1/cache`` — cache, stage, and serving counters."""
        return self._decode(*await self._request("GET", "/v1/cache"))

    async def metrics_text(self) -> str:
        """``GET /metrics`` — the raw Prometheus exposition text."""
        status, _headers, data = await self._request("GET", "/metrics")
        if status != 200:
            raise ServeError(status, {"raw": data.decode("utf-8",
                                                         "replace")})
        return data.decode("utf-8")

    async def evaluate(self, spec: Mapping[str, Any]) -> dict[str, Any]:
        """``POST /v1/eval`` — returns the full response (``result``,
        ``cached``, ``coalesced``)."""
        return self._decode(
            *await self._request("POST", "/v1/eval", spec))

    async def sweep_events(self, sweep: Mapping[str, Any],
                           options: Mapping[str, Any] | None = None) \
            -> AsyncIterator[dict[str, Any]]:
        """``POST /v1/sweep`` — yields decoded NDJSON events as they land.

        Closing the generator early (``aclose()`` / breaking out of the
        loop) drops the connection, which the server takes as the signal
        to cancel the remaining sweep work.
        """
        payload: dict[str, Any] = {"sweep": dict(sweep)}
        if options:
            payload["options"] = dict(options)
        body = json.dumps(payload).encode("utf-8")
        reader, writer = await self._open("POST", "/v1/sweep", body)
        try:
            status, headers = await self._read_head(reader)
            if status != 200:
                length = int(headers.get("content-length", 0))
                data = await reader.readexactly(length) if length else b""
                self._decode(status, headers, data)    # raises ServeError
                return
            buffer = b""
            while True:                                # chunked frames
                size_line = await reader.readuntil(b"\r\n")
                size = int(size_line.strip(), 16)
                if size == 0:
                    break
                chunk = await reader.readexactly(size + 2)
                buffer += chunk[:-2]
                while b"\n" in buffer:
                    line, _, buffer = buffer.partition(b"\n")
                    if line.strip():
                        yield json.loads(line)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def sweep(self, sweep: Mapping[str, Any],
                    options: Mapping[str, Any] | None = None) \
            -> list[dict[str, Any]]:
        """``POST /v1/sweep``, collected: every event, in order."""
        return [event async for event in self.sweep_events(sweep, options)]
