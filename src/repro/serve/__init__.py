"""Evaluation-as-a-service: the ``repro serve`` HTTP front end.

One warm :class:`~repro.runtime.engine.EvaluationEngine` behind a
versioned (``/v1/``) asyncio HTTP/JSON API — stdlib only.  See
DESIGN.md Sec. 12 for the wire schema, coalescing, and backpressure
policy, and the README "Serving" section for a curl walkthrough.
"""

from repro.serve.app import ReproServer, ServerConfig, serve
from repro.serve.client import ServeClient, ServeError
from repro.serve.protocol import API_VERSION

__all__ = [
    "API_VERSION",
    "ReproServer",
    "ServeClient",
    "ServeError",
    "ServerConfig",
    "serve",
]
