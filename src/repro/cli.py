"""Command-line interface: regenerate any paper artifact from a shell.

Usage::

    python -m repro list                 # show available experiments
    python -m repro list --markdown      # ...as a GitHub-markdown table
    python -m repro table1               # Table I
    python -m repro fig5 fig9            # several at once
    python -m repro all                  # everything
    python -m repro dse --jobs 4 --trace out.json   # traced parallel run
    python -m repro eval --spec examples/spec.json   # one declarative point
    python -m repro flow --spec examples/flow.json   # staged physical flow
    python -m repro sweep --spec examples/sweep.json # a declarative sweep
    python -m repro sweep --spec sweep.json --physical --prune  # + feasibility
    python -m repro fig9 --spec my_spec.json         # retarget an experiment
    python -m repro serve --port 8348 --cache-dir /tmp/repro-cache  # HTTP API

Experiments resolve through :mod:`repro.experiments.registry`: every run
builds **one** :class:`~repro.experiments.registry.ExperimentContext`
(shared PDK + engine), so memo tables and the result cache are shared
across the experiments of an invocation.  ``--profile`` / ``--trace`` /
``--trace-csv`` / ``--metrics`` switch on the observability layer
(:mod:`repro.obs`) for the run; it is off — and zero-cost — otherwise.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
import time
from typing import Callable

import repro.experiments  # noqa: F401  (imports populate the registry)
from repro.experiments.registry import (
    Experiment,
    ExperimentContext,
    all_experiments,
    get_experiment,
    registry_markdown,
)
from repro.experiments.reporting import format_table


def _compat_runner(exp: Experiment) -> Callable[[], str]:
    def runner() -> str:
        return exp.run_formatted()
    return runner


#: Experiment name -> (description, zero-arg runner).  Deprecated
#: compatibility view of the registry; new code should use
#: :func:`repro.experiments.registry.all_experiments`.
EXPERIMENTS: dict[str, tuple[str, Callable[[], str]]] = {
    exp.name: (exp.summary, _compat_runner(exp)) for exp in all_experiments()
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures of the DATE 2023 ultra-dense "
                    "3D physical design paper.",
    )
    parser.add_argument(
        "experiments", nargs="*", metavar="EXPERIMENT",
        help="experiment names (see 'list'), or 'all'")
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="parallel evaluation workers for sweeps "
             "(1 = serial, 0 = one per CPU)")
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist evaluation results as JSON under DIR; a warm "
             "directory serves repeat runs without re-evaluating")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable result memoization entirely")
    parser.add_argument(
        "--runtime-stats", action="store_true",
        help="print per-stage cache/parallelism statistics after running")
    parser.add_argument(
        "--profile", action="store_true",
        help="print per-experiment wall time, the top trace spans, and "
             "per-stage evaluation counts and cache/memo/dedup hit rates")
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a Chrome-trace JSON of the run (open in Perfetto or "
             "chrome://tracing); worker spans appear as separate lanes")
    parser.add_argument(
        "--trace-csv", default=None, metavar="PATH",
        help="write the flat span table (name, depth, worker, timings) "
             "as CSV to PATH")
    parser.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write the run's metrics in Prometheus text format to PATH")
    parser.add_argument(
        "--markdown", action="store_true",
        help="with 'list': print the experiment table as GitHub markdown")
    parser.add_argument(
        "--spec", default=None, metavar="PATH",
        help="JSON design spec: required by 'eval'/'sweep', and the base "
             "design point every named experiment derives from")
    parser.add_argument(
        "--stream", action="store_true",
        help="with 'sweep': evaluate chunk by chunk through the streaming "
             "executor (bounded memory; implied by --checkpoint-dir and "
             "--prune)")
    parser.add_argument(
        "--chunk-size", type=int, default=None, metavar="N",
        help="points per streamed chunk (default 64)")
    parser.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="persist completed chunks under DIR; re-running the same "
             "sweep resumes after the last flushed chunk")
    parser.add_argument(
        "--checkpoint-every", type=int, default=1, metavar="N",
        help="flush checkpoint records every N chunks (default 1 = "
             "strongest durability)")
    parser.add_argument(
        "--prune", action="store_true",
        help="skip grid points certifiably dominated on (footprint, EDP "
             "benefit) — exact: the surviving frontier equals the "
             "exhaustive one")
    parser.add_argument(
        "--max-failures", type=int, default=0, metavar="N",
        help="with 'sweep' (streaming): tolerate up to N failed points, "
             "recording each as a structured failure instead of aborting "
             "(0 = strict, -1 = unlimited); failed points land in the "
             "checkpoint and are retried on resume")
    parser.add_argument(
        "--batch", action="store_true",
        help="with 'eval'/'sweep': evaluate points through the vectorized "
             "batch kernel (numpy when available, pure-python fallback "
             "otherwise; implied by --batch-size)")
    parser.add_argument(
        "--batch-size", type=int, default=None, metavar="N",
        help="points packed per batch-kernel invocation (default: the "
             "whole sweep, or one chunk when streaming)")
    parser.add_argument(
        "--physical", action="store_true",
        help="with 'eval'/'sweep': run every point through the staged "
             "physical flow and report per-point feasibility (infeasible "
             "points are results, not errors; they stay out of the "
             "Pareto frontier)")
    parser.add_argument(
        "--json", action="store_true",
        help="machine-readable failures: print the structured error "
             "envelope {error: {type, message, path}} on stderr instead "
             "of prose (exit code 2 either way)")
    parser.add_argument(
        "--host", default="127.0.0.1", metavar="ADDR",
        help="with 'serve': bind address (default 127.0.0.1)")
    parser.add_argument(
        "--port", type=int, default=None, metavar="PORT",
        help="with 'serve': bind port (default 8348, 0 = ephemeral)")
    parser.add_argument(
        "--max-pending", type=int, default=1024, metavar="N",
        help="with 'serve': admitted-but-unfinished request budget; "
             "beyond it requests get 429 + Retry-After (default 1024)")
    parser.add_argument(
        "--quota-rate", type=float, default=0.0, metavar="R",
        help="with 'serve': per-client request rate limit in requests/s "
             "(token bucket keyed by X-Client-Id; 0 = unlimited)")
    parser.add_argument(
        "--quota-burst", type=int, default=64, metavar="N",
        help="with 'serve': per-client token-bucket burst size "
             "(default 64)")
    parser.add_argument(
        "--request-timeout", type=float, default=0.0, metavar="S",
        help="with 'serve': per-request deadline in seconds (504 beyond "
             "it; sweep streams bound each inter-chunk gap; 0 = off)")
    parser.add_argument(
        "--drain-seconds", type=float, default=10.0, metavar="S",
        help="with 'serve': how long a SIGTERM drain waits for in-flight "
             "requests and open streams before exiting (default 10)")
    return parser


def available_experiments() -> tuple[str, ...]:
    """Names accepted on the command line."""
    return tuple(EXPERIMENTS)


def _fail(args: argparse.Namespace, error: "BaseException | str",
          prefix: str = "") -> int:
    """Report a CLI failure and return exit code 2.

    Under ``--json`` the failure is the same structured envelope the
    server emits (``{"error": {"type", "message", "path"}}``, one line on
    stderr); otherwise it is the human-readable message.
    """
    if getattr(args, "json", False):
        import json as _json

        from repro.errors import envelope, error_envelope

        document = error_envelope(error) if isinstance(error, BaseException) \
            else envelope("cli_error", str(error))
        print(_json.dumps(document), file=sys.stderr)
    else:
        print(f"{prefix}{error}", file=sys.stderr)
    return 2


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Ctrl-C exits 130 after terminating any live worker pool, so an
    interrupted parallel sweep leaves no orphaned forkserver workers.
    """
    try:
        return _main(argv)
    except KeyboardInterrupt:
        from repro.runtime.pmap import shutdown_pool

        shutdown_pool(wait=False)
        print("interrupted", file=sys.stderr)
        return 130


def _main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.no_cache and args.cache_dir:
        return _fail(args, "--no-cache and --cache-dir are mutually "
                           "exclusive")
    if args.jobs < 0:
        return _fail(args, "--jobs must be >= 0 (1 = serial, 0 = one "
                           "per CPU)")
    from repro.runtime.engine import configure

    engine = configure(jobs=args.jobs, cache_dir=args.cache_dir,
                       use_cache=not args.no_cache)
    show_stats = (args.runtime_stats or args.profile
                  or args.cache_dir is not None)
    names = args.experiments or ["list"]
    if names == ["validate"]:
        from repro.validate import main as validate_main
        return validate_main()
    if names == ["report"]:
        from repro.report import main as report_main
        return report_main()
    if names == ["serve"]:
        return _run_serve(args, engine)
    if names == ["flow"]:
        return _run_flow_command(args, engine, show_stats)
    if names in (["eval"], ["sweep"]):
        return _run_spec_command(names[0], args, engine, show_stats)
    if names == ["list"]:
        if args.markdown:
            print(registry_markdown())
            return 0
        print("available experiments:")
        for name, (description, _) in EXPERIMENTS.items():
            print(f"  {name:10s} {description}")
        print("  all        run every experiment")
        print("  eval       evaluate one design spec (--spec spec.json)")
        print("  flow       staged physical flow on one spec (--spec "
              "spec.json)")
        print("  sweep      expand + evaluate a sweep spec (--spec sweep.json)")
        print("  validate   check every headline claim against the paper")
        print("  report     full reproduction report (tables + validation)")
        print("  serve      HTTP evaluation server (/v1 API; see --port)")
        return 0
    if names == ["all"]:
        names = list(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        return _fail(args, f"unknown experiment(s): {', '.join(unknown)}; "
                           f"try 'python -m repro list'")

    observe = bool(args.profile or args.trace or args.trace_csv
                   or args.metrics)
    if observe:
        from repro.obs.trace import trace
        observation = trace()
    else:
        observation = contextlib.nullcontext(None)

    base_spec = None
    if args.spec is not None:
        from repro.errors import ReproError
        from repro.spec import load_design_spec
        try:
            base_spec = load_design_spec(args.spec)
        except (OSError, ValueError, ReproError) as error:
            return _fail(args, error, prefix=f"bad --spec {args.spec}: ")

    timings: list[tuple[str, float]] = []
    with observation as tracer:
        ctx = ExperimentContext.create(engine=engine, tracer=tracer,
                                       spec=base_spec)
        for index, name in enumerate(names):
            if index:
                print()
            started = time.perf_counter()
            print(get_experiment(name).run_formatted(ctx))
            timings.append((name, time.perf_counter() - started))
        # Snapshot inside the context so the report carries the trace.
        report = engine.report()

    if args.profile:
        print()
        print(format_table(
            "Experiment wall time",
            ["experiment", "wall time"],
            [[name, f"{elapsed:.3f} s"] for name, elapsed in timings],
        ))
        top = report.top_spans()
        if top:
            from repro.experiments.reporting import format_top_spans
            print()
            print(format_top_spans(top))
    if show_stats:
        from repro.experiments.reporting import format_run_report

        print()
        print(format_run_report(report))
    if observe:
        _export_observations(args, tracer)
    return 0


def _run_serve(args: argparse.Namespace, engine) -> int:
    """Run the ``serve`` pseudo-command: the /v1 evaluation server.

    The engine was already configured from ``--jobs`` / ``--cache-dir``
    / ``--no-cache``, so a warm cache directory is what every client
    shares.
    """
    from repro.serve import ServerConfig, serve
    from repro.serve.app import DEFAULT_PORT
    from repro.sweep import DEFAULT_CHUNK_SIZE

    if args.port is not None and not (0 <= args.port <= 65535):
        return _fail(args, "--port must be in [0, 65535] (0 = ephemeral)")
    if args.max_pending < 1:
        return _fail(args, "--max-pending must be >= 1")
    if args.quota_rate < 0:
        return _fail(args, "--quota-rate must be >= 0 (0 = unlimited)")
    if args.quota_burst < 1:
        return _fail(args, "--quota-burst must be >= 1")
    if args.request_timeout < 0:
        return _fail(args, "--request-timeout must be >= 0 (0 = off)")
    if args.drain_seconds < 0:
        return _fail(args, "--drain-seconds must be >= 0")
    config = ServerConfig(
        host=args.host,
        port=args.port if args.port is not None else DEFAULT_PORT,
        max_pending=args.max_pending,
        quota_rate=args.quota_rate,
        quota_burst=args.quota_burst,
        chunk_size=args.chunk_size if args.chunk_size is not None
        else DEFAULT_CHUNK_SIZE,
        request_timeout=args.request_timeout,
        drain_seconds=args.drain_seconds,
    )
    serve(config, engine=engine)
    return 0


def _run_flow_command(args: argparse.Namespace, engine,
                      show_stats: bool) -> int:
    """Run the ``flow`` pseudo-command: the staged physical flow.

    Resolves ``--spec`` into the 2D baseline / M3D design pair, drives
    both through :func:`~repro.physical.flow.run_staged_flows` with the
    spec's ``flow`` section (every stage dispatched through the engine
    as ``flow.<stage>``, so ``--cache-dir`` makes re-runs incremental),
    and prints per-design feasibility.  Infeasible designs are reported
    rows, not errors.
    """
    from repro.errors import ReproError
    from repro.physical.flow import run_staged_flows
    from repro.spec import load_design_spec
    from repro.spec.resolve import resolve
    from repro.units import to_mm2

    if args.spec is None:
        return _fail(args, "'flow' needs --spec PATH (a JSON design spec)")
    try:
        spec = load_design_spec(args.spec)
        point = resolve(spec)
        outcomes = run_staged_flows(
            (point.baseline, point.m3d), point.pdk, flow=spec.flow,
            engine=engine)
    except (OSError, ValueError, ReproError) as error:
        return _fail(args, error, prefix=f"bad --spec {args.spec}: ")
    rows = []
    for label, outcome in zip(("2D baseline", "M3D"), outcomes):
        feas = outcome.feasibility
        timing = outcome.timing
        rows.append([
            label,
            outcome.design.n_cs,
            "-" if outcome.floorplan is None
            else f"{to_mm2(outcome.floorplan.footprint):.1f}",
            "-" if timing is None
            else f"{timing.achieved_frequency / 1e6:.0f}",
            "-" if timing is None else f"{feas.timing_slack * 1e9:.1f}",
            f"{feas.track_utilization:.0%}",
            f"{feas.ilv_utilization:.0%}",
            "-" if outcome.thermal is None
            else f"{outcome.thermal.hotspot_rise_k:.2f}",
            feas.verdict,
        ])
    print(format_table(
        f"Staged physical flow — {args.spec}",
        ["design", "CS", "footprint mm^2", "fmax MHz", "slack ns",
         "tracks", "ILVs", "hotspot K", "feasibility"],
        rows,
    ))
    feasible = sum(outcome.feasible for outcome in outcomes)
    print(f"\nfeasible designs: {feasible}/{len(outcomes)}")
    if show_stats:
        from repro.experiments.reporting import format_run_report

        print()
        print(format_run_report(engine.report()))
    return 0


def _run_spec_command(command: str, args: argparse.Namespace, engine,
                      show_stats: bool) -> int:
    """Run the ``eval`` / ``sweep`` pseudo-command against ``--spec``."""
    from repro.errors import ReproError
    from repro.spec import (
        evaluate_specs,
        evaluate_sweep,
        format_spec_evaluations,
        load_design_spec,
        load_sweep_spec,
    )

    if args.spec is None:
        return _fail(args, f"'{command}' needs --spec PATH (a JSON design "
                           f"or sweep spec)")
    streaming = bool(args.stream or args.checkpoint_dir or args.prune)
    batch = bool(args.batch or args.batch_size is not None)
    observe = bool(args.profile or args.trace or args.trace_csv
                   or args.metrics)
    if observe:
        from repro.obs.trace import trace
        observation = trace()
    else:
        observation = contextlib.nullcontext(None)
    summary = None
    try:
        with observation as tracer:
            if command == "eval":
                evaluations = evaluate_specs([load_design_spec(args.spec)],
                                             engine=engine, batch=batch,
                                             physical=args.physical)
                title = f"Spec evaluation — {args.spec}"
            elif streaming:
                from repro.sweep import DEFAULT_CHUNK_SIZE, run_streaming_sweep

                sweep = load_sweep_spec(args.spec)
                chunk_size = args.chunk_size
                if chunk_size is None:
                    chunk_size = args.batch_size \
                        if args.batch_size is not None else DEFAULT_CHUNK_SIZE
                result = run_streaming_sweep(
                    sweep, engine=engine, chunk_size=chunk_size,
                    prune=args.prune, checkpoint=args.checkpoint_dir,
                    checkpoint_every=args.checkpoint_every, batch=batch,
                    physical=args.physical, max_failures=args.max_failures)
                evaluations = result.evaluations
                title = (f"Streaming sweep — {args.spec} "
                         f"({result.points} points)")
                infeasible = (f"{result.infeasible} infeasible, "
                              if args.physical else "")
                failed = (f"{result.failed} failed, "
                          if args.max_failures != 0 or result.failed else "")
                summary = (f"streamed {result.points} points in "
                           f"{result.chunks} chunk(s): "
                           f"{result.evaluated} evaluated, "
                           f"{infeasible}"
                           f"{failed}"
                           f"{result.pruned} pruned, "
                           f"{result.resumed_chunks} chunk(s) resumed; "
                           f"frontier size {len(result.frontier)}")
            else:
                sweep = load_sweep_spec(args.spec)
                evaluations = evaluate_sweep(sweep, engine=engine,
                                             batch=batch,
                                             batch_size=args.batch_size,
                                             physical=args.physical)
                title = (f"Sweep evaluation — {args.spec} "
                         f"({len(sweep)} points)")
    except (OSError, ValueError, ReproError) as error:
        return _fail(args, error, prefix=f"bad --spec {args.spec}: ")
    print(format_spec_evaluations(evaluations, title=title))
    if summary is not None:
        print(summary)
    if show_stats:
        from repro.experiments.reporting import format_run_report

        print()
        print(format_run_report(engine.report()))
    if observe:
        _export_observations(args, tracer)
    return 0


def _export_observations(args: argparse.Namespace, tracer) -> None:
    """Write the trace/metrics artifacts requested on the command line."""
    from repro.obs.export import (
        write_chrome_trace,
        write_prometheus,
        write_spans_csv,
    )
    from repro.obs.metrics import registry

    spans = tuple(tracer.roots)
    if args.trace:
        write_chrome_trace(args.trace, spans)
        print(f"\nwrote Chrome trace: {args.trace}", file=sys.stderr)
    if args.trace_csv:
        write_spans_csv(args.trace_csv, spans)
        print(f"\nwrote span CSV: {args.trace_csv}", file=sys.stderr)
    if args.metrics:
        write_prometheus(args.metrics, registry())
        print(f"\nwrote metrics: {args.metrics}", file=sys.stderr)
