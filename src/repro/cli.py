"""Command-line interface: regenerate any paper artifact from a shell.

Usage::

    python -m repro list                 # show available experiments
    python -m repro table1               # Table I
    python -m repro fig5 fig9            # several at once
    python -m repro all                  # everything

Each experiment prints the same rows/series the paper reports (and that
the benchmark harness regenerates).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro.experiments import (
    format_case_study,
    format_dse,
    format_fig5,
    format_fig7,
    format_fig8,
    format_fig9,
    format_fig10c,
    format_fig10d,
    format_obs3,
    format_obs8,
    format_obs10,
    format_table,
    format_table1,
    run_case_study,
    run_dse,
    run_fig5,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10c,
    run_fig10d,
    run_obs3,
    run_obs8,
    run_obs10,
    run_table1,
)
from repro.tech import foundry_m3d_pdk


def _with_pdk(run: Callable, fmt: Callable) -> Callable[[], str]:
    def runner() -> str:
        return fmt(run(foundry_m3d_pdk()))
    return runner


def _no_pdk(run: Callable, fmt: Callable) -> Callable[[], str]:
    def runner() -> str:
        return fmt(run())
    return runner


#: Experiment name -> (description, runner).
EXPERIMENTS: dict[str, tuple[str, Callable[[], str]]] = {
    "casestudy": ("Fig. 2 + Obs. 2: physical design case study",
                  _with_pdk(run_case_study, format_case_study)),
    "fig5": ("Fig. 5: whole-model benefits",
             _with_pdk(run_fig5, format_fig5)),
    "table1": ("Table I: per-layer ResNet-18 benefits",
               _with_pdk(run_table1, format_table1)),
    "fig7": ("Fig. 7: Table II architectures, two evaluators",
             _with_pdk(run_fig7, format_fig7)),
    "fig8": ("Fig. 8 / Obs. 5: bandwidth vs CS count",
             _no_pdk(run_fig8, format_fig8)),
    "fig9": ("Fig. 9 / Obs. 6: RRAM capacity sweep",
             _with_pdk(run_fig9, format_fig9)),
    "fig10c": ("Fig. 10c / Obs. 7: access-FET width relaxation",
               _with_pdk(run_fig10c, format_fig10c)),
    "obs8": ("Obs. 8: ILV via pitch sweep",
             _with_pdk(run_obs8, format_obs8)),
    "fig10d": ("Fig. 10d / Obs. 9: interleaved tier pairs",
               _with_pdk(run_fig10d, format_fig10d)),
    "obs3": ("Obs. 3: SRAM-class 2D baseline",
             _with_pdk(run_obs3, format_obs3)),
    "obs10": ("Obs. 10: thermal tier ceiling",
              _no_pdk(run_obs10, format_obs10)),
    "dse": ("Extension: joint (capacity, delta, beta, Y) design space "
            "with Pareto frontier",
            _with_pdk(run_dse, format_dse)),
}


def _register_extensions() -> None:
    """Extension studies (beyond the paper's evaluation section)."""
    from repro.experiments.ext_batching import format_batching, run_batching
    from repro.experiments.ext_beol_logic import (
        format_beol_logic,
        run_beol_logic,
    )
    from repro.experiments.ext_memtech import format_memtech, run_memtech
    from repro.experiments.ext_precision import format_precision, run_precision

    EXPERIMENTS["ext-memtech"] = (
        "Extension: BEOL memory technologies",
        _with_pdk(run_memtech, format_memtech))
    EXPERIMENTS["ext-beol-logic"] = (
        "Extension: CSs in the BEOL CNFET tier",
        _with_pdk(run_beol_logic, format_beol_logic))
    EXPERIMENTS["ext-precision"] = (
        "Extension: operand precision sweep",
        _with_pdk(run_precision, format_precision))
    EXPERIMENTS["ext-batching"] = (
        "Extension: transformer token batching",
        _with_pdk(run_batching, format_batching))


_register_extensions()


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures of the DATE 2023 ultra-dense "
                    "3D physical design paper.",
    )
    parser.add_argument(
        "experiments", nargs="*", metavar="EXPERIMENT",
        help="experiment names (see 'list'), or 'all'")
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="parallel evaluation workers for sweeps "
             "(1 = serial, 0 = one per CPU)")
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist evaluation results as JSON under DIR; a warm "
             "directory serves repeat runs without re-evaluating")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable result memoization entirely")
    parser.add_argument(
        "--runtime-stats", action="store_true",
        help="print per-stage cache/parallelism statistics after running")
    parser.add_argument(
        "--profile", action="store_true",
        help="print per-experiment wall time plus per-stage wall time, "
             "evaluation counts, and cache/memo/dedup hit rates")
    return parser


def available_experiments() -> tuple[str, ...]:
    """Names accepted on the command line."""
    return tuple(EXPERIMENTS)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.no_cache and args.cache_dir:
        print("--no-cache and --cache-dir are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.jobs < 0:
        print("--jobs must be >= 0 (1 = serial, 0 = one per CPU)",
              file=sys.stderr)
        return 2
    from repro.runtime.engine import configure, default_engine

    engine = configure(jobs=args.jobs, cache_dir=args.cache_dir,
                       use_cache=not args.no_cache)
    show_stats = (args.runtime_stats or args.profile
                  or args.cache_dir is not None)
    names = args.experiments or ["list"]
    if names == ["validate"]:
        from repro.validate import main as validate_main
        return validate_main()
    if names == ["report"]:
        from repro.report import main as report_main
        return report_main()
    if names == ["list"]:
        print("available experiments:")
        for name, (description, _) in EXPERIMENTS.items():
            print(f"  {name:10s} {description}")
        print("  all        run every experiment")
        print("  validate   check every headline claim against the paper")
        print("  report     full reproduction report (tables + validation)")
        return 0
    if names == ["all"]:
        names = list(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}; "
              f"try 'python -m repro list'", file=sys.stderr)
        return 2
    timings: list[tuple[str, float]] = []
    for index, name in enumerate(names):
        if index:
            print()
        started = time.perf_counter()
        print(EXPERIMENTS[name][1]())
        timings.append((name, time.perf_counter() - started))
    if args.profile:
        print()
        print(format_table(
            "Experiment wall time",
            ["experiment", "wall time"],
            [[name, f"{elapsed:.3f} s"] for name, elapsed in timings],
        ))
    if show_stats:
        from repro.experiments.reporting import format_run_report

        print()
        print(format_run_report(engine.report()))
    return 0
