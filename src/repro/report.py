"""Full reproduction report: every experiment's table plus validation.

``python -m repro report`` regenerates, from live measurements, the same
content EXPERIMENTS.md records — all paper tables/figures, the extension
studies, and the PASS/FAIL claim validation — as one self-contained text
document.  Useful for diffing after any model change.
"""

from __future__ import annotations

from repro.tech.pdk import PDK, foundry_m3d_pdk
from repro.validate import format_validation, run_validation


def build_report(pdk: PDK | None = None) -> str:
    """Assemble the full reproduction report."""
    pdk = pdk if pdk is not None else foundry_m3d_pdk()
    from repro.cli import EXPERIMENTS

    sections: list[str] = [
        "reproduction report — Ultra-Dense 3D Physical Design "
        "(DATE 2023)",
        "=" * 72,
    ]
    for name, (description, runner) in EXPERIMENTS.items():
        sections.append("")
        sections.append(f"--- {name}: {description} ---")
        sections.append(runner())
    sections.append("")
    sections.append("--- validation ---")
    sections.append(format_validation(run_validation(pdk)))
    return "\n".join(sections)


def main() -> int:
    """Print the report; returns the validation failure count."""
    report = build_report()
    print(report)
    failures = report.count("[FAIL]")
    return failures
