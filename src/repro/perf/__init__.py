"""Cycle-level performance and energy simulation.

The paper determines workload cycle counts with "architectural simulations"
after physical design (Sec. II).  This package is that simulator: it executes
a DNN layer by layer on an :class:`~repro.arch.accelerator.AcceleratorDesign`
and produces per-layer cycles, energy, and the 2D-vs-M3D benefit comparison
of Fig. 5 and Table I.
"""

from repro.perf.simulator import (
    AcceleratorSimulator,
    ExecutionReport,
    LayerExecution,
    simulate,
)
from repro.perf.compare import BenefitReport, LayerBenefit, compare_designs

__all__ = [
    "AcceleratorSimulator",
    "LayerExecution",
    "ExecutionReport",
    "simulate",
    "BenefitReport",
    "LayerBenefit",
    "compare_designs",
]
