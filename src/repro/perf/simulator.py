"""Layer-by-layer execution model for the case-study accelerator.

Timing model (validated against the paper's Table I, see DESIGN.md Sec. 5):

* A conv/FC layer is tiled into weight slabs on each CS's systolic array;
  each slab streams the output feature map plus a pipeline fill/drain
  overhead; slab weight loading is double-buffered and only costs time when
  it exceeds the streaming time (which makes FC layers weight-load-bound).
* Across CSs the layer partitions along output-channel tiles: with N CSs
  and Kt tiles, min(N, Kt) CSs are used (the paper's N_max = min(N, N#)).
* Output writeback shares a single chip-level bus in both designs, so it
  does **not** parallelize — this serial term is why the paper's per-layer
  speedups saturate below N (e.g. 7.8x, not 8x, for ResNet-18 stage 4).
* Pooling runs on the per-CS post-processing vector units, partitioned
  channel-wise.

Energy model (Eqs. 6-7 structure): compute energy per MAC, RRAM weight-read
energy per bit, SRAM streaming energy per bit, output writeback (SRAM +
bus wire), and leakage of every CS and the memory peripherals over the
layer's runtime — idle CSs keep leaking, which is how the M3D energy stays
~1.0x the 2D baseline's despite the 5.7x shorter runtime.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import require
from repro.obs.trace import span as _span
from repro.tech import constants
from repro.tech.pdk import PDK, foundry_m3d_pdk
from repro.arch.accelerator import AcceleratorDesign, peripheral_area
from repro.arch.systolic import SystolicArrayConfig
from repro.runtime.cache import MISSING
from repro.runtime.memo import memo_table
from repro.workloads.layers import Layer, LayerKind, shape_key
from repro.workloads.models import Network

#: Average on-chip distance for writeback-bus transfers, metres.
_WRITEBACK_WIRE_LENGTH = 5e-3

#: Layer-level memo: (design fingerprint, layer shape) -> numeric results.
_LAYER_MEMO = memo_table("simulator.layer")


@dataclass(frozen=True)
class LayerExecution:
    """Result of executing one layer on one design.

    Attributes:
        layer: The executed layer.
        used_cs: CSs actually used, min(N, N#).
        compute_cycles: Parallelized compute/streaming cycles (per-CS
            critical path).
        writeback_cycles: Serial shared-bus output writeback cycles.
        cycles: Total layer latency in cycles.
        dynamic_energy: Dynamic energy in joules.
        leakage_energy: Static energy over the layer's runtime in joules.
    """

    layer: Layer
    used_cs: int
    compute_cycles: float
    writeback_cycles: float
    cycles: float
    dynamic_energy: float
    leakage_energy: float

    @property
    def energy(self) -> float:
        """Total layer energy in joules."""
        return self.dynamic_energy + self.leakage_energy


@dataclass(frozen=True)
class ExecutionReport:
    """Result of executing a full network on one design.

    Attributes:
        design: The design executed on.
        network: The workload.
        layers: Per-layer execution results, in order.
    """

    design: AcceleratorDesign
    network: Network
    layers: tuple[LayerExecution, ...] = field(default_factory=tuple)

    @property
    def cycles(self) -> float:
        """Total cycles for one inference."""
        return sum(item.cycles for item in self.layers)

    @property
    def runtime(self) -> float:
        """Total runtime in seconds."""
        return self.cycles * self.design.cycle_time

    @property
    def energy(self) -> float:
        """Total energy in joules."""
        return sum(item.energy for item in self.layers)

    @property
    def edp(self) -> float:
        """Energy-delay product in joule-seconds."""
        return self.energy * self.runtime

    @property
    def average_power(self) -> float:
        """Average power in watts."""
        return self.energy / self.runtime

    def layer_result(self, name: str) -> LayerExecution:
        """Look up a per-layer result by layer name."""
        for item in self.layers:
            if item.layer.name == name:
                return item
        raise KeyError(f"no layer named {name!r} in report")


class AcceleratorSimulator:
    """Executes DNN workloads on an :class:`AcceleratorDesign`.

    ``batch`` amortizes each stationary weight slab over multiple inputs:
    per-slab streaming grows with the batch while the slab load happens
    once, so weight-bound layers (FC, transformer projections) move toward
    the compute-bound regime.  Reports cover the whole batch.
    """

    def __init__(self, design: AcceleratorDesign, pdk: PDK | None = None,
                 batch: int = 1) -> None:
        require(batch >= 1, "batch must be >= 1")
        self.design = design
        self.pdk = pdk if pdk is not None else foundry_m3d_pdk()
        self.batch = batch
        self._static_power = self._compute_static_power()
        # Everything run_layer reads beyond the layer itself, so equal
        # fingerprints make layer results interchangeable — including
        # across *different* designs (e.g. 2D baselines that differ only
        # in footprint).  Documented in DESIGN.md ("Layer memoization").
        self._fingerprint = (
            design.cs.array,
            design.n_cs,
            design.total_weight_bandwidth,
            design.writeback_bus_bits,
            design.precision_bits,
            design.pool_lanes,
            design.bank_plan.array.cell.read_energy_per_bit,
            design.cycle_time,
            self._static_power,
            batch,
        )

    def _compute_static_power(self) -> float:
        """Chip static power in watts: all CSs + memory peripherals.

        RRAM cells are non-volatile and contribute no retention power; the
        CNFET access-FET tier leaks only marginally (off-state), folded into
        the peripheral term.
        """
        design = self.design
        cs_leak = design.n_cs * design.cs.leakage(self.pdk)
        perif_gates = peripheral_area(self.pdk) / self.pdk.silicon_library.gate_equivalent.area
        perif_leak = self.pdk.silicon_library.leakage_for_gates(perif_gates)
        return cs_leak + perif_leak

    @property
    def static_power(self) -> float:
        """Chip static power in watts."""
        return self._static_power

    # --- timing -----------------------------------------------------------

    def _conv_fc_cycles(self, layer: Layer) -> tuple[int, float, float]:
        """(used_cs, compute_cycles, writeback_cycles) for conv/FC layers."""
        design = self.design
        array: SystolicArrayConfig = design.cs.array
        k_tiles = array.k_tiles(layer)
        used_cs = min(design.n_cs, k_tiles)
        slabs_per_cs = (math.ceil(k_tiles / used_cs)
                        * array.row_tiles(layer) * array.kernel_passes(layer))
        fill = array.fill_drain_cycles
        per_input_stream = array.stream_cycles_per_slab(layer) - fill
        stream = per_input_stream * self.batch + fill
        # Each CS's weight channel: private bank in M3D, a share of the
        # single channel in (possibly enlarged, Case 1) 2D baselines.
        channel_bits = design.total_weight_bandwidth / design.n_cs
        weight_load = array.weight_bits_per_slab() / channel_bits
        per_slab = max(stream, weight_load)
        compute = slabs_per_cs * per_slab
        writeback = (layer.output_elements * self.batch
                     * design.precision_bits / design.writeback_bus_bits)
        return used_cs, compute, writeback

    def _pool_cycles(self, layer: Layer) -> tuple[int, float, float]:
        """(used_cs, compute_cycles, writeback_cycles) for pooling layers."""
        design = self.design
        lanes = design.pool_lanes
        channel_tiles = max(1, math.ceil(layer.out_channels / lanes))
        used_cs = min(design.n_cs, channel_tiles)
        compute = layer.macs * self.batch / lanes / used_cs
        writeback = (layer.output_elements * self.batch
                     * design.precision_bits / design.writeback_bus_bits)
        return used_cs, compute, writeback

    # --- energy ------------------------------------------------------------

    def _dynamic_energy(self, layer: Layer, used_cs: int) -> float:
        """Dynamic energy of one layer in joules."""
        design = self.design
        precision = design.precision_bits
        mac_energy = design.cs.array.pe.mac_energy
        compute = layer.macs * self.batch * mac_energy
        # Weight slabs are loaded once regardless of the batch size.
        read_energy = design.bank_plan.array.cell.read_energy_per_bit
        weights = layer.weights * precision * read_energy
        # Input streaming: `rows` operands enter each array per cycle while
        # `rows * cols` MACs retire, so SRAM read traffic is macs / cols.
        input_reads = layer.macs * self.batch / design.cs.array.cols
        inputs = input_reads * precision * constants.SRAM_ENERGY_PER_BIT
        # Outputs: one SRAM write at the producer, a bus transfer, and one
        # SRAM write into each consumer CS's input buffer.
        output_bits = layer.output_elements * self.batch * precision
        wire = (output_bits * constants.WIRE_ENERGY_PER_BIT_MM
                * (_WRITEBACK_WIRE_LENGTH / 1e-3))
        outputs = output_bits * constants.SRAM_ENERGY_PER_BIT * (1 + design.n_cs)
        return compute + weights + inputs + outputs + wire

    # --- execution -----------------------------------------------------------

    def run_layer(self, layer: Layer) -> LayerExecution:
        """Execute one layer and return its timing/energy breakdown.

        Results memoize on ``(design fingerprint, layer shape)``: the
        numeric breakdown of a repeated shape (ResNet residual blocks,
        identical layers across sweep points) is computed once and
        re-attached to each requesting layer.
        """
        key = (self._fingerprint, shape_key(layer))
        memoized = _LAYER_MEMO.get(key)
        if memoized is not MISSING:
            with _span("simulator.run_layer") as sp:
                if sp:
                    sp.set(layer=layer.name, memo="hit")
            used_cs, compute, writeback, cycles, dynamic, leakage = memoized
        else:
            with _span("simulator.run_layer") as sp:
                if sp:
                    sp.set(layer=layer.name, memo="miss")
                if layer.kind == LayerKind.POOL:
                    used_cs, compute, writeback = self._pool_cycles(layer)
                else:
                    used_cs, compute, writeback = self._conv_fc_cycles(layer)
                cycles = compute + writeback
                dynamic = self._dynamic_energy(layer, used_cs)
                leakage = (self._static_power * cycles
                           * self.design.cycle_time)
            _LAYER_MEMO.put(
                key, (used_cs, compute, writeback, cycles, dynamic, leakage))
        return LayerExecution(
            layer=layer,
            used_cs=used_cs,
            compute_cycles=compute,
            writeback_cycles=writeback,
            cycles=cycles,
            dynamic_energy=dynamic,
            leakage_energy=leakage,
        )

    def run(self, network: Network) -> ExecutionReport:
        """Execute a full network, one inference."""
        require(network.weight_bits(self.design.precision_bits)
                <= self.design.rram_capacity_bits,
                f"{network.name} weights do not fit in on-chip RRAM "
                f"({network.weight_bits(self.design.precision_bits)} bits > "
                f"{self.design.rram_capacity_bits} bits)")
        with _span("simulator.run", network=network.name,
                   n_cs=self.design.n_cs):
            results = tuple(self.run_layer(layer) for layer in network.layers)
        return ExecutionReport(design=self.design, network=network, layers=results)


def simulate(design: AcceleratorDesign, network: Network,
             pdk: PDK | None = None, batch: int = 1) -> ExecutionReport:
    """Convenience wrapper: simulate ``network`` on ``design``."""
    return AcceleratorSimulator(design, pdk, batch=batch).run(network)


def simulate_spec(spec, pdk: PDK | None = None,
                  batch: int | None = None) -> tuple[ExecutionReport, ExecutionReport]:
    """Simulate the 2D/M3D pair a :class:`~repro.spec.design.DesignSpec`
    denotes, returning ``(baseline_report, m3d_report)``.

    ``batch`` overrides the spec's workload batch.  The import is local:
    the spec layer's evaluator imports this module.
    """
    from repro.spec.resolve import resolve

    point = resolve(spec, pdk)
    batch = batch if batch is not None else spec.workload.batch
    return (
        simulate(point.baseline, point.network, point.pdk, batch=batch),
        simulate(point.m3d, point.network, point.pdk, batch=batch),
    )
