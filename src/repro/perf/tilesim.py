"""Tile-level event simulation: the cross-check for the closed-form model.

:mod:`repro.perf.simulator` computes layer latency in closed form
(per-CS compute plus the serial shared-bus writeback).  This module
*simulates* the same microarchitecture tile by tile:

* K-tiles are assigned round-robin to the used CSs;
* each tile streams its weight slabs (double-buffered loads after the
  first) and accumulates a full output tile;
* output buffers are single-buffered: a CS cannot start its next K-tile
  until its output tile has drained over the **shared** writeback bus,
  which serves drain requests in arrival order (FIFO arbitration);
* layers are barriers (a layer's outputs feed the next layer's inputs).

With the CSs naturally synchronized, every round of tiles produces a
back-to-back burst of drains and the bus backlog re-serializes — which is
exactly why the closed form's additive writeback term is accurate.  The
test suite asserts the two models agree within a few percent on every
evaluated network; when they diverge, the event log (:class:`TileEvent`)
says where the cycles went.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import require
from repro.tech.pdk import PDK, foundry_m3d_pdk
from repro.arch.accelerator import AcceleratorDesign
from repro.workloads.layers import Layer, LayerKind
from repro.workloads.models import Network


@dataclass(frozen=True)
class TileEvent:
    """One simulated activity interval.

    Attributes:
        layer: Layer name.
        cs: CS index (-1 for the shared bus).
        kind: "load", "compute", or "drain".
        start: Start cycle.
        end: End cycle.
    """

    layer: str
    cs: int
    kind: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class TileSimLayerResult:
    """Per-layer outcome of the tile-level simulation.

    Attributes:
        layer: The simulated layer.
        cycles: Layer latency (start of layer to last drain), cycles.
        used_cs: CSs that received tiles.
        bus_busy_cycles: Total bus occupancy for the layer.
        cs_wait_cycles: Total cycles CSs spent blocked on their drains.
    """

    layer: Layer
    cycles: float
    used_cs: int
    bus_busy_cycles: float
    cs_wait_cycles: float


@dataclass(frozen=True)
class TileSimReport:
    """Whole-network outcome.

    Attributes:
        design: The design simulated.
        network: The workload.
        layers: Per-layer results.
        events: Full event log (optional; empty when tracing is off).
    """

    design: AcceleratorDesign
    network: Network
    layers: tuple[TileSimLayerResult, ...]
    events: tuple[TileEvent, ...] = field(default_factory=tuple)

    @property
    def cycles(self) -> float:
        """Total network latency in cycles."""
        return sum(item.cycles for item in self.layers)

    @property
    def runtime(self) -> float:
        """Total runtime in seconds."""
        return self.cycles * self.design.cycle_time


class TileLevelSimulator:
    """Simulates tile-by-tile execution with shared-bus arbitration."""

    def __init__(self, design: AcceleratorDesign, pdk: PDK | None = None,
                 batch: int = 1, trace: bool = False) -> None:
        require(batch >= 1, "batch must be >= 1")
        self.design = design
        self.pdk = pdk if pdk is not None else foundry_m3d_pdk()
        self.batch = batch
        self.trace = trace

    # --- per-layer simulation ---------------------------------------------------

    def _tile_parameters(self, layer: Layer) -> dict[str, float]:
        design = self.design
        array = design.cs.array
        fill = array.fill_drain_cycles
        stream = ((array.stream_cycles_per_slab(layer) - fill) * self.batch
                  + fill)
        channel_bits = design.total_weight_bandwidth / design.n_cs
        load = array.weight_bits_per_slab() / channel_bits
        slabs = array.row_tiles(layer) * array.kernel_passes(layer)
        positions = 1 if layer.kind == LayerKind.FC \
            else layer.out_size * layer.out_size
        # Drain cost per output channel; each tile drains exactly the
        # channels it produced (partial last tiles, grouped layers).
        drain_per_channel = (positions * self.batch
                             * design.precision_bits
                             / design.writeback_bus_bits)
        return {"stream": stream, "load": load, "slabs": slabs,
                "drain_per_channel": drain_per_channel}

    def run_layer(self, layer: Layer, start: float = 0.0) -> TileSimLayerResult:
        """Simulate one conv/FC layer starting at cycle ``start``."""
        design = self.design
        if layer.kind == LayerKind.POOL:
            return self._run_pool(layer, start)
        array = design.cs.array
        params = self._tile_parameters(layer)
        k_tiles = array.k_tiles(layer)
        used = min(design.n_cs, k_tiles)

        # Tile i goes to CS (i mod used); compute per tile: first slab's
        # load is exposed, subsequent loads double-buffer under streaming.
        per_slab = max(params["stream"], params["load"])
        tile_compute = params["load"] + params["stream"] \
            + (params["slabs"] - 1) * per_slab

        # Channels per tile: full array columns except a partial last tile
        # in each group.
        group_out = layer.out_channels // layer.channel_groups
        tiles_per_group = max(1, math.ceil(group_out / array.cols))
        tile_channels: list[int] = []
        for _ in range(layer.channel_groups):
            remaining = group_out
            for _ in range(tiles_per_group):
                tile_channels.append(min(array.cols, remaining))
                remaining -= min(array.cols, remaining)

        cs_time = [start] * used
        bus_free = start
        bus_busy = 0.0
        cs_wait = 0.0
        events: list[TileEvent] = []
        for tile in range(k_tiles):
            cs = tile % used
            compute_start = cs_time[cs]
            compute_end = compute_start + tile_compute
            drain_len = params["drain_per_channel"] * tile_channels[tile]
            drain_start = max(bus_free, compute_end)
            drain_end = drain_start + drain_len
            bus_free = drain_end
            bus_busy += drain_len
            # Single-buffered outputs: the CS blocks until its drain ends.
            cs_wait += drain_end - compute_end
            cs_time[cs] = drain_end
            if self.trace:
                events.append(TileEvent(layer.name, cs, "compute",
                                        compute_start, compute_end))
                events.append(TileEvent(layer.name, -1, "drain",
                                        drain_start, drain_end))
        end = max(cs_time)
        result = TileSimLayerResult(
            layer=layer,
            cycles=end - start,
            used_cs=used,
            bus_busy_cycles=bus_busy,
            cs_wait_cycles=cs_wait,
        )
        self._last_events = events
        return result

    def _run_pool(self, layer: Layer, start: float) -> TileSimLayerResult:
        """Pooling uses the closed-form vector-unit model (no tiles)."""
        design = self.design
        lanes = design.pool_lanes
        tiles = max(1, math.ceil(layer.out_channels / lanes))
        used = min(design.n_cs, tiles)
        compute = layer.macs * self.batch / lanes / used
        drain = (layer.output_elements * self.batch
                 * design.precision_bits / design.writeback_bus_bits)
        self._last_events = []
        return TileSimLayerResult(
            layer=layer, cycles=compute + drain, used_cs=used,
            bus_busy_cycles=drain, cs_wait_cycles=drain)

    def run(self, network: Network) -> TileSimReport:
        """Simulate a full network with layer barriers."""
        require(network.weight_bits(self.design.precision_bits)
                <= self.design.rram_capacity_bits,
                f"{network.name} weights do not fit in on-chip RRAM")
        time = 0.0
        results: list[TileSimLayerResult] = []
        events: list[TileEvent] = []
        for layer in network.layers:
            result = self.run_layer(layer, time)
            results.append(result)
            events.extend(self._last_events)
            time += result.cycles
        return TileSimReport(design=self.design, network=network,
                             layers=tuple(results), events=tuple(events))


def tile_simulate(design: AcceleratorDesign, network: Network,
                  pdk: PDK | None = None, batch: int = 1) -> TileSimReport:
    """Convenience wrapper for :class:`TileLevelSimulator`."""
    return TileLevelSimulator(design, pdk, batch=batch).run(network)
