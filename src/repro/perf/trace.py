"""Execution-trace export for the performance simulator.

Turns an :class:`~repro.perf.simulator.ExecutionReport` into a flat,
spreadsheet-friendly table (one row per layer with cycles, component
breakdown, energy, and utilization) — the artifact you diff when the
simulator and the analytical model disagree, and the raw material behind
the per-layer tables in EXPERIMENTS.md.
"""

from __future__ import annotations

import io
from dataclasses import dataclass

from repro.errors import require
from repro.perf.simulator import ExecutionReport

#: Columns of the exported trace, in order.
TRACE_COLUMNS: tuple[str, ...] = (
    "layer",
    "kind",
    "used_cs",
    "compute_cycles",
    "writeback_cycles",
    "total_cycles",
    "cycle_share",
    "dynamic_energy_j",
    "leakage_energy_j",
    "macs",
    "weights",
)


@dataclass(frozen=True)
class TraceRow:
    """One exported trace row (see :data:`TRACE_COLUMNS`)."""

    layer: str
    kind: str
    used_cs: int
    compute_cycles: float
    writeback_cycles: float
    total_cycles: float
    cycle_share: float
    dynamic_energy_j: float
    leakage_energy_j: float
    macs: int
    weights: int

    def as_tuple(self) -> tuple:
        """Values in :data:`TRACE_COLUMNS` order."""
        return tuple(getattr(self, column) for column in TRACE_COLUMNS)


def trace_rows(report: ExecutionReport) -> tuple[TraceRow, ...]:
    """Flatten a report into trace rows."""
    total = report.cycles
    require(total > 0, "report has no cycles")
    rows: list[TraceRow] = []
    for item in report.layers:
        rows.append(TraceRow(
            layer=item.layer.name,
            kind=item.layer.kind.value,
            used_cs=item.used_cs,
            compute_cycles=item.compute_cycles,
            writeback_cycles=item.writeback_cycles,
            total_cycles=item.cycles,
            cycle_share=item.cycles / total,
            dynamic_energy_j=item.dynamic_energy,
            leakage_energy_j=item.leakage_energy,
            macs=item.layer.macs,
            weights=item.layer.weights,
        ))
    return tuple(rows)


def to_csv(report: ExecutionReport) -> str:
    """Render a report as CSV text (header + one row per layer)."""
    buffer = io.StringIO()
    buffer.write(",".join(TRACE_COLUMNS) + "\n")
    for row in trace_rows(report):
        values = []
        for value in row.as_tuple():
            if isinstance(value, float):
                values.append(f"{value:.6g}")
            else:
                values.append(str(value))
        buffer.write(",".join(values) + "\n")
    return buffer.getvalue()


def dominant_layers(report: ExecutionReport, count: int = 5) -> tuple[TraceRow, ...]:
    """The ``count`` layers with the largest cycle share."""
    require(count >= 1, "count must be >= 1")
    rows = sorted(trace_rows(report), key=lambda r: r.total_cycles,
                  reverse=True)
    return tuple(rows[:count])
