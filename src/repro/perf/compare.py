"""2D-vs-M3D benefit comparison (the quantities of Fig. 5 and Table I).

Benefits follow the paper's conventions:

* ``speedup``        = T_2D / T_3D                          (Eq. 5)
* ``energy_benefit`` = E_2D / E_3D  (0.99x means M3D spends ~1% more energy)
* ``edp_benefit``    = speedup * energy_benefit             (Eq. 8)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import require
from repro.perf.simulator import ExecutionReport, LayerExecution


@dataclass(frozen=True)
class LayerBenefit:
    """Per-layer benefit of the M3D design over the 2D baseline.

    Attributes:
        name: Layer name.
        baseline: 2D execution result.
        m3d: M3D execution result.
    """

    name: str
    baseline: LayerExecution
    m3d: LayerExecution

    @property
    def speedup(self) -> float:
        """Latency benefit T_2D / T_3D."""
        return self.baseline.cycles / self.m3d.cycles

    @property
    def energy_benefit(self) -> float:
        """Energy benefit E_2D / E_3D."""
        return self.baseline.energy / self.m3d.energy

    @property
    def edp_benefit(self) -> float:
        """EDP benefit (Eq. 8)."""
        return self.speedup * self.energy_benefit


@dataclass(frozen=True)
class BenefitReport:
    """Network-level benefit of an M3D design over its 2D baseline.

    Attributes:
        baseline: 2D execution report.
        m3d: M3D execution report.
        layers: Per-layer benefits in execution order.
    """

    baseline: ExecutionReport
    m3d: ExecutionReport
    layers: tuple[LayerBenefit, ...] = field(default_factory=tuple)

    @property
    def speedup(self) -> float:
        """Whole-network speedup T_2D / T_3D."""
        return self.baseline.runtime / self.m3d.runtime

    @property
    def energy_benefit(self) -> float:
        """Whole-network energy benefit E_2D / E_3D."""
        return self.baseline.energy / self.m3d.energy

    @property
    def edp_benefit(self) -> float:
        """Whole-network EDP benefit (Eq. 8)."""
        return self.speedup * self.energy_benefit

    def layer(self, name: str) -> LayerBenefit:
        """Look up a per-layer benefit by layer name."""
        for item in self.layers:
            if item.name == name:
                return item
        raise KeyError(f"no layer named {name!r} in benefit report")


def compare_designs(baseline: ExecutionReport, m3d: ExecutionReport) -> BenefitReport:
    """Build a :class:`BenefitReport` from two execution reports.

    The reports must execute the same network; iso-footprint and
    iso-capacity are properties of the designs being compared and are
    validated where the designs are constructed.
    """
    require(baseline.network.name == m3d.network.name,
            "reports must execute the same network")
    require(len(baseline.layers) == len(m3d.layers),
            "reports must have the same layer count")
    layers = tuple(
        LayerBenefit(name=base.layer.name, baseline=base, m3d=new)
        for base, new in zip(baseline.layers, m3d.layers)
    )
    return BenefitReport(baseline=baseline, m3d=m3d, layers=layers)
