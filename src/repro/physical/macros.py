"""Macro and blockage models for the floorplanner.

The key M3D physical-design mechanism of the paper (Sec. II): an RRAM array
macro's blockage differs between the flows.

* **2D baseline** — the Si access transistors sit under the cells, so the
  macro *fully blocks* every tier, including the Si CMOS placement tier
  (Fig. 3e: "no additional Si CMOS circuits can be placed below the array").
* **M3D** — the access FETs move to the CNFET tier, so the macro becomes a
  *partial* blockage (RRAM + CNFET tiers only) and the Si tier under the
  array opens up for standard cells and CS blocks; only the memory
  peripherals remain as full Si blockages.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.errors import require
from repro.physical.netlist import DesignBlock


class BlockageKind(enum.Enum):
    """How a macro blocks the tiers it does not occupy for devices."""

    #: Blocks every placement tier under/above it (2D RRAM arrays).
    FULL = "full"
    #: Blocks only its own device tiers; Si underneath stays placeable
    #: (M3D RRAM arrays with CNFET access FETs).
    PARTIAL = "partial"


@dataclass(frozen=True)
class Macro:
    """A hard macro to floorplan.

    Attributes:
        name: Instance name.
        width: Width in metres.
        height: Height in metres.
        blockage: Blockage kind (see :class:`BlockageKind`).
        tiers: Tier names whose devices the macro occupies.
    """

    name: str
    width: float
    height: float
    blockage: BlockageKind
    tiers: tuple[str, ...]

    def __post_init__(self) -> None:
        require(self.width > 0 and self.height > 0,
                f"{self.name}: macro dimensions must be positive")
        require(len(self.tiers) >= 1, "macro must occupy at least one tier")

    @property
    def area(self) -> float:
        """Macro footprint, m^2."""
        return self.width * self.height

    def blocks_silicon(self) -> bool:
        """True when no standard cell can be placed under the macro."""
        return self.blockage == BlockageKind.FULL or "si_cmos" in self.tiers


def _squarish(area: float, aspect: float = 1.0) -> tuple[float, float]:
    """Width/height of a rectangle of ``area`` with the given aspect ratio."""
    require(area > 0, "area must be positive")
    require(aspect > 0, "aspect must be positive")
    width = math.sqrt(area * aspect)
    return width, area / width


def rram_array_macro(block: DesignBlock, is_m3d: bool,
                     aspect: float = 1.0) -> Macro:
    """Build the RRAM cell-array macro for one bank.

    2D: full blockage (Si access FETs under the cells).
    M3D: partial blockage over the RRAM + CNFET tiers only.
    """
    width, height = _squarish(block.area, aspect)
    if is_m3d:
        return Macro(name=block.name, width=width, height=height,
                     blockage=BlockageKind.PARTIAL, tiers=("rram", "cnfet"))
    return Macro(name=block.name, width=width, height=height,
                 blockage=BlockageKind.FULL, tiers=("rram", "si_cmos"))


def sram_macro(block: DesignBlock, aspect: float = 2.0) -> Macro:
    """SRAM buffer macro: always a full Si-tier occupant."""
    width, height = _squarish(block.area, aspect)
    return Macro(name=block.name, width=width, height=height,
                 blockage=BlockageKind.FULL, tiers=("si_cmos",))


def logic_block_macro(block: DesignBlock, aspect: float = 1.0) -> Macro:
    """Soft logic block shaped into a placeable rectangle."""
    width, height = _squarish(block.area, aspect)
    return Macro(name=block.name, width=width, height=height,
                 blockage=BlockageKind.FULL, tiers=("si_cmos",))
