"""Static timing analysis at block level.

The critical path of the case-study accelerator is the PE MAC pipeline
stage plus the longest buffered inter-block wire (the weight channel from a
bank's peripheral block to its CS).  Both designs target the same 20 MHz
clock (Sec. II: the 40 nm-optimized architecture is relaxed to 20 MHz at the
130 nm node), so the interesting output is the achieved frequency and the
slack at target.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import require
from repro.tech import constants
from repro.tech.pdk import PDK
from repro.physical.floorplan import Floorplan
from repro.physical.netlist import Netlist
from repro.physical.routing import BUFFER_SPACING

#: Logic depth of the MAC pipeline stage, in gate-equivalent levels
#: (8x8 multiplier partial-product tree + 24-bit accumulate).
MAC_PIPELINE_DEPTH = 24


@dataclass(frozen=True)
class TimingResult:
    """Timing outcome for one design.

    Attributes:
        logic_delay: MAC pipeline delay, seconds.
        wire_delay: Longest buffered inter-block wire delay, seconds.
        critical_path: Total critical path, seconds.
        target_frequency: Target clock, Hz.
    """

    logic_delay: float
    wire_delay: float
    critical_path: float
    target_frequency: float

    @property
    def achieved_frequency(self) -> float:
        """Maximum frequency supported by the critical path, Hz."""
        return 1.0 / self.critical_path

    @property
    def meets_target(self) -> bool:
        """True when the design closes timing at the target clock."""
        return self.achieved_frequency >= self.target_frequency

    @property
    def slack(self) -> float:
        """Positive slack at the target clock, seconds."""
        return 1.0 / self.target_frequency - self.critical_path


def buffered_wire_delay(length: float) -> float:
    """Delay of an optimally repeated wire of ``length`` metres.

    Per repeated segment: buffer intrinsic delay + segment RC; the segment
    count is length / spacing.
    """
    require(length >= 0, "length must be non-negative")
    if length == 0:
        return 0.0
    segments = max(1, math.ceil(length / BUFFER_SPACING))
    segment_length = length / segments
    segment_rc = (constants.WIRE_RES_PER_M * segment_length
                  * constants.WIRE_CAP_PER_M * segment_length / 2.0)
    buffer_delay = 0.6 * constants.GATE_DELAY_130NM
    return segments * (buffer_delay + segment_rc)


def longest_net_length(floorplan: Floorplan, netlist: Netlist) -> float:
    """Longest inter-block net HPWL, metres."""
    longest = 0.0
    for net in netlist.nets:
        points = [floorplan.placed(net.driver).rect.center]
        points += [floorplan.placed(s).rect.center for s in net.sinks]
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        longest = max(longest, (max(xs) - min(xs)) + (max(ys) - min(ys)))
    return longest


def analyze_timing(
    floorplan: Floorplan,
    netlist: Netlist,
    pdk: PDK,
    target_frequency: float,
) -> TimingResult:
    """Run the block-level static timing model."""
    require(target_frequency > 0, "target frequency must be positive")
    nand = pdk.silicon_library.gate_equivalent
    logic_delay = MAC_PIPELINE_DEPTH * nand.delay_with_load(
        2.0 * nand.input_capacitance)
    wire_delay = buffered_wire_delay(longest_net_length(floorplan, netlist))
    # M3D tier crossings add one ILV RC per crossing — negligible by design,
    # which is exactly why fine-pitch ILVs keep folding free.
    ilv_delay = 2.0 * pdk.ilv.rc_delay() if floorplan.is_m3d else 0.0
    return TimingResult(
        logic_delay=logic_delay,
        wire_delay=wire_delay + ilv_delay,
        critical_path=logic_delay + wire_delay + ilv_delay,
        target_frequency=target_frequency,
    )
