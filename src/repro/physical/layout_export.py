"""Layout export: render a floorplan as an SVG drawing.

Stands in for the GDS screenshots of the paper's Fig. 2b/2d: one rectangle
per placed block, colored by kind, with the M3D upper-tier arrays drawn
translucent so the CS slots underneath remain visible — which makes the
"compute under memory" geometry directly inspectable in a browser.
"""

from __future__ import annotations

from xml.sax.saxutils import escape

from repro.errors import require
from repro.physical.floorplan import Floorplan
from repro.physical.netlist import BlockKind

#: Fill colors per block kind.
_COLORS: dict[BlockKind, str] = {
    BlockKind.LOGIC: "#4f81bd",
    BlockKind.SRAM_MACRO: "#9bbb59",
    BlockKind.RRAM_MACRO: "#c0504d",
    BlockKind.IO: "#8064a2",
}

_CANVAS = 800.0


def floorplan_to_svg(floorplan: Floorplan, title: str | None = None) -> str:
    """Render ``floorplan`` as an SVG document string."""
    die = floorplan.die
    require(die.width > 0 and die.height > 0, "die must have positive size")
    scale = _CANVAS / max(die.width, die.height)
    width = die.width * scale
    height = die.height * scale

    def rect(x: float, y: float, w: float, h: float, fill: str,
             opacity: float, label: str) -> str:
        # SVG y grows downward; flip so the floorplan's y=0 is the bottom.
        top = height - (y + h) * scale
        return (
            f'<rect x="{x * scale:.2f}" y="{top:.2f}" '
            f'width="{w * scale:.2f}" height="{h * scale:.2f}" '
            f'fill="{fill}" fill-opacity="{opacity}" stroke="#333" '
            f'stroke-width="0.5"><title>{escape(label)}</title></rect>'
        )

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'width="{width:.0f}" height="{height + 24:.0f}" '
        f'viewBox="0 -24 {width:.0f} {height + 24:.0f}">',
        f'<text x="4" y="-8" font-family="monospace" font-size="14">'
        f'{escape(title or floorplan.name)}</text>',
        rect(die.x, die.y, die.width, die.height, "#f7f7f7", 1.0, "die"),
    ]
    # Draw Si blocks first, then upper-tier macros translucent on top.
    lower = [p for p in floorplan.placements if "si_cmos" in p.tiers]
    upper = [p for p in floorplan.placements if "si_cmos" not in p.tiers]
    for placed in lower + upper:
        translucent = floorplan.is_m3d and "si_cmos" not in placed.tiers
        opacity = 0.35 if translucent else 0.9
        label = f"{placed.name} [{'/'.join(sorted(placed.tiers))}]"
        parts.append(rect(placed.rect.x, placed.rect.y, placed.rect.width,
                          placed.rect.height, _COLORS[placed.kind],
                          opacity, label))
    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(floorplan: Floorplan, path: str, title: str | None = None) -> None:
    """Write the floorplan SVG to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(floorplan_to_svg(floorplan, title))
