"""Per-tier power analysis (the paper's Tempus step, Obs. 2).

Power is attributed per placed block and per device tier:

* CS logic — MAC array switching at its compute duty plus control logic;
* SRAM buffers — streaming reads/writes at the array's operand rates;
* memory peripherals — the peripheral share of each weight-channel read;
* RRAM macro — the in-array share of read energy; in M3D a further slice
  of that share sits in the CNFET access-FET tier;
* bus/IO — writeback transfers across the die;
* leakage — every Si block's static power.

The two headline quantities of Obs. 2 fall out of the attribution:
``upper_tier_fraction`` (paper: <1%) and the peak-power-density ratio
between M3D and 2D (paper: +1%), computed by stacking the upper-tier power
density onto the Si blocks that sit underneath the arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import require
from repro.tech import constants
from repro.tech.pdk import PDK
from repro.arch.accelerator import AcceleratorDesign
from repro.physical.floorplan import Floorplan
from repro.physical.netlist import BlockKind, Netlist

#: Share of the RRAM read energy dissipated inside the cell array
#: (bit-line/word-line charging and the access device); the rest burns in
#: the sense amplifiers, drivers and decoders of the Si-tier peripherals.
RRAM_CELL_ENERGY_FRACTION = 0.15

#: Of the in-array share, the slice dissipated in the access FET itself —
#: the part that moves to the CNFET tier in M3D designs.
ACCESS_FET_ENERGY_FRACTION = 0.6

#: Physical footprint of one weight channel's sense-amplifier strip, m^2.
#: A channel is the same 256-bit strip in both designs, so its power
#: concentrates over the same area whether the periphery serves one bank
#: (2D) or eight (M3D).
CHANNEL_STRIP_AREA = 0.5e-6


@dataclass(frozen=True)
class ActivityFactors:
    """Duty factors for the power model (Tempus-style default activities).

    Attributes:
        cs_compute: Fraction of cycles each CS computes at full rate.
        weight_channel: Fraction of cycles each weight channel streams.
        writeback_bus: Fraction of cycles the shared bus transfers.
    """

    cs_compute: float = 0.85
    weight_channel: float = 0.05
    writeback_bus: float = 0.10

    def __post_init__(self) -> None:
        for name in ("cs_compute", "weight_channel", "writeback_bus"):
            value = getattr(self, name)
            require(0.0 <= value <= 1.0, f"{name} must be in [0, 1]")


@dataclass(frozen=True)
class PowerReport:
    """Power outcome for one design.

    Attributes:
        design_name: Design identifier.
        per_block: Power per placed block, watts.
        per_tier: Power per device tier, watts.
        block_density: Power density per Si block (upper-tier power of
            overlapping arrays stacked in), W/m^2.
    """

    design_name: str
    per_block: dict[str, float] = field(default_factory=dict)
    per_tier: dict[str, float] = field(default_factory=dict)
    block_density: dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        """Total chip power, watts."""
        return sum(self.per_tier.values())

    @property
    def upper_tier_power(self) -> float:
        """Power in the BEOL tiers (RRAM + CNFET), watts."""
        return self.per_tier.get("rram", 0.0) + self.per_tier.get("cnfet", 0.0)

    @property
    def upper_tier_fraction(self) -> float:
        """Fraction of chip power in the upper tiers (Obs. 2: <1%)."""
        return self.upper_tier_power / self.total

    @property
    def peak_power_density(self) -> float:
        """Highest block power density on the chip, W/m^2."""
        return max(self.block_density.values())


def analyze_power(
    floorplan: Floorplan,
    netlist: Netlist,
    design: AcceleratorDesign,
    pdk: PDK,
    activity: ActivityFactors | None = None,
    frequency_hz: float | None = None,
) -> PowerReport:
    """Run the per-tier power model on a placed design.

    ``frequency_hz`` overrides the design's architected clock (the flow
    spec's target-frequency knob); ``None`` keeps ``design.frequency_hz``.
    """
    activity = activity if activity is not None else ActivityFactors()
    freq = design.frequency_hz if frequency_hz is None else frequency_hz
    precision = design.precision_bits
    lib = pdk.silicon_library

    per_block: dict[str, float] = {}
    per_tier: dict[str, float] = {"si_cmos": 0.0, "rram": 0.0, "cnfet": 0.0}
    channel_dynamic: dict[str, float] = {}

    read_energy_per_bit = constants.RRAM_READ_ENERGY_PER_BIT
    cell_share = read_energy_per_bit * RRAM_CELL_ENERGY_FRACTION
    perif_share = read_energy_per_bit - cell_share
    channel_rate = design.bank_width_bits * freq * activity.weight_channel

    for block in netlist.blocks.values():
        if block.kind == BlockKind.LOGIC and block.name.startswith("cs"):
            array = design.cs.array
            compute = (array.peak_macs_per_cycle * array.pe.mac_energy
                       * freq * activity.cs_compute)
            control = lib.energy_for_gates(design.cs.control_gates) * freq
            leak = lib.leakage_for_gates(block.gate_count)
            power = compute + control + leak
            per_tier["si_cmos"] += power
        elif block.kind == BlockKind.SRAM_MACRO:
            stream_bits = design.cs.array.rows * precision
            dynamic = (stream_bits * constants.SRAM_ENERGY_PER_BIT * freq
                       * activity.cs_compute)
            leak = block.bits * constants.SRAM_LEAKAGE_PER_BIT
            power = dynamic + leak
            per_tier["si_cmos"] += power
        elif block.name.startswith("perif"):
            dynamic = channel_rate * perif_share
            channel_dynamic[block.name] = dynamic
            leak = lib.leakage_for_gates(block.gate_count)
            power = dynamic + lib.energy_for_gates(block.gate_count) * freq + leak
            per_tier["si_cmos"] += power
        elif block.kind == BlockKind.RRAM_MACRO:
            power = channel_rate * cell_share
            if design.is_m3d:
                access = power * ACCESS_FET_ENERGY_FRACTION
                per_tier["cnfet"] += access
                per_tier["rram"] += power - access
            else:
                # 2D: the access FET is silicon, under the array.
                access = power * ACCESS_FET_ENERGY_FRACTION
                per_tier["si_cmos"] += access
                per_tier["rram"] += power - access
        elif block.kind == BlockKind.IO:
            die_span = (floorplan.die.width + floorplan.die.height) / 2.0
            dynamic = (design.writeback_bus_bits * freq * activity.writeback_bus
                       * constants.WIRE_ENERGY_PER_BIT_MM * (die_span / 1e-3))
            power = dynamic + lib.leakage_for_gates(block.gate_count)
            per_tier["si_cmos"] += power
        else:
            power = lib.leakage_for_gates(block.gate_count)
            per_tier["si_cmos"] += power
        per_block[block.name] = power

    # Power density per Si region, with overlapping upper-tier power stacked
    # onto whatever silicon sits underneath the arrays (M3D only).  A CS and
    # its private buffer form one thermal region (one CS "slot"), matching
    # the granularity heat spreads over in practice.
    density: dict[str, float] = {}
    upper_blocks = [p for p in floorplan.placements
                    if p.kind == BlockKind.RRAM_MACRO and floorplan.is_m3d]
    regions: dict[str, list] = {}
    for placed in floorplan.placements:
        if "si_cmos" not in placed.tiers:
            continue
        region = placed.name.removesuffix("_buf")
        regions.setdefault(region, []).append(placed)
    for region, members in regions.items():
        power = sum(per_block[m.name] for m in members)
        area = sum(m.rect.area for m in members)
        # Sense-channel power concentrates over the channel strip, which has
        # the same physical size in both designs.
        strip_power = sum(channel_dynamic.get(m.name, 0.0) for m in members)
        local = (power - strip_power) / area
        if strip_power > 0:
            local += strip_power / CHANNEL_STRIP_AREA
        for upper in upper_blocks:
            if any(m.rect.overlaps(upper.rect) for m in members):
                local += per_block[upper.name] / upper.rect.area
        density[region] = local
    # 2D arrays are themselves Si blockages carrying their access-FET power.
    if not floorplan.is_m3d:
        for placed in floorplan.placements:
            if placed.kind == BlockKind.RRAM_MACRO:
                density[placed.name] = per_block[placed.name] / placed.rect.area

    return PowerReport(
        design_name=design.name,
        per_block=per_block,
        per_tier=per_tier,
        block_density=density,
    )
