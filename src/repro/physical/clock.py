"""Clock-tree synthesis model (H-tree) for a placed design.

The flow's timing model checks the data path; this module sizes the clock
network that would drive it: a balanced H-tree from the die centre to every
sequential block, with per-level repeaters.  Outputs: total clock
wirelength, buffer count, switched capacitance and clock power at the
target frequency, and a skew estimate from per-level delay mismatch.

At the case study's 20 MHz the clock network is a small power term for
both designs — and, importantly for the M3D story, it is *identical* in
both (same die, same frequency), so it only dilutes, never flips, the
reported ratios.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import require
from repro.tech import constants
from repro.physical.floorplan import Floorplan
from repro.physical.netlist import BlockKind, Netlist

#: Per-level delay mismatch fraction (process variation on buffers/wire).
LEVEL_MISMATCH = 0.03
#: Flip-flop clock-pin capacitance, farads.
FF_CLOCK_PIN_CAP = 1.5e-15
#: Fraction of a logic block's gates that are sequential.
SEQUENTIAL_FRACTION = 0.15


@dataclass(frozen=True)
class ClockTree:
    """A synthesized H-tree.

    Attributes:
        design_name: Design identifier.
        sink_count: Clocked leaf regions (one per logic/SRAM block).
        levels: H-tree depth.
        wirelength: Total tree wirelength, metres.
        buffer_count: Repeaters in the tree.
        switched_capacitance: Wire + pin capacitance, farads.
        frequency_hz: Clock frequency.
    """

    design_name: str
    sink_count: int
    levels: int
    wirelength: float
    buffer_count: int
    switched_capacitance: float
    frequency_hz: float

    @property
    def power(self) -> float:
        """Clock dynamic power C V^2 f, watts (full swing every cycle)."""
        supply = 1.2
        return self.switched_capacitance * supply * supply * self.frequency_hz

    @property
    def skew(self) -> float:
        """Skew estimate: per-level mismatch accumulated down the tree, s."""
        per_level_delay = 0.6 * constants.GATE_DELAY_130NM
        return self.levels * per_level_delay * LEVEL_MISMATCH

    def skew_fraction_of_period(self) -> float:
        """Skew as a fraction of the clock period (budget: <10%)."""
        return self.skew * self.frequency_hz


def synthesize_clock_tree(
    floorplan: Floorplan,
    netlist: Netlist,
    frequency_hz: float,
) -> ClockTree:
    """Build the H-tree for a placed design."""
    require(frequency_hz > 0, "frequency must be positive")
    sinks = [b for b in netlist.blocks.values()
             if b.kind in (BlockKind.LOGIC, BlockKind.SRAM_MACRO)]
    require(len(sinks) >= 1, "design has no clocked blocks")
    sink_count = len(sinks)
    levels = max(1, math.ceil(math.log(sink_count, 4)))

    # H-tree wirelength: each level halves the span; level l routes
    # 4^l segments of length span / 2^l.
    span = max(floorplan.die.width, floorplan.die.height)
    wirelength = 0.0
    for level in range(levels):
        segments = 4 ** level
        segment_length = span / (2 ** level)
        wirelength += segments * segment_length
    # Leaf-level wiring inside each sink region plus per-FF pins.
    ff_count = sum(
        b.gate_count * SEQUENTIAL_FRACTION for b in sinks
        if b.kind == BlockKind.LOGIC)
    ff_count += sum(1024 for b in sinks if b.kind == BlockKind.SRAM_MACRO)
    wire_cap = wirelength * constants.WIRE_CAP_PER_M
    pin_cap = ff_count * FF_CLOCK_PIN_CAP
    from repro.physical.routing import BUFFER_SPACING
    buffers = max(1, int(wirelength / BUFFER_SPACING)) + 4 ** levels
    return ClockTree(
        design_name=floorplan.name,
        sink_count=sink_count,
        levels=levels,
        wirelength=wirelength,
        buffer_count=buffers,
        switched_capacitance=wire_cap + pin_cap,
        frequency_hz=frequency_hz,
    )
