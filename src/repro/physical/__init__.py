"""Physical design substrate: the RTL-to-GDS flow stand-in (paper Fig. 4b).

The paper's case study runs Synopsys DC synthesis plus a custom monolithic-3D
Cadence Innovus place-and-route flow on a foundry PDK.  This package models
the same pipeline at block level:

    synthesize -> floorplan -> place -> route -> timing -> power

producing the quantities the paper reports from its flow: footprint, area
breakdown per tier, wirelength, achieved frequency at the 20 MHz target, and
per-tier power (Obs. 2's "<1% power in the upper layers" and "+1% peak power
density").
"""

from repro.physical.netlist import (
    BlockKind,
    DesignBlock,
    Net,
    Netlist,
    synthesize,
)
from repro.physical.macros import BlockageKind, Macro, rram_array_macro
from repro.physical.floorplan import Floorplan, PlacedBlock, Rect, build_floorplan
from repro.physical.placement import legalize_floorplan, placement_quality
from repro.physical.routing import RoutingResult, route
from repro.physical.timing import TimingResult, analyze_timing
from repro.physical.power import ActivityFactors, PowerReport, analyze_power
from repro.physical.clock import ClockTree, synthesize_clock_tree
from repro.physical.congestion import (
    CongestionReport,
    analyze_congestion,
    congestion_report,
)
from repro.physical.thermal import ThermalReport, analyze_thermal
from repro.physical.flow import (
    FLOW_STAGES,
    FlowFeasibility,
    FlowOutcome,
    FlowResult,
    run_flow,
    run_staged_flow,
    run_staged_flows,
)

__all__ = [
    "BlockKind",
    "DesignBlock",
    "Net",
    "Netlist",
    "synthesize",
    "Macro",
    "BlockageKind",
    "rram_array_macro",
    "Rect",
    "PlacedBlock",
    "Floorplan",
    "build_floorplan",
    "legalize_floorplan",
    "placement_quality",
    "RoutingResult",
    "route",
    "TimingResult",
    "analyze_timing",
    "ActivityFactors",
    "PowerReport",
    "analyze_power",
    "ClockTree",
    "synthesize_clock_tree",
    "CongestionReport",
    "analyze_congestion",
    "congestion_report",
    "ThermalReport",
    "analyze_thermal",
    "FLOW_STAGES",
    "FlowFeasibility",
    "FlowOutcome",
    "FlowResult",
    "run_flow",
    "run_staged_flow",
    "run_staged_flows",
]
