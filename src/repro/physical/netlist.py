"""Block-level synthesis model.

Stands in for RTL synthesis (Synopsys DC in the paper's flow): converts an
:class:`~repro.arch.accelerator.AcceleratorDesign` into a block-level
netlist — logic blocks with gate counts, SRAM/RRAM macros, and the nets
connecting them.  Gate counts come from the architecture configuration, so
the "synthesis" is a deterministic module-generator model rather than a
logic optimizer; that is exactly the level of detail the paper's area and
power comparisons consume.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from repro.errors import require
from repro.tech.pdk import PDK
from repro.arch.accelerator import AcceleratorDesign, PERIPHERAL_GATES


class BlockKind(enum.Enum):
    """Kind of a netlist block."""

    LOGIC = "logic"
    SRAM_MACRO = "sram"
    RRAM_MACRO = "rram"
    IO = "io"


@dataclass(frozen=True)
class DesignBlock:
    """One block of the synthesized design.

    Attributes:
        name: Unique instance name.
        kind: Block kind.
        gate_count: Gate-equivalents (logic blocks; macros use 0).
        area: Placement footprint, m^2.
        bits: Storage capacity for memory macros, bits.
        tier: Tier name the block's devices occupy (e.g. ``"si_cmos"``).
        pin_count: External pins, for net/wirelength estimation.
    """

    name: str
    kind: BlockKind
    gate_count: float
    area: float
    bits: int
    tier: str
    pin_count: int

    def __post_init__(self) -> None:
        require(self.area > 0, f"{self.name}: block area must be positive")
        require(self.gate_count >= 0, "gate count must be non-negative")
        require(self.bits >= 0, "bits must be non-negative")
        require(self.pin_count >= 0, "pin count must be non-negative")


@dataclass(frozen=True)
class Net:
    """A block-to-block connection bundle.

    Attributes:
        name: Net bundle name.
        driver: Driving block name.
        sinks: Sink block names.
        width_bits: Bus width of the bundle.
    """

    name: str
    driver: str
    sinks: tuple[str, ...]
    width_bits: int

    def __post_init__(self) -> None:
        require(len(self.sinks) >= 1, f"net {self.name}: needs at least one sink")
        require(self.width_bits >= 1, "net width must be >= 1")


@dataclass(frozen=True)
class Netlist:
    """A synthesized block-level design.

    Attributes:
        name: Design name.
        blocks: All blocks, keyed by name.
        nets: Inter-block nets.
    """

    name: str
    blocks: dict[str, DesignBlock] = field(default_factory=dict)
    nets: tuple[Net, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        require(len(self.blocks) > 0, "netlist needs at least one block")
        for net in self.nets:
            require(net.driver in self.blocks, f"net {net.name}: unknown driver")
            for sink in net.sinks:
                require(sink in self.blocks, f"net {net.name}: unknown sink {sink}")

    def block(self, name: str) -> DesignBlock:
        """Look up a block by name."""
        if name not in self.blocks:
            raise KeyError(f"no block named {name!r} in netlist {self.name!r}")
        return self.blocks[name]

    def blocks_of_kind(self, kind: BlockKind) -> tuple[DesignBlock, ...]:
        """All blocks of one kind."""
        return tuple(b for b in self.blocks.values() if b.kind == kind)

    def blocks_on_tier(self, tier: str) -> tuple[DesignBlock, ...]:
        """All blocks whose devices sit on the named tier."""
        return tuple(b for b in self.blocks.values() if b.tier == tier)

    @property
    def total_gate_count(self) -> float:
        """Total logic gate-equivalents."""
        return sum(b.gate_count for b in self.blocks.values())

    @property
    def total_si_area(self) -> float:
        """Total Si-tier block area, m^2."""
        return sum(b.area for b in self.blocks_on_tier("si_cmos"))


def _rent_pins(gate_count: float, rent_exponent: float = 0.6,
               rent_coefficient: float = 2.5) -> int:
    """Rent's rule external pin estimate for a logic block."""
    if gate_count <= 0:
        return 8
    return max(8, int(rent_coefficient * gate_count ** rent_exponent))


def synthesize(design: AcceleratorDesign, pdk: PDK) -> Netlist:
    """Synthesize an accelerator design into a block-level netlist.

    One logic block per CS (PE array + control), one SRAM macro pair per
    CS (input/output buffers), one RRAM array macro per bank with its
    peripheral logic block, and the system bus/IO block.  In M3D designs
    the RRAM macros carry the CNFET access-FET tier; in 2D they carry a Si
    access-FET footprint instead (handled by the floorplanner's blockage
    model; here both land in the ``rram`` tier with their cell area).
    """
    lib = pdk.silicon_library
    blocks: dict[str, DesignBlock] = {}
    nets: list[Net] = []

    cs_gates = design.cs.logic_gates
    buffer_area = pdk.sram_macro_area(design.cs.buffer_bits)
    for index in range(design.n_cs):
        cs_name = f"cs{index}"
        blocks[cs_name] = DesignBlock(
            name=cs_name, kind=BlockKind.LOGIC, gate_count=cs_gates,
            area=lib.area_for_gates(cs_gates), bits=0, tier="si_cmos",
            pin_count=_rent_pins(cs_gates))
        buf_name = f"cs{index}_buf"
        blocks[buf_name] = DesignBlock(
            name=buf_name, kind=BlockKind.SRAM_MACRO, gate_count=0,
            area=buffer_area, bits=design.cs.buffer_bits, tier="si_cmos",
            pin_count=2 * design.cs.array.rows * design.precision_bits)
        nets.append(Net(name=f"n_cs{index}_buf", driver=buf_name,
                        sinks=(cs_name,),
                        width_bits=design.cs.array.rows * design.precision_bits))

    banks = design.bank_plan.banks
    bank_bits = design.bank_plan.bank_capacity_bits
    bank_cell_area = bank_bits * design.bank_plan.array.cell_area
    perif_gates_per_bank = PERIPHERAL_GATES / banks
    for index in range(banks):
        bank_name = f"rram_bank{index}"
        blocks[bank_name] = DesignBlock(
            name=bank_name, kind=BlockKind.RRAM_MACRO, gate_count=0,
            area=bank_cell_area, bits=bank_bits, tier="rram",
            pin_count=design.bank_width_bits + int(math.isqrt(bank_bits)) // 64)
        perif_name = f"perif{index}"
        blocks[perif_name] = DesignBlock(
            name=perif_name, kind=BlockKind.LOGIC,
            gate_count=perif_gates_per_bank,
            area=lib.area_for_gates(perif_gates_per_bank), bits=0,
            tier="si_cmos", pin_count=_rent_pins(perif_gates_per_bank))
        nets.append(Net(name=f"n_bank{index}", driver=bank_name,
                        sinks=(perif_name,), width_bits=design.bank_width_bits))
        # Each weight channel feeds its CS (channels round-robin over CSs).
        cs_target = f"cs{index % design.n_cs}"
        nets.append(Net(name=f"n_weights{index}", driver=perif_name,
                        sinks=(cs_target,), width_bits=design.bank_width_bits))

    blocks["bus_io"] = DesignBlock(
        name="bus_io", kind=BlockKind.IO, gate_count=200_000,
        area=design.area.bus_io, bits=0, tier="si_cmos", pin_count=1024)
    nets.append(Net(
        name="n_writeback", driver="cs0",
        sinks=tuple(["bus_io"] + [f"cs{i}_buf" for i in range(design.n_cs)]),
        width_bits=design.writeback_bus_bits))

    return Netlist(name=design.name, blocks=blocks, nets=tuple(nets))
