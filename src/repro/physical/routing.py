"""Routing estimation: wirelength, buffering, and inter-layer vias.

Global routing is estimated from the placed floorplan:

* inter-block wirelength — per-net half-perimeter wirelength (HPWL) times
  the net's bus width;
* intra-block wirelength — a Donath/Rent-style estimate from each logic
  block's gate count and area;
* repeater (buffer) insertion — one buffer per optimal repeater distance on
  every long wire;
* ILV count — M3D nets that cross device tiers consume one inter-layer via
  per bit per tier crossing (the ultra-dense vias the paper's Case 2 sweeps).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import require
from repro.tech import constants
from repro.physical.floorplan import Floorplan
from repro.physical.netlist import BlockKind, Netlist

#: Rent exponent for intra-block wirelength estimation.
RENT_EXPONENT = 0.6

#: Optimal repeater spacing at the 130 nm node, metres.
BUFFER_SPACING = 2.0e-3


@dataclass(frozen=True)
class RoutingResult:
    """Routing estimate for one design.

    Attributes:
        inter_block_wirelength: Sum of net HPWL x bus width, metre-bits.
        intra_block_wirelength: Rent-style intra-block estimate, metres.
        buffer_count: Repeaters inserted on inter-block wires.
        ilv_count: Inter-layer vias used by tier-crossing nets.
        wire_capacitance: Total switched wire capacitance, farads.
    """

    inter_block_wirelength: float
    intra_block_wirelength: float
    buffer_count: int
    ilv_count: int
    wire_capacitance: float

    @property
    def total_wirelength(self) -> float:
        """Total wirelength, metres (bus wires counted per bit)."""
        return self.inter_block_wirelength + self.intra_block_wirelength


def _net_hpwl(floorplan: Floorplan, netlist: Netlist, net_name: str) -> float:
    net = next(n for n in netlist.nets if n.name == net_name)
    points = [floorplan.placed(net.driver).rect.center]
    points += [floorplan.placed(s).rect.center for s in net.sinks]
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    return (max(xs) - min(xs)) + (max(ys) - min(ys))


def intra_block_wirelength(gate_count: float, area: float) -> float:
    """Donath-style intra-block wirelength estimate, metres.

    Average net length scales as gate_pitch * gates^(p - 0.5); total length
    multiplies by the net count (~gates).
    """
    require(gate_count >= 0 and area >= 0, "inputs must be non-negative")
    if gate_count < 2:
        return 0.0
    gate_pitch = (area / gate_count) ** 0.5
    average_length = 2.0 * gate_pitch * gate_count ** (RENT_EXPONENT - 0.5)
    return average_length * gate_count


def route(floorplan: Floorplan, netlist: Netlist) -> RoutingResult:
    """Estimate routing for a placed design."""
    inter = 0.0
    buffers = 0
    ilvs = 0
    for net in netlist.nets:
        length = _net_hpwl(floorplan, netlist, net.name)
        inter += length * net.width_bits
        buffers += int(length / BUFFER_SPACING) * net.width_bits
        tiers = {netlist.block(net.driver).tier}
        tiers.update(netlist.block(s).tier for s in net.sinks)
        crossings = len(tiers) - 1
        if crossings > 0:
            ilvs += crossings * net.width_bits

    intra = sum(
        intra_block_wirelength(block.gate_count, block.area)
        for block in netlist.blocks_of_kind(BlockKind.LOGIC)
    )
    capacitance = (inter + intra) * constants.WIRE_CAP_PER_M
    return RoutingResult(
        inter_block_wirelength=inter,
        intra_block_wirelength=intra,
        buffer_count=buffers,
        ilv_count=ilvs,
        wire_capacitance=capacitance,
    )
