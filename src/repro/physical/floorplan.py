"""Floorplanner for the 2D baseline and M3D flows.

The floorplan is band-based, mirroring the paper's Fig. 2 layouts:

* **2D baseline** (Fig. 2b): the RRAM arrays fully block the Si tier, so the
  die stacks, top to bottom: array band, memory-peripheral band, the CS
  band *adjacent* to the arrays, and the bus/IO band.  The bands tile the
  die exactly — the 2D chip has no spare silicon.
* **M3D** (Fig. 2d): the arrays move to a partial blockage on the RRAM +
  CNFET tiers; the Si tier underneath packs the peripheral blockages, all
  N CS slots (logic + private buffer), and the bus/IO band, with the
  remaining silicon as whitespace.

Every floorplan is validated: blocks must stay on the die and must not
overlap any other block that occupies a shared tier.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import FloorplanError, require
from repro.tech.pdk import PDK
from repro.arch.accelerator import AcceleratorDesign
from repro.physical.netlist import BlockKind, Netlist


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle (metres).

    Attributes:
        x: Left edge.
        y: Bottom edge.
        width: Extent in x.
        height: Extent in y.
    """

    x: float
    y: float
    width: float
    height: float

    def __post_init__(self) -> None:
        require(self.width > 0 and self.height > 0,
                "rectangle dimensions must be positive")

    @property
    def area(self) -> float:
        """Rectangle area, m^2."""
        return self.width * self.height

    @property
    def center(self) -> tuple[float, float]:
        """Centroid (x, y)."""
        return (self.x + self.width / 2.0, self.y + self.height / 2.0)

    def overlaps(self, other: "Rect", tolerance: float = 1e-9) -> bool:
        """True when the two rectangles share interior area."""
        return not (
            self.x + self.width <= other.x + tolerance
            or other.x + other.width <= self.x + tolerance
            or self.y + self.height <= other.y + tolerance
            or other.y + other.height <= self.y + tolerance
        )

    def contains(self, other: "Rect", tolerance: float = 1e-9) -> bool:
        """True when ``other`` lies inside this rectangle."""
        return (
            other.x >= self.x - tolerance
            and other.y >= self.y - tolerance
            and other.x + other.width <= self.x + self.width + tolerance
            and other.y + other.height <= self.y + self.height + tolerance
        )


@dataclass(frozen=True)
class PlacedBlock:
    """A block placed on the die.

    Attributes:
        name: Block/macro instance name.
        rect: Placed outline.
        tiers: Tier names this block blocks for placement.
        kind: Netlist block kind (for power/plot attribution).
    """

    name: str
    rect: Rect
    tiers: frozenset[str]
    kind: BlockKind


@dataclass(frozen=True)
class Floorplan:
    """A complete floorplan.

    Attributes:
        name: Design name.
        die: Die outline.
        placements: All placed blocks.
        is_m3d: True for the M3D flow.
    """

    name: str
    die: Rect
    placements: tuple[PlacedBlock, ...] = field(default_factory=tuple)
    is_m3d: bool = False

    def placed(self, name: str) -> PlacedBlock:
        """Look up a placement by block name."""
        for block in self.placements:
            if block.name == name:
                return block
        raise KeyError(f"no placed block named {name!r}")

    def on_tier(self, tier: str) -> tuple[PlacedBlock, ...]:
        """All blocks blocking the named tier."""
        return tuple(b for b in self.placements if tier in b.tiers)

    @property
    def footprint(self) -> float:
        """Die area, m^2."""
        return self.die.area

    def tier_utilization(self, tier: str) -> float:
        """Fraction of the die blocked on one tier."""
        return sum(b.rect.area for b in self.on_tier(tier)) / self.die.area

    def free_si_area(self) -> float:
        """Unblocked Si-tier area, m^2."""
        return self.die.area * (1.0 - self.tier_utilization("si_cmos"))

    def validate(self) -> None:
        """Raise :class:`FloorplanError` on out-of-die or overlap violations."""
        for block in self.placements:
            if not self.die.contains(block.rect):
                raise FloorplanError(
                    f"{self.name}: block {block.name} extends beyond the die")
        for i, first in enumerate(self.placements):
            for second in self.placements[i + 1:]:
                shared = first.tiers & second.tiers
                if shared and first.rect.overlaps(second.rect):
                    raise FloorplanError(
                        f"{self.name}: {first.name} overlaps {second.name} "
                        f"on tier(s) {sorted(shared)}")


def _band(y: float, height: float, die_width: float) -> Rect:
    return Rect(x=0.0, y=y, width=die_width, height=height)


def _pack_row(names_areas: list[tuple[str, float]], band: Rect,
              tiers: frozenset[str], kind: BlockKind) -> list[PlacedBlock]:
    """Pack blocks side by side into a band, widths proportional to area."""
    placements: list[PlacedBlock] = []
    x = band.x
    for name, area in names_areas:
        width = area / band.height
        placements.append(PlacedBlock(
            name=name,
            rect=Rect(x=x, y=band.y, width=width, height=band.height),
            tiers=tiers, kind=kind))
        x += width
    if x > band.x + band.width * (1 + 1e-9):
        raise FloorplanError("band overflow while packing blocks")
    return placements


def build_floorplan(netlist: Netlist, design: AcceleratorDesign,
                    pdk: PDK, aspect_ratio: float = 1.0) -> Floorplan:
    """Floorplan one design: band placement per the module docstring.

    ``aspect_ratio`` is the die's width/height ratio — the flow's
    floorplan-shaping knob.  The die area is fixed by the design either
    way; 1.0 keeps the historical square die.
    """
    require(aspect_ratio > 0, "aspect_ratio must be positive")
    die_area = design.area.footprint
    width = math.sqrt(die_area * aspect_ratio)
    die = Rect(x=0.0, y=0.0, width=width, height=die_area / width)

    rram_blocks = [(b.name, b.area)
                   for b in netlist.blocks_of_kind(BlockKind.RRAM_MACRO)]
    perif_blocks = [(b.name, b.area) for b in netlist.blocks.values()
                    if b.name.startswith("perif")]
    cs_blocks = [(b.name, b.area) for b in netlist.blocks.values()
                 if b.kind == BlockKind.LOGIC and b.name.startswith("cs")]
    buf_blocks = [(b.name, b.area) for b in netlist.blocks.values()
                  if b.kind == BlockKind.SRAM_MACRO]
    bus = netlist.block("bus_io")

    arrays_area = sum(area for _, area in rram_blocks)
    perif_area = sum(area for _, area in perif_blocks)
    cs_area = sum(area for _, area in cs_blocks) + sum(a for _, a in buf_blocks)
    placements: list[PlacedBlock] = []

    if design.is_m3d:
        # RRAM + CNFET tiers: arrays band at the top of the die.  These do
        # NOT block silicon, so the Si bands below restart from the die top.
        h_arrays = arrays_area / width
        band_arrays = _band(die.height - h_arrays, h_arrays, width)
        placements += _pack_row(rram_blocks, band_arrays,
                                frozenset({"rram", "cnfet"}),
                                BlockKind.RRAM_MACRO)
        # Si tier: peripheral blockages at the top edge, under the arrays.
        h_perif = perif_area / width
        band_perif = _band(die.height - h_perif, h_perif, width)
    else:
        # 2D: arrays fully block Si; stack bands top-down.
        h_arrays = arrays_area / width
        band_arrays = _band(die.height - h_arrays, h_arrays, width)
        placements += _pack_row(rram_blocks, band_arrays,
                                frozenset({"rram", "si_cmos"}),
                                BlockKind.RRAM_MACRO)
        h_perif = perif_area / width
        band_perif = _band(die.height - h_arrays - h_perif, h_perif, width)
    placements += _pack_row(perif_blocks, band_perif,
                            frozenset({"si_cmos"}), BlockKind.LOGIC)

    # CS slots (logic + private buffer interleaved) in the next band.
    h_cs = cs_area / width
    band_cs = _band(band_perif.y - h_cs, h_cs, width)
    slot_blocks: list[tuple[str, float]] = []
    for (cs_name, cs_block_area), (buf_name, buf_area) in zip(
            sorted(cs_blocks), sorted(buf_blocks)):
        slot_blocks.append((cs_name, cs_block_area))
        slot_blocks.append((buf_name, buf_area))
    placements += _pack_row(slot_blocks, band_cs, frozenset({"si_cmos"}),
                            BlockKind.LOGIC)

    # Bus / IO band at the bottom of the die.
    h_bus = bus.area / width
    band_bus = _band(0.0, h_bus, width)
    if band_bus.y + band_bus.height > band_cs.y + 1e-9:
        raise FloorplanError(
            f"{design.name}: silicon demand exceeds the die "
            f"(needs {(arrays_area if not design.is_m3d else 0) + perif_area + cs_area + bus.area:.3e} m^2, "
            f"die is {die_area:.3e} m^2)")
    placements.append(PlacedBlock(name="bus_io", rect=band_bus,
                                  tiers=frozenset({"si_cmos"}),
                                  kind=BlockKind.IO))

    plan = Floorplan(name=design.name, die=die, placements=tuple(placements),
                     is_m3d=design.is_m3d)
    plan.validate()
    return plan
