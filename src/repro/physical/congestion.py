"""Routing and inter-layer-via congestion analysis.

Two feasibility checks the flow's wirelength estimates imply but do not
verify:

* **metal congestion** — the estimated wirelength must fit the routing
  tracks the die offers (tracks = layers x die-width / pitch); reported as
  average track utilization per routing tier;
* **ILV congestion** — the M3D-specific one: the memory cells consume
  ``vias_per_cell`` ILVs *per bit* over the array footprint, and signal
  nets crossing tiers add more.  Demand must stay below the pitch-limited
  ILV capacity; the margin shrinks quadratically as the via pitch coarsens
  (Case 2's mechanism showing up as a routability limit rather than an
  area limit).

:func:`congestion_report` is the staged-flow entry point — it takes the
floorplan/routing artifacts directly so the engine can content-hash them
as cache keys.  :func:`analyze_congestion` keeps the historical
"completed flow in, report out" signature on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.arch.accelerator import AcceleratorDesign
from repro.errors import require
from repro.physical.floorplan import Floorplan
from repro.physical.routing import RoutingResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (flow -> here)
    from repro.physical.flow import FlowResult

#: Signal routing layers available over the whole stack.
ROUTING_LAYERS = 6
#: Routing track pitch, metres (intermediate metal at the 130 nm node).
TRACK_PITCH = 0.46e-6
#: Fraction of tracks usable for signal routing (power grid, blockages).
TRACK_UTILIZATION_LIMIT = 0.7


@dataclass(frozen=True)
class CongestionReport:
    """Routability summary for one placed design.

    Attributes:
        design_name: Design identifier.
        track_demand: Wirelength-derived track demand, metres.
        track_capacity: Usable track supply, metres.
        ilv_demand: ILVs required (memory cells + tier-crossing signals).
        ilv_capacity: Pitch-limited ILV supply over the array footprint.
    """

    design_name: str
    track_demand: float
    track_capacity: float
    ilv_demand: float
    ilv_capacity: float

    @property
    def track_utilization(self) -> float:
        """Average track utilization (must stay < 1 for routability)."""
        return self.track_demand / self.track_capacity

    @property
    def ilv_utilization(self) -> float:
        """ILV utilization over the array footprint."""
        if self.ilv_capacity == 0:
            return 0.0
        return self.ilv_demand / self.ilv_capacity

    @property
    def routable(self) -> bool:
        """True when both resources are inside their limits."""
        return (self.track_utilization <= 1.0
                and self.ilv_utilization <= 1.0)


def congestion_report(floorplan: Floorplan, routing: RoutingResult,
                      design: AcceleratorDesign) -> CongestionReport:
    """The congestion report from the placed-and-routed artifacts."""
    die = floorplan.die
    tracks_per_layer = die.width / TRACK_PITCH
    capacity = (ROUTING_LAYERS * tracks_per_layer * die.height
                * TRACK_UTILIZATION_LIMIT)
    demand = routing.total_wirelength

    if design.is_m3d:
        cells = design.bank_plan.array
        cell_vias = cells.capacity_bits * cells.cell.vias_per_cell
        signal_vias = routing.ilv_count
        ilv_demand = float(cell_vias + signal_vias)
        # Capacity: the pitch-limited via sites over the cell-array
        # footprint (where the access-FET connections must land).
        pdk_area = design.area.cells
        pitch = design.bank_plan.array.ilv.pitch \
            if design.bank_plan.array.ilv is not None else None
        require(pitch is not None, "M3D design must carry an ILV model")
        ilv_capacity = pdk_area / (pitch * pitch)
    else:
        ilv_demand = float(routing.ilv_count)
        ilv_capacity = float("inf") if ilv_demand == 0 else die.area / (
            (0.46e-6) ** 2)
    return CongestionReport(
        design_name=design.name,
        track_demand=demand,
        track_capacity=capacity,
        ilv_demand=ilv_demand,
        ilv_capacity=ilv_capacity,
    )


def analyze_congestion(flow: "FlowResult") -> CongestionReport:
    """Build the congestion report from a completed flow run."""
    return congestion_report(flow.floorplan, flow.routing, flow.design)
