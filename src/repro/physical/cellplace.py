"""Gate-level detailed placement inside one logic block.

The chip-level flow treats logic blocks as rectangles with a Rent-style
intra-block wirelength estimate.  This module backs that estimate with an
actual (small) placer: a clustered synthetic netlist is placed on a site
grid, first greedily by cluster, then refined with steepest-descent pairwise
swaps minimizing HPWL.  The tests check legality (one cell per site), a
substantial improvement over a scattered placement, and that the resulting
average net length is consistent with the Rent estimate the flow uses.

The netlist generator is deterministic (seeded) so results are stable.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.errors import require


@dataclass(frozen=True)
class CellNet:
    """A small net connecting cell indices."""

    cells: tuple[int, ...]

    def __post_init__(self) -> None:
        require(len(self.cells) >= 2, "a net connects at least two cells")


@dataclass(frozen=True)
class CellNetlist:
    """A gate-level netlist: ``cell_count`` cells plus two-point+ nets.

    Attributes:
        cell_count: Number of placeable cells.
        nets: Connectivity.
    """

    cell_count: int
    nets: tuple[CellNet, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        require(self.cell_count >= 1, "need at least one cell")
        for net in self.nets:
            for cell in net.cells:
                require(0 <= cell < self.cell_count,
                        f"net references unknown cell {cell}")


def clustered_netlist(
    clusters: int = 16,
    cells_per_cluster: int = 16,
    intra_nets_per_cluster: int = 24,
    inter_nets: int = 48,
    seed: int = 7,
) -> CellNetlist:
    """Generate a Rent-like clustered netlist (mostly local wiring)."""
    require(clusters >= 2, "need at least two clusters")
    require(cells_per_cluster >= 2, "need at least two cells per cluster")
    rng = random.Random(seed)
    cell_count = clusters * cells_per_cluster
    nets: list[CellNet] = []
    for cluster in range(clusters):
        base = cluster * cells_per_cluster
        members = list(range(base, base + cells_per_cluster))
        for _ in range(intra_nets_per_cluster):
            a, b = rng.sample(members, 2)
            nets.append(CellNet(cells=(a, b)))
    for _ in range(inter_nets):
        c1, c2 = rng.sample(range(clusters), 2)
        a = c1 * cells_per_cluster + rng.randrange(cells_per_cluster)
        b = c2 * cells_per_cluster + rng.randrange(cells_per_cluster)
        nets.append(CellNet(cells=(a, b)))
    return CellNetlist(cell_count=cell_count, nets=tuple(nets))


@dataclass
class CellPlacement:
    """A placement: cell index -> (row, col) site.

    Attributes:
        netlist: The placed netlist.
        grid: Site-grid edge (grid x grid sites).
        sites: Site of each cell, indexed by cell.
    """

    netlist: CellNetlist
    grid: int
    sites: list[tuple[int, int]]

    def validate(self) -> None:
        """One cell per site, all sites on the grid."""
        require(len(self.sites) == self.netlist.cell_count,
                "every cell needs a site")
        seen: set[tuple[int, int]] = set()
        for row, col in self.sites:
            require(0 <= row < self.grid and 0 <= col < self.grid,
                    "site off the grid")
            require((row, col) not in seen, "two cells share a site")
            seen.add((row, col))

    def hpwl(self) -> float:
        """Total half-perimeter wirelength in site pitches."""
        total = 0.0
        for net in self.netlist.nets:
            rows = [self.sites[cell][0] for cell in net.cells]
            cols = [self.sites[cell][1] for cell in net.cells]
            total += (max(rows) - min(rows)) + (max(cols) - min(cols))
        return total

    def average_net_length(self) -> float:
        """Mean net HPWL in site pitches."""
        return self.hpwl() / len(self.netlist.nets)


def _grid_for(cell_count: int) -> int:
    return math.ceil(math.sqrt(cell_count))


def scattered_placement(netlist: CellNetlist, seed: int = 11) -> CellPlacement:
    """Worst-case-ish baseline: cells shuffled across the grid."""
    grid = _grid_for(netlist.cell_count)
    rng = random.Random(seed)
    all_sites = [(r, c) for r in range(grid) for c in range(grid)]
    rng.shuffle(all_sites)
    return CellPlacement(netlist=netlist, grid=grid,
                         sites=all_sites[:netlist.cell_count])


def clustered_placement(netlist: CellNetlist,
                        cells_per_cluster: int) -> CellPlacement:
    """Greedy initial placement: clusters in row-major tiles."""
    require(netlist.cell_count % cells_per_cluster == 0,
            "cell count must divide into clusters")
    grid = _grid_for(netlist.cell_count)
    tile = math.ceil(math.sqrt(cells_per_cluster))
    tiles_per_row = max(1, grid // tile)
    sites: list[tuple[int, int]] = []
    clusters = netlist.cell_count // cells_per_cluster
    for cluster in range(clusters):
        tile_row, tile_col = divmod(cluster, tiles_per_row)
        for member in range(cells_per_cluster):
            row_in, col_in = divmod(member, tile)
            sites.append((tile_row * tile + row_in,
                          tile_col * tile + col_in))
    placement = CellPlacement(netlist=netlist, grid=max(
        grid, (clusters // tiles_per_row + 1) * tile), sites=sites)
    placement.validate()
    return placement


def refine_by_swaps(placement: CellPlacement, passes: int = 2,
                    seed: int = 13) -> CellPlacement:
    """Greedy pairwise-swap refinement: accept swaps that reduce HPWL."""
    require(passes >= 1, "need at least one pass")
    rng = random.Random(seed)
    sites = list(placement.sites)
    netlist = placement.netlist
    # Per-cell net membership for incremental evaluation.
    member_nets: list[list[CellNet]] = [[] for _ in range(netlist.cell_count)]
    for net in netlist.nets:
        for cell in net.cells:
            member_nets[cell].append(net)

    def nets_hpwl(nets: list[CellNet]) -> float:
        total = 0.0
        for net in nets:
            rows = [sites[cell][0] for cell in net.cells]
            cols = [sites[cell][1] for cell in net.cells]
            total += (max(rows) - min(rows)) + (max(cols) - min(cols))
        return total

    cells = list(range(netlist.cell_count))
    for _ in range(passes):
        rng.shuffle(cells)
        for a in cells:
            b = rng.randrange(netlist.cell_count)
            if a == b:
                continue
            touched = member_nets[a] + member_nets[b]
            before = nets_hpwl(touched)
            sites[a], sites[b] = sites[b], sites[a]
            after = nets_hpwl(touched)
            if after >= before:
                sites[a], sites[b] = sites[b], sites[a]
    refined = CellPlacement(netlist=netlist, grid=placement.grid,
                            sites=sites)
    refined.validate()
    return refined
