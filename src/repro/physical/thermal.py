"""Thermal feasibility stage of the physical flow.

:func:`analyze_thermal` condenses a placed design's heat picture into a
:class:`ThermalReport` — a plain-float summary the runtime engine can
content-hash and persist (the full :class:`~repro.physical.thermal_map
.ThermalMap` carries a numpy grid, which the cache codec deliberately
rejects).  The budget it checks against comes from the shared
:class:`~repro.core.thermal.ThermalStack`, the single home of the repo's
thermal constants.

When numpy is available the report is backed by the spatial Jacobi solve
of :mod:`repro.physical.thermal_map`; without it, the stage degrades to
the scalar Eq. 17 estimate (uniform heat over the die), flagged by
``spatial=False`` so consumers know the hotspot is a die average.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.thermal import ThermalStack, temperature_rise
from repro.errors import require
from repro.physical.floorplan import Floorplan
from repro.physical.power import PowerReport

__all__ = ["ThermalReport", "analyze_thermal"]


@dataclass(frozen=True)
class ThermalReport:
    """Flow-stage thermal summary for one design (plain floats only).

    Attributes:
        design_name: Design identifier.
        hotspot_rise_k: Peak temperature rise over ambient, K.
        average_rise_k: Mean temperature rise over the die, K.
        hotspot_x: Hotspot x coordinate on the die, metres.
        hotspot_y: Hotspot y coordinate on the die, metres.
        budget_k: The rise budget the feasibility check used, K.
        spatial: True when backed by the grid solver, False for the
            scalar Eq. 17 fallback (no numpy available).
    """

    design_name: str
    hotspot_rise_k: float
    average_rise_k: float
    hotspot_x: float
    hotspot_y: float
    budget_k: float
    spatial: bool

    @property
    def headroom_k(self) -> float:
        """Budget minus hotspot rise (negative = over budget), K."""
        return self.budget_k - self.hotspot_rise_k

    @property
    def within_budget(self) -> bool:
        """True when the hotspot stays inside the rise budget."""
        return self.hotspot_rise_k <= self.budget_k


def analyze_thermal(
    floorplan: Floorplan,
    power: PowerReport,
    grid: int = 64,
    budget_k: float | None = None,
    iterations: int = 400,
) -> ThermalReport:
    """Thermal summary of a placed design against a rise budget.

    ``budget_k`` defaults to the shared stack's ``max_rise``
    (:data:`repro.tech.constants.THERMAL_MAX_RISE_K`).
    """
    stack = ThermalStack()
    budget = stack.max_rise if budget_k is None else budget_k
    require(budget > 0, "thermal budget must be positive")
    try:
        from repro.physical.thermal_map import solve_thermal_map
    except ImportError:  # pragma: no cover - exercised by the no-numpy CI
        rise = temperature_rise([power.total], stack)
        center = floorplan.die.center
        return ThermalReport(
            design_name=floorplan.name,
            hotspot_rise_k=rise,
            average_rise_k=rise,
            hotspot_x=center[0],
            hotspot_y=center[1],
            budget_k=budget,
            spatial=False,
        )
    solved = solve_thermal_map(floorplan, power, grid=grid,
                               iterations=iterations, stack=stack)
    x, y = solved.hotspot_location
    return ThermalReport(
        design_name=floorplan.name,
        hotspot_rise_k=solved.hotspot,
        average_rise_k=solved.average,
        hotspot_x=x,
        hotspot_y=y,
        budget_k=budget,
        spatial=True,
    )
