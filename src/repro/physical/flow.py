"""Flow drivers: the Fig. 4b pipeline for the 2D and M3D designs.

``run_flow`` executes synthesize -> floorplan -> detailed placement ->
route -> timing -> power on one design and bundles the results.  The only
difference between the 2D and M3D runs is carried by the design object
itself (blockage kinds, CS count, bank plan) — matching the paper's claim
that the M3D flow is standard Si EDA plus custom P&R scripts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import require
from repro.tech.pdk import PDK, foundry_m3d_pdk
from repro.arch.accelerator import AcceleratorDesign
from repro.physical.floorplan import Floorplan, build_floorplan
from repro.physical.netlist import Netlist, synthesize
from repro.physical.placement import legalize_floorplan, placement_quality
from repro.physical.power import ActivityFactors, PowerReport, analyze_power
from repro.physical.routing import RoutingResult, route
from repro.physical.timing import TimingResult, analyze_timing


@dataclass(frozen=True)
class FlowResult:
    """Everything the flow produces for one design.

    Attributes:
        design: The input design.
        netlist: Synthesized block-level netlist.
        floorplan: Legalized floorplan.
        routing: Routing estimate.
        timing: Static timing outcome.
        power: Per-tier power report.
        quality: Placement quality metrics.
    """

    design: AcceleratorDesign
    netlist: Netlist
    floorplan: Floorplan
    routing: RoutingResult
    timing: TimingResult
    power: PowerReport
    quality: dict[str, float]

    @property
    def footprint(self) -> float:
        """Die area, m^2."""
        return self.floorplan.footprint

    @property
    def closed_timing(self) -> bool:
        """True when the design meets its target frequency."""
        return self.timing.meets_target


def run_flow(
    design: AcceleratorDesign,
    pdk: PDK | None = None,
    activity: ActivityFactors | None = None,
) -> FlowResult:
    """Run the full physical design flow on ``design``."""
    pdk = pdk if pdk is not None else foundry_m3d_pdk()
    netlist = synthesize(design, pdk)
    floorplan = build_floorplan(netlist, design, pdk)
    floorplan = legalize_floorplan(floorplan, netlist)
    routing = route(floorplan, netlist)
    timing = analyze_timing(floorplan, netlist, pdk, design.frequency_hz)
    require(timing.meets_target,
            f"{design.name}: failed timing at "
            f"{design.frequency_hz / 1e6:.0f} MHz "
            f"(critical path {timing.critical_path * 1e9:.2f} ns)")
    power = analyze_power(floorplan, netlist, design, pdk, activity)
    quality = placement_quality(floorplan, netlist)
    return FlowResult(
        design=design,
        netlist=netlist,
        floorplan=floorplan,
        routing=routing,
        timing=timing,
        power=power,
        quality=quality,
    )
