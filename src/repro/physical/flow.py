"""Flow drivers: the Fig. 4b pipeline as a staged, cacheable pipeline.

The physical flow is a sequence of **named stages**, each a pure
module-level function over the artifacts of the stages before it::

    synthesize -> floorplan -> legalize -> route -> clock -> congestion
               -> timing -> power -> thermal -> quality

:func:`run_staged_flows` drives any number of designs through the stages,
optionally dispatching every stage call through a
:class:`~repro.runtime.engine.EvaluationEngine` under the stage names
``flow.<stage>``.  Because each stage function receives its upstream
artifacts *as arguments* and the engine keys calls by a content hash of
``(function, arguments)``, every stage is independently cached on exactly
(spec-section knobs, upstream-stage results, PDK): changing a
floorplan-shaping knob leaves ``flow.synthesize`` warm and re-runs only
the stages downstream of the floorplan — incremental invalidation falls
out of content addressing, with no explicit dependency graph to maintain.

Which stages run, and with what knobs, comes from the spec layer's
:class:`~repro.spec.design.FlowSpec` section.  Instead of aborting on a
timing miss, each design yields a :class:`FlowOutcome` whose
:class:`FlowFeasibility` carries per-check results (timing slack,
routability, power density, thermal headroom), so infeasible sweep points
are reportable results rather than exceptions.  ``strict=True`` restores
the historical mid-flow abort — :func:`run_flow`, the legacy single-design
entry point, is a thin strict wrapper that reproduces the original
pipeline (and its timing-failure exception) bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterable, Sequence

from repro.arch.accelerator import AcceleratorDesign
from repro.errors import ReproError, require
from repro.obs.metrics import registry as _metrics_registry
from repro.obs.trace import is_enabled as _obs_enabled, span as _span
from repro.physical.clock import ClockTree, synthesize_clock_tree
from repro.physical.congestion import CongestionReport, congestion_report
from repro.physical.floorplan import Floorplan, build_floorplan
from repro.physical.netlist import Netlist, synthesize
from repro.physical.placement import legalize_floorplan, placement_quality
from repro.physical.power import ActivityFactors, PowerReport, analyze_power
from repro.physical.routing import RoutingResult, route
from repro.physical.thermal import ThermalReport, analyze_thermal
from repro.physical.timing import TimingResult, analyze_timing
from repro.spec.design import FlowSpec
from repro.tech.pdk import PDK, foundry_m3d_pdk

#: Stage names in execution order (the ``flow.<stage>`` engine stages).
FLOW_STAGES: tuple[str, ...] = (
    "synthesize", "floorplan", "legalize", "route", "clock", "congestion",
    "timing", "power", "thermal", "quality",
)


@dataclass(frozen=True)
class FlowResult:
    """Everything the legacy flow produces for one design.

    Attributes:
        design: The input design.
        netlist: Synthesized block-level netlist.
        floorplan: Legalized floorplan.
        routing: Routing estimate.
        timing: Static timing outcome.
        power: Per-tier power report.
        quality: Placement quality metrics.
    """

    design: AcceleratorDesign
    netlist: Netlist
    floorplan: Floorplan
    routing: RoutingResult
    timing: TimingResult
    power: PowerReport
    quality: dict[str, float]

    @property
    def footprint(self) -> float:
        """Die area, m^2."""
        return self.floorplan.footprint

    @property
    def closed_timing(self) -> bool:
        """True when the design meets its target frequency."""
        return self.timing.meets_target


@dataclass(frozen=True)
class FlowFeasibility:
    """Per-check feasibility of one flow run.

    Every check that did not run (stage toggled off in the
    :class:`~repro.spec.design.FlowSpec`) reports its neutral value —
    an absent check never makes a point infeasible.

    Attributes:
        timing_met: Critical path closes at the target clock.
        timing_slack: Slack at the target clock, seconds (negative =
            timing miss).
        routable: Track and ILV demand inside their capacities.
        track_utilization: Routing-track utilization (0 if unchecked).
        ilv_utilization: ILV utilization (0 if unchecked).
        power_density_ok: Peak block power density inside the spec's
            ``max_power_density`` cap (True when uncapped).
        peak_power_density: Peak block power density, W/m^2.
        thermal_ok: Hotspot rise inside the spec's ``max_rise_k`` budget.
        thermal_headroom_k: Budget minus hotspot rise, K (negative =
            over budget).
        failed_stage: Stage that raised, for a point whose flow could
            not complete (``None`` for a completed flow).
    """

    timing_met: bool
    timing_slack: float
    routable: bool
    track_utilization: float
    ilv_utilization: float
    power_density_ok: bool
    peak_power_density: float
    thermal_ok: bool
    thermal_headroom_k: float
    failed_stage: str | None = None

    @property
    def feasible(self) -> bool:
        """True when every check that ran passed and no stage failed."""
        return (self.failed_stage is None and self.timing_met
                and self.routable and self.power_density_ok
                and self.thermal_ok)

    @property
    def verdict(self) -> str:
        """Compact label: ``"ok"``, ``"failed:<stage>"``, or the
        ``+``-joined names of the violated checks."""
        if self.failed_stage is not None:
            return f"failed:{self.failed_stage}"
        reasons = []
        if not self.timing_met:
            reasons.append("timing")
        if not self.routable:
            reasons.append("routing")
        if not self.power_density_ok:
            reasons.append("density")
        if not self.thermal_ok:
            reasons.append("thermal")
        return "+".join(reasons) if reasons else "ok"


@dataclass(frozen=True)
class FlowOutcome:
    """Structured result of one staged flow run — never an exception.

    Carries the same artifact attributes as :class:`FlowResult`
    (``design``/``netlist``/``floorplan``/``routing``/``timing``/
    ``power``/``quality``) plus the stages the legacy flow never ran
    (``clock``/``congestion``/``thermal``) and a :class:`FlowFeasibility`
    verdict.  Artifacts downstream of a failed stage are ``None`` and
    ``error`` holds the diagnostic, so an infeasible sweep point is a
    reportable row instead of an abort.

    Attributes:
        design: The input design.
        flow: The flow-spec section that drove the run.
        feasibility: Per-check feasibility verdict.
        netlist: Synthesized block-level netlist.
        floorplan: Legalized floorplan.
        routing: Routing estimate.
        clock: Clock tree (``None`` when the stage is toggled off).
        congestion: Congestion report (``None`` when toggled off).
        timing: Static timing outcome.
        power: Per-tier power report.
        thermal: Thermal summary (``None`` when toggled off).
        quality: Placement quality metrics.
        error: Diagnostic of the failed stage, if any.
    """

    design: AcceleratorDesign
    flow: FlowSpec
    feasibility: FlowFeasibility
    netlist: Netlist | None = None
    floorplan: Floorplan | None = None
    routing: RoutingResult | None = None
    clock: ClockTree | None = None
    congestion: CongestionReport | None = None
    timing: TimingResult | None = None
    power: PowerReport | None = None
    thermal: ThermalReport | None = None
    quality: dict[str, float] | None = None
    error: str | None = None

    @property
    def footprint(self) -> float:
        """Die area, m^2."""
        require(self.floorplan is not None,
                f"{self.design.name}: flow failed before floorplanning")
        return self.floorplan.footprint

    @property
    def closed_timing(self) -> bool:
        """True when the design meets its target frequency."""
        return self.timing is not None and self.timing.meets_target

    @property
    def feasible(self) -> bool:
        """Shortcut for ``feasibility.feasible``."""
        return self.feasibility.feasible

    def as_result(self) -> FlowResult:
        """The legacy :class:`FlowResult` view of a completed flow.

        Requires every legacy artifact to be present — i.e. the flow ran
        to completion (the stages beyond the legacy set may be off).
        """
        require(self.error is None,
                f"{self.design.name}: flow failed at stage "
                f"{self.feasibility.failed_stage}: {self.error}")
        require(self.quality is not None,
                f"{self.design.name}: flow did not run to completion")
        return FlowResult(
            design=self.design,
            netlist=self.netlist,
            floorplan=self.floorplan,
            routing=self.routing,
            timing=self.timing,
            power=self.power,
            quality=self.quality,
        )


class _Slot:
    """Mutable per-design state while the stages advance."""

    __slots__ = ("design", "netlist", "floorplan", "routing", "clock",
                 "congestion", "timing", "power", "thermal", "quality",
                 "error", "failed_stage")

    def __init__(self, design: AcceleratorDesign) -> None:
        self.design = design
        self.netlist = None
        self.floorplan = None
        self.routing = None
        self.clock = None
        self.congestion = None
        self.timing = None
        self.power = None
        self.thermal = None
        self.quality = None
        self.error: str | None = None
        self.failed_stage: str | None = None


def _feasibility(slot: _Slot, flow: FlowSpec) -> FlowFeasibility:
    if slot.error is not None:
        return FlowFeasibility(
            timing_met=False, timing_slack=0.0, routable=False,
            track_utilization=0.0, ilv_utilization=0.0,
            power_density_ok=False, peak_power_density=0.0,
            thermal_ok=False, thermal_headroom_k=0.0,
            failed_stage=slot.failed_stage)
    timing = slot.timing
    congestion = slot.congestion
    thermal = slot.thermal
    peak_density = slot.power.peak_power_density
    return FlowFeasibility(
        timing_met=timing.meets_target,
        timing_slack=timing.slack,
        routable=congestion.routable if congestion is not None else True,
        track_utilization=(congestion.track_utilization
                           if congestion is not None else 0.0),
        ilv_utilization=(congestion.ilv_utilization
                         if congestion is not None else 0.0),
        power_density_ok=(flow.max_power_density is None
                          or peak_density <= flow.max_power_density),
        peak_power_density=peak_density,
        thermal_ok=thermal.within_budget if thermal is not None else True,
        thermal_headroom_k=(thermal.headroom_k if thermal is not None
                            else flow.max_rise_k),
    )


def run_staged_flows(
    designs: Iterable[AcceleratorDesign],
    pdk: PDK | None = None,
    flow: FlowSpec | None = None,
    engine=None,
    jobs: int | None = None,
    strict: bool = False,
) -> tuple[FlowOutcome, ...]:
    """Drive ``designs`` through the staged flow, one stage at a time.

    Each stage runs across all designs before the next starts; with an
    ``engine``, the calls go through ``engine.map`` under the stage name
    ``flow.<stage>`` (parallel across designs via ``jobs``, cached and
    counted per stage).  ``engine=None`` executes the stage functions
    directly — the uncached path the legacy :func:`run_flow` uses.

    ``strict=True`` restores the historical abort: a timing miss raises
    :class:`~repro.errors.ConfigurationError` with the legacy message
    right after the timing stage, and any stage error propagates.  In the
    default non-strict mode a single-design run converts a stage
    exception into an infeasible :class:`FlowOutcome` (the sweep path);
    a multi-design stage error still propagates, since the engine batch
    cannot attribute it to one design.
    """
    pdk = pdk if pdk is not None else foundry_m3d_pdk()
    flow = flow if flow is not None else FlowSpec()
    slots = [_Slot(design) for design in designs]
    override = flow.frequency_hz
    activity = ActivityFactors(cs_compute=flow.activity_cs,
                               weight_channel=flow.activity_channel,
                               writeback_bus=flow.activity_bus)

    def frequency(slot: _Slot) -> float:
        return override if override is not None else slot.design.frequency_hz

    def dispatch(stage: str, fn: Callable, attr: str,
                 call_for: Callable[[_Slot], tuple]) -> None:
        active = [slot for slot in slots if slot.error is None]
        if not active:
            return
        calls = [call_for(slot) for slot in active]
        with _span(f"flow.{stage}", designs=len(calls)):
            try:
                if engine is None:
                    results: Sequence = [fn(*call) for call in calls]
                else:
                    results = engine.map(fn, calls, stage=f"flow.{stage}",
                                         jobs=jobs)
            except ReproError as error:
                if strict or len(active) > 1:
                    raise
                active[0].error = str(error)
                active[0].failed_stage = stage
                return
        for slot, result in zip(active, results):
            setattr(slot, attr, result)

    dispatch("synthesize", synthesize, "netlist",
             lambda s: (s.design, pdk))
    dispatch("floorplan", build_floorplan, "floorplan",
             lambda s: (s.netlist, s.design, pdk, flow.aspect_ratio))
    if flow.legalize:
        dispatch("legalize", legalize_floorplan, "floorplan",
                 lambda s: (s.floorplan, s.netlist))
    dispatch("route", route, "routing",
             lambda s: (s.floorplan, s.netlist))
    if flow.clock:
        dispatch("clock", synthesize_clock_tree, "clock",
                 lambda s: (s.floorplan, s.netlist, frequency(s)))
    if flow.congestion:
        dispatch("congestion", congestion_report, "congestion",
                 lambda s: (s.floorplan, s.routing, s.design))
    dispatch("timing", analyze_timing, "timing",
             lambda s: (s.floorplan, s.netlist, pdk, frequency(s)))
    if strict:
        for slot in slots:
            require(slot.timing.meets_target,
                    f"{slot.design.name}: failed timing at "
                    f"{frequency(slot) / 1e6:.0f} MHz "
                    f"(critical path {slot.timing.critical_path * 1e9:.2f} ns)")
    dispatch("power", analyze_power, "power",
             lambda s: (s.floorplan, s.netlist, s.design, pdk, activity,
                        override))
    if flow.thermal:
        dispatch("thermal", analyze_thermal, "thermal",
                 lambda s: (s.floorplan, s.power, flow.thermal_grid,
                            flow.max_rise_k))
    dispatch("quality", placement_quality, "quality",
             lambda s: (s.floorplan, s.netlist))

    outcomes = tuple(
        FlowOutcome(
            design=slot.design, flow=flow,
            feasibility=_feasibility(slot, flow),
            netlist=slot.netlist, floorplan=slot.floorplan,
            routing=slot.routing, clock=slot.clock,
            congestion=slot.congestion, timing=slot.timing,
            power=slot.power, thermal=slot.thermal, quality=slot.quality,
            error=slot.error)
        for slot in slots)
    if _obs_enabled():
        counters = _metrics_registry()
        for outcome in outcomes:
            status = "feasible" if outcome.feasible else "infeasible"
            counters.counter("repro_flow_outcomes_total", status=status).inc()
    return outcomes


def run_staged_flow(
    design: AcceleratorDesign,
    pdk: PDK | None = None,
    flow: FlowSpec | None = None,
    engine=None,
    jobs: int | None = None,
    strict: bool = False,
) -> FlowOutcome:
    """Single-design convenience wrapper over :func:`run_staged_flows`."""
    (outcome,) = run_staged_flows((design,), pdk, flow=flow, engine=engine,
                                  jobs=jobs, strict=strict)
    return outcome


def run_flow(
    design: AcceleratorDesign,
    pdk: PDK | None = None,
    activity: ActivityFactors | None = None,
) -> FlowResult:
    """Run the legacy physical design flow on ``design``.

    Strict compatibility path over the staged pipeline: same stages the
    historical flow ran (clock/congestion/thermal off), same direct
    execution (no engine), and the same
    :class:`~repro.errors.ConfigurationError` on a timing miss.
    """
    flow = FlowSpec(clock=False, congestion=False, thermal=False)
    if activity is not None:
        flow = replace(flow,
                       activity_cs=activity.cs_compute,
                       activity_channel=activity.weight_channel,
                       activity_bus=activity.writeback_bus)
    (outcome,) = run_staged_flows((design,), pdk, flow=flow, strict=True)
    return outcome.as_result()
