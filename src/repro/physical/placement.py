"""Placement refinement for the band floorplan.

The floorplanner packs CS slots left to right in arbitrary order; this module
is the detailed-placement step of the flow: it re-orders the CS slots inside
their band so each CS lands under/near the RRAM bank feeding its weight
channel, minimizing weight-channel wirelength (the custom M3D P&R scripts of
the paper's flow [4] perform the analogous tier-aware optimization).
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import require
from repro.physical.floorplan import Floorplan, PlacedBlock, Rect
from repro.physical.netlist import Netlist


def _hpwl(points: list[tuple[float, float]]) -> float:
    """Half-perimeter wirelength of a set of pin points."""
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    return (max(xs) - min(xs)) + (max(ys) - min(ys))


def total_hpwl(floorplan: Floorplan, netlist: Netlist) -> float:
    """Total inter-block HPWL, weighted by net bus width (metre-bits)."""
    total = 0.0
    for net in netlist.nets:
        points = [floorplan.placed(net.driver).rect.center]
        points += [floorplan.placed(sink).rect.center for sink in net.sinks]
        total += _hpwl(points) * net.width_bits
    return total


def placement_quality(floorplan: Floorplan, netlist: Netlist) -> dict[str, float]:
    """Quality metrics of a placed floorplan."""
    return {
        "hpwl_metre_bits": total_hpwl(floorplan, netlist),
        "si_utilization": floorplan.tier_utilization("si_cmos"),
        "free_si_area": floorplan.free_si_area(),
    }


def _bank_x_for_cs(netlist: Netlist, floorplan: Floorplan) -> dict[str, float]:
    """Preferred x position of each CS: the centroid of its weight bank."""
    preference: dict[str, list[float]] = {}
    for net in netlist.nets:
        if not net.name.startswith("n_weights"):
            continue
        for sink in net.sinks:
            if sink.startswith("cs") and "_buf" not in sink:
                bank_name = net.name.replace("n_weights", "rram_bank")
                x = floorplan.placed(bank_name).rect.center[0]
                preference.setdefault(sink, []).append(x)
    return {cs: sum(xs) / len(xs) for cs, xs in preference.items()}


def legalize_floorplan(floorplan: Floorplan, netlist: Netlist) -> Floorplan:
    """Re-order CS slots toward their weight banks and re-validate.

    Slots (a CS logic block plus its private buffer) are sorted by the x
    centroid of the bank feeding them, then re-packed left to right in the
    same band.  The result is a legal floorplan with equal or lower
    weight-channel wirelength.
    """
    preferences = _bank_x_for_cs(netlist, floorplan)
    cs_names = sorted(
        {b.name for b in floorplan.placements
         if b.name.startswith("cs") and not b.name.endswith("_buf")})
    if not cs_names or not preferences:
        floorplan.validate()
        return floorplan

    slots: list[tuple[str, PlacedBlock, PlacedBlock]] = []
    for cs_name in cs_names:
        slots.append((cs_name, floorplan.placed(cs_name),
                      floorplan.placed(f"{cs_name}_buf")))
    ordered = sorted(slots, key=lambda slot: preferences.get(slot[0], 0.0))

    # Re-pack the ordered slots into the same x extents the band used.
    band_y = slots[0][1].rect.y
    band_h = slots[0][1].rect.height
    x = min(min(cs.rect.x, buf.rect.x) for _, cs, buf in slots)
    moved: dict[str, Rect] = {}
    for cs_name, cs_block, buf_block in ordered:
        moved[cs_name] = Rect(x=x, y=band_y, width=cs_block.rect.width,
                              height=band_h)
        x += cs_block.rect.width
        moved[f"{cs_name}_buf"] = Rect(x=x, y=band_y,
                                       width=buf_block.rect.width,
                                       height=band_h)
        x += buf_block.rect.width

    new_placements = tuple(
        replace(block, rect=moved[block.name]) if block.name in moved else block
        for block in floorplan.placements
    )
    result = Floorplan(name=floorplan.name, die=floorplan.die,
                       placements=new_placements, is_m3d=floorplan.is_m3d)
    result.validate()
    require(total_hpwl(result, netlist) <= total_hpwl(floorplan, netlist) + 1e-12,
            "legalization must not increase wirelength")
    return result
