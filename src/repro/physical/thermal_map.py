"""Coarse 2D steady-state thermal map of a placed design.

Extends the paper's Obs. 2 from a scalar peak-power-density check to a
spatial one: the placed blocks' power densities drive a grid model with a
vertical (through-package) conductance to ambient per cell and lateral
(in-silicon) spreading between neighbours:

    G_v * T[i,j] + sum_nbr G_l * (T[i,j] - T[nbr]) = P[i,j]

solved by Jacobi iteration (numpy).  The outputs the tests assert: the
hotspot rise, its location, and the M3D/2D hotspot ratio — which, like
the paper's density ratio, stays within ~1% for the case study.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.thermal import ThermalStack, vertical_conductance
from repro.errors import require
from repro.physical.floorplan import Floorplan
from repro.physical.power import PowerReport

#: Grid resolution (cells per die edge).
GRID = 64

#: Lateral spreading conductance between neighbouring cells, W/K.
#: Silicon spreads heat well; a few W/K per ~0.3 mm cell is representative.
LATERAL_CONDUCTANCE = 2.0


@dataclass(frozen=True)
class ThermalMap:
    """Solved temperature field for one design.

    Attributes:
        design_name: Design identifier.
        rise: Temperature-rise grid (K above ambient), shape (GRID, GRID).
        cell_size: Grid cell edge, metres.
    """

    design_name: str
    rise: np.ndarray
    cell_size: float

    @property
    def hotspot(self) -> float:
        """Peak temperature rise, K."""
        return float(self.rise.max())

    @property
    def average(self) -> float:
        """Mean temperature rise, K."""
        return float(self.rise.mean())

    @property
    def hotspot_location(self) -> tuple[float, float]:
        """(x, y) of the hottest cell centre, metres."""
        index = int(self.rise.argmax())
        row, col = divmod(index, self.rise.shape[1])
        return ((col + 0.5) * self.cell_size, (row + 0.5) * self.cell_size)

    def rise_at(self, x: float, y: float) -> float:
        """Temperature rise at a die coordinate, K."""
        col = min(self.rise.shape[1] - 1, max(0, int(x / self.cell_size)))
        row = min(self.rise.shape[0] - 1, max(0, int(y / self.cell_size)))
        return float(self.rise[row, col])


def power_density_grid(floorplan: Floorplan, power: PowerReport,
                       grid: int = GRID) -> tuple[np.ndarray, float]:
    """Rasterize per-block power onto a grid; returns (P per cell, cell size).

    Upper-tier (M3D) block power lands on the same (x, y) cells as the
    silicon below it — heat has to come down through the stack.
    """
    require(grid >= 4, "grid must be at least 4x4")
    die = floorplan.die
    cell = max(die.width, die.height) / grid
    field = np.zeros((grid, grid))
    for placed in floorplan.placements:
        watts = power.per_block.get(placed.name, 0.0)
        if watts <= 0:
            continue
        rect = placed.rect
        col0 = int(rect.x / cell)
        col1 = max(col0 + 1, int(np.ceil((rect.x + rect.width) / cell)))
        row0 = int(rect.y / cell)
        row1 = max(row0 + 1, int(np.ceil((rect.y + rect.height) / cell)))
        col1 = min(col1, grid)
        row1 = min(row1, grid)
        cells = max(1, (row1 - row0) * (col1 - col0))
        field[row0:row1, col0:col1] += watts / cells
    return field, cell


def solve_thermal_map(
    floorplan: Floorplan,
    power: PowerReport,
    grid: int = GRID,
    iterations: int = 400,
    stack: ThermalStack | None = None,
) -> ThermalMap:
    """Solve the steady-state grid model by Jacobi iteration."""
    require(iterations >= 1, "need at least one iteration")
    source, cell = power_density_grid(floorplan, power, grid)
    # Vertical conductance per cell from the stack's K/W resistance,
    # apportioned by cell area share of the die (shared definition in
    # repro.core.thermal, so the scalar Eq. 17 check cannot diverge).
    cells_on_die = floorplan.die.area / (cell * cell)
    g_vertical = vertical_conductance(cells_on_die, stack)
    g_lateral = LATERAL_CONDUCTANCE
    temp = np.zeros_like(source)
    for _ in range(iterations):
        neighbours = (
            np.pad(temp, ((1, 0), (0, 0)))[:-1, :]
            + np.pad(temp, ((0, 1), (0, 0)))[1:, :]
            + np.pad(temp, ((0, 0), (1, 0)))[:, :-1]
            + np.pad(temp, ((0, 0), (0, 1)))[:, 1:]
        )
        counts = np.full_like(temp, 4.0)
        counts[0, :] -= 1
        counts[-1, :] -= 1
        counts[:, 0] -= 1
        counts[:, -1] -= 1
        temp = (source + g_lateral * neighbours) / (
            g_vertical + g_lateral * counts)
    return ThermalMap(design_name=floorplan.name, rise=temp, cell_size=cell)
