"""RRAM bit-cell, array, and bank-plan models.

The on-chip memory in both the 2D baseline and the M3D design is BEOL RRAM
(Fig. 3 of the paper).  The geometry that drives the whole study:

* In the **2D baseline**, each 1T1R bit-cell pairs a BEOL RRAM device with a
  FEOL **Si** access transistor directly underneath it (Fig. 3a-d).  The Si
  tier under the array is therefore fully occupied (Fig. 3e).
* In the **M3D design**, the access transistor moves to the BEOL **CNFET**
  tier above the RRAM, freeing the Si tier under the array for compute.

The bit-cell footprint is the maximum of three limiters: the access-FET
footprint (which grows with the width-relaxation factor delta), the RRAM
device itself, and the inter-layer-via (ILV) pitch (Case 2, Sec. III-E).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import require
from repro.tech import constants
from repro.tech.devices import FETModel
from repro.tech.ilv import ILVModel
from repro.tech.node import TechnologyNode


@dataclass(frozen=True)
class RRAMCell:
    """A 1T1R RRAM bit-cell.

    Attributes:
        node: Technology node the cell is drawn in.
        base_area_f2: Footprint in F^2 with a minimum-width access FET.
        access_width_factor: Access-FET width relative to minimum (the
            paper's delta); widths > 1 grow the cell footprint
            proportionally because the access FET is the area limiter.
        vias_per_cell: ILVs needed per cell to reach the access-FET tier
            (the paper's m in Case 2); the 1T1R cell routes its bit line
            and source line through the access-FET tier, needing two.
        read_energy_per_bit: Joules per bit read.
        write_energy_per_bit: Joules per bit written.
    """

    node: TechnologyNode
    base_area_f2: float = constants.RRAM_BITCELL_AREA_F2
    access_width_factor: float = 1.0
    vias_per_cell: int = 2
    read_energy_per_bit: float = constants.RRAM_READ_ENERGY_PER_BIT
    write_energy_per_bit: float = constants.RRAM_WRITE_ENERGY_PER_BIT

    def __post_init__(self) -> None:
        require(self.base_area_f2 > 0, "bit-cell base area must be positive")
        require(self.access_width_factor >= 1.0,
                "access width factor (delta) must be >= 1")
        require(self.vias_per_cell >= 1, "need at least one via per cell")
        require(self.read_energy_per_bit >= 0, "read energy must be non-negative")
        require(self.write_energy_per_bit >= 0, "write energy must be non-negative")

    def area(self, ilv: ILVModel | None = None) -> float:
        """Bit-cell footprint in m^2.

        The footprint is limited by the wider of (a) the access FET, which
        scales linearly with its width relaxation delta, and (b) the ILV
        landing area, ``vias_per_cell * pitch^2`` (Case 2 of the paper).
        """
        fet_limited = self.node.area_from_f2(self.base_area_f2) * self.access_width_factor
        if ilv is None:
            return fet_limited
        via_limited = self.vias_per_cell * ilv.pitch * ilv.pitch
        return max(fet_limited, via_limited)

    def with_access_width_factor(self, delta: float) -> "RRAMCell":
        """Return a copy with the access FET relaxed by ``delta`` (>= 1)."""
        return RRAMCell(
            node=self.node,
            base_area_f2=self.base_area_f2,
            access_width_factor=delta,
            vias_per_cell=self.vias_per_cell,
            read_energy_per_bit=self.read_energy_per_bit,
            write_energy_per_bit=self.write_energy_per_bit,
        )


def default_rram_cell(node: TechnologyNode) -> RRAMCell:
    """The 1T1R cell of the foundry M3D PDK with a minimum-width access FET."""
    return RRAMCell(node=node)


def cell_for_access_fet(node: TechnologyNode, reference: FETModel, candidate: FETModel) -> RRAMCell:
    """Build a cell whose access FET is ``candidate`` sized to match ``reference``.

    The required width relaxation is the ratio of drive strengths; a weaker
    BEOL device (e.g. a newly integrated CNFET) needs a wider channel to
    supply the same cell current, which grows the bit-cell footprint.
    """
    delta = reference.drive_current_per_width / candidate.drive_current_per_width
    return default_rram_cell(node).with_access_width_factor(max(1.0, delta))


@dataclass(frozen=True)
class RRAMArray:
    """An RRAM cell array of a given capacity built from one cell type.

    Attributes:
        cell: The bit-cell.
        capacity_bits: Total capacity in bits.
        ilv: Optional ILV model; when provided the cell footprint may be
            via-pitch limited.
    """

    cell: RRAMCell
    capacity_bits: int
    ilv: ILVModel | None = None

    def __post_init__(self) -> None:
        require(self.capacity_bits > 0, "capacity must be positive")

    @property
    def cell_area(self) -> float:
        """Footprint of one bit-cell in m^2."""
        return self.cell.area(self.ilv)

    @property
    def area(self) -> float:
        """Total cell-array footprint in m^2 (cells only, no periphery)."""
        return self.capacity_bits * self.cell_area

    @property
    def rows(self) -> int:
        """Rows of a square-ish array, for periphery scaling estimates."""
        return int(math.isqrt(self.capacity_bits))

    def read_energy(self, bits: float) -> float:
        """Energy in joules to read ``bits`` bits."""
        require(bits >= 0, "bits must be non-negative")
        return bits * self.cell.read_energy_per_bit

    def write_energy(self, bits: float) -> float:
        """Energy in joules to write ``bits`` bits."""
        require(bits >= 0, "bits must be non-negative")
        return bits * self.cell.write_energy_per_bit


@dataclass(frozen=True)
class RRAMBankPlan:
    """Partitioning of one RRAM capacity into independent banks.

    The M3D design re-partitions the same total capacity into ``banks``
    independent channels so each parallel computing sub-system receives its
    own weight-read port; total bandwidth scales with bank count while the
    per-bank width stays fixed.

    Attributes:
        array: The underlying cell array (total capacity).
        banks: Number of independent banks/channels.
        bank_width_bits: Read-port width of each bank, bits per cycle.
    """

    array: RRAMArray
    banks: int
    bank_width_bits: int

    def __post_init__(self) -> None:
        require(self.banks >= 1, "need at least one bank")
        require(self.banks <= self.array.capacity_bits,
                "cannot have more banks than bits")
        require(self.bank_width_bits >= 1, "bank width must be positive")

    @property
    def bank_capacity_bits(self) -> int:
        """Capacity of the largest bank in bits (ceiling partition)."""
        return -(-self.array.capacity_bits // self.banks)

    @property
    def total_bandwidth_bits_per_cycle(self) -> int:
        """Aggregate read bandwidth across all banks, bits per cycle."""
        return self.banks * self.bank_width_bits

    def rebanked(self, banks: int) -> "RRAMBankPlan":
        """Return a plan with the same array re-partitioned into ``banks``."""
        return RRAMBankPlan(array=self.array, banks=banks,
                            bank_width_bits=self.bank_width_bits)
