"""Standard-cell library models.

Stand-in for the foundry M3D standard-cell library.  The library is small but
characterized in the four dimensions the physical design flow consumes: area,
switching energy, intrinsic delay + drive resistance, and leakage.  Two
libraries are provided — FEOL silicon and BEOL CNFET — with the CNFET library
derated by the relative drive strength of foundry-integrated CNFETs.

Cell values are expressed relative to a gate-equivalent (a 2-input NAND) so
the whole library scales coherently with the technology node.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import require
from repro.tech import constants
from repro.tech.node import TechnologyNode
from repro.tech.stackup import TierKind


@dataclass(frozen=True)
class StandardCell:
    """One characterized standard cell.

    Attributes:
        name: Cell name, e.g. ``"NAND2_X1"``.
        gate_equivalents: Size in units of a 2-input NAND.
        area: Placement area in m^2.
        switching_energy: Energy per output transition in joules.
        intrinsic_delay: Unloaded delay in seconds.
        drive_resistance: Output drive resistance in ohms (for wire RC).
        input_capacitance: Per-input capacitance in farads.
        leakage: Static power in watts.
        tier_kind: Which tier family the cell is fabricated in.
    """

    name: str
    gate_equivalents: float
    area: float
    switching_energy: float
    intrinsic_delay: float
    drive_resistance: float
    input_capacitance: float
    leakage: float
    tier_kind: TierKind

    def __post_init__(self) -> None:
        require(self.gate_equivalents > 0, "gate equivalents must be positive")
        require(self.area > 0, "cell area must be positive")
        require(self.switching_energy >= 0, "switching energy must be non-negative")
        require(self.intrinsic_delay > 0, "intrinsic delay must be positive")
        require(self.drive_resistance > 0, "drive resistance must be positive")
        require(self.input_capacitance > 0, "input capacitance must be positive")
        require(self.leakage >= 0, "leakage must be non-negative")

    def delay_with_load(self, load_capacitance: float) -> float:
        """First-order loaded delay: intrinsic + R_drive * C_load."""
        require(load_capacitance >= 0, "load capacitance must be non-negative")
        return self.intrinsic_delay + self.drive_resistance * load_capacitance


@dataclass(frozen=True)
class CellLibrary:
    """A characterized standard-cell library for one device tier.

    Attributes:
        name: Library name.
        node: Technology node.
        cells: Mapping from cell name to :class:`StandardCell`.
        tier_kind: Tier family of every cell in the library.
    """

    name: str
    node: TechnologyNode
    cells: dict[str, StandardCell]
    tier_kind: TierKind

    def __post_init__(self) -> None:
        require(len(self.cells) > 0, "library must contain cells")
        for cell in self.cells.values():
            require(cell.tier_kind == self.tier_kind,
                    f"cell {cell.name} tier does not match library tier")

    def cell(self, name: str) -> StandardCell:
        """Look up a cell by name."""
        if name not in self.cells:
            raise KeyError(f"no cell named {name!r} in library {self.name!r}")
        return self.cells[name]

    @property
    def gate_equivalent(self) -> StandardCell:
        """The reference NAND2 cell."""
        return self.cell("NAND2_X1")

    def area_for_gates(self, gate_equivalents: float) -> float:
        """Placement area in m^2 for a logic block of given GE count."""
        require(gate_equivalents >= 0, "gate equivalents must be non-negative")
        return gate_equivalents * self.gate_equivalent.area

    def energy_for_gates(self, gate_equivalents: float, activity: float = 0.1) -> float:
        """Switching energy per cycle for a block, given an activity factor."""
        require(0 <= activity <= 1, "activity must be in [0, 1]")
        return gate_equivalents * activity * self.gate_equivalent.switching_energy

    def leakage_for_gates(self, gate_equivalents: float) -> float:
        """Static power in watts for a block of given GE count."""
        require(gate_equivalents >= 0, "gate equivalents must be non-negative")
        return gate_equivalents * self.gate_equivalent.leakage


#: (name, GE size, relative delay, relative drive-res, relative input cap)
_CELL_SHAPES: tuple[tuple[str, float, float, float, float], ...] = (
    ("INV_X1", 0.67, 0.7, 1.0, 0.7),
    ("INV_X4", 1.5, 0.5, 0.25, 2.8),
    ("NAND2_X1", 1.0, 1.0, 1.0, 1.0),
    ("NAND3_X1", 1.33, 1.3, 1.1, 1.0),
    ("NOR2_X1", 1.0, 1.2, 1.3, 1.0),
    ("AOI22_X1", 1.67, 1.5, 1.2, 1.0),
    ("XOR2_X1", 2.33, 1.8, 1.2, 1.4),
    ("MUX2_X1", 2.33, 1.6, 1.1, 1.2),
    ("FA_X1", 4.33, 2.2, 1.2, 1.4),
    ("DFF_X1", 5.67, 2.5, 1.1, 1.1),
    ("BUF_X8", 3.0, 0.6, 0.12, 5.5),
)

_NAND2_DRIVE_RESISTANCE = 8.0e3  # ohm, 130 nm-class X1 drive
_NAND2_INPUT_CAP = 2.0e-15  # F


def _build_library(
    name: str,
    node: TechnologyNode,
    tier_kind: TierKind,
    drive_derate: float,
    leakage_derate: float,
) -> CellLibrary:
    cells: dict[str, StandardCell] = {}
    for cell_name, size, rel_delay, rel_res, rel_cap in _CELL_SHAPES:
        cells[cell_name] = StandardCell(
            name=cell_name,
            gate_equivalents=size,
            area=size * node.gate_area,
            switching_energy=size * node.gate_energy,
            intrinsic_delay=rel_delay * node.gate_delay / drive_derate,
            drive_resistance=rel_res * _NAND2_DRIVE_RESISTANCE / drive_derate,
            input_capacitance=rel_cap * _NAND2_INPUT_CAP,
            leakage=size * node.gate_leakage * leakage_derate,
            tier_kind=tier_kind,
        )
    return CellLibrary(name=name, node=node, cells=cells, tier_kind=tier_kind)


def silicon_cell_library(node: TechnologyNode) -> CellLibrary:
    """The FEOL Si CMOS standard-cell library."""
    return _build_library(
        name=f"si_cmos_{node.name}",
        node=node,
        tier_kind=TierKind.SILICON_LOGIC,
        drive_derate=1.0,
        leakage_derate=1.0,
    )


def cnfet_cell_library(
    node: TechnologyNode,
    relative_drive: float = constants.CNFET_RELATIVE_DRIVE,
) -> CellLibrary:
    """The BEOL CNFET standard-cell library, derated by CNFET drive strength."""
    require(relative_drive > 0, "relative drive must be positive")
    return _build_library(
        name=f"cnfet_{node.name}",
        node=node,
        tier_kind=TierKind.CNFET_LOGIC,
        drive_derate=relative_drive,
        leakage_derate=constants.CNFET_RELATIVE_LEAKAGE,
    )
