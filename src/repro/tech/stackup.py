"""Vertical tier stack-up of the M3D process (paper Fig. 4a).

The foundry M3D PDK integrates, bottom to top:

1. FEOL **Si CMOS** (logic, memory peripherals, and — in the 2D baseline —
   the RRAM access transistors),
2. BEOL metal routing layers,
3. a BEOL **RRAM** layer,
4. a BEOL **CNFET** layer (M3D designs only use it for access transistors),
5. top metallization.

The stack-up determines which tiers a macro occupies (and therefore which
tiers it *blocks* in the floorplanner) and feeds the thermal model of
Sec. III-F, where each interleaved compute+memory pair adds thermal
resistance between the transistors and the heat sink.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import require
from repro.tech import constants


class TierKind(enum.Enum):
    """Functional role of a tier in the stack."""

    SILICON_LOGIC = "si_logic"
    METAL_ROUTING = "metal"
    RRAM = "rram"
    CNFET_LOGIC = "cnfet_logic"


@dataclass(frozen=True)
class Tier:
    """One tier of the vertical stack.

    Attributes:
        name: Unique tier name, e.g. ``"si_cmos"``.
        kind: Functional role.
        level: Height index in the stack, 0 = bottom (FEOL).
        placeable: True when standard cells / devices can be placed here.
        routable: True when signal routing may use this tier.
        thermal_resistance: Added K/W between this tier and the one below.
    """

    name: str
    kind: TierKind
    level: int
    placeable: bool
    routable: bool
    thermal_resistance: float = 0.0

    def __post_init__(self) -> None:
        require(self.level >= 0, "tier level must be non-negative")
        require(self.thermal_resistance >= 0, "thermal resistance must be non-negative")


@dataclass(frozen=True)
class LayerStack:
    """An ordered vertical stack of tiers.

    Attributes:
        name: Stack name.
        tiers: Tiers ordered bottom (index 0) to top.
    """

    name: str
    tiers: tuple[Tier, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        require(len(self.tiers) > 0, "a stack needs at least one tier")
        levels = [tier.level for tier in self.tiers]
        require(levels == sorted(levels), "tiers must be ordered bottom to top")
        names = [tier.name for tier in self.tiers]
        require(len(names) == len(set(names)), "tier names must be unique")

    def tier(self, name: str) -> Tier:
        """Look up a tier by name."""
        for candidate in self.tiers:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no tier named {name!r} in stack {self.name!r}")

    def placeable_tiers(self) -> tuple[Tier, ...]:
        """Tiers that accept placed devices (Si CMOS, CNFET, RRAM)."""
        return tuple(tier for tier in self.tiers if tier.placeable)

    def device_tiers(self) -> tuple[Tier, ...]:
        """Tiers holding active devices (everything except pure routing)."""
        return tuple(tier for tier in self.tiers if tier.kind != TierKind.METAL_ROUTING)

    @property
    def has_cnfet_tier(self) -> bool:
        """True when the stack offers a BEOL FET tier (i.e. supports M3D)."""
        return any(tier.kind == TierKind.CNFET_LOGIC for tier in self.tiers)

    def thermal_resistance_to_ambient(self, level: int) -> float:
        """Cumulative K/W from tier ``level`` down through the heat sink.

        Heat extracted from a tier must cross every tier below it plus the
        package/heat-sink resistance (Eq. 17 of the paper).
        """
        require(0 <= level <= max(t.level for t in self.tiers), "level out of range")
        through_stack = sum(t.thermal_resistance for t in self.tiers if t.level <= level)
        return through_stack + constants.THERMAL_R_AMBIENT


def m3d_stackup() -> LayerStack:
    """The foundry M3D stack of Fig. 4a: Si CMOS + metals + RRAM + CNFET."""
    return LayerStack(
        name="foundry_m3d",
        tiers=(
            Tier("si_cmos", TierKind.SILICON_LOGIC, level=0, placeable=True, routable=False),
            Tier("beol_lower_metal", TierKind.METAL_ROUTING, level=1, placeable=False,
                 routable=True),
            Tier("rram", TierKind.RRAM, level=2, placeable=True, routable=False,
                 thermal_resistance=constants.THERMAL_R_PER_TIER / 2),
            Tier("cnfet", TierKind.CNFET_LOGIC, level=3, placeable=True, routable=False,
                 thermal_resistance=constants.THERMAL_R_PER_TIER / 2),
            Tier("beol_upper_metal", TierKind.METAL_ROUTING, level=4, placeable=False,
                 routable=True),
        ),
    )


def baseline_2d_stackup() -> LayerStack:
    """The 2D baseline stack: identical process, but the CNFET tier carries a
    blanket placement blockage (routing through it remains allowed), matching
    the paper's synthesis/P&R restriction for the 2D design."""
    m3d = m3d_stackup()
    tiers = []
    for tier in m3d.tiers:
        if tier.kind == TierKind.CNFET_LOGIC:
            tiers.append(Tier(tier.name, tier.kind, tier.level, placeable=False,
                              routable=True, thermal_resistance=tier.thermal_resistance))
        else:
            tiers.append(tier)
    return LayerStack(name="baseline_2d", tiers=tuple(tiers))


def interleaved_stackup(pairs: int) -> LayerStack:
    """A futuristic stack with ``pairs`` interleaved compute+memory tier pairs
    (Case 3, Sec. III-F).  Pair 1 corresponds to the case-study stack."""
    require(pairs >= 1, "need at least one compute+memory pair")
    tiers: list[Tier] = [
        Tier("si_cmos", TierKind.SILICON_LOGIC, level=0, placeable=True, routable=False),
    ]
    level = 1
    for pair in range(1, pairs + 1):
        tiers.append(Tier(f"metal_{pair}", TierKind.METAL_ROUTING, level=level,
                          placeable=False, routable=True))
        level += 1
        tiers.append(Tier(f"rram_{pair}", TierKind.RRAM, level=level, placeable=True,
                          routable=False,
                          thermal_resistance=constants.THERMAL_R_PER_TIER / 2))
        level += 1
        tiers.append(Tier(f"cnfet_{pair}", TierKind.CNFET_LOGIC, level=level,
                          placeable=True, routable=False,
                          thermal_resistance=constants.THERMAL_R_PER_TIER / 2))
        level += 1
    tiers.append(Tier("top_metal", TierKind.METAL_ROUTING, level=level, placeable=False,
                      routable=True))
    return LayerStack(name=f"interleaved_{pairs}x", tiers=tuple(tiers))
