"""The bundled process design kit (PDK).

:class:`PDK` collects everything the architecture, analytical, and physical
design layers consume: the node, the tier stack, the two cell libraries, the
RRAM bit-cell, the ILV model, and the SRAM macro density.  The factory
:func:`foundry_m3d_pdk` produces our stand-in for the foundry 130 nm M3D PDK
of [5] (see DESIGN.md for the substitution rationale).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import require
from repro.tech import constants
from repro.tech.devices import FETModel, beol_cnfet, silicon_nmos
from repro.tech.ilv import ILVModel, default_ilv
from repro.tech.node import NODE_130NM, TechnologyNode
from repro.tech.rram import RRAMCell, default_rram_cell
from repro.tech.stackup import LayerStack, baseline_2d_stackup, m3d_stackup
from repro.tech.stdcells import CellLibrary, cnfet_cell_library, silicon_cell_library


@dataclass(frozen=True)
class PDK:
    """A process design kit for the M3D flow.

    Attributes:
        name: Kit name.
        node: Technology node.
        stack: Tier stack-up for M3D designs.
        stack_2d: Tier stack-up for the restricted 2D baseline.
        silicon_library: FEOL Si CMOS standard cells.
        cnfet_library: BEOL CNFET standard cells.
        rram_cell: The 1T1R bit-cell (Si access FET, 2D baseline geometry).
        ilv: Inter-layer via model.
        sram_bitcell_area: 6T SRAM bit-cell area in m^2 (for buffer macros).
        sram_energy_per_bit: SRAM access energy, J/bit.
        si_access_fet: The 2D baseline's RRAM access device.
        cnfet_access_fet: The M3D design's RRAM access device.
    """

    name: str
    node: TechnologyNode
    stack: LayerStack
    stack_2d: LayerStack
    silicon_library: CellLibrary
    cnfet_library: CellLibrary
    rram_cell: RRAMCell
    ilv: ILVModel
    sram_bitcell_area: float
    sram_energy_per_bit: float
    si_access_fet: FETModel
    cnfet_access_fet: FETModel

    def __post_init__(self) -> None:
        require(self.sram_bitcell_area > 0, "SRAM bit-cell area must be positive")
        require(self.sram_energy_per_bit >= 0, "SRAM energy must be non-negative")

    @property
    def rram_bitcell_area(self) -> float:
        """2D-baseline 1T1R footprint in m^2 (Si access FET, fine-pitch ILV)."""
        return self.rram_cell.area(self.ilv)

    def m3d_rram_cell(self, width_relaxation: float = 1.0) -> RRAMCell:
        """The M3D bit-cell: CNFET access FET relaxed by ``width_relaxation``.

        ``width_relaxation`` is the paper's delta applied *on top of* the 2D
        cell geometry: delta = 1 reproduces the iso-footprint case study
        (same cell footprint, access FET moved to the CNFET tier); delta > 1
        models weaker BEOL devices needing wider channels (Case 1).
        """
        require(width_relaxation >= 1.0, "width relaxation (delta) must be >= 1")
        return self.rram_cell.with_access_width_factor(width_relaxation)

    def with_ilv_pitch_factor(self, beta: float) -> "PDK":
        """Return a PDK whose ILV pitch is scaled by ``beta`` (Case 2)."""
        return replace(self, ilv=self.ilv.scaled(beta))

    def with_memory_cell(self, cell: RRAMCell) -> "PDK":
        """Return a PDK whose on-chip memory uses ``cell`` instead of the
        foundry RRAM (e.g. an MRAM or FeFET preset from
        :mod:`repro.tech.memories`)."""
        return replace(self, rram_cell=cell)

    def sram_macro_area(self, capacity_bits: float, overhead: float = 0.3) -> float:
        """Footprint of an SRAM buffer macro of ``capacity_bits`` bits.

        ``overhead`` adds decoder/sense/column periphery on top of the
        bit-cell array, a standard macro-compiler overhead fraction.
        """
        require(capacity_bits >= 0, "capacity must be non-negative")
        require(overhead >= 0, "overhead must be non-negative")
        return capacity_bits * self.sram_bitcell_area * (1.0 + overhead)


def foundry_m3d_pdk(
    node: TechnologyNode = NODE_130NM,
    cnfet_relative_drive: float = constants.CNFET_RELATIVE_DRIVE,
) -> PDK:
    """Build the stand-in for the foundry 130 nm M3D PDK of [5]."""
    return PDK(
        name=f"foundry_m3d_{node.name}",
        node=node,
        stack=m3d_stackup(),
        stack_2d=baseline_2d_stackup(),
        silicon_library=silicon_cell_library(node),
        cnfet_library=cnfet_cell_library(node, cnfet_relative_drive),
        rram_cell=default_rram_cell(node),
        ilv=default_ilv(),
        sram_bitcell_area=constants.SRAM_BITCELL_AREA_130NM,
        sram_energy_per_bit=constants.SRAM_ENERGY_PER_BIT,
        si_access_fet=silicon_nmos(node),
        cnfet_access_fet=beol_cnfet(node, relative_drive=cnfet_relative_drive),
    )
