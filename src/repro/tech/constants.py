"""Literature-class 130 nm technology constants.

The paper calibrates its models against foundry hardware data which we do not
have.  These constants are drawn from widely published 130 nm-era figures and
from the RRAM / CNFET literature the paper cites ([5], [10], [11]).  Because
every result in the paper is a 2D-vs-M3D *ratio* and the same constants enter
both sides of each comparison, the absolute values here set the scale of the
reported power/energy numbers but not the benefit ratios.

All values are SI (joules, seconds, metres, watts).
"""

from __future__ import annotations

from repro.units import FJ, NM, PJ, PS, UM2

# --- feature size -------------------------------------------------------------
FEATURE_SIZE_130NM = 130 * NM

# --- logic (Si CMOS, 130 nm, ~1.2 V) -------------------------------------------
#: Area of a 2-input NAND gate-equivalent (site area, including overheads).
GATE_AREA_130NM = 12.0 * UM2
#: Switching energy of one gate-equivalent at nominal supply.
GATE_ENERGY_130NM = 4.0 * FJ
#: Intrinsic delay of one gate-equivalent (FO4-class).
GATE_DELAY_130NM = 80.0 * PS
#: Leakage power per gate-equivalent.
GATE_LEAKAGE_130NM = 0.1e-9  # W

#: Energy of one 8-bit multiply-accumulate in Si CMOS at 130 nm.
MAC8_ENERGY_130NM = 2.0 * PJ
#: Gate-equivalents for one PE (8-bit MAC + weight register + pipeline regs).
PE_GATE_COUNT = 1000

# --- SRAM (6T, 130 nm) ----------------------------------------------------------
#: 6T SRAM bit-cell area (~144 F^2 at 130 nm).
SRAM_BITCELL_AREA_130NM = 2.43 * UM2
#: SRAM read/write energy per bit (array + local periphery).
SRAM_ENERGY_PER_BIT = 0.08 * PJ
#: SRAM leakage per bit.
SRAM_LEAKAGE_PER_BIT = 2e-12  # W

# --- RRAM (1T1R, BEOL, per [5][11]) ---------------------------------------------
#: 1T1R bit-cell area with a minimum-width Si access FET (~36 F^2).
RRAM_BITCELL_AREA_F2 = 36.0
#: RRAM read energy per bit.
RRAM_READ_ENERGY_PER_BIT = 2.0 * PJ
#: RRAM write (SET/RESET) energy per bit.  Inference workloads rarely write.
RRAM_WRITE_ENERGY_PER_BIT = 50.0 * PJ
#: RRAM is non-volatile: idle (retention) power per bit is ~0; the periphery
#: still leaks, captured separately.
RRAM_IDLE_POWER_PER_BIT = 0.0

# --- register file -------------------------------------------------------------
REGISTER_ENERGY_PER_BIT = 0.01 * PJ
REGISTER_AREA_PER_BIT = 6.0 * UM2

# --- CNFET (BEOL tier, per [5]) ---------------------------------------------------
#: CNFET drive current relative to an equal-width Si nMOS at this node.
#: Foundry-integrated CNFETs [5] are "newly implemented" and below ideal.
CNFET_RELATIVE_DRIVE = 0.7
#: CNFET off-state leakage relative to Si nMOS.
CNFET_RELATIVE_LEAKAGE = 0.5

# --- interconnect -----------------------------------------------------------------
#: Wire capacitance per unit length (intermediate BEOL metal).
WIRE_CAP_PER_M = 0.2e-9  # F/m
#: Wire resistance per unit length.
WIRE_RES_PER_M = 2.0e5  # ohm/m
#: Energy to move one bit across 1 mm of on-chip wire.
WIRE_ENERGY_PER_BIT_MM = 0.1 * PJ

# --- inter-layer vias (ILVs) -------------------------------------------------------
#: Default fine-pitch ILV pitch: the same vias as BEOL metal routing
#: (<100 nm at advanced nodes; ~0.5 um at this 130 nm-node PDK).  At this
#: pitch the 1T1R cell (which needs two ILVs to its upper-tier access FET)
#: is just barely FET-limited — exactly the regime the paper's Case 2
#: explores.
ILV_PITCH_130NM = 535 * NM
ILV_RESISTANCE = 20.0  # ohm
ILV_CAPACITANCE = 0.05e-15  # F

# --- thermal ------------------------------------------------------------------------
#: Heat-sink (junction-to-ambient) thermal resistance, K/W.
THERMAL_R_AMBIENT = 0.4
#: Added thermal resistance per interleaved compute+memory tier pair, K/W.
THERMAL_R_PER_TIER = 0.15
#: Maximum allowed temperature rise (paper cites ~60 K [20]).
THERMAL_MAX_RISE_K = 60.0
