"""Transistor models for the three device families in the M3D stack.

The foundry M3D process (Fig. 4a of the paper, [5]) provides:

* front-end-of-line (FEOL) **silicon CMOS** — the bottom tier, used for all
  compute logic and memory peripherals;
* a back-end-of-line (BEOL) **CNFET** layer — used in M3D designs for the
  RRAM access transistors (and in principle for BEOL logic);
* BEOL **RRAM** — the on-chip weight memory (modelled in :mod:`repro.tech.rram`).

The property the paper's analysis actually uses is the *drive current per
width* of each family: the RRAM access transistor must supply the cell's
program/read current, so its required width — and hence the 1T1R bit-cell
footprint — scales inversely with drive strength.  Case 1 of the analytical
framework (Sec. III-D) sweeps exactly this quantity through the width
relaxation factor delta.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.errors import require
from repro.tech import constants
from repro.tech.node import TechnologyNode


class FETKind(enum.Enum):
    """Device family of a transistor."""

    SILICON_NMOS = "si_nmos"
    SILICON_PMOS = "si_pmos"
    CNFET = "cnfet"


@dataclass(frozen=True)
class FETModel:
    """First-order FET model.

    Attributes:
        kind: Device family.
        width: Gate width in metres.
        length: Gate (channel) length in metres.
        drive_current_per_width: On-current per metre of width, A/m.
        leakage_current_per_width: Off-current per metre of width, A/m.
        beol_compatible: True when the device can be fabricated <400 C and
            therefore placed in an upper M3D tier.
    """

    kind: FETKind
    width: float
    length: float
    drive_current_per_width: float
    leakage_current_per_width: float
    beol_compatible: bool

    def __post_init__(self) -> None:
        require(self.width > 0, "FET width must be positive")
        require(self.length > 0, "FET length must be positive")
        require(self.drive_current_per_width > 0, "drive current must be positive")
        require(self.leakage_current_per_width >= 0, "leakage must be non-negative")

    @property
    def on_current(self) -> float:
        """Absolute on-current in amperes."""
        return self.drive_current_per_width * self.width

    @property
    def off_current(self) -> float:
        """Absolute off-state leakage in amperes."""
        return self.leakage_current_per_width * self.width

    def widened(self, factor: float) -> "FETModel":
        """Return a copy with the width scaled by ``factor`` (>0)."""
        require(factor > 0, "width factor must be positive")
        return replace(self, width=self.width * factor)

    def width_for_current(self, current: float) -> float:
        """Width in metres needed to supply ``current`` amperes of drive."""
        require(current > 0, "target current must be positive")
        return current / self.drive_current_per_width


#: Nominal Si nMOS on-current per width at the 130 nm node, A/m.
_SI_NMOS_DRIVE = 500e-6 / 1e-6
_SI_NMOS_LEAKAGE = 10e-9 / 1e-6
#: pMOS mobility penalty.
_PMOS_DRIVE_RATIO = 0.5


def silicon_nmos(node: TechnologyNode, width: float | None = None) -> FETModel:
    """Minimum-width FEOL Si nMOS (the 2D baseline's RRAM access device)."""
    w = width if width is not None else 2.0 * node.feature_size
    return FETModel(
        kind=FETKind.SILICON_NMOS,
        width=w,
        length=node.feature_size,
        drive_current_per_width=_SI_NMOS_DRIVE,
        leakage_current_per_width=_SI_NMOS_LEAKAGE,
        beol_compatible=False,
    )


def silicon_pmos(node: TechnologyNode, width: float | None = None) -> FETModel:
    """Minimum-width FEOL Si pMOS."""
    w = width if width is not None else 2.0 * node.feature_size
    return FETModel(
        kind=FETKind.SILICON_PMOS,
        width=w,
        length=node.feature_size,
        drive_current_per_width=_SI_NMOS_DRIVE * _PMOS_DRIVE_RATIO,
        leakage_current_per_width=_SI_NMOS_LEAKAGE,
        beol_compatible=False,
    )


def beol_cnfet(
    node: TechnologyNode,
    width: float | None = None,
    relative_drive: float = constants.CNFET_RELATIVE_DRIVE,
) -> FETModel:
    """BEOL CNFET as integrated in the foundry M3D process [5].

    ``relative_drive`` expresses the CNFET on-current per width relative to Si
    nMOS; foundry CNFETs are newly introduced and below their ideal drive
    (the paper's Case 1 studies tolerance to exactly this gap).
    """
    require(relative_drive > 0, "relative drive must be positive")
    w = width if width is not None else 2.0 * node.feature_size
    return FETModel(
        kind=FETKind.CNFET,
        width=w,
        length=node.feature_size,
        drive_current_per_width=_SI_NMOS_DRIVE * relative_drive,
        leakage_current_per_width=_SI_NMOS_LEAKAGE * constants.CNFET_RELATIVE_LEAKAGE,
        beol_compatible=True,
    )


def access_fet_width_relaxation(reference: FETModel, candidate: FETModel) -> float:
    """Width relaxation delta needed for ``candidate`` to match ``reference``.

    This is the paper's delta (Sec. III-D): the factor by which a BEOL access
    FET must be widened to supply the same cell current as the reference
    (Si nMOS) access device.  delta >= 1 for devices with weaker drive.
    """
    return reference.drive_current_per_width / candidate.drive_current_per_width
