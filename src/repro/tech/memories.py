"""Alternative on-chip memory technologies.

Sec. II of the paper lists the low-temperature (BEOL-compatible) memory
families that enable M3D — RRAM, MRAM, FeFET — and Obs. 3 contrasts them
with Si-CMOS SRAM.  This module provides literature-class presets for each
so the framework's "beyond this specific foundry technology" claim can be
exercised: any preset slots into the same 1T1R-style cell model and the
whole benefit pipeline runs unchanged.

Values are representative mid-points of published ranges; as everywhere in
this library, identical constants enter both sides of every 2D/M3D
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import require
from repro.tech import constants
from repro.tech.node import TechnologyNode
from repro.tech.rram import RRAMCell
from repro.units import PJ


@dataclass(frozen=True)
class MemoryTechnology:
    """A candidate on-chip memory family.

    Attributes:
        name: Technology name, e.g. ``"rram"``.
        bitcell_area_f2: 1T1R-style bit-cell footprint in F^2 (including a
            minimum-width access device).
        read_energy_per_bit: J/bit read.
        write_energy_per_bit: J/bit write.
        beol_compatible: True when the cell fabricates at <400 C and can
            therefore sit in an upper M3D tier.
        nonvolatile: True when the cell retains data unpowered (eliminates
            idle retention energy between sporadic edge tasks).
    """

    name: str
    bitcell_area_f2: float
    read_energy_per_bit: float
    write_energy_per_bit: float
    beol_compatible: bool
    nonvolatile: bool

    def __post_init__(self) -> None:
        require(self.bitcell_area_f2 > 0, "bit-cell area must be positive")
        require(self.read_energy_per_bit >= 0, "read energy must be >= 0")
        require(self.write_energy_per_bit >= 0, "write energy must be >= 0")

    def cell(self, node: TechnologyNode) -> RRAMCell:
        """Instantiate the 1T1R-style cell model for this technology."""
        return RRAMCell(
            node=node,
            base_area_f2=self.bitcell_area_f2,
            read_energy_per_bit=self.read_energy_per_bit,
            write_energy_per_bit=self.write_energy_per_bit,
        )

    def density_ratio_vs(self, other: "MemoryTechnology") -> float:
        """This cell's area relative to ``other``'s (the Obs. 3 knob)."""
        return self.bitcell_area_f2 / other.bitcell_area_f2


#: The foundry RRAM of the case study ([5], [11]).
RRAM = MemoryTechnology(
    name="rram",
    bitcell_area_f2=constants.RRAM_BITCELL_AREA_F2,
    read_energy_per_bit=constants.RRAM_READ_ENERGY_PER_BIT,
    write_energy_per_bit=constants.RRAM_WRITE_ENERGY_PER_BIT,
    beol_compatible=True,
    nonvolatile=True,
)

#: Spin-transfer-torque MRAM: larger cell, cheaper writes than RRAM.
STT_MRAM = MemoryTechnology(
    name="stt_mram",
    bitcell_area_f2=50.0,
    read_energy_per_bit=3.0 * PJ,
    write_energy_per_bit=20.0 * PJ,
    beol_compatible=True,
    nonvolatile=True,
)

#: Ferroelectric FET memory: dense, low read energy, destructive-read
#: families need write-back (folded into the write energy here).
FEFET = MemoryTechnology(
    name="fefet",
    bitcell_area_f2=30.0,
    read_energy_per_bit=1.0 * PJ,
    write_energy_per_bit=10.0 * PJ,
    beol_compatible=True,
    nonvolatile=True,
)

#: Phase-change memory: very dense but power-hungry writes.
PCM = MemoryTechnology(
    name="pcm",
    bitcell_area_f2=25.0,
    read_energy_per_bit=5.0 * PJ,
    write_energy_per_bit=100.0 * PJ,
    beol_compatible=True,
    nonvolatile=True,
)

#: 6T SRAM — the non-BEOL-compatible strawman of Obs. 3.
SRAM_6T = MemoryTechnology(
    name="sram_6t",
    bitcell_area_f2=144.0,
    read_energy_per_bit=constants.SRAM_ENERGY_PER_BIT,
    write_energy_per_bit=constants.SRAM_ENERGY_PER_BIT,
    beol_compatible=False,
    nonvolatile=False,
)

#: All presets, by name.
MEMORY_TECHNOLOGIES: dict[str, MemoryTechnology] = {
    tech.name: tech for tech in (RRAM, STT_MRAM, FEFET, PCM, SRAM_6T)
}


def memory_technology(name: str) -> MemoryTechnology:
    """Look up a preset by name."""
    if name not in MEMORY_TECHNOLOGIES:
        raise KeyError(
            f"unknown memory technology {name!r}; "
            f"choose from {sorted(MEMORY_TECHNOLOGIES)}")
    return MEMORY_TECHNOLOGIES[name]


def beol_technologies() -> tuple[MemoryTechnology, ...]:
    """All BEOL-compatible presets (usable as M3D on-chip memory)."""
    return tuple(t for t in MEMORY_TECHNOLOGIES.values() if t.beol_compatible)
