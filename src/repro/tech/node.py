"""Technology node description and inter-node scaling.

The paper's physical design is done at a 130 nm node (the node of the foundry
M3D process in [5]) while the architecture it folds was originally optimized
at 40 nm [10]; the authors compensate by relaxing the target frequency to
20 MHz.  :class:`TechnologyNode` carries the handful of node-level quantities
the rest of the library needs, and :func:`scale_area` / :func:`scale_energy`
provide the classical constant-field scaling helpers used in sanity checks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import require
from repro.tech import constants
from repro.units import NM


@dataclass(frozen=True)
class TechnologyNode:
    """A CMOS technology node.

    Attributes:
        name: Human-readable node name, e.g. ``"130nm"``.
        feature_size: Minimum feature size F in metres.
        supply_voltage: Nominal supply in volts.
        gate_area: Area of one gate-equivalent (2-input NAND site) in m^2.
        gate_energy: Switching energy of one gate-equivalent in joules.
        gate_delay: FO4-class delay of one gate-equivalent in seconds.
        gate_leakage: Leakage power of one gate-equivalent in watts.
    """

    name: str
    feature_size: float
    supply_voltage: float
    gate_area: float
    gate_energy: float
    gate_delay: float
    gate_leakage: float

    def __post_init__(self) -> None:
        require(self.feature_size > 0, "feature_size must be positive")
        require(self.supply_voltage > 0, "supply_voltage must be positive")
        require(self.gate_area > 0, "gate_area must be positive")
        require(self.gate_energy > 0, "gate_energy must be positive")
        require(self.gate_delay > 0, "gate_delay must be positive")
        require(self.gate_leakage >= 0, "gate_leakage must be non-negative")

    @property
    def f2(self) -> float:
        """Area of one F^2 in m^2, the natural unit for bit-cell sizes."""
        return self.feature_size * self.feature_size

    def area_from_f2(self, count_f2: float) -> float:
        """Convert an area expressed in F^2 to m^2."""
        require(count_f2 >= 0, "F^2 count must be non-negative")
        return count_f2 * self.f2


#: The node of the foundry M3D process in [5], used for the case study.
NODE_130NM = TechnologyNode(
    name="130nm",
    feature_size=constants.FEATURE_SIZE_130NM,
    supply_voltage=1.2,
    gate_area=constants.GATE_AREA_130NM,
    gate_energy=constants.GATE_ENERGY_130NM,
    gate_delay=constants.GATE_DELAY_130NM,
    gate_leakage=constants.GATE_LEAKAGE_130NM,
)

#: The node the baseline architecture was originally optimized at ([10]).
NODE_40NM = TechnologyNode(
    name="40nm",
    feature_size=40 * NM,
    supply_voltage=0.9,
    gate_area=constants.GATE_AREA_130NM * (40.0 / 130.0) ** 2,
    gate_energy=constants.GATE_ENERGY_130NM * (40.0 / 130.0) * (0.9 / 1.2) ** 2,
    gate_delay=constants.GATE_DELAY_130NM * (40.0 / 130.0),
    gate_leakage=constants.GATE_LEAKAGE_130NM * (40.0 / 130.0),
)


def scale_area(area: float, from_node: TechnologyNode, to_node: TechnologyNode) -> float:
    """Scale an area between nodes with classical F^2 scaling."""
    require(area >= 0, "area must be non-negative")
    ratio = to_node.feature_size / from_node.feature_size
    return area * ratio * ratio


def scale_energy(energy: float, from_node: TechnologyNode, to_node: TechnologyNode) -> float:
    """Scale a switching energy between nodes (CV^2 with C proportional to F)."""
    require(energy >= 0, "energy must be non-negative")
    cap_ratio = to_node.feature_size / from_node.feature_size
    v_ratio = to_node.supply_voltage / from_node.supply_voltage
    return energy * cap_ratio * v_ratio * v_ratio


def scale_delay(delay: float, from_node: TechnologyNode, to_node: TechnologyNode) -> float:
    """Scale a gate delay between nodes (proportional to F at constant field)."""
    require(delay >= 0, "delay must be non-negative")
    return delay * (to_node.feature_size / from_node.feature_size)
