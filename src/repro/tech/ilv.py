"""Inter-layer via (ILV) model.

Ultra-dense M3D integration uses the same fine-pitch vias as ordinary BEOL
metal routing for vertical connectivity between tiers.  The paper's Case 2
(Sec. III-E) shows the ILV pitch is a first-order knob: every memory cell
needs ``m`` vias to its access-FET tier, so when the cell becomes via-pitch
limited its footprint grows as ``m * pitch^2`` and the freed-area benefit
erodes quadratically with pitch.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import require
from repro.tech import constants


@dataclass(frozen=True)
class ILVModel:
    """A vertical inter-layer via technology.

    Attributes:
        pitch: Minimum via pitch in metres.
        resistance: Per-via resistance in ohms.
        capacitance: Per-via capacitance in farads.
    """

    pitch: float = constants.ILV_PITCH_130NM
    resistance: float = constants.ILV_RESISTANCE
    capacitance: float = constants.ILV_CAPACITANCE

    def __post_init__(self) -> None:
        require(self.pitch > 0, "ILV pitch must be positive")
        require(self.resistance >= 0, "ILV resistance must be non-negative")
        require(self.capacitance >= 0, "ILV capacitance must be non-negative")

    def scaled(self, pitch_factor: float) -> "ILVModel":
        """Return a copy with the pitch scaled by ``pitch_factor`` (the
        paper's beta sweep); RC stays first-order unchanged since via height
        is set by the dielectric stack, not the pitch."""
        require(pitch_factor > 0, "pitch factor must be positive")
        return replace(self, pitch=self.pitch * pitch_factor)

    @property
    def density_per_m2(self) -> float:
        """Maximum via density, vias per square metre."""
        return 1.0 / (self.pitch * self.pitch)

    def rc_delay(self) -> float:
        """Intrinsic RC delay of one via in seconds."""
        return self.resistance * self.capacitance


def default_ilv() -> ILVModel:
    """The fine-pitch ILV of the foundry M3D PDK."""
    return ILVModel()
