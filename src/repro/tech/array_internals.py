"""RRAM array internals: mat geometry and access latency.

The chip-level models assume each bank serves a 256-bit read per cycle at
20 MHz.  This module justifies that assumption from first principles: a
bank is tiled into *mats* (sub-arrays); the word-line and bit-line of a
mat are distributed RC lines whose delay grows quadratically with the mat
edge, so the mat size trades access time against the area overhead of
per-mat periphery.  :func:`optimal_mat_rows` picks the largest mat that
meets the cycle-time budget — and the tests confirm the case-study
geometry closes with wide margin at 20 MHz.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import require
from repro.tech import constants
from repro.tech.node import TechnologyNode
from repro.tech.rram import RRAMCell

#: Per-cell word-line capacitance (gate of the access FET + wire), farads.
WL_CAP_PER_CELL = 0.5e-15
#: Per-cell word-line resistance, ohms.
WL_RES_PER_CELL = 2.0
#: Per-cell bit-line capacitance (drain junction + wire), farads.
BL_CAP_PER_CELL = 0.3e-15
#: Per-cell bit-line resistance, ohms.
BL_RES_PER_CELL = 1.5
#: Sense-amplifier resolution time, seconds.
SENSE_TIME = 2.0e-9
#: Word-line driver + decoder delay, seconds.
DECODE_TIME = 1.0e-9
#: Area overhead of per-mat periphery relative to the mat's cell area.
MAT_PERIPHERY_OVERHEAD = 0.08


@dataclass(frozen=True)
class MatGeometry:
    """One memory mat (sub-array).

    Attributes:
        rows: Word lines per mat.
        cols: Bit lines per mat.
    """

    rows: int
    cols: int

    def __post_init__(self) -> None:
        require(self.rows >= 1 and self.cols >= 1,
                "mat dimensions must be >= 1")

    @property
    def bits(self) -> int:
        """Cells per mat."""
        return self.rows * self.cols

    def wordline_delay(self) -> float:
        """Distributed-RC word-line delay (Elmore: 0.38 R C), seconds."""
        resistance = WL_RES_PER_CELL * self.cols
        capacitance = WL_CAP_PER_CELL * self.cols
        return 0.38 * resistance * capacitance

    def bitline_delay(self) -> float:
        """Distributed-RC bit-line delay, seconds."""
        resistance = BL_RES_PER_CELL * self.rows
        capacitance = BL_CAP_PER_CELL * self.rows
        return 0.38 * resistance * capacitance

    def access_time(self) -> float:
        """Total read access time: decode + WL + BL + sense, seconds."""
        return (DECODE_TIME + self.wordline_delay() + self.bitline_delay()
                + SENSE_TIME)

    def meets_cycle(self, frequency_hz: float) -> bool:
        """True when one read fits in a clock cycle at ``frequency_hz``."""
        require(frequency_hz > 0, "frequency must be positive")
        return self.access_time() <= 1.0 / frequency_hz


def optimal_mat_rows(
    frequency_hz: float,
    cols: int = 256,
    max_rows: int = 8192,
) -> int:
    """Largest power-of-two row count whose mat meets the cycle budget."""
    require(max_rows >= 1, "max_rows must be >= 1")
    best = 0
    rows = 1
    while rows <= max_rows:
        if MatGeometry(rows=rows, cols=cols).meets_cycle(frequency_hz):
            best = rows
        rows *= 2
    return best


@dataclass(frozen=True)
class BankOrganization:
    """A bank tiled into mats.

    Attributes:
        capacity_bits: Bank capacity.
        mat: Mat geometry.
    """

    capacity_bits: int
    mat: MatGeometry

    def __post_init__(self) -> None:
        require(self.capacity_bits >= self.mat.bits,
                "bank must hold at least one mat")

    @property
    def mat_count(self) -> int:
        """Mats per bank (ceiling)."""
        return math.ceil(self.capacity_bits / self.mat.bits)

    def area(self, cell: RRAMCell, node: TechnologyNode) -> float:
        """Bank footprint including per-mat periphery, m^2."""
        cells = self.capacity_bits * cell.area(None)
        return cells * (1.0 + MAT_PERIPHERY_OVERHEAD)

    def read_latency_cycles(self, frequency_hz: float) -> int:
        """Pipelined read latency in cycles at ``frequency_hz``."""
        cycle = 1.0 / frequency_hz
        return max(1, math.ceil(self.mat.access_time() / cycle))


def organize_bank(
    capacity_bits: int,
    frequency_hz: float,
    width_bits: int = 256,
) -> BankOrganization:
    """Pick a mat geometry for a bank of ``capacity_bits`` at a clock.

    The mat's column count matches the read-port width (one mat activates
    per access); rows maximize density inside the cycle budget.
    """
    rows = optimal_mat_rows(frequency_hz, cols=width_bits)
    require(rows >= 1,
            f"no mat geometry meets the cycle budget at "
            f"{frequency_hz / 1e6:.0f} MHz")
    return BankOrganization(
        capacity_bits=capacity_bits,
        mat=MatGeometry(rows=rows, cols=width_bits),
    )
