"""Technology substrate: devices, memories, vias, stack-ups and the PDK.

This package stands in for the proprietary foundry 130 nm M3D PDK used by the
paper (Fig. 4a).  Everything the paper's conclusions depend on — area ratios,
device drive strengths, bit-cell geometry, inter-layer-via (ILV) pitch, tier
stack-up — is exposed here as explicit, parametric models.

Public entry point::

    from repro.tech import foundry_m3d_pdk
    pdk = foundry_m3d_pdk()
"""

from repro.tech.node import TechnologyNode, NODE_130NM, NODE_40NM
from repro.tech.devices import FETKind, FETModel, silicon_nmos, silicon_pmos, beol_cnfet
from repro.tech.rram import RRAMCell, RRAMArray, RRAMBankPlan, default_rram_cell
from repro.tech.ilv import ILVModel, default_ilv
from repro.tech.stackup import TierKind, Tier, LayerStack, m3d_stackup, baseline_2d_stackup
from repro.tech.stdcells import StandardCell, CellLibrary, silicon_cell_library, cnfet_cell_library
from repro.tech.pdk import PDK, foundry_m3d_pdk

__all__ = [
    "TechnologyNode",
    "NODE_130NM",
    "NODE_40NM",
    "FETKind",
    "FETModel",
    "silicon_nmos",
    "silicon_pmos",
    "beol_cnfet",
    "RRAMCell",
    "RRAMArray",
    "RRAMBankPlan",
    "default_rram_cell",
    "ILVModel",
    "default_ilv",
    "TierKind",
    "Tier",
    "LayerStack",
    "m3d_stackup",
    "baseline_2d_stackup",
    "StandardCell",
    "CellLibrary",
    "silicon_cell_library",
    "cnfet_cell_library",
    "PDK",
    "foundry_m3d_pdk",
]
