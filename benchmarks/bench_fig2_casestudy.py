"""Fig. 2: the full physical design case study (2D and M3D flows)."""

from _reporting import report_table

from repro.experiments.casestudy import format_case_study, run_case_study
from repro.tech import foundry_m3d_pdk


def test_bench_fig2_case_study(benchmark):
    pdk = foundry_m3d_pdk()
    result = benchmark(run_case_study, pdk)
    assert result.iso_footprint and result.iso_capacity
    assert result.m3d.design.n_cs == 8
    report_table("fig2", format_case_study(result))
