"""Fig. 9 / Obs. 6: M3D benefit vs baseline RRAM capacity."""

from _reporting import report_table

from repro.experiments.fig9 import format_fig9, run_fig9
from repro.tech import foundry_m3d_pdk


def test_bench_fig9_capacity(benchmark):
    pdk = foundry_m3d_pdk()
    points = benchmark(run_fig9, pdk)
    assert points[0].n_cs == 1
    assert points[-1].edp_benefit > 6.0
    report_table("fig9", format_fig9(points))
