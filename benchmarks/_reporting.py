"""Shared table registry for the benchmark harness.

Benchmarks register their formatted paper tables here; the conftest's
``pytest_terminal_summary`` hook prints everything at the end of the run.
"""

from __future__ import annotations

TABLES: dict[str, str] = {}


def report_table(name: str, text: str) -> None:
    """Register a formatted experiment table for the end-of-run summary."""
    TABLES[name] = text
