"""Benchmark harness support.

Each benchmark regenerates one table/figure of the paper and registers its
formatted output through :func:`_reporting.report_table`; the tables are
printed in the terminal summary (visible even under pytest's output
capture), so a ``pytest benchmarks/ --benchmark-only`` run ends with the
full set of paper-comparable tables.
"""

from __future__ import annotations

from _reporting import TABLES


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not TABLES:
        return
    terminalreporter.write_line("")
    terminalreporter.write_sep("=", "paper tables and figures (reproduced)")
    for name in sorted(TABLES):
        terminalreporter.write_line("")
        terminalreporter.write_line(TABLES[name])
