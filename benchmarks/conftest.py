"""Benchmark harness support.

Each benchmark regenerates one table/figure of the paper and registers its
formatted output through :func:`_reporting.report_table`; the tables are
printed in the terminal summary (visible even under pytest's output
capture), so a ``pytest benchmarks/ --benchmark-only`` run ends with the
full set of paper-comparable tables.
"""

from __future__ import annotations

import importlib.util

import pytest

from _reporting import TABLES

if importlib.util.find_spec("pytest_benchmark") is None:
    @pytest.fixture
    def benchmark():
        """Fallback when pytest-benchmark is absent: run the target once.

        The benchmarks double as correctness checks (each asserts on the
        values it reproduces), so a plain call keeps them runnable — and
        usable as a CI perf smoke — without the plugin.
        """
        def run(fn, *args, **kwargs):
            return fn(*args, **kwargs)
        return run


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not TABLES:
        return
    terminalreporter.write_line("")
    terminalreporter.write_sep("=", "paper tables and figures (reproduced)")
    for name in sorted(TABLES):
        terminalreporter.write_line("")
        terminalreporter.write_line(TABLES[name])
