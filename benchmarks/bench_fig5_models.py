"""Fig. 5: whole-model benefits for AlexNet / VGG / ResNet inference."""

from _reporting import report_table

from repro.experiments.fig5 import format_fig5, run_fig5
from repro.tech import foundry_m3d_pdk


def test_bench_fig5_models(benchmark):
    pdk = foundry_m3d_pdk()
    rows = benchmark(run_fig5, pdk)
    benefits = [row.edp_benefit for row in rows]
    assert 5.4 <= min(benefits) and max(benefits) <= 8.5
    report_table("fig5", format_fig5(rows))
