"""Fig. 7 / Table II: six architectures, mapper vs analytical framework."""

from _reporting import report_table

from repro.experiments.fig7 import format_fig7, run_fig7
from repro.tech import foundry_m3d_pdk


def test_bench_fig7_architectures(benchmark):
    pdk = foundry_m3d_pdk()
    rows = benchmark(run_fig7, pdk)
    assert all(row.edp_disagreement < 0.10 for row in rows)
    report_table("fig7", format_fig7(rows))
