"""Extension: joint design-space exploration with Pareto extraction."""

from _reporting import report_table

from repro.core.dse import explore, pareto_frontier
from repro.experiments.reporting import format_table, times
from repro.tech import foundry_m3d_pdk
from repro.units import MEGABYTE, to_mm2


def _run(pdk):
    candidates = explore(pdk)
    return candidates, pareto_frontier(candidates)


def test_bench_ext_dse_pareto(benchmark):
    pdk = foundry_m3d_pdk()
    candidates, frontier = benchmark(_run, pdk)
    assert len(candidates) == 36
    assert 1 <= len(frontier) <= len(candidates)
    # The case-study point must not be dominated at its capacity.
    case = next(c for c in candidates
                if c.capacity_bits == 64 * MEGABYTE and c.delta == 1.0
                and c.beta == 1.0 and c.tier_pairs == 1)
    same_size = [c for c in candidates if c.footprint <= case.footprint]
    assert case.edp_benefit >= 0.8 * max(c.edp_benefit for c in same_size)
    rows = [[f"{c.capacity_bits / MEGABYTE:.0f} MB", c.delta, c.beta,
             c.tier_pairs, c.n_cs, f"{to_mm2(c.footprint):.0f}",
             times(c.edp_benefit)] for c in frontier]
    report_table("ext_dse", format_table(
        "Extension — Pareto frontier of the joint (capacity, delta, beta, "
        "Y) space, ResNet-18",
        ["capacity", "delta", "beta", "Y", "N", "footprint mm^2",
         "EDP benefit"], rows))
