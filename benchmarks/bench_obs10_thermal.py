"""Obs. 10 / Eq. 17: thermal ceiling on stacked tier pairs."""

from _reporting import report_table

from repro.experiments.fig10 import format_obs10, run_obs10


def test_bench_obs10_thermal(benchmark):
    rows = benchmark(run_obs10)
    assert rows[0].max_pairs > rows[-1].max_pairs
    report_table("obs10", format_obs10(rows))
