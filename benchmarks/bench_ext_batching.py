"""Extension: token batching on a transformer encoder."""

from _reporting import report_table

from repro.experiments.ext_batching import format_batching, run_batching
from repro.tech import foundry_m3d_pdk


def test_bench_ext_batching(benchmark):
    pdk = foundry_m3d_pdk()
    rows = benchmark(run_batching, pdk)
    # Batching amortizes slab setup: >20x fewer cycles per token.
    assert rows[0].cycles_per_token_2d > 20 * rows[-1].cycles_per_token_2d
    # The M3D benefit is robust across the regime (stays near N = 8).
    assert all(6.5 < row.speedup <= 8.0 for row in rows)
    report_table("ext_batching", format_batching(rows))
