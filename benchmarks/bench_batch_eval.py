"""Vectorized batch kernel benchmark (PR 7) — ``BENCH_PR7.json``.

Compares three strategies over a scaled-up DSE joint grid (the
``core.dse`` axes: capacity x delta x beta x tier pairs, ResNet-18):

* **legacy** — the pre-acceleration strategy: one independent scalar
  ``evaluate_spec`` per point with memoization, fingerprint caching and
  dedup disabled (the PR 2 baseline arm, on spec calls);
* **scalar cold** — the accelerated scalar path: ``evaluate_specs`` with
  memo tables and content-hash dedup, numpy unused;
* **batch cold** — the vectorized kernel: ``evaluate_specs(batch=True)``
  packs the grid into parameter matrices and evaluates the per-layer
  cost model as array operations with delta-evaluation between
  neighboring points.

A warm re-run of the batch arm on the same engine must be served
entirely from the result cache (the batch path writes the same cache
keys the scalar path reads).  The run also records:

* elementwise parity between the scalar and batch arms (the 1e-9
  acceptance bound);
* the ``batch.points`` / ``batch.delta_hits`` / ``batch.fallback_scalar``
  counters of the batch arm;
* the 36-point paper joint grid, all arms, for comparability with
  ``BENCH_PR2.json``.

``--quick`` shrinks the grid ~4x for CI smoke runs; ``--check`` exits
non-zero when the cold speedup falls below ``--min-speedup`` (default
50x), parity exceeds 1e-9, any point fell back to scalar evaluation, or
the warm run re-evaluated anything.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.batch import backend_name  # noqa: E402
from repro.batch.pack import clear_key_caches  # noqa: E402
from repro.runtime.engine import EvaluationEngine  # noqa: E402
from repro.runtime.memo import (  # noqa: E402
    counter_stats,
    reset_memoization,
    set_memoization,
)
from repro.runtime.serialize import (  # noqa: E402
    clear_fingerprint_cache,
    set_fingerprint_cache,
)
from repro.spec import (  # noqa: E402
    ArchSpec,
    DesignSpec,
    TechSpec,
    evaluate_spec,
    evaluate_specs,
)
from repro.units import MEGABYTE  # noqa: E402

DEFAULT_OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_PR7.json"

PARITY_BOUND = 1e-9


def build_specs(quick: bool = False) -> "list[DesignSpec]":
    """The DSE joint grid, scaled up (full: 3840 points, quick: 1008)."""
    if quick:
        capacities = [int((12 + 4.0 * i) * MEGABYTE) for i in range(28)]
        deltas = (1.0, 1.6, 2.0)
        betas = (1.0, 1.15, 1.3)
        pairs = (1, 2, 3, 4)
    else:
        capacities = [int((12 + 2.5 * i) * MEGABYTE) for i in range(48)]
        deltas = (1.0, 1.4, 1.6, 2.0, 3.0)
        betas = (1.0, 1.1, 1.2, 1.3)
        pairs = (1, 2, 3, 4)
    return [
        DesignSpec(tech=TechSpec(delta=delta, beta=beta),
                   arch=ArchSpec(capacity_bits=capacity, tier_pairs=tp))
        for capacity in capacities
        for delta in deltas
        for beta in betas
        for tp in pairs
    ]


def paper_grid() -> "list[DesignSpec]":
    """The paper's 36-point joint grid (BENCH_PR2's subject)."""
    return [
        DesignSpec(tech=TechSpec(delta=delta, beta=beta),
                   arch=ArchSpec(capacity_bits=capacity, tier_pairs=tp))
        for capacity in (32 * MEGABYTE, 64 * MEGABYTE, 128 * MEGABYTE)
        for delta in (1.0, 1.6, 2.0)
        for beta in (1.0, 1.3)
        for tp in (1, 2)
    ]


def _cold_state() -> None:
    """Empty every process-wide cache either accelerated arm uses."""
    reset_memoization()
    clear_fingerprint_cache()
    clear_key_caches()


def _best_of(repeats, run):
    """Best (minimum) wall time — least noisy on a shared machine."""
    times = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run()
        times.append(time.perf_counter() - start)
    return min(times), times, result


def _batch_counters() -> dict:
    stats = next((c for c in counter_stats() if c.name == "batch"), None)
    return dict(stats.values) if stats is not None else {}


def _max_rel_diff(reference, candidate) -> float:
    worst = 0.0
    for ref, cand in zip(reference, candidate):
        for attr in ("speedup", "energy_benefit", "edp_benefit"):
            expected = getattr(ref, attr)
            got = getattr(cand, attr)
            diff = abs(got - expected) / abs(expected) if expected \
                else abs(got)
            worst = max(worst, diff)
    return worst


def measure(quick: bool = False, repeats: int = 2) -> dict:
    specs = build_specs(quick=quick)
    calls = [(spec,) for spec in specs]

    # Legacy arm: pointwise scalar with every acceleration disabled.
    def run_legacy():
        _cold_state()
        set_memoization(False)
        set_fingerprint_cache(False)
        try:
            EvaluationEngine(jobs=1).map(evaluate_spec, calls,
                                         stage="bench.legacy", dedup=False)
        finally:
            set_memoization(True)
            set_fingerprint_cache(True)
            _cold_state()

    legacy_s, legacy_all, _ = _best_of(repeats, run_legacy)

    # Accelerated scalar arm, cold.
    def run_scalar():
        _cold_state()
        return evaluate_specs(specs, engine=EvaluationEngine(jobs=1))

    scalar_s, scalar_all, scalar_results = _best_of(repeats, run_scalar)

    # Batch arm, cold.
    def run_batch():
        _cold_state()
        return evaluate_specs(specs, engine=EvaluationEngine(jobs=1),
                              batch=True)

    batch_s, batch_all, batch_results = _best_of(repeats, run_batch)
    # _cold_state resets the counter registry at the top of every run,
    # so the registry now holds exactly the last cold run's counts.
    counters = _batch_counters()
    per_run = {key: counters.get(key, 0)
               for key in ("points", "delta_hits", "fallback_scalar")}

    parity = _max_rel_diff(scalar_results, batch_results)

    # Warm arm: batch again on a warmed engine — pure cache hits.
    _cold_state()
    engine = EvaluationEngine(jobs=1)
    evaluate_specs(specs, engine=engine, batch=True)
    warm_s, warm_all, _ = _best_of(repeats, lambda: evaluate_specs(
        specs, engine=engine, batch=True))
    warm_stage = next(s for s in engine.report().stages
                      if s.name == "spec.evaluate")
    warm_reevaluated = warm_stage.evaluated - len(specs)

    # The paper's 36-point grid, for BENCH_PR2 comparability.
    small = paper_grid()
    small_legacy_s, _, _ = _best_of(repeats, lambda: _run_legacy_small(small))
    _cold_state()
    small_scalar_s, _, _ = _best_of(repeats, lambda: (
        _cold_state(),
        evaluate_specs(small, engine=EvaluationEngine(jobs=1))))
    small_batch_s, _, _ = _best_of(repeats, lambda: (
        _cold_state(),
        evaluate_specs(small, engine=EvaluationEngine(jobs=1), batch=True)))

    return {
        "benchmark": "vectorized batch kernel, scaled DSE joint grid "
                     "(capacity x delta x beta x tier pairs), ResNet-18",
        "grid_points": len(specs),
        "quick": quick,
        "repeats": repeats,
        "backend": backend_name(),
        "legacy_cold_s": round(legacy_s, 6),
        "scalar_cold_s": round(scalar_s, 6),
        "batch_cold_s": round(batch_s, 6),
        "batch_warm_s": round(warm_s, 6),
        "speedup_cold": round(legacy_s / batch_s, 2),
        "speedup_vs_scalar": round(scalar_s / batch_s, 2),
        "speedup_warm": round(legacy_s / warm_s, 2),
        "legacy_us_per_point": round(legacy_s / len(specs) * 1e6, 1),
        "batch_us_per_point": round(batch_s / len(specs) * 1e6, 1),
        "max_rel_diff_vs_scalar": parity,
        "batch_counters_per_cold_run": per_run,
        "warm_reevaluated_points": warm_reevaluated,
        "samples": {
            "legacy_cold_s": [round(t, 6) for t in legacy_all],
            "scalar_cold_s": [round(t, 6) for t in scalar_all],
            "batch_cold_s": [round(t, 6) for t in batch_all],
            "batch_warm_s": [round(t, 6) for t in warm_all],
        },
        "paper_grid_36": {
            "legacy_cold_s": round(small_legacy_s, 6),
            "scalar_cold_s": round(small_scalar_s, 6),
            "batch_cold_s": round(small_batch_s, 6),
        },
    }


def _run_legacy_small(specs) -> None:
    _cold_state()
    set_memoization(False)
    set_fingerprint_cache(False)
    try:
        EvaluationEngine(jobs=1).map(
            evaluate_spec, [(spec,) for spec in specs],
            stage="bench.legacy", dedup=False)
    finally:
        set_memoization(True)
        set_fingerprint_cache(True)
        _cold_state()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="~1k-point grid for CI smoke runs")
    parser.add_argument("--repeats", type=int, default=2,
                        help="runs per arm; best time is reported")
    parser.add_argument("--output", type=pathlib.Path, default=DEFAULT_OUTPUT,
                        help="where to write the JSON report")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when an acceptance invariant "
                             "fails")
    parser.add_argument("--min-speedup", type=float, default=50.0,
                        help="cold legacy/batch speedup floor enforced by "
                             "--check (default 50)")
    args = parser.parse_args(argv)

    result = measure(quick=args.quick, repeats=args.repeats)
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.output}")
    print(f"legacy cold : {result['legacy_cold_s'] * 1e3:9.1f} ms  "
          f"({result['legacy_us_per_point']:.0f} us/pt)")
    print(f"scalar cold : {result['scalar_cold_s'] * 1e3:9.1f} ms")
    print(f"batch cold  : {result['batch_cold_s'] * 1e3:9.1f} ms  "
          f"({result['batch_us_per_point']:.1f} us/pt, "
          f"{result['speedup_cold']:.1f}x legacy, "
          f"{result['speedup_vs_scalar']:.1f}x scalar, "
          f"backend={result['backend']})")
    print(f"batch warm  : {result['batch_warm_s'] * 1e3:9.1f} ms  "
          f"({result['speedup_warm']:.1f}x legacy)")
    print(f"parity      : {result['max_rel_diff_vs_scalar']:.3e} "
          f"max rel diff; counters {result['batch_counters_per_cold_run']}")

    failures = []
    if result["speedup_cold"] < args.min_speedup:
        failures.append(
            f"cold speedup {result['speedup_cold']:.1f}x is below the "
            f"{args.min_speedup:.0f}x floor")
    if result["max_rel_diff_vs_scalar"] > PARITY_BOUND:
        failures.append(
            f"batch/scalar divergence {result['max_rel_diff_vs_scalar']:.3e} "
            f"exceeds {PARITY_BOUND:.0e}")
    if result["batch_counters_per_cold_run"].get("fallback_scalar"):
        failures.append("batch arm fell back to scalar evaluation")
    if result["warm_reevaluated_points"] > 0:
        failures.append("warm batch run re-evaluated cached points")
    if args.check and failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
