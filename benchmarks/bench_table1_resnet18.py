"""Table I: per-layer ResNet-18 benefits."""

from _reporting import report_table

from repro.experiments.table1 import format_table1, run_table1
from repro.tech import foundry_m3d_pdk


def test_bench_table1_resnet18(benchmark):
    pdk = foundry_m3d_pdk()
    rows = benchmark(run_table1, pdk)
    total = rows[-1]
    assert abs(total.speedup - 5.64) / 5.64 < 0.05
    report_table("table1", format_table1(rows))
