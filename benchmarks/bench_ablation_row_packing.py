"""Ablation: first-layer C x R row packing.

Without packing, the 3-channel 7x7 stem occupies 3/16 of the array rows
and needs 7x more weight slabs; the calibrated model needs packing to land
the paper's CONV1+POOL row (~3.1x) and the Table I total (~5.6x).
"""

from dataclasses import replace

from _reporting import report_table

from repro.arch import baseline_2d_design, case_study_cs, m3d_design
from repro.experiments.reporting import format_table, times
from repro.perf import compare_designs, simulate
from repro.tech import foundry_m3d_pdk
from repro.workloads import resnet18


def _compare(pdk):
    network = resnet18()
    results = {}
    for packing in (True, False):
        cs = case_study_cs()
        cs = replace(cs, array=replace(cs.array, enable_row_packing=packing))
        baseline = baseline_2d_design(pdk, cs=cs)
        m3d = m3d_design(pdk, cs=cs)
        benefit = compare_designs(
            simulate(baseline, network, pdk), simulate(m3d, network, pdk))
        stem_2d = benefit.baseline.layer_result("CONV1").cycles
        results[packing] = (stem_2d, benefit.speedup, benefit.edp_benefit)
    return results


def test_bench_ablation_row_packing(benchmark):
    pdk = foundry_m3d_pdk()
    results = benchmark(_compare, pdk)
    with_packing, without_packing = results[True], results[False]
    # Packing cuts the stem's 2D cycles ~3.5x and lifts the network total.
    assert with_packing[0] < 0.4 * without_packing[0]
    assert with_packing[1] > without_packing[1]
    table = format_table(
        "Ablation — first-layer C x R row packing (ResNet-18)",
        ["row packing", "CONV1 2D cycles", "total speedup", "EDP benefit"],
        [[str(flag), f"{results[flag][0]:.0f}", times(results[flag][1]),
          times(results[flag][2])] for flag in (True, False)])
    report_table("ablation_packing", table)
