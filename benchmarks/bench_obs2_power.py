"""Obs. 2: per-tier power and peak power density of the M3D design."""

from _reporting import report_table

from repro.arch import m3d_design
from repro.experiments.reporting import format_table, percent
from repro.physical import run_flow
from repro.tech import foundry_m3d_pdk
from repro.units import to_mw


def _power_breakdown(pdk):
    flow = run_flow(m3d_design(pdk), pdk)
    return flow.power


def test_bench_obs2_power(benchmark):
    pdk = foundry_m3d_pdk()
    power = benchmark(_power_breakdown, pdk)
    assert power.upper_tier_fraction < 0.01
    rows = [[tier, f"{to_mw(watts):.3f}",
             percent(watts / power.total, 2)]
            for tier, watts in sorted(power.per_tier.items())]
    table = format_table(
        "Obs. 2 — M3D per-tier power (paper: upper layers < 1%)",
        ["tier", "power mW", "share"], rows)
    report_table("obs2", table)
