"""Ablation: the peripheral blockage term in the CS-count derivation.

Eq. 2 as printed is N = floor(1 + gamma_cells); our refinement subtracts
the memory-peripheral blockage the paper describes in Sec. II.  The term
is what makes the 12 MB Fig. 9 endpoint land at N = 1 (benefit 1x, as the
paper reports) instead of N = 2.
"""

from _reporting import report_table

from repro.arch import baseline_2d_design, derive_parallel_cs_count
from repro.experiments.reporting import format_table
from repro.tech import foundry_m3d_pdk
from repro.units import MEGABYTE

CAPACITIES_MB = (12, 16, 32, 64, 128)


def _sweep(pdk):
    rows = []
    for megabytes in CAPACITIES_MB:
        baseline = baseline_2d_design(pdk, int(megabytes * MEGABYTE))
        with_blockage = derive_parallel_cs_count(
            baseline.area.cells, baseline.area.peripherals,
            baseline.area.cs_unit)
        without_blockage = derive_parallel_cs_count(
            baseline.area.cells, 0.0, baseline.area.cs_unit)
        rows.append((megabytes, with_blockage, without_blockage))
    return rows


def test_bench_ablation_peripheral_blockage(benchmark):
    pdk = foundry_m3d_pdk()
    rows = benchmark(_sweep, pdk)
    by_mb = {mb: (w, wo) for mb, w, wo in rows}
    # The blockage term is what pins the 12 MB endpoint at N = 1.
    assert by_mb[12] == (1, 2)
    assert by_mb[64][0] == 8
    table = format_table(
        "Ablation — peripheral blockage in the Eq. 2 CS derivation",
        ["capacity", "N (with blockage)", "N (paper Eq. 2 verbatim)"],
        [[f"{mb} MB", w, wo] for mb, w, wo in rows])
    report_table("ablation_perif", table)
