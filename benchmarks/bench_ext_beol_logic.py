"""Extension: computing sub-systems in the BEOL CNFET tier."""

from _reporting import report_table

from repro.experiments.ext_beol_logic import format_beol_logic, run_beol_logic
from repro.tech import foundry_m3d_pdk


def test_bench_ext_beol_logic(benchmark):
    pdk = foundry_m3d_pdk()
    result = benchmark(run_beol_logic, pdk)
    assert result.cnfet_cs > 0
    assert result.cnfet_fmax > 20e6  # the derated CSs still close timing
    assert result.edp_benefit > result.baseline_edp_benefit
    assert result.thermal_ok
    report_table("ext_beol_logic", format_beol_logic(result))
