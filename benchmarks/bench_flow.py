"""Staged physical flow benchmark: per-stage caching + invalidation (PR 9).

Drives the 2D/M3D case-study pair through the staged pipeline
(:func:`repro.physical.flow.run_staged_flows`) with a disk-backed
evaluation engine and records in ``BENCH_PR9.json``:

* cold per-stage wall times (every ``flow.<stage>`` call evaluated);
* a warm re-run in a fresh engine over the same cache directory — zero
  stage evaluations, bit-identical outcomes — and the cold/warm wall
  speedup;
* a floorplan-knob sweep (``FlowSpec.aspect_ratio``) over a warm cache:
  content-addressed stage keys keep ``flow.synthesize`` warm across
  every point while the downstream stages re-run, versus an uncached
  arm that re-evaluates everything — the incremental-invalidation
  speedup, in both evaluated-stage-calls and wall time.

``--quick`` shrinks the knob sweep for CI smoke runs; the invariants are
identical.  ``--check`` exits non-zero when a caching invariant fails
(a warm stage re-evaluated, outcomes diverged, or synthesis was
re-synthesized during the knob sweep).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.physical.flow import run_staged_flows  # noqa: E402
from repro.runtime.engine import EvaluationEngine  # noqa: E402
from repro.spec import DesignSpec, FlowSpec  # noqa: E402
from repro.spec.resolve import resolve  # noqa: E402

DEFAULT_OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_PR9.json"


def _stage_rows(engine: EvaluationEngine) -> dict:
    return {stage.name: {"evaluated": stage.evaluated,
                         "cache_hits": stage.cache_hits,
                         "wall_s": round(stage.wall_time, 6)}
            for stage in engine.report().stages
            if stage.name.startswith("flow.")}


def measure(quick: bool = False) -> dict:
    point = resolve(DesignSpec())
    designs = (point.baseline, point.m3d)
    ratios = [1.0 + 0.03 * i for i in range(4 if quick else 12)]

    with tempfile.TemporaryDirectory() as cache_dir:
        cold_engine = EvaluationEngine(jobs=1, cache_dir=cache_dir)
        start = time.perf_counter()
        cold = run_staged_flows(designs, point.pdk, flow=FlowSpec(),
                                engine=cold_engine)
        cold_s = time.perf_counter() - start
        cold_stages = _stage_rows(cold_engine)

        warm_engine = EvaluationEngine(jobs=1, cache_dir=cache_dir)
        start = time.perf_counter()
        warm = run_staged_flows(designs, point.pdk, flow=FlowSpec(),
                                engine=warm_engine)
        warm_s = time.perf_counter() - start
        warm_stages = _stage_rows(warm_engine)

        # Floorplan-knob sweep over the warm cache: synthesis stays warm,
        # everything downstream of the floorplan re-runs per ratio.
        incr_engine = EvaluationEngine(jobs=1, cache_dir=cache_dir)
        start = time.perf_counter()
        for ratio in ratios:
            run_staged_flows(designs, point.pdk,
                             flow=FlowSpec(aspect_ratio=ratio),
                             engine=incr_engine)
        incr_s = time.perf_counter() - start
        incr_stages = _stage_rows(incr_engine)

    # Uncached arm: the same knob sweep with every stage re-evaluated.
    flat_engine = EvaluationEngine(jobs=1, use_cache=False)
    start = time.perf_counter()
    for ratio in ratios:
        run_staged_flows(designs, point.pdk,
                         flow=FlowSpec(aspect_ratio=ratio),
                         engine=flat_engine)
    flat_s = time.perf_counter() - start
    flat_stages = _stage_rows(flat_engine)

    incr_evaluated = sum(row["evaluated"] for row in incr_stages.values())
    flat_evaluated = sum(row["evaluated"] for row in flat_stages.values())
    return {
        "benchmark": "staged physical flow: per-stage content-addressed "
                     "caching on the 2D/M3D case-study pair",
        "quick": quick,
        "designs": [design.name for design in designs],
        "knob_sweep_points": len(ratios),
        "cold": {"wall_s": round(cold_s, 4), "stages": cold_stages},
        "warm": {
            "wall_s": round(warm_s, 4),
            "stages": warm_stages,
            "evaluated": sum(r["evaluated"] for r in warm_stages.values()),
            "outcomes_identical": cold == warm,
            "speedup_vs_cold": round(cold_s / warm_s, 2) if warm_s else None,
        },
        "floorplan_knob_sweep": {
            "knob": "flow.aspect_ratio",
            "incremental_wall_s": round(incr_s, 4),
            "uncached_wall_s": round(flat_s, 4),
            "wall_speedup": round(flat_s / incr_s, 2) if incr_s else None,
            "evaluated_stage_calls": incr_evaluated,
            "uncached_stage_calls": flat_evaluated,
            "stage_calls_saved": flat_evaluated - incr_evaluated,
            "synthesize_reevaluated":
                incr_stages["flow.synthesize"]["evaluated"],
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small knob sweep for CI smoke runs")
    parser.add_argument("--output", type=pathlib.Path, default=DEFAULT_OUTPUT,
                        help=f"result JSON path (default {DEFAULT_OUTPUT})")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when a caching invariant fails")
    args = parser.parse_args(argv)

    result = measure(quick=args.quick)
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.output}")

    if not args.check:
        return 0
    failures = []
    if result["warm"]["evaluated"] != 0:
        failures.append("warm re-run evaluated a stage")
    if not result["warm"]["outcomes_identical"]:
        failures.append("warm outcomes diverged from cold outcomes")
    sweep = result["floorplan_knob_sweep"]
    if sweep["synthesize_reevaluated"] != 0:
        failures.append("floorplan knob sweep re-ran flow.synthesize")
    if sweep["evaluated_stage_calls"] >= sweep["uncached_stage_calls"]:
        failures.append("incremental sweep saved no stage evaluations")
    for failure in failures:
        print(f"CHECK FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
