"""Extension: the M3D principle across BEOL memory technologies."""

from _reporting import report_table

from repro.experiments.ext_memtech import format_memtech, run_memtech
from repro.tech import foundry_m3d_pdk


def test_bench_ext_memory_technologies(benchmark):
    pdk = foundry_m3d_pdk()
    rows = benchmark(run_memtech, pdk)
    by_name = {row.technology.name: row for row in rows}
    # Sparser cells free more silicon -> more CSs; denser cells fewer.
    assert by_name["stt_mram"].n_cs > by_name["rram"].n_cs
    assert by_name["pcm"].n_cs < by_name["rram"].n_cs
    # Every BEOL technology still shows a multi-x benefit.
    assert all(row.edp_benefit > 3.0 for row in rows)
    report_table("ext_memtech", format_memtech(rows))
