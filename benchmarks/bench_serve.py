"""Serving-layer load benchmark (PR 8) — ``BENCH_PR8.json``.

An asyncio load generator for the ``/v1`` evaluation server.  Three
bursts, every request a fresh connection (thousands of independent
clients sharing one warm server-side cache is the point):

* **cold** — N distinct design specs submitted concurrently against an
  empty cache; every point is a real engine evaluation.
* **warm** — R requests round-robined over those same specs, all in
  flight at once.  The server answers from the shared result cache; the
  client-side in-flight high-water mark (and the server's own
  ``peak_inflight`` counter) demonstrate >= 1000 concurrent evaluations
  in full mode.
* **coalesce** — B identical requests for one previously unseen spec,
  fired together.  Duplicates must coalesce onto the single in-flight
  evaluation (``coalesced: true`` on the wire), so the engine computes
  the point exactly once no matter how many clients ask.

Each burst records throughput and p50/p99/mean latency.  By default the
benchmark hosts an in-process :class:`repro.serve.ReproServer` on an
ephemeral port; ``--connect HOST:PORT`` targets an already-running
``repro serve`` instead (the CI smoke job does this), reading the same
counters from ``GET /v1/cache``.

``--quick`` shrinks every burst ~10x for CI; ``--check`` exits non-zero
when an acceptance invariant fails: health not ok, ``/metrics`` not
scrapeable, coalesce rate zero, more than one engine evaluation during
the coalesce burst, or the in-flight peak below the floor (1000 full,
half the warm burst quick).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import statistics
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.serve import ReproServer, ServeClient, ServerConfig  # noqa: E402

DEFAULT_OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_PR8.json"

#: Burst sizes: (distinct specs, warm requests, coalesce duplicates).
FULL_SIZES = (256, 2000, 512)
QUICK_SIZES = (24, 200, 64)


def build_specs(count: int) -> "list[dict]":
    """``count`` distinct design specs (a fine sweep over tech.delta)."""
    return [
        {"arch": {}, "tech": {"delta": round(1.0 + 0.005 * i, 6)},
         "workload": {"network": "resnet18"}}
        for i in range(count)
    ]


def percentile(samples: "list[float]", fraction: float) -> float:
    """Nearest-rank percentile of ``samples`` (which must be non-empty)."""
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


async def run_burst(client: ServeClient, specs: "list[dict]") -> dict:
    """Submit every spec concurrently; per-request latency + responses.

    Tracks the client-side in-flight high-water mark: the number of
    requests submitted but not yet answered.
    """
    inflight = 0
    peak = 0
    latencies: "list[float]" = []
    responses: "list[dict]" = []

    async def one(spec: dict) -> None:
        nonlocal inflight, peak
        inflight += 1
        peak = max(peak, inflight)
        started = time.perf_counter()
        try:
            responses.append(await client.evaluate(spec))
            latencies.append(time.perf_counter() - started)
        finally:
            inflight -= 1

    started = time.perf_counter()
    await asyncio.gather(*(one(spec) for spec in specs))
    wall = time.perf_counter() - started
    return {
        "requests": len(specs),
        "wall_s": round(wall, 6),
        "throughput_rps": round(len(specs) / wall, 1),
        "latency_ms": {
            "p50": round(percentile(latencies, 0.50) * 1e3, 3),
            "p99": round(percentile(latencies, 0.99) * 1e3, 3),
            "mean": round(statistics.fmean(latencies) * 1e3, 3),
            "max": round(max(latencies) * 1e3, 3),
        },
        "peak_inflight_client": peak,
        "_responses": responses,
    }


async def measure(client: ServeClient, sizes: "tuple[int, int, int]") -> dict:
    distinct, warm_requests, duplicates = sizes
    specs = build_specs(distinct)

    health = await client.health()

    # Cold burst: every distinct spec at once, empty cache.
    cold = await run_burst(client, specs)
    cold_cached = sum(bool(r["cached"]) for r in cold.pop("_responses"))

    # Warm burst: round-robin the same specs, all in flight together.
    warm_specs = [specs[i % len(specs)] for i in range(warm_requests)]
    warm = await run_burst(client, warm_specs)
    warm_cached = sum(bool(r["cached"]) for r in warm.pop("_responses"))
    warm["cached_responses"] = warm_cached

    # Coalesce burst: one unseen spec, many identical concurrent asks.
    before = (await client.cache())["serve"]
    fresh = {"arch": {}, "tech": {"delta": 9.875},
             "workload": {"network": "resnet18"}}
    burst = await run_burst(client, [fresh] * duplicates)
    responses = burst.pop("_responses")
    coalesced = sum(bool(r["coalesced"]) for r in responses)
    owners = sum(not r["coalesced"] and not r["cached"] for r in responses)
    fingerprints = {r["result"]["fingerprint"] for r in responses}
    burst.update({
        "coalesced_responses": coalesced,
        "coalesce_rate": round(coalesced / duplicates, 4),
        "owner_evaluations": owners,
        "distinct_fingerprints": len(fingerprints),
    })

    status = await client.cache()
    metrics_text = await client.metrics_text()
    serve = status["serve"]
    return {
        "benchmark": "asyncio /v1 evaluation server under concurrent "
                     "burst load (shared warm cache, coalescing)",
        "server": {"api": status["api"], "version": health["version"],
                   "health": health["status"]},
        "sizes": {"distinct_specs": distinct,
                  "warm_requests": warm_requests,
                  "coalesce_duplicates": duplicates},
        "cold": {**cold, "cached_responses": cold_cached},
        "warm": warm,
        "coalesce": burst,
        "serve_counters": {
            "requests": serve["requests"],
            "coalesced": serve["coalesced"],
            "coalesced_delta": serve["coalesced"] - before["coalesced"],
            "peak_inflight_server": serve["peak_inflight"],
            "peak_pending_server": serve["peak_pending"],
            "rejected_overload": serve["rejected_overload"],
            "rejected_quota": serve["rejected_quota"],
        },
        "cache_entries": status["entries"],
        "metrics_scrape_ok": "repro_serve_requests_total" in metrics_text,
    }


async def hosted(sizes: "tuple[int, int, int]") -> dict:
    """Run the benchmark against an in-process server on an ephemeral port.

    ``max_pending`` is raised above the warm burst so the benchmark
    measures latency under load rather than 429 backpressure (which
    ``tests/test_serve.py`` covers on its own).
    """
    server = ReproServer(ServerConfig(port=0, max_pending=8192))
    host, port = await server.start()
    try:
        result = await measure(ServeClient(host, port), sizes)
        result["mode"] = "in-process"
        return result
    finally:
        await server.stop()


async def connected(target: str, sizes: "tuple[int, int, int]") -> dict:
    host, _, port = target.rpartition(":")
    result = await measure(ServeClient(host or "127.0.0.1", int(port)), sizes)
    result["mode"] = f"connect {target}"
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="~10x smaller bursts for CI smoke runs")
    parser.add_argument("--connect", metavar="HOST:PORT", default=None,
                        help="target a running `repro serve` instead of "
                             "hosting one in-process")
    parser.add_argument("--output", type=pathlib.Path, default=DEFAULT_OUTPUT,
                        help="where to write the JSON report")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when an acceptance invariant "
                             "fails")
    args = parser.parse_args(argv)

    sizes = QUICK_SIZES if args.quick else FULL_SIZES
    if args.connect:
        result = asyncio.run(connected(args.connect, sizes))
    else:
        result = asyncio.run(hosted(sizes))
    result["quick"] = args.quick
    args.output.write_text(json.dumps(result, indent=2) + "\n")

    peak = max(result["warm"]["peak_inflight_client"],
               result["serve_counters"]["peak_inflight_server"])
    print(f"wrote {args.output}")
    for phase in ("cold", "warm", "coalesce"):
        stats = result[phase]
        lat = stats["latency_ms"]
        print(f"{phase:9s}: {stats['requests']:5d} req  "
              f"{stats['throughput_rps']:8.1f} req/s  "
              f"p50 {lat['p50']:8.2f} ms  p99 {lat['p99']:8.2f} ms")
    print(f"peak in-flight: {peak} "
          f"(client {result['warm']['peak_inflight_client']}, "
          f"server {result['serve_counters']['peak_inflight_server']})")
    print(f"coalesce rate: {result['coalesce']['coalesce_rate']:.2%} "
          f"({result['coalesce']['owner_evaluations']} owner evaluation(s) "
          f"for {result['coalesce']['requests']} identical requests)")

    inflight_floor = 1000 if not args.quick else sizes[1] // 2
    failures = []
    if result["server"]["health"] != "ok":
        failures.append("health endpoint did not report ok")
    if not result["metrics_scrape_ok"]:
        failures.append("/metrics scrape missing repro_serve_requests_total")
    if peak < inflight_floor:
        failures.append(f"peak in-flight {peak} is below the "
                        f"{inflight_floor} floor")
    if result["coalesce"]["coalesce_rate"] <= 0:
        failures.append("no requests coalesced in the duplicate burst")
    if result["coalesce"]["owner_evaluations"] > 1:
        failures.append(
            f"{result['coalesce']['owner_evaluations']} engine evaluations "
            f"for one identical burst (expected exactly 1)")
    if result["coalesce"]["distinct_fingerprints"] != 1:
        failures.append("identical requests returned different fingerprints")
    if args.check and failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
