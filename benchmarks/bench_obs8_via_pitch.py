"""Obs. 8 / Case 2: ILV pitch sweep."""

from _reporting import report_table

from repro.experiments.fig10 import format_obs8, run_obs8
from repro.tech import foundry_m3d_pdk


def test_bench_obs8_via_pitch(benchmark):
    pdk = foundry_m3d_pdk()
    results = benchmark(run_obs8, pdk)
    by_beta = {r.beta: r for r in results}
    assert abs(by_beta[1.3].edp_benefit - by_beta[1.0].edp_benefit) \
        < 0.05 * by_beta[1.0].edp_benefit
    assert by_beta[1.6].edp_benefit < 2.0
    report_table("obs8", format_obs8(results))
