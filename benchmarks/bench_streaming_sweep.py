"""Capacity benchmark for the streaming sweep executor (PR 6).

Drives a 100,000-point (capacity x tiers x precision x network) sweep —
~2800x the paper's 36-point joint grid — through
:func:`repro.sweep.stream.run_streaming_sweep` in bounded-memory mode
(``collect=False``: resident state is one in-flight chunk plus the
Pareto frontier) with certified pruning and per-chunk checkpointing, and
records in ``BENCH_PR6.json``:

* cold wall time and points/second;
* points pruned by certified frontier domination vs points evaluated;
* peak RSS before and after the sweep (``resource.getrusage``) — the
  bounded-memory claim, measured;
* a warm re-run against the same checkpoint directory: every chunk must
  replay from disk (zero re-evaluations);
* an exactness spot check — the pruned streaming frontier over the
  36-point joint grid equals the brute-force frontier of the eager
  ``evaluate_sweep`` results.

``--quick`` shrinks the grid to ~1k points for CI smoke runs; the
measurements and invariants are identical.  ``--check`` exits non-zero
when an invariant fails (resume re-evaluated a chunk, or the exactness
spot check mismatched).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import resource
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core.dse import joint_grid_sweep  # noqa: E402
from repro.runtime.engine import EvaluationEngine  # noqa: E402
from repro.spec import DesignSpec, SweepSpec, evaluate_sweep  # noqa: E402
from repro.sweep import (  # noqa: E402
    exhaustive_frontier,
    run_streaming_sweep,
)

DEFAULT_OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_PR6.json"


def build_sweep(quick: bool = False) -> SweepSpec:
    """The benchmark grid: capacity x tiers x precision x network.

    Full: 6250 capacities (12-137 MB) x 4 tier counts x 2 precisions x
    2 networks = 100,000 points.  Quick: 63 capacities -> 1008 points.
    """
    if quick:
        capacities = [12 + 2.0 * i for i in range(63)]
    else:
        capacities = [12 + 0.02 * i for i in range(6250)]
    return SweepSpec(base=DesignSpec(), grid={
        "arch.capacity_mb": capacities,
        "arch.tier_pairs": [1, 2, 4, 8],
        "arch.precision_bits": [4, 8],
        "workload.network": ["resnet18", "mobilenet_v1"],
    })


def _rss_mb() -> float:
    """Peak RSS of this process so far, in MB (Linux: ru_maxrss is KB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def exactness_spot_check() -> bool:
    """Pruned streaming frontier == brute-force frontier, 36-point grid."""
    sweep = joint_grid_sweep()
    eager = evaluate_sweep(sweep, engine=EvaluationEngine(jobs=1))
    expected = exhaustive_frontier(
        (e.footprint, e.edp_benefit, e) for e in eager)
    result = run_streaming_sweep(sweep, chunk_size=5, prune=True,
                                 engine=EvaluationEngine(jobs=1))
    return result.frontier.steps() == tuple(
        dict.fromkeys((x, y) for x, y, _ in expected))


def measure(quick: bool = False, chunk_size: int = 512) -> dict:
    sweep = build_sweep(quick=quick)
    rss_before = _rss_mb()

    with tempfile.TemporaryDirectory(prefix="bench-sweep-ckpt-") as ckpt:
        cold_start = time.perf_counter()
        cold = run_streaming_sweep(
            sweep, engine=EvaluationEngine(jobs=1), chunk_size=chunk_size,
            prune=True, checkpoint=ckpt, collect=False)
        cold_s = time.perf_counter() - cold_start
        rss_after = _rss_mb()

        warm_engine = EvaluationEngine(jobs=1)
        warm_start = time.perf_counter()
        warm = run_streaming_sweep(
            sweep, engine=warm_engine, chunk_size=chunk_size, prune=True,
            checkpoint=ckpt, collect=False)
        warm_s = time.perf_counter() - warm_start
        warm_stage = next((s for s in warm_engine.report().stages
                           if s.name == "sweep.evaluate"), None)

    exact = exactness_spot_check()
    return {
        "benchmark": "streaming sweep, capacity x tiers x precision x "
                     "network, pruned + checkpointed, collect=False",
        "grid_points": len(sweep),
        "chunk_size": chunk_size,
        "quick": quick,
        "cold_s": round(cold_s, 3),
        "cold_points_per_s": round(cold.points / cold_s, 1),
        "chunks": cold.chunks,
        "evaluated": cold.evaluated,
        "pruned": cold.pruned,
        "pruned_fraction": round(cold.pruned / cold.points, 4),
        "frontier_size": len(cold.frontier),
        "rss_before_mb": round(rss_before, 1),
        "rss_peak_mb": round(rss_after, 1),
        "rss_growth_mb": round(rss_after - rss_before, 1),
        "resume": {
            "warm_s": round(warm_s, 3),
            "warm_points_per_s": round(warm.points / warm_s, 1),
            "resumed_chunks": warm.resumed_chunks,
            "chunks": warm.chunks,
            "reevaluated_points": 0 if warm_stage is None
            else warm_stage.evaluated,
            "speedup_vs_cold": round(cold_s / warm_s, 1),
        },
        "exactness_spot_check_36_point_grid": exact,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="~1k-point grid for CI smoke runs")
    parser.add_argument("--chunk-size", type=int, default=512,
                        help="points per streamed chunk (default 512)")
    parser.add_argument("--output", type=pathlib.Path, default=DEFAULT_OUTPUT,
                        help="where to write the JSON report")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero if resume re-evaluated any "
                             "chunk or the exactness spot check failed")
    args = parser.parse_args(argv)

    result = measure(quick=args.quick, chunk_size=args.chunk_size)
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.output}")
    print(f"cold   : {result['cold_s']:8.1f} s  "
          f"({result['cold_points_per_s']:.0f} pts/s, "
          f"{result['pruned']} pruned, "
          f"frontier {result['frontier_size']})")
    print(f"resume : {result['resume']['warm_s']:8.1f} s  "
          f"({result['resume']['resumed_chunks']}/{result['resume']['chunks']}"
          f" chunks replayed, "
          f"{result['resume']['reevaluated_points']} points re-evaluated)")
    print(f"rss    : {result['rss_before_mb']:.0f} MB -> "
          f"{result['rss_peak_mb']:.0f} MB peak "
          f"(+{result['rss_growth_mb']:.0f} MB)")

    failures = []
    if result["resume"]["resumed_chunks"] != result["resume"]["chunks"]:
        failures.append("resume replayed fewer chunks than it processed")
    if result["resume"]["reevaluated_points"]:
        failures.append("resume re-evaluated already-checkpointed points")
    if not result["exactness_spot_check_36_point_grid"]:
        failures.append("pruned frontier diverged from the exhaustive one")
    if args.check and failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
