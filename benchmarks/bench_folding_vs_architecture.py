"""The paper's Fig. 1 contrast: folding-only M3D vs new design points."""

from _reporting import report_table

from repro.experiments.folding import format_folding, run_folding
from repro.tech import foundry_m3d_pdk


def test_bench_folding_vs_architecture(benchmark):
    pdk = foundry_m3d_pdk()
    result = benchmark(run_folding, pdk)
    # Folding alone lands in the prior-work band ([3-4]: ~1.1-1.4x)...
    assert 1.05 < result.folded_edp_benefit < 1.5
    # ...while the architectural design points deliver the paper's 5.7x.
    assert result.architectural_edp_benefit > 5.0
    assert result.architectural_advantage > 3.5
    report_table("folding", format_folding(result))
