"""Ablation: the shared output-writeback bus width.

DESIGN.md calls the serial shared bus the reason per-layer speedups
saturate below N (Table I shows 7.3-7.9x, not 8x).  This ablation sweeps
the bus width: a too-narrow bus caps the whole benefit; widening beyond
the default gives diminishing returns because compute becomes the limiter.
"""

from dataclasses import replace

from _reporting import report_table

from repro.arch import baseline_2d_design, m3d_design
from repro.experiments.reporting import format_table, times
from repro.perf import compare_designs, simulate
from repro.tech import foundry_m3d_pdk
from repro.workloads import resnet18

BUS_WIDTHS = (32, 64, 128, 256, 512)


def _sweep(pdk):
    network = resnet18()
    rows = []
    for bits in BUS_WIDTHS:
        baseline = replace(baseline_2d_design(pdk), writeback_bus_bits=bits)
        m3d = replace(m3d_design(pdk), writeback_bus_bits=bits)
        benefit = compare_designs(
            simulate(baseline, network, pdk), simulate(m3d, network, pdk))
        rows.append((bits, benefit.speedup, benefit.edp_benefit))
    return rows


def test_bench_ablation_bus_width(benchmark):
    pdk = foundry_m3d_pdk()
    rows = benchmark(_sweep, pdk)
    speedups = [speedup for _, speedup, _ in rows]
    # The serial bus is load-bearing: narrowing it erodes the benefit, and
    # speedups are monotone in the bus width.
    assert speedups == sorted(speedups)
    assert speedups[0] < 0.8 * speedups[-1]
    table = format_table(
        "Ablation — shared writeback bus width (ResNet-18, default 128b)",
        ["bus bits", "speedup", "EDP benefit"],
        [[bits, times(s), times(e)] for bits, s, e in rows])
    report_table("ablation_bus", table)
