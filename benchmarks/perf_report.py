"""End-to-end speedup report for the hot-path acceleration PR.

Measures the joint DSE grid (``repro dse``) three ways on this machine:

* **legacy** — the pre-PR evaluation strategy: one independent
  ``evaluate_design_point`` call per grid point, no layer memoization,
  no fingerprint cache, no within-batch deduplication;
* **cold** — the accelerated path (``explore``) from empty caches:
  planned sweep, batch dedup, layer/slice memoization, cached
  fingerprints;
* **warm** — the accelerated path again on the same engine, where the
  result cache answers every call.

All three arms run at the same ``--jobs`` (default 1) so the comparison
isolates the algorithmic changes from parallelism.  Results land in
``BENCH_PR2.json`` together with the memo/dedup hit-rate statistics of
the cold run and a cold timing of the capacity sweep (Fig. 9).

``--check`` re-measures and exits non-zero if the cold accelerated run
is not at least ``--min-speedup`` (default 2.0) times faster than the
legacy arm — a machine-independent guard against a >2x regression of
the cold-run wall time relative to what this PR recorded.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core.dse import evaluate_design_point, explore  # noqa: E402
from repro.core.insights import sweep_rram_capacity  # noqa: E402
from repro.runtime.engine import EvaluationEngine  # noqa: E402
from repro.runtime.memo import reset_memoization, set_memoization  # noqa: E402
from repro.runtime.serialize import (  # noqa: E402
    clear_fingerprint_cache,
    set_fingerprint_cache,
)
from repro.tech import foundry_m3d_pdk  # noqa: E402
from repro.units import MEGABYTE  # noqa: E402
from repro.workloads.models import resnet18  # noqa: E402

DEFAULT_OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_PR2.json"

GRID = dict(
    capacities_bits=(32 * MEGABYTE, 64 * MEGABYTE, 128 * MEGABYTE),
    deltas=(1.0, 1.6, 2.0),
    betas=(1.0, 1.3),
    tier_pairs=(1, 2),
)


def _grid_calls(pdk, network):
    """The pre-PR call list: one evaluate_design_point per grid point."""
    return [
        {"pdk": pdk, "network": network, "capacity_bits": capacity,
         "delta": delta, "beta": beta, "tier_pairs": pairs}
        for capacity in GRID["capacities_bits"]
        for delta in GRID["deltas"]
        for beta in GRID["betas"]
        for pairs in GRID["tier_pairs"]
    ]


def _cold_state():
    """Empty every process-wide cache the accelerated path uses."""
    reset_memoization()
    clear_fingerprint_cache()


def _best_of(repeats, run):
    """Best (minimum) wall time of ``repeats`` runs of ``run()``.

    Minimum, not mean: on a shared machine the minimum is the least
    noisy estimator of the code's intrinsic cost.
    """
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        times.append(time.perf_counter() - start)
    return min(times), times


def measure(jobs: int = 1, repeats: int = 3) -> dict:
    pdk = foundry_m3d_pdk()
    network = resnet18()
    calls = _grid_calls(pdk, network)

    # Legacy arm: pointwise evaluation with every acceleration disabled.
    def run_legacy():
        _cold_state()
        set_memoization(False)
        set_fingerprint_cache(False)
        try:
            engine = EvaluationEngine(jobs=jobs)
            engine.map(evaluate_design_point, calls,
                       stage="dse.explore", dedup=False)
        finally:
            set_memoization(True)
            set_fingerprint_cache(True)
            _cold_state()

    legacy_s, legacy_all = _best_of(repeats, run_legacy)

    # Accelerated arm, cold: fresh engine and empty memo tables each run.
    def run_cold():
        _cold_state()
        explore(pdk, network, engine=EvaluationEngine(jobs=jobs), jobs=jobs,
                **GRID)

    cold_s, cold_all = _best_of(repeats, run_cold)

    # One instrumented cold run to report hit-rate statistics.
    _cold_state()
    engine = EvaluationEngine(jobs=jobs)
    candidates = explore(pdk, network, engine=engine, jobs=jobs, **GRID)
    report = engine.report()
    stage = report.stage("dse.simulate")

    # Warm arm: same engine again — the result cache answers everything.
    warm_s, warm_all = _best_of(repeats, lambda: explore(
        pdk, network, engine=engine, jobs=jobs, **GRID))

    # Fig. 9 capacity sweep, accelerated and cold, for the record.
    _cold_state()
    fig9_start = time.perf_counter()
    sweep_rram_capacity(pdk=pdk, engine=EvaluationEngine(jobs=jobs),
                        jobs=jobs)
    fig9_s = time.perf_counter() - fig9_start

    return {
        "benchmark": "joint DSE grid (repro dse), ResNet-18, full factorial",
        "grid_points": len(candidates),
        "jobs": jobs,
        "repeats": repeats,
        "legacy_cold_s": round(legacy_s, 6),
        "accelerated_cold_s": round(cold_s, 6),
        "accelerated_warm_s": round(warm_s, 6),
        "speedup_cold": round(legacy_s / cold_s, 2),
        "speedup_warm": round(legacy_s / warm_s, 2),
        "fig9_capacity_sweep_cold_s": round(fig9_s, 6),
        "samples": {
            "legacy_cold_s": [round(t, 6) for t in legacy_all],
            "accelerated_cold_s": [round(t, 6) for t in cold_all],
            "accelerated_warm_s": [round(t, 6) for t in warm_all],
            "median_legacy_cold_s": round(statistics.median(legacy_all), 6),
            "median_accelerated_cold_s": round(statistics.median(cold_all), 6),
        },
        "cold_run_stats": {
            "simulate_calls": stage.calls,
            "evaluated": stage.evaluated,
            "dedup_hits": stage.dedup_hits,
            "dedup_hit_rate": round(stage.dedup_hits / stage.calls, 3),
            "memo_tables": {
                memo.name: {
                    "hits": memo.hits,
                    "misses": memo.misses,
                    "hit_rate": round(memo.hits / memo.lookups, 3),
                }
                for memo in report.memos if memo.lookups
            },
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker count for every arm (default 1)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="runs per arm; best time is reported")
    parser.add_argument("--output", type=pathlib.Path, default=DEFAULT_OUTPUT,
                        help="where to write the JSON report")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero if cold speedup < --min-speedup")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="cold speedup floor enforced by --check")
    args = parser.parse_args(argv)

    result = measure(jobs=args.jobs, repeats=args.repeats)
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.output}")
    print(f"legacy cold       : {result['legacy_cold_s'] * 1e3:8.1f} ms")
    print(f"accelerated cold  : {result['accelerated_cold_s'] * 1e3:8.1f} ms"
          f"  ({result['speedup_cold']:.2f}x)")
    print(f"accelerated warm  : {result['accelerated_warm_s'] * 1e3:8.1f} ms"
          f"  ({result['speedup_warm']:.2f}x)")

    if args.check and result["speedup_cold"] < args.min_speedup:
        print(f"FAIL: cold speedup {result['speedup_cold']:.2f}x is below "
              f"the {args.min_speedup:.1f}x floor — the accelerated path "
              f"has regressed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
