"""Fig. 10b-c / Obs. 7: access-FET width relaxation sweep (Case 1)."""

from _reporting import report_table

from repro.experiments.fig10 import format_fig10c, run_fig10c
from repro.tech import foundry_m3d_pdk


def test_bench_fig10c_fet_width(benchmark):
    pdk = foundry_m3d_pdk()
    results = benchmark(run_fig10c, pdk)
    by_delta = {r.delta: r for r in results}
    assert abs(by_delta[1.6].edp_benefit - by_delta[1.0].edp_benefit) \
        < 0.05 * by_delta[1.0].edp_benefit
    assert by_delta[2.5].edp_benefit > 1.0
    report_table("fig10c", format_fig10c(results))
