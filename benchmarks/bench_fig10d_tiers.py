"""Fig. 10d / Obs. 9: interleaved compute+memory tier pairs (Case 3)."""

from _reporting import report_table

from repro.experiments.fig10 import format_fig10d, run_fig10d
from repro.tech import foundry_m3d_pdk


def test_bench_fig10d_tiers(benchmark):
    pdk = foundry_m3d_pdk()
    result = benchmark(run_fig10d, pdk)
    sweep = result.network_sweep
    assert sweep[1].edp_benefit > sweep[0].edp_benefit  # Y=2 beats Y=1
    assert result.parallel_layer_sweep[-1].edp_benefit > 15.0
    report_table("fig10d", format_fig10d(result))
