"""Obs. 3: SRAM-class (less dense) 2D baselines make M3D look better."""

from _reporting import report_table

from repro.experiments.obs3 import format_obs3, run_obs3
from repro.tech import foundry_m3d_pdk


def test_bench_obs3_sram_baseline(benchmark):
    pdk = foundry_m3d_pdk()
    rows = benchmark(run_obs3, pdk)
    by_ratio = {row.density_ratio: row for row in rows}
    assert by_ratio[2.0].n_cs == 16
    assert by_ratio[2.0].edp_benefit > by_ratio[1.0].edp_benefit
    report_table("obs3", format_obs3(rows))
