"""Extension: operand precision vs capacity and benefit."""

from _reporting import report_table

from repro.experiments.ext_precision import format_precision, run_precision
from repro.tech import foundry_m3d_pdk


def test_bench_ext_precision(benchmark):
    pdk = foundry_m3d_pdk()
    rows = benchmark(run_precision, pdk)
    by_bits = {row.precision_bits: row for row in rows}
    # 16-bit weights halve the effective capacity: fewer models fit.
    assert len(by_bits[16].models_fitting) < len(by_bits[8].models_fitting)
    # Lower precision loads weight slabs faster -> mildly better benefit.
    assert by_bits[4].edp_benefit >= by_bits[16].edp_benefit
    report_table("ext_precision", format_precision(rows))
