"""Fig. 8 / Obs. 5: EDP benefit over the bandwidth x CS-count plane."""

from _reporting import report_table

from repro.experiments.fig8 import format_fig8, run_fig8


def test_bench_fig8_bandwidth_vs_cs(benchmark):
    result = benchmark(run_fig8)
    assert 1.8 < result.compute_bound_doubling < 2.4
    assert 1.8 < result.memory_bound_rebalance < 2.4
    report_table("fig8", format_fig8(result))
