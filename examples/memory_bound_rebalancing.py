#!/usr/bin/env python3
"""Obs. 5 in practice: spending freed silicon on bandwidth vs parallelism.

A transformer encoder at token-batch 1 is the memory-bound regime the
paper's Obs. 5 warns about; a batched CNN is the compute-bound one.  The
allocation optimizer (:mod:`repro.core.allocate`) enumerates every split of
the M3D-freed silicon between extra computing sub-systems and extra weight
channels and picks the EDP-optimal design point for each workload — and it
rediscovers the paper's rule of thumb.
"""

from repro.core.allocate import optimize_freed_silicon
from repro.core.framework import Workload
from repro.core.insights import reference_design_point
from repro.experiments.ext_batching import format_batching, run_batching
from repro.tech import foundry_m3d_pdk
from repro.workloads import resnet18
from repro.workloads.transformer import tiny_encoder


def main() -> None:
    base = reference_design_point()
    freed = 7.0  # CS-area units the case study frees at 64 MB

    # Workload profiles from the real networks (ops per weight-bit).
    cnn = resnet18()
    encoder = tiny_encoder()
    cnn_workload = Workload(compute_ops=cnn.total_macs,
                            data_bits=cnn.weight_bits())
    enc_workload = Workload(compute_ops=encoder.total_macs,
                            data_bits=encoder.weight_bits())
    print(f"ResNet-18 intensity: {cnn_workload.intensity:.1f} ops/bit "
          f"(compute-bound)")
    print(f"encoder   intensity: {enc_workload.intensity:.3f} ops/bit "
          f"(weight-bound at batch 1)")

    for name, workload in (("ResNet-18", cnn_workload),
                           ("encoder b=1", enc_workload)):
        result = optimize_freed_silicon(workload, base, freed)
        best = result.best
        print(f"\n{name}: best split of {freed:.0f} CS-units of freed Si:")
        print(f"  +{best.extra_cs} CSs, +{best.extra_channels} weight "
              f"channels -> {best.edp_benefit:.2f}x EDP "
              f"({'parallelism' if result.prefers_compute else 'bandwidth'} "
              f"wins)")

    print("\nAnd batching moves the encoder across the regimes:")
    print(format_batching(run_batching(foundry_m3d_pdk())))


if __name__ == "__main__":
    main()
