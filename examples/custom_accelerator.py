#!/usr/bin/env python3
"""Extending the library: a custom accelerator and a custom workload.

Shows the pieces a user composes to explore their own design point:

1. a custom computing sub-system (a wider 32x8 weight-stationary array with
   smaller buffers),
2. a custom DNN workload (a small edge-vision network),
3. iso-footprint, iso-capacity 2D/M3D designs at 32 MB, and
4. the benefit comparison plus the analytical cross-check.
"""

from repro.arch import ComputingSubsystem, baseline_2d_design, m3d_design
from repro.arch.systolic import SystolicArrayConfig
from repro.core import analyze_network
from repro.perf import compare_designs, simulate
from repro.tech import foundry_m3d_pdk
from repro.units import MEGABYTE, to_mm2
from repro.workloads.layers import ConvLayer, FCLayer, PoolLayer
from repro.workloads.models import Network


def edge_vision_net() -> Network:
    """A compact edge CNN (~1.8 M parameters)."""
    return Network(name="edge_vision", layers=(
        ConvLayer("STEM", in_channels=3, out_channels=32, kernel=3, stride=2,
                  in_size=96, padding=1),
        ConvLayer("B1", in_channels=32, out_channels=64, kernel=3, stride=1,
                  in_size=48, padding=1),
        PoolLayer("P1", channels=64, kernel=2, stride=2, in_size=48),
        ConvLayer("B2", in_channels=64, out_channels=128, kernel=3, stride=1,
                  in_size=24, padding=1),
        PoolLayer("P2", channels=128, kernel=2, stride=2, in_size=24),
        ConvLayer("B3", in_channels=128, out_channels=256, kernel=3, stride=1,
                  in_size=12, padding=1),
        PoolLayer("GAP", channels=256, kernel=12, stride=12, in_size=12),
        FCLayer("HEAD", in_features=256, out_features=4096),
    ))


def main() -> None:
    pdk = foundry_m3d_pdk()
    cs = ComputingSubsystem(
        array=SystolicArrayConfig(rows=32, cols=8),
        input_buffer_bits=int(0.25 * MEGABYTE),
        output_buffer_bits=int(0.25 * MEGABYTE),
        control_gates=80_000,
    )
    capacity = 32 * MEGABYTE

    baseline = baseline_2d_design(pdk, capacity, cs=cs)
    m3d = m3d_design(pdk, capacity, cs=cs)
    print(f"custom CS area: {to_mm2(cs.silicon_area(pdk)):.1f} mm^2")
    print(f"M3D fits {m3d.n_cs} parallel CSs at "
          f"{to_mm2(m3d.area.footprint):.0f} mm^2 (iso with 2D)")

    network = edge_vision_net()
    benefit = compare_designs(
        simulate(baseline, network, pdk),
        simulate(m3d, network, pdk),
    )
    print(f"\n{network.name}: speedup {benefit.speedup:.2f}x, "
          f"energy {benefit.energy_benefit:.2f}x, "
          f"EDP {benefit.edp_benefit:.2f}x")
    for layer in benefit.layers:
        print(f"  {layer.name:5s} speedup {layer.speedup:5.2f}x "
              f"(uses {layer.m3d.used_cs}/{m3d.n_cs} CSs)")

    analytic_2d = analyze_network(baseline, network, pdk)
    analytic_3d = analyze_network(m3d, network, pdk)
    analytic = ((analytic_2d.runtime / analytic_3d.runtime)
                * (analytic_2d.energy / analytic_3d.energy))
    gap = abs(analytic - benefit.edp_benefit) / benefit.edp_benefit
    print(f"\nanalytical framework cross-check: {analytic:.2f}x "
          f"({gap * 100:.1f}% from the simulator)")


if __name__ == "__main__":
    main()
