#!/usr/bin/env python3
"""Fig. 7: six accelerator architectures, two independent evaluators.

Evaluates every Table II architecture on AlexNet inference with (a) the
ZigZag-style mapping DSE and (b) the analytical framework, printing both
sets of benefits and their agreement (the paper reports <10%).
"""

from repro.experiments.fig7 import arch_cs_area, arch_n_cs, format_fig7, run_fig7
from repro.arch.table2 import table_ii_architectures
from repro.tech import foundry_m3d_pdk
from repro.units import to_mm2


def main() -> None:
    pdk = foundry_m3d_pdk()

    print("Table II architectures (all 1024 PEs, 256 MB RRAM):")
    for arch in table_ii_architectures():
        spatial = arch.spatial
        print(f"  Arch {arch.index} ({arch.name}): spatial "
              f"K={spatial.k} C={spatial.c} OX={spatial.ox} OY={spatial.oy}, "
              f"CS area {to_mm2(arch_cs_area(arch, pdk)):.1f} mm^2, "
              f"M3D N = {arch_n_cs(arch, pdk)}")
    print()
    print(format_fig7(run_fig7(pdk)))


if __name__ == "__main__":
    main()
