#!/usr/bin/env python3
"""Quickstart: reproduce the paper's headline result in ~20 lines.

Builds the Sec. II 2D baseline (Si CMOS + 64 MB on-chip RRAM, one computing
sub-system) and the iso-footprint, iso-capacity M3D design (RRAM access FETs
moved to the BEOL CNFET tier, freeing silicon for 8 parallel computing
sub-systems), then runs ResNet-18 inference on both.

Expected output: ~5.6x speedup at ~1.0x energy -> ~5.7x EDP benefit
(paper Table I total: 5.64x / 0.99x / 5.66x).
"""

from repro import (
    baseline_2d_design,
    compare_designs,
    foundry_m3d_pdk,
    m3d_design,
    resnet18,
    simulate,
)
from repro.units import to_mm2


def main() -> None:
    pdk = foundry_m3d_pdk()

    baseline = baseline_2d_design(pdk)
    m3d = m3d_design(pdk)
    print(f"2D baseline: {baseline.n_cs} CS, "
          f"{to_mm2(baseline.area.footprint):.0f} mm^2 footprint")
    print(f"M3D design : {m3d.n_cs} CS, "
          f"{to_mm2(m3d.area.footprint):.0f} mm^2 footprint (iso)")

    network = resnet18()
    benefit = compare_designs(
        simulate(baseline, network, pdk),
        simulate(m3d, network, pdk),
    )
    print(f"\nResNet-18 inference, M3D vs 2D:")
    print(f"  speedup       {benefit.speedup:.2f}x   (paper: 5.64x)")
    print(f"  energy        {benefit.energy_benefit:.2f}x   (paper: 0.99x)")
    print(f"  EDP benefit   {benefit.edp_benefit:.2f}x   (paper: 5.66x)")


if __name__ == "__main__":
    main()
