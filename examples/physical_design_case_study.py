#!/usr/bin/env python3
"""The Sec. II physical design case study, end to end (paper Fig. 2).

Runs the block-level RTL-to-GDS flow (synthesize -> floorplan -> place ->
route -> timing -> power) on both designs and prints the Fig. 2 comparison:
iso footprint, 1 vs 8 computing sub-systems, achieved frequency at the
20 MHz target, per-tier power, and the Obs. 2 thermal headlines (<1% power
in the upper tiers, ~+1% peak power density).
"""

from repro.experiments.casestudy import format_case_study, run_case_study
from repro.experiments.reporting import percent
from repro.tech import foundry_m3d_pdk
from repro.units import to_mm2


def main() -> None:
    pdk = foundry_m3d_pdk()
    result = run_case_study(pdk)
    print(format_case_study(result))

    m3d = result.m3d
    print("\n--- M3D flow detail ---")
    plan = m3d.floorplan
    print(f"die: {to_mm2(plan.footprint):.1f} mm^2, "
          f"Si utilization {percent(plan.tier_utilization('si_cmos'))}, "
          f"RRAM-tier utilization {percent(plan.tier_utilization('rram'))}")
    print(f"routing: {m3d.routing.inter_block_wirelength:.1f} m-bits "
          f"inter-block, {m3d.routing.buffer_count} repeaters, "
          f"{m3d.routing.ilv_count} inter-layer vias")
    print(f"timing: critical path {m3d.timing.critical_path * 1e9:.2f} ns "
          f"-> fmax {m3d.timing.achieved_frequency / 1e6:.0f} MHz "
          f"(target 20 MHz, slack {m3d.timing.slack * 1e9:.1f} ns)")
    for tier, watts in sorted(m3d.power.per_tier.items()):
        print(f"power[{tier:8s}] = {watts * 1e3:8.3f} mW "
              f"({percent(watts / m3d.power.total, 2)})")


if __name__ == "__main__":
    main()
