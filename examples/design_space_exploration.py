#!/usr/bin/env python3
"""Design-space exploration with the analytical framework (paper Sec. III).

Reproduces the four framework studies:

* Fig. 9  — RRAM capacity vs benefit (Obs. 6),
* Fig. 10c — BEOL access-FET width relaxation tolerance (Obs. 7),
* Obs. 8  — ILV via-pitch tolerance,
* Fig. 10d — interleaved compute+memory tier pairs (Obs. 9),

plus the Fig. 8 bandwidth-vs-parallelism grids (Obs. 5).
"""

from repro.experiments.fig8 import format_fig8, run_fig8
from repro.experiments.fig9 import format_fig9, run_fig9
from repro.experiments.fig10 import (
    format_fig10c,
    format_fig10d,
    format_obs8,
    run_fig10c,
    run_fig10d,
    run_obs8,
)
from repro.tech import foundry_m3d_pdk


def main() -> None:
    pdk = foundry_m3d_pdk()
    print(format_fig9(run_fig9(pdk)))
    print()
    print(format_fig10c(run_fig10c(pdk)))
    print()
    print(format_obs8(run_obs8(pdk)))
    print()
    print(format_fig10d(run_fig10d(pdk)))
    print()
    print(format_fig8(run_fig8()))


if __name__ == "__main__":
    main()
