"""Command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, available_experiments, main


def test_every_paper_artifact_has_a_cli_entry():
    names = set(available_experiments())
    for required in ("casestudy", "fig5", "table1", "fig7", "fig8", "fig9",
                     "fig10c", "obs8", "fig10d", "obs3", "obs10"):
        assert required in names


def test_list_is_default(capsys):
    assert main([]) == 0
    out = capsys.readouterr().out
    assert "available experiments" in out
    assert "table1" in out


def test_explicit_list(capsys):
    assert main(["list"]) == 0
    assert "fig9" in capsys.readouterr().out


def test_unknown_experiment_fails(capsys):
    assert main(["fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_single_experiment(capsys):
    assert main(["obs10"]) == 0
    out = capsys.readouterr().out
    assert "60 K" in out


def test_run_multiple_experiments(capsys):
    assert main(["obs10", "fig8"]) == 0
    out = capsys.readouterr().out
    assert "60 K" in out
    assert "Fig. 8a" in out


def test_run_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "L4.1 CONV2" in out
    assert "Total" in out


def test_descriptions_are_nonempty():
    for name, (description, runner) in EXPERIMENTS.items():
        assert description, name
        assert callable(runner), name


def test_report_contains_all_sections(capsys):
    from repro.report import build_report
    report = build_report()
    for marker in ("--- table1:", "--- fig7:", "--- ext-batching:",
                   "--- validation ---"):
        assert marker in report
    assert "[FAIL]" not in report
    assert "16/16 claims reproduced" in report
