"""Command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, available_experiments, main


def test_every_paper_artifact_has_a_cli_entry():
    names = set(available_experiments())
    for required in ("casestudy", "fig5", "table1", "fig7", "fig8", "fig9",
                     "fig10c", "obs8", "fig10d", "obs3", "obs10", "folding"):
        assert required in names


def test_cli_mirrors_the_registry():
    from repro.experiments.registry import experiment_names
    assert available_experiments() == experiment_names()


def test_list_is_default(capsys):
    assert main([]) == 0
    out = capsys.readouterr().out
    assert "available experiments" in out
    assert "table1" in out


def test_explicit_list(capsys):
    assert main(["list"]) == 0
    assert "fig9" in capsys.readouterr().out


def test_unknown_experiment_fails(capsys):
    assert main(["fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_single_experiment(capsys):
    assert main(["obs10"]) == 0
    out = capsys.readouterr().out
    assert "60 K" in out


def test_run_multiple_experiments(capsys):
    assert main(["obs10", "fig8"]) == 0
    out = capsys.readouterr().out
    assert "60 K" in out
    assert "Fig. 8a" in out


def test_run_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "L4.1 CONV2" in out
    assert "Total" in out


def test_descriptions_are_nonempty():
    for name, (description, runner) in EXPERIMENTS.items():
        assert description, name
        assert callable(runner), name


def test_list_markdown(capsys):
    assert main(["list", "--markdown"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("| experiment | summary | module |")
    assert "| `table1` |" in out


def test_profile_prints_top_spans(capsys):
    assert main(["obs10", "--profile"]) == 0
    out = capsys.readouterr().out
    assert "Experiment wall time" in out
    assert "Top spans by total wall time" in out
    assert "experiment.obs10" in out


def test_trace_writes_valid_chrome_trace(tmp_path, capsys):
    import json

    from repro.obs.export import validate_chrome_trace

    path = tmp_path / "trace.json"
    assert main(["table1", "--trace", str(path)]) == 0
    data = json.loads(path.read_text())
    assert validate_chrome_trace(data) == []
    names = {event["name"] for event in data["traceEvents"]}
    assert "experiment.table1" in names
    assert "engine.map" in names


def test_trace_csv_and_metrics_files(tmp_path, capsys):
    csv_path = tmp_path / "spans.csv"
    prom_path = tmp_path / "metrics.prom"
    assert main(["obs10", "--trace-csv", str(csv_path),
                 "--metrics", str(prom_path)]) == 0
    assert csv_path.read_text().startswith("name,depth,worker")
    assert "# TYPE" in prom_path.read_text()


def test_tracing_off_without_observe_flags(capsys):
    from repro.obs.trace import is_enabled
    assert main(["obs10"]) == 0
    assert not is_enabled()
    out = capsys.readouterr().out
    assert "Top spans" not in out


def test_report_contains_all_sections(capsys):
    from repro.report import build_report
    report = build_report()
    for marker in ("--- table1:", "--- fig7:", "--- ext-batching:",
                   "--- validation ---"):
        assert marker in report
    assert "[FAIL]" not in report
    assert "16/16 claims reproduced" in report
