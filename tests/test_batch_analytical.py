"""Vectorized Eqs. 1-8: agreement with the scalar framework."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import numpy_available, set_numpy_enabled
from repro.batch.analytical import (
    edp_benefit_batch,
    energy_batch,
    energy_benefit_batch,
    execution_time_batch,
    speedup_batch,
)
from repro.core.framework import (
    DesignPoint,
    Workload,
    edp_benefit,
    energy,
    energy_benefit,
    execution_time,
    speedup,
)
from repro.core.insights import sweep_bandwidth_vs_cs
from repro.errors import ConfigurationError

REL = 1e-9

_FLOATS = st.floats(min_value=1e-3, max_value=1e9,
                    allow_nan=False, allow_infinity=False)

_WORKLOADS = st.builds(
    Workload,
    compute_ops=_FLOATS,
    data_bits=_FLOATS,
    max_partitions=st.floats(min_value=1.0, max_value=1e6,
                             allow_nan=False, allow_infinity=False),
)

_DESIGNS = st.builds(
    DesignPoint,
    n_cs=st.integers(min_value=1, max_value=64),
    peak_ops_per_cycle=_FLOATS,
    bandwidth_bits_per_cycle=_FLOATS,
    memory_energy_per_bit=_FLOATS,
    compute_energy_per_op=_FLOATS,
    cs_idle_energy_per_cycle=_FLOATS,
    memory_idle_energy_per_cycle=_FLOATS,
)


@settings(max_examples=60, deadline=None)
@given(workloads=st.lists(_WORKLOADS, min_size=1, max_size=8),
       designs=st.lists(_DESIGNS, min_size=1, max_size=8))
def test_time_and_energy_parity(workloads, designs):
    if len(workloads) != len(designs):
        # Exercise broadcasting instead: one of the two is length 1.
        workloads = workloads[:1]
    times = execution_time_batch(workloads, designs)
    energies = energy_batch(workloads, designs)
    assert len(times) == len(energies) == len(designs)
    for i, design in enumerate(designs):
        workload = workloads[0] if len(workloads) == 1 else workloads[i]
        assert times[i] == pytest.approx(
            execution_time(workload, design), rel=REL)
        assert energies[i] == pytest.approx(energy(workload, design), rel=REL)


@settings(max_examples=40, deadline=None)
@given(workload=_WORKLOADS, baseline=_DESIGNS,
       m3ds=st.lists(_DESIGNS, min_size=1, max_size=8))
def test_benefit_parity(workload, baseline, m3ds):
    gains = speedup_batch([workload], [baseline], m3ds)
    savings = energy_benefit_batch([workload], [baseline], m3ds)
    edps = edp_benefit_batch([workload], [baseline], m3ds)
    for i, m3d in enumerate(m3ds):
        assert gains[i] == pytest.approx(
            speedup(workload, baseline, m3d), rel=REL)
        assert savings[i] == pytest.approx(
            energy_benefit(workload, baseline, m3d), rel=REL)
        assert edps[i] == pytest.approx(
            edp_benefit(workload, baseline, m3d), rel=REL)


@pytest.mark.skipif(not numpy_available(), reason="needs numpy to compare")
def test_python_mode_is_bit_identical():
    workload = Workload(compute_ops=16e9, data_bits=1e9)
    baseline = DesignPoint(
        n_cs=1, peak_ops_per_cycle=512, bandwidth_bits_per_cycle=256,
        memory_energy_per_bit=1e-12, compute_energy_per_op=1e-13,
        cs_idle_energy_per_cycle=1e-11, memory_idle_energy_per_cycle=1e-11)
    m3ds = [baseline.with_n_cs(n).with_bandwidth(n * 256)
            for n in (1, 2, 4, 8, 16)]
    previous = set_numpy_enabled(False)
    try:
        python_mode = edp_benefit_batch([workload], [baseline], m3ds)
    finally:
        set_numpy_enabled(previous)
    scalar = [edp_benefit(workload, baseline, m3d) for m3d in m3ds]
    assert python_mode == scalar


def test_broadcast_rejects_incompatible_lengths():
    workload = Workload(compute_ops=1e9, data_bits=1e9)
    design = DesignPoint(
        n_cs=1, peak_ops_per_cycle=512, bandwidth_bits_per_cycle=256,
        memory_energy_per_bit=1e-12, compute_energy_per_op=1e-13,
        cs_idle_energy_per_cycle=1e-11, memory_idle_energy_per_cycle=1e-11)
    with pytest.raises(ConfigurationError, match="broadcast"):
        execution_time_batch([workload] * 2, [design] * 3)
    with pytest.raises(ConfigurationError, match="non-empty"):
        execution_time_batch([], [design])


def test_fig8_sweep_batch_matches_scalar():
    scalar = sweep_bandwidth_vs_cs(16.0)
    batched = sweep_bandwidth_vs_cs(16.0, batch=True)
    assert len(batched) == len(scalar) == 25
    for b, s in zip(batched, scalar):
        assert (b.n_cs, b.bandwidth_factor) == (s.n_cs, s.bandwidth_factor)
        assert b.edp_benefit == pytest.approx(s.edp_benefit, rel=REL)
