"""Property tests for the evaluation runtime (``repro.runtime``).

The contracts under test are the ones the sweeps rely on:

* ``pmap(fn, items, jobs=N)`` returns the same values in the same order
  as the serial map, for any ``N`` — parallelism is observably invisible;
* cache keys are pure functions of call *content*: stable across
  processes and equal-but-distinct objects, different whenever any PDK or
  knob field differs;
* a cache round-trip through disk returns an equal result object;
* ``explore(jobs>1)`` equals ``explore(jobs=1)`` exactly, and a warm disk
  cache serves a repeat sweep with zero ``evaluate_design_point`` calls.
"""

from __future__ import annotations

import dataclasses
import functools
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.core.dse import DesignCandidate, evaluate_design_point, explore
from repro.core.insights import CapacityPoint, capacity_point
from repro.runtime import (
    MISSING,
    EvaluationEngine,
    ResultCache,
    call_key,
    configure,
    default_engine,
    default_jobs,
    dumps,
    from_jsonable,
    loads,
    pmap,
    pmap_calls,
    reset_default_engine,
    stable_key,
    to_jsonable,
)
from repro.errors import ConfigurationError
from repro.experiments.reporting import format_run_report
from repro.units import MEGABYTE
from repro.workloads import resnet18, alexnet

#: A small but non-trivial joint-DSE grid (4 points) reused across tests.
SMALL_GRID = dict(capacities_bits=(32 * MEGABYTE,), deltas=(1.0, 1.6),
                  betas=(1.0,), tier_pairs=(1, 2))


def _square(x):
    return x * x


def _add(a, b, offset=0):
    return a + b + offset


def _boom(x):
    raise ValueError(f"task failure for {x}")


def _type_name(value):
    return type(value).__name__


@pytest.fixture
def fresh_default_engine():
    """Isolate tests that touch the process-wide default engine."""
    reset_default_engine()
    yield
    reset_default_engine()


class TestPmap:
    @pytest.mark.parametrize("jobs", [1, 2, 3, 8])
    def test_matches_serial_map_in_order_and_values(self, jobs):
        items = list(range(12))
        assert pmap(_square, items, jobs=jobs) == [x * x for x in items]

    def test_jobs_zero_uses_all_cpus(self):
        assert default_jobs() >= 1
        assert pmap(_square, [1, 2, 3], jobs=0) == [1, 4, 9]

    def test_negative_jobs_rejected_only_below_auto(self):
        # jobs<=0 means "auto"; the guard inside pmap still holds.
        assert pmap(_square, [2], jobs=-1) == [4]

    def test_empty_input(self):
        assert pmap(_square, [], jobs=4) == []

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_task_exception_propagates(self, jobs):
        with pytest.raises(ValueError, match="task failure"):
            pmap(_boom, [1, 2, 3], jobs=jobs)

    def test_unpicklable_fn_falls_back_to_serial(self):
        offset = 10
        results = pmap(lambda x: x + offset, [1, 2, 3], jobs=4)
        assert results == [11, 12, 13]

    @pytest.mark.parametrize("jobs", [1, 3])
    def test_pmap_calls_mixed_args_kwargs(self, jobs):
        calls = [((1, 2), {}), ((3, 4), {"offset": 100}), ((0, 0), {})]
        assert pmap_calls(_add, calls, jobs=jobs) == [3, 107, 0]


class TestStableKey:
    def test_is_a_sha256_hex_digest(self, pdk):
        key = stable_key(pdk, 64 * MEGABYTE, 1.6)
        assert len(key) == 64
        assert set(key) <= set("0123456789abcdef")

    def test_equal_objects_same_key(self, pdk):
        # A freshly reconstructed PDK/network must hash identically.
        assert stable_key(pdk, resnet18(), 1.0) == \
            stable_key(repro.foundry_m3d_pdk(), resnet18(), 1.0)

    def test_stable_across_processes(self, pdk):
        local = stable_key(pdk, resnet18(), 64 * MEGABYTE, 1.6)
        script = (
            "from repro.tech import foundry_m3d_pdk\n"
            "from repro.workloads import resnet18\n"
            "from repro.runtime import stable_key\n"
            "from repro.units import MEGABYTE\n"
            "print(stable_key(foundry_m3d_pdk(), resnet18(), "
            "64 * MEGABYTE, 1.6))\n"
        )
        src = str(Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ, PYTHONPATH=src)
        remote = subprocess.run(
            [sys.executable, "-c", script], env=env, text=True,
            capture_output=True, check=True).stdout.strip()
        assert remote == local

    def test_any_pdk_field_change_changes_key(self, pdk):
        base = stable_key(pdk)
        assert stable_key(pdk.with_ilv_pitch_factor(1.3)) != base
        for field in dataclasses.fields(pdk):
            value = getattr(pdk, field.name)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            perturbed = dataclasses.replace(pdk, **{field.name: value * 2 + 1})
            assert stable_key(perturbed) != base, field.name

    def test_any_knob_change_changes_key(self, pdk):
        net = resnet18()
        base = call_key(evaluate_design_point, (pdk, net, 64 * MEGABYTE),
                        {"delta": 1.0, "beta": 1.0, "tier_pairs": 1})
        variants = [
            ((pdk, net, 32 * MEGABYTE),
             {"delta": 1.0, "beta": 1.0, "tier_pairs": 1}),
            ((pdk, net, 64 * MEGABYTE),
             {"delta": 1.6, "beta": 1.0, "tier_pairs": 1}),
            ((pdk, net, 64 * MEGABYTE),
             {"delta": 1.0, "beta": 1.3, "tier_pairs": 1}),
            ((pdk, net, 64 * MEGABYTE),
             {"delta": 1.0, "beta": 1.0, "tier_pairs": 2}),
            ((pdk, alexnet(), 64 * MEGABYTE),
             {"delta": 1.0, "beta": 1.0, "tier_pairs": 1}),
        ]
        keys = [call_key(evaluate_design_point, args, kwargs)
                for args, kwargs in variants]
        assert base not in keys
        assert len(set(keys)) == len(keys)

    def test_key_distinguishes_functions(self, pdk):
        assert call_key(_square, (pdk,), {}) != call_key(_type_name, (pdk,), {})


class TestSerialization:
    def test_design_candidate_round_trip(self, pdk):
        candidate = evaluate_design_point(pdk, resnet18(), 32 * MEGABYTE,
                                          delta=1.6, tier_pairs=2)
        data = candidate.to_dict()
        assert candidate == DesignCandidate.from_dict(
            json.loads(json.dumps(data)))

    def test_capacity_point_round_trip(self, pdk):
        point = capacity_point(pdk, resnet18(), 32 * MEGABYTE)
        assert point == CapacityPoint.from_dict(
            json.loads(json.dumps(point.to_dict())))

    def test_from_dict_rejects_other_types(self, pdk):
        point = capacity_point(pdk, resnet18(), 32 * MEGABYTE)
        with pytest.raises(ConfigurationError):
            DesignCandidate.from_dict(point.to_dict())

    def test_benefit_report_round_trip(self, resnet18_benefit):
        assert loads(dumps(resnet18_benefit)) == resnet18_benefit

    def test_containers_round_trip(self):
        value = {"pair": (1, 2.5), "tags": frozenset({"a", "b"}),
                 "levels": {"x", "y"}, "rows": [(1,), (2,)], "none": None}
        assert from_jsonable(to_jsonable(value)) == value

    def test_canonical_text_is_deterministic(self, pdk):
        assert dumps(pdk) == dumps(repro.foundry_m3d_pdk())

    def test_untrusted_module_rejected(self):
        payload = {"__dataclass__": "os.path:join", "fields": {}}
        with pytest.raises((ValueError, TypeError, ConfigurationError)):
            from_jsonable(payload)

    def test_unserializable_value_raises_type_error(self):
        with pytest.raises(TypeError):
            to_jsonable(object())


class TestResultCache:
    def test_memory_round_trip_and_missing_sentinel(self):
        cache = ResultCache()
        assert cache.get("k") is MISSING
        cache.put("k", None)  # a cached None is not a miss
        assert cache.get("k") is None
        assert "k" in cache
        assert len(cache) == 1

    def test_lru_eviction(self):
        cache = ResultCache(max_memory_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" is now LRU
        cache.put("c", 3)
        assert cache.get("b") is MISSING
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_disk_round_trip_returns_equal_candidate(self, pdk, tmp_path):
        candidate = evaluate_design_point(pdk, resnet18(), 32 * MEGABYTE)
        writer = ResultCache(directory=tmp_path)
        key = stable_key(pdk, 32 * MEGABYTE)
        writer.put(key, candidate)
        reader = ResultCache(directory=tmp_path)  # fresh memory tier
        restored = reader.get(key)
        assert restored == candidate
        assert isinstance(restored, DesignCandidate)
        assert reader.stats.disk_hits == 1
        assert reader.get(key) == candidate  # now from memory
        assert reader.stats.memory_hits == 1

    def test_tampered_disk_file_degrades_to_miss(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put("key", 42)
        (tmp_path / "key.json").write_text("{not json", encoding="utf-8")
        fresh = ResultCache(directory=tmp_path)
        assert fresh.get("key") is MISSING

    def test_stats_counters(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.get("absent")
        cache.put("k", 7)
        cache.get("k")
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1
        assert cache.stats.hits == 1


class TestEvaluationEngine:
    def test_explore_parallel_identical_to_serial(self, pdk):
        serial = explore(pdk, engine=EvaluationEngine(jobs=1, use_cache=False),
                         **SMALL_GRID)
        parallel = explore(pdk, engine=EvaluationEngine(jobs=4,
                                                        use_cache=False),
                           **SMALL_GRID)
        assert parallel == serial  # dataclass equality: exact floats
        assert [dumps(p) for p in parallel] == [dumps(s) for s in serial]

    def test_memory_cache_hits_within_one_engine(self, pdk):
        engine = EvaluationEngine()
        first = explore(pdk, engine=engine, **SMALL_GRID)
        second = explore(pdk, engine=engine, **SMALL_GRID)
        assert second == first
        stage = engine.report().stage("dse.explore")
        assert stage.calls == 2 * len(first)
        assert stage.evaluated == len(first)
        assert stage.cache_hits == len(first)

    def test_warm_disk_cache_runs_zero_evaluations(self, pdk, tmp_path,
                                                   monkeypatch):
        cold = EvaluationEngine(jobs=2, cache_dir=tmp_path)
        expected = explore(pdk, engine=cold, **SMALL_GRID)
        assert cold.report().stage("dse.explore").evaluated == len(expected)

        # The acceptance bar: a *fresh* engine over the warm directory must
        # answer entirely from disk — evaluate_design_point never runs.
        @functools.wraps(evaluate_design_point)
        def forbidden(*args, **kwargs):
            raise AssertionError("evaluate_design_point called on warm cache")

        monkeypatch.setattr("repro.core.dse.evaluate_design_point", forbidden)
        warm = EvaluationEngine(jobs=1, cache_dir=tmp_path)
        repeat = explore(pdk, engine=warm, **SMALL_GRID)
        assert repeat == expected
        stage = warm.report().stage("dse.explore")
        assert stage.cache_hits == len(expected)
        assert stage.cache_misses == 0
        assert stage.evaluated == 0

    def test_call_spec_normalization(self):
        engine = EvaluationEngine(use_cache=False)
        results = engine.map(_add, [
            {"a": 1, "b": 2},           # kwargs dict
            (3, 4),                     # positional tuple
            ((5, 6), {"offset": 10}),   # explicit (args, kwargs) pair
        ])
        assert results == [3, 7, 21]
        assert engine.map(_square, [5]) == [25]  # bare scalar argument

    def test_uncacheable_arguments_still_evaluate(self):
        engine = EvaluationEngine()
        assert engine.map(_type_name, [object()], stage="s") == ["object"]
        stage = engine.report().stage("s")
        assert stage.uncacheable == 1
        assert stage.evaluated == 1
        assert stage.cache_hits == stage.cache_misses == 0

    def test_single_call_api_memoizes(self):
        engine = EvaluationEngine(jobs=4)
        assert engine.call(_add, 1, 2, offset=3) == 6
        assert engine.call(_add, 1, 2, offset=3) == 6
        report = engine.report()
        assert report.cache_hits == 1
        assert report.evaluated == 1
        assert engine.jobs == 4  # call() restores the worker count

    def test_report_aggregates_and_stage_lookup(self):
        engine = EvaluationEngine()
        engine.map(_square, [1, 2], stage="a")
        engine.map(_square, [1], stage="b")  # hit: same key as in "a"
        report = engine.report()
        assert report.calls == 3
        assert report.cache_hits == 1
        assert report.stage("a").calls == 2
        with pytest.raises(KeyError):
            report.stage("missing")
        engine.reset_stats()
        assert engine.report().stages == ()

    def test_format_run_report_greppable_total(self):
        engine = EvaluationEngine()
        engine.map(_square, [1, 2, 3], stage="demo")
        text = format_run_report(engine.report())
        assert "demo" in text
        assert "total: 3 calls, 0 hits, 3 misses, 3 evaluated" in text

    def test_rejects_negative_jobs(self):
        with pytest.raises(ConfigurationError):
            EvaluationEngine(jobs=-1)


class TestDefaultEngine:
    def test_configure_replaces_default(self, fresh_default_engine):
        engine = configure(jobs=3, use_cache=False)
        assert default_engine() is engine
        assert engine.jobs == 3
        assert engine.cache is None

    def test_reset_creates_fresh_serial_engine(self, fresh_default_engine):
        configure(jobs=5)
        reset_default_engine()
        engine = default_engine()
        assert engine.jobs == 1
        assert engine.cache is not None
